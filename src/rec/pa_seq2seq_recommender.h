#ifndef PA_REC_PA_SEQ2SEQ_RECOMMENDER_H_
#define PA_REC_PA_SEQ2SEQ_RECOMMENDER_H_

#include <memory>

#include "augment/pa_seq2seq.h"
#include "rec/recommender.h"

namespace pa::rec {

/// PA-Seq2Seq used *directly* as a next-POI recommender — the paper's §V/§VI
/// remark that, unlike linear interpolation, the trained model "can also be
/// applied in the next POI recommendation task directly, as it has learned
/// the visiting distribution through training".
///
/// `Fit` runs the full three-stage PA-Seq2Seq training on the training
/// sequences; each prediction encodes the session's accumulated history
/// with one trailing missing slot at the query timestamp and ranks POIs for
/// it (see `augment::PaSeq2Seq::RankNext`). Each TopK call re-encodes the
/// recent history, so this recommender trades query latency for the richer
/// bidirectional context — benchmark accordingly.
class PaSeq2SeqRecommender : public Recommender {
 public:
  explicit PaSeq2SeqRecommender(augment::PaSeq2SeqConfig config = {});

  std::string name() const override { return "PA-Seq2Seq(direct)"; }
  void Fit(const std::vector<poi::CheckinSequence>& train,
           const poi::PoiTable& pois) override;
  std::unique_ptr<RecSession> NewSession(int32_t user) const override;

  /// The underlying trained model (null before Fit).
  const augment::PaSeq2Seq* model() const { return model_.get(); }

 private:
  augment::PaSeq2SeqConfig config_;
  std::unique_ptr<augment::PaSeq2Seq> model_;
};

}  // namespace pa::rec

#endif  // PA_REC_PA_SEQ2SEQ_RECOMMENDER_H_
