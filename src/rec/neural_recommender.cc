#include "rec/neural_recommender.h"

#include <algorithm>
#include <numeric>

#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace pa::rec {

namespace {

using tensor::Tensor;

std::vector<int32_t> TopKFromLogits(const Tensor& logits, int k) {
  const int n = logits.cols();
  std::vector<int32_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  const int kk = std::min(k, n);
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](int32_t a, int32_t b) {
                      return logits.at(0, a) > logits.at(0, b);
                    });
  ids.resize(static_cast<size_t>(kk));
  return ids;
}

}  // namespace

NeuralRecommender::NeuralRecommender(NeuralRecConfig config)
    : config_(config), rng_(config.seed) {}

NeuralRecommender::~NeuralRecommender() = default;

std::string NeuralRecommender::name() const {
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return "RNN";
    case NeuralRecConfig::Cell::kLstm:
      return "LSTM";
    case NeuralRecConfig::Cell::kGru:
      return "GRU";
    case NeuralRecConfig::Cell::kStRnn:
      return "ST-RNN";
    case NeuralRecConfig::Cell::kStClstm:
      return "ST-CLSTM";
  }
  return "?";
}

nn::LstmState NeuralRecommender::InitialState() const {
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return {rnn_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kGru:
      return {gru_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kStRnn:
      return {st_rnn_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kLstm:
      return lstm_->InitialState(1);
    case NeuralRecConfig::Cell::kStClstm:
      return st_clstm_->InitialState(1);
  }
  return {};
}

nn::LstmState NeuralRecommender::Step(const nn::LstmState& state, int poi,
                                      float delta_t, float delta_d) const {
  Tensor x = embedding_->Forward({poi});
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return {rnn_->Forward(x, state.h), state.c};
    case NeuralRecConfig::Cell::kGru:
      return {gru_->Forward(x, state.h), state.c};
    case NeuralRecConfig::Cell::kStRnn:
      return {st_rnn_->Forward(x, state.h, delta_t, delta_d), state.c};
    case NeuralRecConfig::Cell::kLstm:
      return lstm_->Forward(x, state);
    case NeuralRecConfig::Cell::kStClstm:
      return st_clstm_->Forward(x, state, delta_t, delta_d);
  }
  return state;
}

void NeuralRecommender::Fit(const std::vector<poi::CheckinSequence>& train,
                            const poi::PoiTable& pois) {
  pois_ = &pois;
  embedding_ =
      std::make_unique<nn::Embedding>(pois.size(), config_.embedding_dim,
                                      rng_);
  output_ = std::make_unique<nn::Linear>(config_.hidden_dim, pois.size(),
                                         rng_);
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      rnn_ = std::make_unique<nn::RnnCell>(config_.embedding_dim,
                                           config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kGru:
      gru_ = std::make_unique<nn::GruCell>(config_.embedding_dim,
                                           config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kStRnn:
      st_rnn_ = std::make_unique<nn::StRnnCell>(config_.embedding_dim,
                                                config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kLstm:
      lstm_ = std::make_unique<nn::LstmCell>(config_.embedding_dim,
                                             config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kStClstm:
      st_clstm_ = std::make_unique<nn::StClstmCell>(config_.embedding_dim,
                                                    config_.hidden_dim, rng_);
      break;
  }

  std::vector<Tensor> params = embedding_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (rnn_) append(rnn_->Parameters());
  if (gru_) append(gru_->Parameters());
  if (st_rnn_) append(st_rnn_->Parameters());
  if (lstm_) append(lstm_->Parameters());
  if (st_clstm_) append(st_clstm_->Parameters());
  append(output_->Parameters());
  tensor::Adam optimizer(std::move(params), config_.learning_rate);

  // Training chunks: (sequence span, features) with truncated BPTT.
  struct Chunk {
    const poi::CheckinSequence* seq;
    int begin;
    int len;
  };
  std::vector<Chunk> chunks;
  for (const auto& seq : train) {
    const int n = static_cast<int>(seq.size());
    for (int begin = 0; begin < n; begin += config_.max_seq_len) {
      const int len = std::min(config_.max_seq_len, n - begin);
      if (len < config_.min_seq_len) break;
      chunks.push_back({&seq, begin, len});
    }
  }

  epoch_losses_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(chunks);
    double total = 0.0;
    int count = 0;
    for (const Chunk& chunk : chunks) {
      nn::LstmState state = InitialState();
      std::vector<Tensor> logit_rows;
      std::vector<int> targets;
      for (int i = 0; i < chunk.len - 1; ++i) {
        const poi::Checkin& cur = (*chunk.seq)[chunk.begin + i];
        const poi::StepFeatures f = poi::ComputeStepFeatures(
            *chunk.seq, static_cast<size_t>(chunk.begin + i), *pois_,
            config_.feature_scale);
        state = Step(state, cur.poi, f.delta_t, f.delta_d);
        logit_rows.push_back(output_->Forward(state.h));
        targets.push_back((*chunk.seq)[chunk.begin + i + 1].poi);
      }
      if (logit_rows.empty()) continue;
      Tensor loss = tensor::CrossEntropyLoss(tensor::ConcatRows(logit_rows),
                                             targets);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      total += loss.item();
      ++count;
    }
    epoch_losses_.push_back(count ? static_cast<float>(total / count) : 0.0f);
  }
}

/// Session: carries the recurrent state, detached after every step so the
/// autograd graph does not grow across a user's timeline.
class NeuralRecSession : public RecSession {
 public:
  NeuralRecSession(const NeuralRecommender* rec)
      : rec_(rec), state_(rec->InitialState()) {}

  void Observe(const poi::Checkin& c) override {
    float dt = 0.0f, dd = 0.0f;
    if (has_last_) {
      const double hours =
          static_cast<double>(c.timestamp - last_.timestamp) / 3600.0;
      dt = static_cast<float>(std::min(
          hours / rec_->config_.feature_scale.hours_scale, 10.0));
      const double km = rec_->pois_->DistanceKm(last_.poi, c.poi);
      dd = static_cast<float>(
          std::min(km / rec_->config_.feature_scale.km_scale, 10.0));
    }
    state_ = rec_->Step(state_, c.poi, dt, dd);
    state_.h = state_.h.Detach();
    if (state_.c.defined()) state_.c = state_.c.Detach();
    last_ = c;
    has_last_ = true;
  }

  std::vector<int32_t> TopK(int k, int64_t next_timestamp) const override {
    Tensor hidden = state_.h;
    // Time-aware ranking: ST-CLSTM advances a phantom step whose time gate
    // sees the interval to the check-in being predicted.
    if (rec_->config_.cell == NeuralRecConfig::Cell::kStClstm && has_last_) {
      const double hours =
          static_cast<double>(next_timestamp - last_.timestamp) / 3600.0;
      const float dt = static_cast<float>(std::min(
          std::max(hours, 0.0) / rec_->config_.feature_scale.hours_scale,
          10.0));
      nn::LstmState phantom = rec_->Step(state_, last_.poi, dt, 0.0f);
      hidden = phantom.h;
    }
    Tensor logits = rec_->output_->Forward(hidden);
    return TopKFromLogits(logits, k);
  }

 private:
  const NeuralRecommender* rec_;
  nn::LstmState state_;
  poi::Checkin last_;
  bool has_last_ = false;
};

std::unique_ptr<RecSession> NeuralRecommender::NewSession(int32_t) const {
  return std::make_unique<NeuralRecSession>(this);
}

}  // namespace pa::rec
