#include "rec/neural_recommender.h"

#include <algorithm>
#include <numeric>

#include "nn/serialize.h"
#include "rec/model_io.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace pa::rec {

namespace {

constexpr uint32_t kNeuralPayloadVersion = 1;

using tensor::Tensor;

// Ranks over a raw logits row: the comparator runs O(n log k) times, so it
// indexes the array directly rather than going through a Tensor accessor.
std::vector<int32_t> TopKFromLogits(const float* logits, int n, int k) {
  std::vector<int32_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  const int kk = std::min(k, n);
  std::partial_sort(
      ids.begin(), ids.begin() + kk, ids.end(),
      [logits](int32_t a, int32_t b) { return logits[a] > logits[b]; });
  ids.resize(static_cast<size_t>(kk));
  return ids;
}

}  // namespace

NeuralRecommender::NeuralRecommender(NeuralRecConfig config)
    : config_(config), rng_(config.seed) {}

NeuralRecommender::~NeuralRecommender() = default;

std::string NeuralRecommender::name() const {
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return "RNN";
    case NeuralRecConfig::Cell::kLstm:
      return "LSTM";
    case NeuralRecConfig::Cell::kGru:
      return "GRU";
    case NeuralRecConfig::Cell::kStRnn:
      return "ST-RNN";
    case NeuralRecConfig::Cell::kStClstm:
      return "ST-CLSTM";
  }
  return "?";
}

nn::LstmState NeuralRecommender::InitialState() const {
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return {rnn_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kGru:
      return {gru_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kStRnn:
      return {st_rnn_->InitialState(1), Tensor::Zeros({1, 1})};
    case NeuralRecConfig::Cell::kLstm:
      return lstm_->InitialState(1);
    case NeuralRecConfig::Cell::kStClstm:
      return st_clstm_->InitialState(1);
  }
  return {};
}

nn::LstmState NeuralRecommender::Step(const nn::LstmState& state, int poi,
                                      float delta_t, float delta_d) const {
  Tensor x = embedding_->Forward({poi});
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      return {rnn_->Forward(x, state.h), state.c};
    case NeuralRecConfig::Cell::kGru:
      return {gru_->Forward(x, state.h), state.c};
    case NeuralRecConfig::Cell::kStRnn:
      return {st_rnn_->Forward(x, state.h, delta_t, delta_d), state.c};
    case NeuralRecConfig::Cell::kLstm:
      return lstm_->Forward(x, state);
    case NeuralRecConfig::Cell::kStClstm:
      return st_clstm_->Forward(x, state, delta_t, delta_d);
  }
  return state;
}

void NeuralRecommender::BuildModules(int num_pois) {
  // Any previous int8 tables described the old parameters.
  quantized_ = tensor::kernels::QuantizedLinear{};
  embedding_.reset();
  rnn_.reset();
  gru_.reset();
  st_rnn_.reset();
  lstm_.reset();
  st_clstm_.reset();
  output_.reset();
  embedding_ =
      std::make_unique<nn::Embedding>(num_pois, config_.embedding_dim, rng_);
  output_ = std::make_unique<nn::Linear>(config_.hidden_dim, num_pois, rng_);
  switch (config_.cell) {
    case NeuralRecConfig::Cell::kRnn:
      rnn_ = std::make_unique<nn::RnnCell>(config_.embedding_dim,
                                           config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kGru:
      gru_ = std::make_unique<nn::GruCell>(config_.embedding_dim,
                                           config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kStRnn:
      st_rnn_ = std::make_unique<nn::StRnnCell>(config_.embedding_dim,
                                                config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kLstm:
      lstm_ = std::make_unique<nn::LstmCell>(config_.embedding_dim,
                                             config_.hidden_dim, rng_);
      break;
    case NeuralRecConfig::Cell::kStClstm:
      st_clstm_ = std::make_unique<nn::StClstmCell>(config_.embedding_dim,
                                                    config_.hidden_dim, rng_);
      break;
  }
}

std::vector<Tensor> NeuralRecommender::CollectParameters() const {
  std::vector<Tensor> params = embedding_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (rnn_) append(rnn_->Parameters());
  if (gru_) append(gru_->Parameters());
  if (st_rnn_) append(st_rnn_->Parameters());
  if (lstm_) append(lstm_->Parameters());
  if (st_clstm_) append(st_clstm_->Parameters());
  append(output_->Parameters());
  return params;
}

void NeuralRecommender::Fit(const std::vector<poi::CheckinSequence>& train,
                            const poi::PoiTable& pois) {
  pois_ = &pois;
  BuildModules(pois.size());
  tensor::Adam optimizer(CollectParameters(), config_.learning_rate);

  // Training chunks: (sequence span, features) with truncated BPTT.
  struct Chunk {
    const poi::CheckinSequence* seq;
    int begin;
    int len;
  };
  std::vector<Chunk> chunks;
  for (const auto& seq : train) {
    const int n = static_cast<int>(seq.size());
    for (int begin = 0; begin < n; begin += config_.max_seq_len) {
      const int len = std::min(config_.max_seq_len, n - begin);
      if (len < config_.min_seq_len) break;
      chunks.push_back({&seq, begin, len});
    }
  }

  epoch_losses_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(chunks);
    double total = 0.0;
    int count = 0;
    for (const Chunk& chunk : chunks) {
      nn::LstmState state = InitialState();
      std::vector<Tensor> logit_rows;
      std::vector<int> targets;
      for (int i = 0; i < chunk.len - 1; ++i) {
        const poi::Checkin& cur = (*chunk.seq)[chunk.begin + i];
        const poi::StepFeatures f = poi::ComputeStepFeatures(
            *chunk.seq, static_cast<size_t>(chunk.begin + i), *pois_,
            config_.feature_scale);
        state = Step(state, cur.poi, f.delta_t, f.delta_d);
        logit_rows.push_back(output_->Forward(state.h));
        targets.push_back((*chunk.seq)[chunk.begin + i + 1].poi);
      }
      if (logit_rows.empty()) continue;
      Tensor loss = tensor::CrossEntropyLoss(tensor::ConcatRows(logit_rows),
                                             targets);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      total += loss.item();
      ++count;
    }
    epoch_losses_.push_back(count ? static_cast<float>(total / count) : 0.0f);
  }
}

/// Session: carries the recurrent state, detached after every step so the
/// autograd graph does not grow across a user's timeline.
class NeuralRecSession : public RecSession {
 public:
  NeuralRecSession(const NeuralRecommender* rec)
      : rec_(rec), state_(rec->InitialState()) {}

  void Observe(const poi::Checkin& c) override {
    // Session forwards never backpropagate; skip graph construction.
    const tensor::InferenceModeScope inference;
    float dt = 0.0f, dd = 0.0f;
    if (has_last_) {
      const double hours =
          static_cast<double>(c.timestamp - last_.timestamp) / 3600.0;
      dt = static_cast<float>(std::min(
          hours / rec_->config_.feature_scale.hours_scale, 10.0));
      const double km = rec_->pois_->DistanceKm(last_.poi, c.poi);
      dd = static_cast<float>(
          std::min(km / rec_->config_.feature_scale.km_scale, 10.0));
    }
    state_ = rec_->Step(state_, c.poi, dt, dd);
    if (!tensor::InferenceModeScope::Active()) {
      // Graph-building forward (the test override disables inference mode):
      // detach so the graph does not grow across the user's timeline. The
      // fast path has no graph to sever, so the copies would be pure waste.
      state_.h = state_.h.Detach();
      if (state_.c.defined()) state_.c = state_.c.Detach();
    }
    last_ = c;
    has_last_ = true;
  }

  std::vector<int32_t> TopK(int k, int64_t next_timestamp) const override {
    const tensor::InferenceModeScope inference;
    Tensor hidden = state_.h;
    // Time-aware ranking: ST-CLSTM advances a phantom step whose time gate
    // sees the interval to the check-in being predicted.
    if (rec_->config_.cell == NeuralRecConfig::Cell::kStClstm && has_last_) {
      const double hours =
          static_cast<double>(next_timestamp - last_.timestamp) / 3600.0;
      const float dt = static_cast<float>(std::min(
          std::max(hours, 0.0) / rec_->config_.feature_scale.hours_scale,
          10.0));
      nn::LstmState phantom = rec_->Step(state_, last_.poi, dt, 0.0f);
      hidden = phantom.h;
    }
    if (rec_->quantized_.valid()) {
      // Quantized serving: one fused int8 GEMV straight off the hidden
      // state — no tensor nodes, no pool traffic — then rank the raw row.
      static thread_local std::vector<float> logits_row;
      logits_row.resize(static_cast<size_t>(rec_->quantized_.out_dim));
      tensor::kernels::QuantizedGemv(rec_->quantized_, hidden.data(),
                                     logits_row.data());
      return TopKFromLogits(logits_row.data(), rec_->quantized_.out_dim, k);
    }
    Tensor logits = rec_->output_->Forward(hidden);
    return TopKFromLogits(logits.data(), logits.cols(), k);
  }

 private:
  const NeuralRecommender* rec_;
  nn::LstmState state_;
  poi::Checkin last_;
  bool has_last_ = false;
};

std::unique_ptr<RecSession> NeuralRecommender::NewSession(int32_t) const {
  return std::make_unique<NeuralRecSession>(this);
}

bool NeuralRecommender::Save(std::ostream& os, std::string* error) const {
  if (pois_ == nullptr || !output_) {
    io::SetError(error, name() + ": Save() called before Fit()");
    return false;
  }
  io::WritePod(os, kNeuralPayloadVersion);
  io::WritePod(os, static_cast<uint8_t>(config_.cell));
  io::WritePod(os, static_cast<int32_t>(config_.embedding_dim));
  io::WritePod(os, static_cast<int32_t>(config_.hidden_dim));
  io::WritePod(os, config_.learning_rate);
  io::WritePod(os, static_cast<int32_t>(config_.epochs));
  io::WritePod(os, config_.grad_clip);
  io::WritePod(os, static_cast<int32_t>(config_.max_seq_len));
  io::WritePod(os, static_cast<int32_t>(config_.min_seq_len));
  io::WritePod(os, config_.seed);
  io::WritePod(os, config_.feature_scale.hours_scale);
  io::WritePod(os, config_.feature_scale.km_scale);
  io::WritePod(os, static_cast<int32_t>(embedding_->vocab_size()));
  if (!nn::SaveParameters(os, CollectParameters(), error)) return false;
  if (!os) {
    io::SetError(error, name() + ": I/O error writing model");
    return false;
  }
  return true;
}

bool NeuralRecommender::Load(std::istream& is, const poi::PoiTable& pois,
                             std::string* error) {
  uint32_t version = 0;
  if (!io::ReadPod(is, &version) || version != kNeuralPayloadVersion) {
    io::SetError(error, name() + ": unsupported model payload version");
    return false;
  }
  uint8_t cell = 0;
  int32_t embedding_dim = 0, hidden_dim = 0, epochs = 0;
  int32_t max_seq_len = 0, min_seq_len = 0, num_pois = 0;
  if (!io::ReadPod(is, &cell) ||
      cell > static_cast<uint8_t>(NeuralRecConfig::Cell::kStClstm) ||
      !io::ReadPod(is, &embedding_dim) || !io::ReadPod(is, &hidden_dim) ||
      !io::ReadPod(is, &config_.learning_rate) || !io::ReadPod(is, &epochs) ||
      !io::ReadPod(is, &config_.grad_clip) || !io::ReadPod(is, &max_seq_len) ||
      !io::ReadPod(is, &min_seq_len) || !io::ReadPod(is, &config_.seed) ||
      !io::ReadPod(is, &config_.feature_scale.hours_scale) ||
      !io::ReadPod(is, &config_.feature_scale.km_scale) ||
      !io::ReadPod(is, &num_pois) || embedding_dim <= 0 || hidden_dim <= 0) {
    io::SetError(error, name() + ": truncated or corrupt model header");
    return false;
  }
  if (num_pois != pois.size()) {
    io::SetError(error, name() + ": POI table size mismatch (model has " +
                            std::to_string(num_pois) + " POIs, table has " +
                            std::to_string(pois.size()) + ")");
    return false;
  }
  config_.cell = static_cast<NeuralRecConfig::Cell>(cell);
  config_.embedding_dim = embedding_dim;
  config_.hidden_dim = hidden_dim;
  config_.epochs = epochs;
  config_.max_seq_len = max_seq_len;
  config_.min_seq_len = min_seq_len;

  // Rebuild the module structure (random init), then overwrite every
  // parameter from the checkpoint.
  rng_ = util::Rng(config_.seed);
  BuildModules(num_pois);
  std::vector<Tensor> params = CollectParameters();
  if (!nn::LoadParameters(is, params, error)) return false;
  pois_ = &pois;
  epoch_losses_.clear();
  return true;
}

bool NeuralRecommender::QuantizeForServing(std::string* error) {
  if (!output_) {
    io::SetError(error, name() + ": QuantizeForServing() before Fit()/Load()");
    return false;
  }
  quantized_ = tensor::kernels::QuantizeLinear(
      output_->weight().data(), output_->bias().data(), config_.hidden_dim,
      embedding_->vocab_size());
  return true;
}

bool NeuralRecommender::SaveQuantizedSection(std::ostream& os,
                                             std::string* error) const {
  if (!quantized_.valid()) {
    io::SetError(error, name() + ": no quantized tables to save");
    return false;
  }
  tensor::kernels::SaveQuantizedLinear(os, quantized_);
  if (!os) {
    io::SetError(error, name() + ": I/O error writing quantized section");
    return false;
  }
  return true;
}

bool NeuralRecommender::LoadQuantizedSection(std::istream& is,
                                             std::string* error) {
  std::string why;
  if (!tensor::kernels::LoadQuantizedLinear(is, &quantized_, &why)) {
    quantized_ = tensor::kernels::QuantizedLinear{};
    io::SetError(error, name() + ": " + why);
    return false;
  }
  if (output_ && (quantized_.in_dim != config_.hidden_dim ||
                  quantized_.out_dim != embedding_->vocab_size())) {
    quantized_ = tensor::kernels::QuantizedLinear{};
    io::SetError(error, name() + ": quantized section shape mismatch");
    return false;
  }
  return true;
}

}  // namespace pa::rec
