#include "rec/fpmc_lr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/serialize.h"
#include "rec/model_io.h"
#include "tensor/tensor.h"

namespace pa::rec {

namespace {

constexpr uint32_t kFpmcLrPayloadVersion = 1;

float Dot(const float* a, const float* b, int dim) {
  float s = 0.0f;
  for (int i = 0; i < dim; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

FpmcLr::FpmcLr(FpmcLrConfig config) : config_(config), rng_(config.seed) {}

float FpmcLr::Score(int32_t user, int32_t prev, int32_t poi) const {
  // Users outside the training range have no learned factor; score them
  // from the sequential (FMC) term alone instead of reading past v_ul_.
  const float seq = Dot(Row(v_li_, poi), Row(v_il_, prev), config_.dim);
  if (user < 0 || user >= num_users_) return seq;
  return Dot(Row(v_ul_, user), Row(v_lu_, poi), config_.dim) + seq;
}

const std::vector<int32_t>& FpmcLr::Region(int32_t prev) const {
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    auto it = region_cache_.find(prev);
    if (it != region_cache_.end()) return it->second;
  }
  // Compute outside the lock — the spatial query is the expensive part and
  // is itself safe for concurrent readers. A racing thread may compute the
  // same region; emplace keeps whichever landed first.
  std::vector<int32_t> region =
      pois_->PoisWithin(prev, config_.region_radius_km);
  std::lock_guard<std::mutex> lock(region_mu_);
  return region_cache_.emplace(prev, std::move(region)).first->second;
}

void FpmcLr::Fit(const std::vector<poi::CheckinSequence>& train,
                 const poi::PoiTable& pois) {
  pois_ = &pois;
  num_users_ = static_cast<int>(train.size());
  num_pois_ = pois.size();
  region_cache_.clear();

  auto init = [&](std::vector<float>& m, int rows) {
    m.resize(static_cast<size_t>(rows) * config_.dim);
    for (float& v : m) v = static_cast<float>(rng_.Normal(0.0, 0.05));
  };
  init(v_ul_, num_users_);
  init(v_lu_, num_pois_);
  init(v_li_, num_pois_);
  init(v_il_, num_pois_);

  // Popularity ranking for candidate fallback.
  popular_.resize(static_cast<size_t>(num_pois_));
  std::iota(popular_.begin(), popular_.end(), 0);
  std::sort(popular_.begin(), popular_.end(), [&](int32_t a, int32_t b) {
    return pois.popularity(a) > pois.popularity(b);
  });

  // Transition list.
  struct Transition {
    int32_t user, prev, next;
  };
  std::vector<Transition> transitions;
  for (size_t u = 0; u < train.size(); ++u) {
    for (size_t i = 1; i < train[u].size(); ++i) {
      transitions.push_back({static_cast<int32_t>(u), train[u][i - 1].poi,
                             train[u][i].poi});
    }
  }

  const float lr = config_.learning_rate;
  const float reg = config_.reg;
  const int d = config_.dim;
  epoch_objectives_.clear();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(transitions);
    double objective = 0.0;
    int64_t updates = 0;
    for (const Transition& tr : transitions) {
      const std::vector<int32_t>& region = Region(tr.prev);
      for (int s = 0; s < config_.negatives_per_step; ++s) {
        // Negative: a POI from the localized region (or anywhere as a
        // fallback) that is not the positive.
        int32_t neg;
        if (!region.empty() && rng_.Bernoulli(0.8)) {
          neg = region[static_cast<size_t>(
              rng_.RandInt(0, static_cast<int>(region.size()) - 1))];
        } else {
          neg = static_cast<int32_t>(rng_.RandInt(0, num_pois_ - 1));
        }
        if (neg == tr.next) continue;

        const float x = Score(tr.user, tr.prev, tr.next) -
                        Score(tr.user, tr.prev, neg);
        const float sig = 1.0f / (1.0f + std::exp(x));  // d/dx -ln(sigmoid(x))
        objective += std::log(1.0f / (1.0f + std::exp(-x)));
        ++updates;

        float* ul = Row(v_ul_, tr.user);
        float* lu_p = Row(v_lu_, tr.next);
        float* lu_n = Row(v_lu_, neg);
        float* li_p = Row(v_li_, tr.next);
        float* li_n = Row(v_li_, neg);
        float* il = Row(v_il_, tr.prev);
        for (int i = 0; i < d; ++i) {
          const float g_ul = sig * (lu_p[i] - lu_n[i]);
          const float g_lup = sig * ul[i];
          const float g_lun = -sig * ul[i];
          const float g_lip = sig * il[i];
          const float g_lin = -sig * il[i];
          const float g_il = sig * (li_p[i] - li_n[i]);
          ul[i] += lr * (g_ul - reg * ul[i]);
          lu_p[i] += lr * (g_lup - reg * lu_p[i]);
          lu_n[i] += lr * (g_lun - reg * lu_n[i]);
          li_p[i] += lr * (g_lip - reg * li_p[i]);
          li_n[i] += lr * (g_lin - reg * li_n[i]);
          il[i] += lr * (g_il - reg * il[i]);
        }
      }
    }
    epoch_objectives_.push_back(
        updates ? static_cast<float>(objective / updates) : 0.0f);
  }
}

/// Session: remembers the user and the last observed POI.
class FpmcLrSession : public RecSession {
 public:
  FpmcLrSession(const FpmcLr* rec, int32_t user) : rec_(rec), user_(user) {}

  void Observe(const poi::Checkin& c) override {
    last_poi_ = c.poi;
    has_last_ = true;
  }

  std::vector<int32_t> TopK(int k, int64_t) const override {
    // Scoring is raw float arithmetic (no tensor ops), but the scope keeps
    // the contract uniform: every recommender's TopK runs in inference mode.
    const tensor::InferenceModeScope inference;
    std::vector<int32_t> candidates;
    if (has_last_) {
      candidates = rec_->Region(last_poi_);
      candidates.push_back(last_poi_);
    }
    // Fall back to (or pad with) globally popular POIs.
    for (int32_t p : rec_->popular_) {
      if (static_cast<int>(candidates.size()) >= std::max(4 * k, 50)) break;
      candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    const int32_t prev = has_last_ ? last_poi_ : candidates.front();
    const int kk = std::min<int>(k, static_cast<int>(candidates.size()));
    std::partial_sort(candidates.begin(), candidates.begin() + kk,
                      candidates.end(), [&](int32_t a, int32_t b) {
                        return rec_->Score(user_, prev, a) >
                               rec_->Score(user_, prev, b);
                      });
    candidates.resize(static_cast<size_t>(kk));
    return candidates;
  }

 private:
  const FpmcLr* rec_;
  int32_t user_;
  int32_t last_poi_ = 0;
  bool has_last_ = false;
};

std::unique_ptr<RecSession> FpmcLr::NewSession(int32_t user) const {
  return std::make_unique<FpmcLrSession>(this, user);
}

bool FpmcLr::Save(std::ostream& os, std::string* error) const {
  if (pois_ == nullptr || v_ul_.empty()) {
    io::SetError(error, "FPMC-LR: Save() called before Fit()");
    return false;
  }
  io::WritePod(os, kFpmcLrPayloadVersion);
  io::WritePod(os, static_cast<int32_t>(config_.dim));
  io::WritePod(os, config_.learning_rate);
  io::WritePod(os, config_.reg);
  io::WritePod(os, static_cast<int32_t>(config_.epochs));
  io::WritePod(os, static_cast<int32_t>(config_.negatives_per_step));
  io::WritePod(os, config_.region_radius_km);
  io::WritePod(os, config_.seed);
  io::WritePod(os, static_cast<int32_t>(num_users_));
  io::WritePod(os, static_cast<int32_t>(num_pois_));
  const std::vector<tensor::Tensor> factors = {
      io::WrapMatrix(v_ul_, num_users_, config_.dim),
      io::WrapMatrix(v_lu_, num_pois_, config_.dim),
      io::WrapMatrix(v_li_, num_pois_, config_.dim),
      io::WrapMatrix(v_il_, num_pois_, config_.dim)};
  if (!nn::SaveParameters(os, factors, error)) return false;
  io::WriteI32Vec(os, popular_);
  if (!os) {
    io::SetError(error, "FPMC-LR: I/O error writing model");
    return false;
  }
  return true;
}

bool FpmcLr::Load(std::istream& is, const poi::PoiTable& pois,
                  std::string* error) {
  uint32_t version = 0;
  if (!io::ReadPod(is, &version) || version != kFpmcLrPayloadVersion) {
    io::SetError(error, "FPMC-LR: unsupported model payload version");
    return false;
  }
  int32_t dim = 0, epochs = 0, negatives = 0, num_users = 0, num_pois = 0;
  if (!io::ReadPod(is, &dim) || !io::ReadPod(is, &config_.learning_rate) ||
      !io::ReadPod(is, &config_.reg) || !io::ReadPod(is, &epochs) ||
      !io::ReadPod(is, &negatives) ||
      !io::ReadPod(is, &config_.region_radius_km) ||
      !io::ReadPod(is, &config_.seed) || !io::ReadPod(is, &num_users) ||
      !io::ReadPod(is, &num_pois) || dim <= 0 || num_users < 0 ||
      num_pois < 0) {
    io::SetError(error, "FPMC-LR: truncated or corrupt model header");
    return false;
  }
  if (num_pois != pois.size()) {
    io::SetError(error, "FPMC-LR: POI table size mismatch (model has " +
                            std::to_string(num_pois) + " POIs, table has " +
                            std::to_string(pois.size()) + ")");
    return false;
  }
  config_.dim = dim;
  config_.epochs = epochs;
  config_.negatives_per_step = negatives;
  num_users_ = num_users;
  num_pois_ = num_pois;

  std::vector<tensor::Tensor> factors = {
      tensor::Tensor::Zeros({num_users_, dim}),
      tensor::Tensor::Zeros({num_pois_, dim}),
      tensor::Tensor::Zeros({num_pois_, dim}),
      tensor::Tensor::Zeros({num_pois_, dim})};
  if (!nn::LoadParameters(is, factors, error)) return false;
  io::UnwrapMatrix(factors[0], &v_ul_);
  io::UnwrapMatrix(factors[1], &v_lu_);
  io::UnwrapMatrix(factors[2], &v_li_);
  io::UnwrapMatrix(factors[3], &v_il_);

  if (!io::ReadI32Vec(is, &popular_) ||
      popular_.size() != static_cast<size_t>(num_pois_)) {
    io::SetError(error, "FPMC-LR: truncated popularity ranking");
    return false;
  }
  pois_ = &pois;
  rng_ = util::Rng(config_.seed);
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    region_cache_.clear();
  }
  epoch_objectives_.clear();
  return true;
}

}  // namespace pa::rec
