#ifndef PA_REC_PRME_G_H_
#define PA_REC_PRME_G_H_

#include <vector>

#include "rec/recommender.h"
#include "util/rng.h"

namespace pa::rec {

/// Configuration for PRME-G.
struct PrmeGConfig {
  int dim = 16;
  float alpha = 0.4f;        // Weight of the user-preference space.
  float learning_rate = 0.05f;
  float reg = 0.01f;
  int epochs = 8;
  int negatives_per_step = 4;
  double geo_gamma_km = 20.0;  // Distance scale of the geo weight.
  /// Transitions longer than this (in hours) fall back to the pure
  /// user-preference component, as in the original PRME threshold τ.
  double tau_hours = 12.0;
  uint64_t seed = 13;
};

/// PRME-G (Feng et al., 2015): Personalized Ranking Metric Embedding with
/// geographical influence.
///
/// Two metric spaces: a *sequential* space S embedding POIs so that likely
/// transitions are close, and a *preference* space P embedding users and
/// POIs together. The ranking distance for candidate l after prev is
///
///     D(u, prev, l) = w(prev, l) · [ α · ||U_u - P_l||²
///                                  + (1-α) · ||S_prev - S_l||² ]
///
/// with geo weight w(prev, l) = 1 + dist_km(prev, l) / γ (farther POIs are
/// penalized — the "G" extension). When the time since the previous
/// check-in exceeds τ the sequential component is dropped. Smaller D ranks
/// higher; training is BPR on -D.
class PrmeG : public Recommender {
 public:
  explicit PrmeG(PrmeGConfig config = {});

  std::string name() const override { return "PRME-G"; }
  void Fit(const std::vector<poi::CheckinSequence>& train,
           const poi::PoiTable& pois) override;
  std::unique_ptr<RecSession> NewSession(int32_t user) const override;
  bool Save(std::ostream& os, std::string* error = nullptr) const override;
  bool Load(std::istream& is, const poi::PoiTable& pois,
            std::string* error = nullptr) override;

  /// Ranking distance (lower is better); exposed for tests.
  float Distance(int32_t user, int32_t prev, int32_t poi,
                 bool use_sequential) const;

  const std::vector<float>& epoch_objectives() const {
    return epoch_objectives_;
  }

 private:
  friend class PrmeGSession;

  float* Row(std::vector<float>& m, int32_t i) const {
    return m.data() + static_cast<size_t>(i) * config_.dim;
  }
  const float* Row(const std::vector<float>& m, int32_t i) const {
    return m.data() + static_cast<size_t>(i) * config_.dim;
  }

  PrmeGConfig config_;
  util::Rng rng_;
  const poi::PoiTable* pois_ = nullptr;
  int num_users_ = 0;
  int num_pois_ = 0;

  std::vector<float> user_;   // U: [users, dim] in preference space.
  std::vector<float> poi_p_;  // P: [pois, dim] in preference space.
  std::vector<float> poi_s_;  // S: [pois, dim] in sequential space.

  std::vector<float> epoch_objectives_;
};

}  // namespace pa::rec

#endif  // PA_REC_PRME_G_H_
