#ifndef PA_REC_MODEL_IO_H_
#define PA_REC_MODEL_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pa::rec::io {

/// POD and vector (de)serialization helpers shared by the recommenders'
/// `Save`/`Load` implementations. Numeric payloads (factor matrices,
/// network parameters) go through `nn::SaveParameters`, which carries the
/// format version and checksum; these helpers cover the small config/shape
/// preamble each class writes around it.

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

inline void WriteI32Vec(std::ostream& os, const std::vector<int32_t>& v) {
  WritePod(os, static_cast<uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(int32_t)));
}

inline bool ReadI32Vec(std::istream& is, std::vector<int32_t>* v,
                       uint64_t max_size = (1ull << 32)) {
  uint64_t size = 0;
  if (!ReadPod(is, &size) || size > max_size) return false;
  v->resize(static_cast<size_t>(size));
  is.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(v->size() * sizeof(int32_t)));
  return static_cast<bool>(is);
}

/// Wraps a row-major [rows, cols] factor matrix in a Tensor (copying) so it
/// rides the versioned, checksummed `nn::SaveParameters` container.
inline tensor::Tensor WrapMatrix(const std::vector<float>& m, int rows,
                                 int cols) {
  return tensor::Tensor::FromData({rows, cols}, m);
}

/// Copies a loaded Tensor back into a flat factor matrix.
inline void UnwrapMatrix(const tensor::Tensor& t, std::vector<float>* m) {
  m->assign(t.data(), t.data() + t.numel());
}

inline void SetError(std::string* error, const std::string& message) {
  if (error) *error = message;
}

}  // namespace pa::rec::io

#endif  // PA_REC_MODEL_IO_H_
