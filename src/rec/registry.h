#ifndef PA_REC_REGISTRY_H_
#define PA_REC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "rec/recommender.h"

namespace pa::rec {

/// The five methods of the paper's Tables I–II, in row order.
std::vector<std::string> StandardRecommenderNames();

/// Factory by table-row name ("FPMC-LR", "PRME-G", "RNN", "LSTM",
/// "ST-CLSTM"). Returns null for unknown names. `seed` controls all
/// stochastic parts (initialization, negative sampling, shuffling);
/// `epochs_scale` proportionally shrinks/stretches every method's training
/// epochs (used by quick tests and examples).
std::unique_ptr<Recommender> MakeRecommender(const std::string& name,
                                             uint64_t seed = 7,
                                             double epochs_scale = 1.0);

}  // namespace pa::rec

#endif  // PA_REC_REGISTRY_H_
