#ifndef PA_REC_REGISTRY_H_
#define PA_REC_REGISTRY_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "rec/recommender.h"

namespace pa::rec {

/// The five methods of the paper's Tables I–II, in row order.
std::vector<std::string> StandardRecommenderNames();

/// Every name `MakeRecommender` accepts: the five standard methods plus the
/// GRU and ST-RNN library extensions.
std::vector<std::string> KnownRecommenderNames();

/// The known names joined as "FPMC-LR, PRME-G, ..." — for error messages at
/// call sites that receive an unknown name.
std::string KnownRecommenderNamesString();

/// Factory by table-row name ("FPMC-LR", "PRME-G", "RNN", "LSTM",
/// "ST-CLSTM"; also "GRU" / "ST-RNN"). Matching is case-insensitive
/// ("lstm" works). Returns null for unknown names — callers should report
/// `KnownRecommenderNamesString()`. `seed` controls all stochastic parts
/// (initialization, negative sampling, shuffling); `epochs_scale`
/// proportionally shrinks/stretches every method's training epochs (used by
/// quick tests and examples).
std::unique_ptr<Recommender> MakeRecommender(const std::string& name,
                                             uint64_t seed = 7,
                                             double epochs_scale = 1.0);

/// Constructs the named recommender and restores it from a stream written
/// by `Recommender::Save`. `pois` must be the POI universe the model was
/// fitted on and must outlive the returned recommender. Returns null (and
/// sets `error`) on unknown name or malformed payload.
std::unique_ptr<Recommender> LoadRecommender(const std::string& name,
                                             std::istream& is,
                                             const poi::PoiTable& pois,
                                             std::string* error = nullptr);

}  // namespace pa::rec

#endif  // PA_REC_REGISTRY_H_
