#include "rec/prme_g.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/serialize.h"
#include "rec/model_io.h"
#include "tensor/tensor.h"

namespace pa::rec {

namespace {

constexpr uint32_t kPrmeGPayloadVersion = 1;

float SquaredL2Diff(const float* a, const float* b, int dim) {
  float s = 0.0f;
  for (int i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

PrmeG::PrmeG(PrmeGConfig config) : config_(config), rng_(config.seed) {}

float PrmeG::Distance(int32_t user, int32_t prev, int32_t poi,
                      bool use_sequential) const {
  // Users outside the training range have no learned preference point;
  // rank them by the sequential term alone instead of reading past user_.
  const bool known_user = user >= 0 && user < num_users_;
  const float dp =
      known_user ? SquaredL2Diff(Row(user_, user), Row(poi_p_, poi),
                                 config_.dim)
                 : 0.0f;
  if (!use_sequential) return dp;
  const float ds =
      SquaredL2Diff(Row(poi_s_, prev), Row(poi_s_, poi), config_.dim);
  const float w = 1.0f + static_cast<float>(pois_->DistanceKm(prev, poi) /
                                            config_.geo_gamma_km);
  if (!known_user) return w * ds;
  return w * (config_.alpha * dp + (1.0f - config_.alpha) * ds);
}

void PrmeG::Fit(const std::vector<poi::CheckinSequence>& train,
                const poi::PoiTable& pois) {
  pois_ = &pois;
  num_users_ = static_cast<int>(train.size());
  num_pois_ = pois.size();

  auto init = [&](std::vector<float>& m, int rows) {
    m.resize(static_cast<size_t>(rows) * config_.dim);
    for (float& v : m) v = static_cast<float>(rng_.Normal(0.0, 0.05));
  };
  init(user_, num_users_);
  init(poi_p_, num_pois_);
  init(poi_s_, num_pois_);

  struct Transition {
    int32_t user, prev, next;
    bool sequential;  // False when the time gap exceeded τ.
  };
  std::vector<Transition> transitions;
  for (size_t u = 0; u < train.size(); ++u) {
    for (size_t i = 1; i < train[u].size(); ++i) {
      const double gap_hours =
          static_cast<double>(train[u][i].timestamp -
                              train[u][i - 1].timestamp) /
          3600.0;
      transitions.push_back({static_cast<int32_t>(u), train[u][i - 1].poi,
                             train[u][i].poi,
                             gap_hours <= config_.tau_hours});
    }
  }

  const float lr = config_.learning_rate;
  const float reg = config_.reg;
  const int d = config_.dim;
  const float alpha = config_.alpha;
  epoch_objectives_.clear();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(transitions);
    double objective = 0.0;
    int64_t updates = 0;
    for (const Transition& tr : transitions) {
      for (int s = 0; s < config_.negatives_per_step; ++s) {
        const int32_t neg = static_cast<int32_t>(rng_.RandInt(0, num_pois_ - 1));
        if (neg == tr.next) continue;

        // BPR on z = D(neg) - D(pos): ascend ln(sigmoid(z)).
        const float d_pos = Distance(tr.user, tr.prev, tr.next, tr.sequential);
        const float d_neg = Distance(tr.user, tr.prev, neg, tr.sequential);
        const float z = d_neg - d_pos;
        const float sig = 1.0f / (1.0f + std::exp(z));  // 1 - sigmoid(z)
        objective += std::log(1.0f / (1.0f + std::exp(-z)));
        ++updates;

        const float w_pos =
            tr.sequential
                ? 1.0f + static_cast<float>(
                             pois_->DistanceKm(tr.prev, tr.next) /
                             config_.geo_gamma_km)
                : 1.0f;
        const float w_neg =
            tr.sequential
                ? 1.0f + static_cast<float>(pois_->DistanceKm(tr.prev, neg) /
                                            config_.geo_gamma_km)
                : 1.0f;
        const float ap = tr.sequential ? alpha : 1.0f;

        float* uu = Row(user_, tr.user);
        float* pp = Row(poi_p_, tr.next);
        float* pn = Row(poi_p_, neg);
        float* sp = Row(poi_s_, tr.next);
        float* sn = Row(poi_s_, neg);
        float* sprev = Row(poi_s_, tr.prev);
        for (int i = 0; i < d; ++i) {
          // dz/dθ = dD(neg)/dθ - dD(pos)/dθ.
          const float du = w_neg * ap * 2.0f * (uu[i] - pn[i]) -
                           w_pos * ap * 2.0f * (uu[i] - pp[i]);
          const float dpp = w_pos * ap * 2.0f * (uu[i] - pp[i]);
          const float dpn = -w_neg * ap * 2.0f * (uu[i] - pn[i]);
          uu[i] += lr * (sig * du - reg * uu[i]);
          pp[i] += lr * (sig * dpp - reg * pp[i]);
          pn[i] += lr * (sig * dpn - reg * pn[i]);
          if (tr.sequential) {
            const float beta = 1.0f - alpha;
            const float dsp = w_pos * beta * 2.0f * (sprev[i] - sp[i]);
            const float dsn = -w_neg * beta * 2.0f * (sprev[i] - sn[i]);
            const float dsprev = w_neg * beta * 2.0f * (sprev[i] - sn[i]) -
                                 w_pos * beta * 2.0f * (sprev[i] - sp[i]);
            sp[i] += lr * (sig * dsp - reg * sp[i]);
            sn[i] += lr * (sig * dsn - reg * sn[i]);
            sprev[i] += lr * (sig * dsprev - reg * sprev[i]);
          }
        }
      }
    }
    epoch_objectives_.push_back(
        updates ? static_cast<float>(objective / updates) : 0.0f);
  }
}

/// Session: remembers the user, the last POI and its time.
class PrmeGSession : public RecSession {
 public:
  PrmeGSession(const PrmeG* rec, int32_t user) : rec_(rec), user_(user) {}

  void Observe(const poi::Checkin& c) override {
    last_ = c;
    has_last_ = true;
  }

  std::vector<int32_t> TopK(int k, int64_t next_timestamp) const override {
    // Scoring is raw float arithmetic (no tensor ops), but the scope keeps
    // the contract uniform: every recommender's TopK runs in inference mode.
    const tensor::InferenceModeScope inference;
    const bool sequential =
        has_last_ &&
        static_cast<double>(next_timestamp - last_.timestamp) / 3600.0 <=
            rec_->config_.tau_hours;
    const int32_t prev = has_last_ ? last_.poi : 0;

    std::vector<int32_t> ids(static_cast<size_t>(rec_->num_pois_));
    std::iota(ids.begin(), ids.end(), 0);
    const int kk = std::min<int>(k, rec_->num_pois_);
    std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                      [&](int32_t a, int32_t b) {
                        return rec_->Distance(user_, prev, a, sequential) <
                               rec_->Distance(user_, prev, b, sequential);
                      });
    ids.resize(static_cast<size_t>(kk));
    return ids;
  }

 private:
  const PrmeG* rec_;
  int32_t user_;
  poi::Checkin last_;
  bool has_last_ = false;
};

std::unique_ptr<RecSession> PrmeG::NewSession(int32_t user) const {
  return std::make_unique<PrmeGSession>(this, user);
}

bool PrmeG::Save(std::ostream& os, std::string* error) const {
  if (pois_ == nullptr || user_.empty()) {
    io::SetError(error, "PRME-G: Save() called before Fit()");
    return false;
  }
  io::WritePod(os, kPrmeGPayloadVersion);
  io::WritePod(os, static_cast<int32_t>(config_.dim));
  io::WritePod(os, config_.alpha);
  io::WritePod(os, config_.learning_rate);
  io::WritePod(os, config_.reg);
  io::WritePod(os, static_cast<int32_t>(config_.epochs));
  io::WritePod(os, static_cast<int32_t>(config_.negatives_per_step));
  io::WritePod(os, config_.geo_gamma_km);
  io::WritePod(os, config_.tau_hours);
  io::WritePod(os, config_.seed);
  io::WritePod(os, static_cast<int32_t>(num_users_));
  io::WritePod(os, static_cast<int32_t>(num_pois_));
  const std::vector<tensor::Tensor> factors = {
      io::WrapMatrix(user_, num_users_, config_.dim),
      io::WrapMatrix(poi_p_, num_pois_, config_.dim),
      io::WrapMatrix(poi_s_, num_pois_, config_.dim)};
  if (!nn::SaveParameters(os, factors, error)) return false;
  if (!os) {
    io::SetError(error, "PRME-G: I/O error writing model");
    return false;
  }
  return true;
}

bool PrmeG::Load(std::istream& is, const poi::PoiTable& pois,
                 std::string* error) {
  uint32_t version = 0;
  if (!io::ReadPod(is, &version) || version != kPrmeGPayloadVersion) {
    io::SetError(error, "PRME-G: unsupported model payload version");
    return false;
  }
  int32_t dim = 0, epochs = 0, negatives = 0, num_users = 0, num_pois = 0;
  if (!io::ReadPod(is, &dim) || !io::ReadPod(is, &config_.alpha) ||
      !io::ReadPod(is, &config_.learning_rate) ||
      !io::ReadPod(is, &config_.reg) || !io::ReadPod(is, &epochs) ||
      !io::ReadPod(is, &negatives) || !io::ReadPod(is, &config_.geo_gamma_km) ||
      !io::ReadPod(is, &config_.tau_hours) || !io::ReadPod(is, &config_.seed) ||
      !io::ReadPod(is, &num_users) || !io::ReadPod(is, &num_pois) || dim <= 0 ||
      num_users < 0 || num_pois < 0) {
    io::SetError(error, "PRME-G: truncated or corrupt model header");
    return false;
  }
  if (num_pois != pois.size()) {
    io::SetError(error, "PRME-G: POI table size mismatch (model has " +
                            std::to_string(num_pois) + " POIs, table has " +
                            std::to_string(pois.size()) + ")");
    return false;
  }
  config_.dim = dim;
  config_.epochs = epochs;
  config_.negatives_per_step = negatives;
  num_users_ = num_users;
  num_pois_ = num_pois;

  std::vector<tensor::Tensor> factors = {tensor::Tensor::Zeros({num_users_, dim}),
                                         tensor::Tensor::Zeros({num_pois_, dim}),
                                         tensor::Tensor::Zeros({num_pois_, dim})};
  if (!nn::LoadParameters(is, factors, error)) return false;
  io::UnwrapMatrix(factors[0], &user_);
  io::UnwrapMatrix(factors[1], &poi_p_);
  io::UnwrapMatrix(factors[2], &poi_s_);

  pois_ = &pois;
  rng_ = util::Rng(config_.seed);
  epoch_objectives_.clear();
  return true;
}

}  // namespace pa::rec
