#include "rec/registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "rec/fpmc_lr.h"
#include "rec/neural_recommender.h"
#include "rec/prme_g.h"

namespace pa::rec {

std::vector<std::string> StandardRecommenderNames() {
  return {"FPMC-LR", "PRME-G", "RNN", "LSTM", "ST-CLSTM"};
}

std::vector<std::string> KnownRecommenderNames() {
  return {"FPMC-LR", "PRME-G", "RNN", "LSTM", "GRU", "ST-RNN", "ST-CLSTM"};
}

std::string KnownRecommenderNamesString() {
  std::string joined;
  for (const std::string& name : KnownRecommenderNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

namespace {

int ScaledEpochs(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

}  // namespace

std::unique_ptr<Recommender> MakeRecommender(const std::string& name,
                                             uint64_t seed,
                                             double epochs_scale) {
  const std::string key = ToUpper(name);
  if (key == "FPMC-LR") {
    FpmcLrConfig config;
    config.seed = seed;
    config.epochs = ScaledEpochs(config.epochs, epochs_scale);
    return std::make_unique<FpmcLr>(config);
  }
  if (key == "PRME-G") {
    PrmeGConfig config;
    config.seed = seed;
    config.epochs = ScaledEpochs(config.epochs, epochs_scale);
    return std::make_unique<PrmeG>(config);
  }
  NeuralRecConfig config;
  config.seed = seed;
  config.epochs = ScaledEpochs(config.epochs, epochs_scale);
  if (key == "RNN") {
    config.cell = NeuralRecConfig::Cell::kRnn;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (key == "LSTM") {
    config.cell = NeuralRecConfig::Cell::kLstm;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (key == "GRU") {
    config.cell = NeuralRecConfig::Cell::kGru;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (key == "ST-RNN") {
    config.cell = NeuralRecConfig::Cell::kStRnn;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (key == "ST-CLSTM") {
    config.cell = NeuralRecConfig::Cell::kStClstm;
    return std::make_unique<NeuralRecommender>(config);
  }
  return nullptr;
}

std::unique_ptr<Recommender> LoadRecommender(const std::string& name,
                                             std::istream& is,
                                             const poi::PoiTable& pois,
                                             std::string* error) {
  std::unique_ptr<Recommender> model = MakeRecommender(name);
  if (!model) {
    if (error) {
      *error = "unknown recommender \"" + name + "\" (known: " +
               KnownRecommenderNamesString() + ")";
    }
    return nullptr;
  }
  if (!model->Load(is, pois, error)) return nullptr;
  return model;
}

}  // namespace pa::rec
