#include "rec/registry.h"

#include <algorithm>
#include <cmath>

#include "rec/fpmc_lr.h"
#include "rec/neural_recommender.h"
#include "rec/prme_g.h"

namespace pa::rec {

std::vector<std::string> StandardRecommenderNames() {
  return {"FPMC-LR", "PRME-G", "RNN", "LSTM", "ST-CLSTM"};
}

namespace {

int ScaledEpochs(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

std::unique_ptr<Recommender> MakeRecommender(const std::string& name,
                                             uint64_t seed,
                                             double epochs_scale) {
  if (name == "FPMC-LR") {
    FpmcLrConfig config;
    config.seed = seed;
    config.epochs = ScaledEpochs(config.epochs, epochs_scale);
    return std::make_unique<FpmcLr>(config);
  }
  if (name == "PRME-G") {
    PrmeGConfig config;
    config.seed = seed;
    config.epochs = ScaledEpochs(config.epochs, epochs_scale);
    return std::make_unique<PrmeG>(config);
  }
  NeuralRecConfig config;
  config.seed = seed;
  config.epochs = ScaledEpochs(config.epochs, epochs_scale);
  if (name == "RNN") {
    config.cell = NeuralRecConfig::Cell::kRnn;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (name == "LSTM") {
    config.cell = NeuralRecConfig::Cell::kLstm;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (name == "GRU") {
    config.cell = NeuralRecConfig::Cell::kGru;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (name == "ST-RNN") {
    config.cell = NeuralRecConfig::Cell::kStRnn;
    return std::make_unique<NeuralRecommender>(config);
  }
  if (name == "ST-CLSTM") {
    config.cell = NeuralRecConfig::Cell::kStClstm;
    return std::make_unique<NeuralRecommender>(config);
  }
  return nullptr;
}

}  // namespace pa::rec
