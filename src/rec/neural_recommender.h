#ifndef PA_REC_NEURAL_RECOMMENDER_H_
#define PA_REC_NEURAL_RECOMMENDER_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/gru_cell.h"
#include "nn/rnn_cell.h"
#include "nn/st_rnn_cell.h"
#include "nn/st_clstm.h"
#include "poi/features.h"
#include "rec/recommender.h"
#include "tensor/kernels/quant.h"
#include "util/rng.h"

namespace pa::rec {

/// Configuration shared by the three recurrent recommenders of §IV-D.
struct NeuralRecConfig {
  enum class Cell {
    kRnn,      // Vanilla recurrent baseline [37].
    kLstm,     // Standard LSTM [12].
    kGru,      // GRU (library extension; the paper's related-work family).
    kStRnn,    // ST-RNN [4]: time/distance-specific transition matrices.
    kStClstm   // Coupled spatio-temporal LSTM [5], the state of the art.
  };
  Cell cell = Cell::kLstm;

  int embedding_dim = 16;
  int hidden_dim = 24;
  float learning_rate = 0.01f;
  int epochs = 8;
  float grad_clip = 5.0f;
  int max_seq_len = 100;  // Training chunk length (truncated BPTT).
  int min_seq_len = 3;
  uint64_t seed = 7;
  poi::FeatureScale feature_scale;
};

/// Next-POI recommender built from a recurrent cell, a POI embedding table
/// and a softmax output layer, trained with next-check-in cross-entropy.
///
/// The vanilla RNN and LSTM variants consume POI embeddings only (the paper
/// treats them as pure sequence baselines); the ST-CLSTM variant
/// additionally consumes the Δt / Δd intervals through its time and
/// distance gates, and its ranking step advances a phantom cell step using
/// the known time of the check-in being predicted, so the prediction is
/// genuinely time-aware.
class NeuralRecommender : public Recommender {
 public:
  explicit NeuralRecommender(NeuralRecConfig config);
  ~NeuralRecommender() override;

  std::string name() const override;
  void Fit(const std::vector<poi::CheckinSequence>& train,
           const poi::PoiTable& pois) override;
  std::unique_ptr<RecSession> NewSession(int32_t user) const override;
  bool Save(std::ostream& os, std::string* error = nullptr) const override;
  bool Load(std::istream& is, const poi::PoiTable& pois,
            std::string* error = nullptr) override;

  /// Int8 serving path: quantizes the output projection (the [hidden,
  /// num_pois] layer that dominates TopK cost) per output column; the
  /// recurrent state update stays float. Sessions then score through a
  /// fused int8 GEMV instead of the tensor-op float path.
  bool QuantizeForServing(std::string* error = nullptr) override;
  bool has_quantized_serving() const override { return quantized_.valid(); }
  bool SaveQuantizedSection(std::ostream& os,
                            std::string* error = nullptr) const override;
  bool LoadQuantizedSection(std::istream& is,
                            std::string* error = nullptr) override;

  /// Mean training loss per epoch (tests assert it decreases).
  const std::vector<float>& epoch_losses() const { return epoch_losses_; }

 private:
  friend class NeuralRecSession;

  /// Advances the recurrent state by one observed check-in.
  nn::LstmState Step(const nn::LstmState& state, int poi, float delta_t,
                     float delta_d) const;
  nn::LstmState InitialState() const;

  /// (Re)creates the embedding, cell and output modules for a POI universe
  /// of the given size — the structure both `Fit` and `Load` need.
  void BuildModules(int num_pois);
  /// Every trainable tensor, in the fixed order Save/Load and Fit use.
  std::vector<tensor::Tensor> CollectParameters() const;

  NeuralRecConfig config_;
  mutable util::Rng rng_;
  const poi::PoiTable* pois_ = nullptr;

  // Built by Fit (needs the POI count).
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::RnnCell> rnn_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::StRnnCell> st_rnn_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::StClstmCell> st_clstm_;
  std::unique_ptr<nn::Linear> output_;

  // Int8 serving tables for the output projection; empty (invalid) until
  // QuantizeForServing or LoadQuantizedSection populates them.
  tensor::kernels::QuantizedLinear quantized_;

  std::vector<float> epoch_losses_;
};

}  // namespace pa::rec

#endif  // PA_REC_NEURAL_RECOMMENDER_H_
