#ifndef PA_REC_RECOMMENDER_H_
#define PA_REC_RECOMMENDER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "poi/dataset.h"

namespace pa::rec {

/// A stateful scoring session for one user.
///
/// Next-POI evaluation walks a user's timeline: the session observes
/// check-ins one by one and, before each test check-in, ranks candidates
/// for what comes next. `next_timestamp` is the (known) time of the
/// check-in being predicted — time-aware models (ST-CLSTM) use the interval
/// it implies; others ignore it.
class RecSession {
 public:
  virtual ~RecSession() = default;

  /// Advances the session state past an observed check-in.
  virtual void Observe(const poi::Checkin& checkin) = 0;

  /// Top-k POI ids for the next check-in, best first.
  virtual std::vector<int32_t> TopK(int k, int64_t next_timestamp) const = 0;
};

/// Interface all five next-POI recommenders implement (paper §IV-D):
/// FPMC-LR, PRME-G, RNN, LSTM and ST-CLSTM.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Trains on per-user training sequences (possibly augmented). `pois`
  /// must outlive the recommender.
  virtual void Fit(const std::vector<poi::CheckinSequence>& train,
                   const poi::PoiTable& pois) = 0;

  /// Opens a fresh scoring session for `user`.
  virtual std::unique_ptr<RecSession> NewSession(int32_t user) const = 0;

  /// Serializes the *fitted* model to a versioned binary stream so it can
  /// be published to a `serve::ModelStore` and reloaded in another process.
  /// The payload does not include the POI table; `Load` takes the same
  /// table the model was fitted on. The round trip is bit-exact: a loaded
  /// model produces identical `TopK` lists to the one saved.
  ///
  /// Default: unsupported (returns false). All five standard methods plus
  /// the GRU / ST-RNN extensions override both hooks.
  virtual bool Save(std::ostream& os, std::string* error = nullptr) const {
    (void)os;
    if (error) *error = name() + " does not support Save()";
    return false;
  }

  /// Restores a model previously written by `Save`. `pois` must be the POI
  /// universe the model was fitted on (same size and ids) and must outlive
  /// the recommender. On failure the model is unusable.
  virtual bool Load(std::istream& is, const poi::PoiTable& pois,
                    std::string* error = nullptr) {
    (void)is;
    (void)pois;
    if (error) *error = name() + " does not support Load()";
    return false;
  }

  /// Builds the int8 serving tables from the fitted float parameters (an
  /// artifact-publish-time conversion — the float model is untouched and
  /// remains the bit-exact reference). After this returns true, sessions
  /// may score through the quantized path and `SaveQuantizedSection` has
  /// something to write. Default: unsupported.
  virtual bool QuantizeForServing(std::string* error = nullptr) {
    if (error) *error = name() + " does not support quantized serving";
    return false;
  }

  /// Whether int8 serving tables are present (built or loaded).
  virtual bool has_quantized_serving() const { return false; }

  /// (De)serializes the quantized tables for the artifact container's
  /// optional quantized section (format v2). These ride *outside* the
  /// `Save`/`Load` payload so v1 artifacts and float-only payload readers
  /// are unaffected.
  virtual bool SaveQuantizedSection(std::ostream& os,
                                    std::string* error = nullptr) const {
    (void)os;
    if (error) *error = name() + " has no quantized section";
    return false;
  }
  virtual bool LoadQuantizedSection(std::istream& is,
                                    std::string* error = nullptr) {
    (void)is;
    if (error) *error = name() + " has no quantized section";
    return false;
  }
};

}  // namespace pa::rec

#endif  // PA_REC_RECOMMENDER_H_
