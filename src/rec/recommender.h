#ifndef PA_REC_RECOMMENDER_H_
#define PA_REC_RECOMMENDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "poi/dataset.h"

namespace pa::rec {

/// A stateful scoring session for one user.
///
/// Next-POI evaluation walks a user's timeline: the session observes
/// check-ins one by one and, before each test check-in, ranks candidates
/// for what comes next. `next_timestamp` is the (known) time of the
/// check-in being predicted — time-aware models (ST-CLSTM) use the interval
/// it implies; others ignore it.
class RecSession {
 public:
  virtual ~RecSession() = default;

  /// Advances the session state past an observed check-in.
  virtual void Observe(const poi::Checkin& checkin) = 0;

  /// Top-k POI ids for the next check-in, best first.
  virtual std::vector<int32_t> TopK(int k, int64_t next_timestamp) const = 0;
};

/// Interface all five next-POI recommenders implement (paper §IV-D):
/// FPMC-LR, PRME-G, RNN, LSTM and ST-CLSTM.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Trains on per-user training sequences (possibly augmented). `pois`
  /// must outlive the recommender.
  virtual void Fit(const std::vector<poi::CheckinSequence>& train,
                   const poi::PoiTable& pois) = 0;

  /// Opens a fresh scoring session for `user`.
  virtual std::unique_ptr<RecSession> NewSession(int32_t user) const = 0;
};

}  // namespace pa::rec

#endif  // PA_REC_RECOMMENDER_H_
