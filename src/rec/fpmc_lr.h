#ifndef PA_REC_FPMC_LR_H_
#define PA_REC_FPMC_LR_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "rec/recommender.h"
#include "util/rng.h"

namespace pa::rec {

/// Configuration for FPMC-LR.
struct FpmcLrConfig {
  int dim = 16;            // Latent factor dimensionality.
  float learning_rate = 0.05f;
  float reg = 0.01f;       // L2 regularization on touched factors.
  int epochs = 8;
  int negatives_per_step = 4;  // BPR negative samples per transition.
  double region_radius_km = 15.0;  // The "localized region" (LR) constraint.
  uint64_t seed = 11;
};

/// FPMC-LR (Cheng et al., 2013): Factorized Personalized Markov Chains with
/// Localized Regions.
///
/// The transition tensor P(next | user, prev) is factorized as
///
///     score(u, prev, l) = <V_u^{UL}, V_l^{LU}> + <V_l^{LI}, V_prev^{IL}>
///
/// trained with BPR (Rendle et al., 2009) by stochastic gradient ascent on
/// sigmoid(score(pos) - score(neg)). The LR part restricts both negative
/// sampling and candidate ranking to POIs within `region_radius_km` of the
/// previous check-in — users rarely jump outside a localized region — which
/// is also what makes the method sensitive to missing check-ins: a missing
/// intermediate check-in makes the observed "transition" span two regions.
class FpmcLr : public Recommender {
 public:
  explicit FpmcLr(FpmcLrConfig config = {});

  std::string name() const override { return "FPMC-LR"; }
  void Fit(const std::vector<poi::CheckinSequence>& train,
           const poi::PoiTable& pois) override;
  std::unique_ptr<RecSession> NewSession(int32_t user) const override;
  bool Save(std::ostream& os, std::string* error = nullptr) const override;
  bool Load(std::istream& is, const poi::PoiTable& pois,
            std::string* error = nullptr) override;

  /// score(u, prev, l); exposed for tests.
  float Score(int32_t user, int32_t prev, int32_t poi) const;

  /// Mean BPR objective per epoch (ascending when learning works).
  const std::vector<float>& epoch_objectives() const {
    return epoch_objectives_;
  }

 private:
  friend class FpmcLrSession;

  /// Candidate POIs in the localized region of `prev`. Cached under a mutex
  /// so concurrent sessions (parallel evaluation) may query it; the returned
  /// reference stays valid because unordered_map never moves mapped values
  /// on insert.
  const std::vector<int32_t>& Region(int32_t prev) const;

  float* Row(std::vector<float>& m, int32_t i) const {
    return m.data() + static_cast<size_t>(i) * config_.dim;
  }
  const float* Row(const std::vector<float>& m, int32_t i) const {
    return m.data() + static_cast<size_t>(i) * config_.dim;
  }

  FpmcLrConfig config_;
  util::Rng rng_;
  const poi::PoiTable* pois_ = nullptr;
  int num_users_ = 0;
  int num_pois_ = 0;

  // Factor matrices, row-major [count, dim].
  std::vector<float> v_ul_;  // User -> next-POI space.
  std::vector<float> v_lu_;  // Next POI -> user space.
  std::vector<float> v_li_;  // Next POI -> prev-POI space.
  std::vector<float> v_il_;  // Prev POI -> next-POI space.

  std::vector<int32_t> popular_;  // Popularity-ranked POIs (fallback).
  mutable std::mutex region_mu_;  // Guards region_cache_.
  mutable std::unordered_map<int32_t, std::vector<int32_t>> region_cache_;
  std::vector<float> epoch_objectives_;
};

}  // namespace pa::rec

#endif  // PA_REC_FPMC_LR_H_
