#include "rec/pa_seq2seq_recommender.h"

#include "tensor/tensor.h"

namespace pa::rec {

PaSeq2SeqRecommender::PaSeq2SeqRecommender(augment::PaSeq2SeqConfig config)
    : config_(config) {}

void PaSeq2SeqRecommender::Fit(const std::vector<poi::CheckinSequence>& train,
                               const poi::PoiTable& pois) {
  model_ = std::make_unique<augment::PaSeq2Seq>(pois, config_);
  model_->Fit(train);
}

namespace {

class Session : public RecSession {
 public:
  explicit Session(const augment::PaSeq2Seq* model) : model_(model) {}

  void Observe(const poi::Checkin& c) override { history_.push_back(c); }

  std::vector<int32_t> TopK(int k, int64_t next_timestamp) const override {
    if (model_ == nullptr || history_.empty()) return {};
    // RankNext scopes itself too; this outer scope exercises (and documents)
    // that nesting is a supported no-op on the serving path.
    const tensor::InferenceModeScope inference;
    return model_->RankNext(history_, next_timestamp, k);
  }

 private:
  const augment::PaSeq2Seq* model_;
  poi::CheckinSequence history_;
};

}  // namespace

std::unique_ptr<RecSession> PaSeq2SeqRecommender::NewSession(int32_t) const {
  return std::make_unique<Session>(model_.get());
}

}  // namespace pa::rec
