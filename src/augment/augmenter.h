#ifndef PA_AUGMENT_AUGMENTER_H_
#define PA_AUGMENT_AUGMENTER_H_

#include <string>
#include <vector>

#include "poi/dataset.h"
#include "poi/slot_grid.h"

namespace pa::augment {

/// An imputation problem: one user's observed check-ins plus the
/// evenly-spaced timeline marking which slots are missing (paper Fig. 1).
struct MaskedSequence {
  int32_t user = 0;
  poi::CheckinSequence observed;
  std::vector<poi::Slot> timeline;
};

/// Builds the masked sequence for an observed check-in sequence using the
/// even-spacing interval (3 hours in the paper's illustration).
MaskedSequence MakeMaskedSequence(const poi::CheckinSequence& observed,
                                  int64_t interval_seconds,
                                  int max_missing_per_gap = 0);

/// Interface for check-in data augmentation methods.
///
/// Implementations: `LinearInterpolationAugmenter` (the paper's NN / POP
/// baselines, §IV-C) and `PaSeq2Seq` (the contribution). Learned methods
/// are trained with `Fit` before use; the interpolation baselines ignore it.
class Augmenter {
 public:
  virtual ~Augmenter() = default;

  virtual std::string name() const = 0;

  /// Trains the augmenter on the observed training sequences.
  virtual void Fit(const std::vector<poi::CheckinSequence>& train) {}

  /// Predicts a POI id for every missing slot of `masked.timeline`, in
  /// timeline order. The returned vector has exactly
  /// `CountMissing(masked.timeline)` entries.
  virtual std::vector<int32_t> Impute(const MaskedSequence& masked) const = 0;
};

/// Applies `augmenter` to one observed sequence: returns the sequence with
/// every missing slot filled by an imputed check-in (`imputed = true`).
poi::CheckinSequence AugmentSequence(const Augmenter& augmenter,
                                     const poi::CheckinSequence& observed,
                                     int32_t user, int64_t interval_seconds,
                                     int max_missing_per_gap = 0);

/// Applies `augmenter` to every training sequence — the operation that
/// produces the "augmented training set" columns of Tables I and II.
std::vector<poi::CheckinSequence> AugmentSequences(
    const Augmenter& augmenter,
    const std::vector<poi::CheckinSequence>& train, int64_t interval_seconds,
    int max_missing_per_gap = 0);

}  // namespace pa::augment

#endif  // PA_AUGMENT_AUGMENTER_H_
