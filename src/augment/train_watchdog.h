#ifndef PA_AUGMENT_TRAIN_WATCHDOG_H_
#define PA_AUGMENT_TRAIN_WATCHDOG_H_

#include <deque>
#include <string>

namespace pa::augment {

struct TrainWatchdogConfig {
  /// Master switch: off ⇒ every Observe* is a no-op returning true, nothing
  /// is published to the health registry. Turn off for experiments that
  /// deliberately explore divergence.
  bool enabled = true;

  /// When a check fails, Observe* returns false and the training loop is
  /// expected to abort the epoch. Set false to keep training (health still
  /// flips FAILED — the run is observably sick but not interrupted).
  bool abort_on_failure = true;

  /// Loss-divergence detector: an EWMA of per-epoch mean losses is compared
  /// to the *minimum* over the last `window` epochs of the same stage. A
  /// windowed minimum (not a stage-global one) tolerates the legitimate
  /// slow loss rise of the stage-3 mask-ratio ramp while still catching a
  /// runaway: the first epoch whose EWMA exceeds `divergence_factor` times
  /// the window minimum marks the run DEGRADED; `patience` *consecutive*
  /// such epochs mark it FAILED.
  double ewma_alpha = 0.3;
  int window = 8;
  double divergence_factor = 4.0;
  int patience = 3;

  /// HealthRegistry component name.
  std::string component = "train.watchdog";
};

/// Training-health watchdog for the PA-Seq2Seq three-stage protocol.
///
/// Two probes, both called from the training loop:
///
///  * `ObserveStep(stage, loss, grad_norm)` — per optimizer step, *before*
///    the step is applied: a non-finite loss or gradient norm flips FAILED
///    immediately and (by default) vetoes the step, so one poisoned batch
///    cannot contaminate the parameters.
///  * `ObserveEpoch(stage, mean_loss)` — per epoch: the EWMA-vs-window-min
///    divergence detector described on the config.
///
/// State resets at stage boundaries (the three stages train different
/// objectives at different loss scales). Every transition is published to
/// `obs::HealthRegistry::Global()` under `config.component` with the
/// diagnostic as the detail, so `GET /healthz` on a serving process — or a
/// PA_OBS_TIMESERIES scrape — shows a sick training run as it happens.
///
/// Not thread-safe: call from the training thread only (the data-parallel
/// trainer already funnels optimizer steps through one thread).
class TrainWatchdog {
 public:
  explicit TrainWatchdog(TrainWatchdogConfig config = {});
  ~TrainWatchdog();
  TrainWatchdog(const TrainWatchdog&) = delete;
  TrainWatchdog& operator=(const TrainWatchdog&) = delete;

  /// Returns false when training must abort (FAILED and abort_on_failure).
  bool ObserveStep(int stage, float loss, float grad_norm);
  bool ObserveEpoch(int stage, float mean_loss);

  bool failed() const { return failed_; }
  /// True once a check has both failed and requested an abort.
  bool aborted() const { return aborted_; }
  /// Human-readable reason for the current non-OK state; empty when OK.
  const std::string& diagnostic() const { return diagnostic_; }

 private:
  void ResetStage(int stage);
  /// Publishes the current status + diagnostic to the health registry.
  void Publish();
  bool Fail(const std::string& diagnostic);

  TrainWatchdogConfig config_;
  int stage_ = -1;
  double ewma_ = 0.0;
  bool have_ewma_ = false;
  std::deque<double> window_;  // Recent per-epoch mean losses, this stage.
  int strikes_ = 0;            // Consecutive diverging epochs.
  bool degraded_ = false;
  bool failed_ = false;
  bool aborted_ = false;
  std::string diagnostic_;
};

}  // namespace pa::augment

#endif  // PA_AUGMENT_TRAIN_WATCHDOG_H_
