#include "augment/train_watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/health.h"

namespace pa::augment {

TrainWatchdog::TrainWatchdog(TrainWatchdogConfig config)
    : config_(std::move(config)) {
  if (config_.window < 1) config_.window = 1;
  if (config_.patience < 1) config_.patience = 1;
  if (config_.enabled) Publish();  // Start visible as OK.
}

TrainWatchdog::~TrainWatchdog() {
  // A healthy watchdog leaves no residue; a FAILED one stays registered so
  // /healthz keeps reporting the dead training run until something replaces
  // the component.
  if (config_.enabled && !failed_) {
    obs::HealthRegistry::Global().Remove(config_.component);
  }
}

void TrainWatchdog::ResetStage(int stage) {
  stage_ = stage;
  ewma_ = 0.0;
  have_ewma_ = false;
  window_.clear();
  strikes_ = 0;
}

void TrainWatchdog::Publish() {
  const obs::HealthStatus status =
      failed_ ? obs::HealthStatus::kFailed
              : degraded_ ? obs::HealthStatus::kDegraded
                          : obs::HealthStatus::kOk;
  obs::HealthRegistry::Global().Set(config_.component, status, diagnostic_);
}

bool TrainWatchdog::Fail(const std::string& diagnostic) {
  failed_ = true;
  diagnostic_ = diagnostic;
  Publish();
  std::fprintf(stderr, "[train-watchdog] FAILED: %s%s\n", diagnostic.c_str(),
               config_.abort_on_failure ? " — aborting training" : "");
  if (config_.abort_on_failure) {
    aborted_ = true;
    return false;
  }
  return true;
}

bool TrainWatchdog::ObserveStep(int stage, float loss, float grad_norm) {
  if (!config_.enabled || aborted_) return !aborted_;
  if (stage != stage_) ResetStage(stage);
  if (!std::isfinite(loss)) {
    return Fail("non-finite loss at stage " + std::to_string(stage) +
                " (loss=" + std::to_string(loss) + ")");
  }
  if (!std::isfinite(grad_norm)) {
    return Fail("non-finite gradient norm at stage " + std::to_string(stage) +
                " (grad_norm=" + std::to_string(grad_norm) + ")");
  }
  return true;
}

bool TrainWatchdog::ObserveEpoch(int stage, float mean_loss) {
  if (!config_.enabled || aborted_) return !aborted_;
  if (stage != stage_) ResetStage(stage);
  if (!std::isfinite(mean_loss)) {
    return Fail("non-finite epoch loss at stage " + std::to_string(stage));
  }

  ewma_ = have_ewma_
              ? config_.ewma_alpha * mean_loss +
                    (1.0 - config_.ewma_alpha) * ewma_
              : mean_loss;
  have_ewma_ = true;

  // Divergence needs a baseline: with no history yet this epoch only seeds
  // the window.
  if (!window_.empty()) {
    const double baseline = *std::min_element(window_.begin(), window_.end());
    // The small epsilon keeps near-zero baselines (a converged stage) from
    // flagging noise.
    if (ewma_ > config_.divergence_factor * baseline + 1e-6) {
      ++strikes_;
      diagnostic_ = "loss diverging at stage " + std::to_string(stage) +
                    ": ewma " + std::to_string(ewma_) + " vs window min " +
                    std::to_string(baseline) + " (strike " +
                    std::to_string(strikes_) + "/" +
                    std::to_string(config_.patience) + ")";
      if (strikes_ >= config_.patience) return Fail(diagnostic_);
      degraded_ = true;
      Publish();
    } else {
      strikes_ = 0;
      if (degraded_ && !failed_) {
        degraded_ = false;
        diagnostic_.clear();
        Publish();
      }
    }
  }

  window_.push_back(mean_loss);
  while (static_cast<int>(window_.size()) > config_.window) {
    window_.pop_front();
  }
  return true;
}

}  // namespace pa::augment
