#include "augment/linear_interpolation.h"

#include "geo/latlng.h"

namespace pa::augment {

LinearInterpolationAugmenter::LinearInterpolationAugmenter(
    const poi::PoiTable& pois, Mode mode, double pop_radius_km)
    : pois_(pois), mode_(mode), pop_radius_km_(pop_radius_km) {}

std::string LinearInterpolationAugmenter::name() const {
  return mode_ == Mode::kNearestNeighbor ? "LinearInterpolation(NN)"
                                         : "LinearInterpolation(POP)";
}

std::vector<int32_t> LinearInterpolationAugmenter::Impute(
    const MaskedSequence& masked) const {
  std::vector<int32_t> out;
  const auto& timeline = masked.timeline;
  const auto& observed = masked.observed;

  // Index of the previous observed slot for each position; next observed
  // found by scanning forward.
  int prev_obs = -1;
  for (size_t s = 0; s < timeline.size(); ++s) {
    if (!timeline[s].missing()) {
      prev_obs = static_cast<int>(s);
      continue;
    }
    int next_obs = -1;
    for (size_t j = s + 1; j < timeline.size(); ++j) {
      if (!timeline[j].missing()) {
        next_obs = static_cast<int>(j);
        break;
      }
    }
    // A well-formed timeline starts and ends with observed slots, so both
    // brackets exist; be defensive anyway.
    if (prev_obs < 0 || next_obs < 0) {
      out.push_back(observed.empty() ? 0 : observed.front().poi);
      continue;
    }

    const poi::Checkin& a =
        observed[static_cast<size_t>(timeline[prev_obs].observed_index)];
    const poi::Checkin& b =
        observed[static_cast<size_t>(timeline[next_obs].observed_index)];
    const int64_t t0 = timeline[prev_obs].timestamp;
    const int64_t t1 = timeline[next_obs].timestamp;
    const double f =
        t1 > t0 ? static_cast<double>(timeline[s].timestamp - t0) /
                      static_cast<double>(t1 - t0)
                : 0.5;
    const geo::LatLng p = geo::InterpolateGreatCircle(
        pois_.coord(a.poi), pois_.coord(b.poi), f);

    int32_t poi = mode_ == Mode::kNearestNeighbor
                      ? pois_.NearestPoi(p)
                      : pois_.MostPopularWithin(p, pop_radius_km_);
    if (poi < 0) poi = a.poi;
    out.push_back(poi);
  }
  return out;
}

}  // namespace pa::augment
