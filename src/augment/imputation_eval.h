#ifndef PA_AUGMENT_IMPUTATION_EVAL_H_
#define PA_AUGMENT_IMPUTATION_EVAL_H_

#include <string>

#include "augment/augmenter.h"
#include "poi/synthetic.h"

namespace pa::poi {
struct SyntheticLbsn;
}  // namespace pa::poi

namespace pa::augment {

/// Imputation quality of an augmenter against synthetic ground truth —
/// the direct "imputation accuracy" comparison of the paper's contribution
/// claim (PA-Seq2Seq beats linear interpolation in imputation accuracy),
/// measurable here because the generator keeps the dropped check-ins.
struct ImputationMetrics {
  int num_tasks = 0;
  /// Fraction of hidden check-ins recovered exactly.
  double accuracy = 0.0;
  /// Mean / median haversine distance (km) between the imputed POI and the
  /// truly visited one. Captures "geographically close but wrong POI".
  double mean_error_km = 0.0;
  double median_error_km = 0.0;

  std::string ToString() const;
};

/// Builds the masked sequence whose timeline is the user's *true* visit
/// clock: observed slots where the visit was checked in, missing slots
/// where it was dropped.
MaskedSequence MakeGroundTruthMasked(const poi::SyntheticLbsn& lbsn,
                                     int32_t user);

/// Evaluates `augmenter` on every hidden visit of every user.
ImputationMetrics EvaluateImputation(const Augmenter& augmenter,
                                     const poi::SyntheticLbsn& lbsn);

}  // namespace pa::augment

#endif  // PA_AUGMENT_IMPUTATION_EVAL_H_
