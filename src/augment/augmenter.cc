#include "augment/augmenter.h"

namespace pa::augment {

MaskedSequence MakeMaskedSequence(const poi::CheckinSequence& observed,
                                  int64_t interval_seconds,
                                  int max_missing_per_gap) {
  MaskedSequence masked;
  masked.user = observed.empty() ? 0 : observed[0].user;
  masked.observed = observed;
  masked.timeline =
      poi::BuildSlotTimeline(observed, interval_seconds, max_missing_per_gap);
  return masked;
}

poi::CheckinSequence AugmentSequence(const Augmenter& augmenter,
                                     const poi::CheckinSequence& observed,
                                     int32_t user, int64_t interval_seconds,
                                     int max_missing_per_gap) {
  MaskedSequence masked =
      MakeMaskedSequence(observed, interval_seconds, max_missing_per_gap);
  if (poi::CountMissing(masked.timeline) == 0) return observed;

  const std::vector<int32_t> imputed = augmenter.Impute(masked);
  poi::CheckinSequence out;
  out.reserve(masked.timeline.size());
  size_t next_imputed = 0;
  for (const poi::Slot& slot : masked.timeline) {
    if (slot.missing()) {
      poi::Checkin c;
      c.user = user;
      c.poi = imputed[next_imputed++];
      c.timestamp = slot.timestamp;
      c.imputed = true;
      out.push_back(c);
    } else {
      out.push_back(observed[static_cast<size_t>(slot.observed_index)]);
    }
  }
  return out;
}

std::vector<poi::CheckinSequence> AugmentSequences(
    const Augmenter& augmenter,
    const std::vector<poi::CheckinSequence>& train, int64_t interval_seconds,
    int max_missing_per_gap) {
  std::vector<poi::CheckinSequence> out;
  out.reserve(train.size());
  for (size_t u = 0; u < train.size(); ++u) {
    out.push_back(AugmentSequence(augmenter, train[u],
                                  static_cast<int32_t>(u), interval_seconds,
                                  max_missing_per_gap));
  }
  return out;
}

}  // namespace pa::augment
