#include "augment/pa_seq2seq.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <unordered_map>
#include <cmath>
#include <cstdio>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace pa::augment {

namespace {

using tensor::Tensor;

// Training instruments, resolved once per process against the immortal
// registry. Loss gauges carry the latest epoch's mean loss per stage, so a
// snapshot taken mid-Fit (or embedded in a bench JSON) shows where the
// curves currently sit.
struct TrainInstruments {
  obs::Counter& epochs;
  obs::Histogram& epoch_ms;
  obs::Gauge& stage1_loss;
  obs::Gauge& stage2_loss;
  obs::Gauge& stage3_loss;
  obs::Gauge& stage1_grad_norm;
  obs::Gauge& stage2_grad_norm;
  obs::Gauge& stage3_grad_norm;

  static TrainInstruments& Get() {
    auto& registry = obs::MetricRegistry::Global();
    static TrainInstruments instruments{
        registry.GetCounter("train.epochs"),
        registry.GetHistogram("train.epoch_ms"),
        registry.GetGauge("train.stage1.loss"),
        registry.GetGauge("train.stage2.loss"),
        registry.GetGauge("train.stage3.loss"),
        registry.GetGauge("train.stage1.grad_norm"),
        registry.GetGauge("train.stage2.grad_norm"),
        registry.GetGauge("train.stage3.grad_norm")};
    return instruments;
  }

  /// Latest pre-clip gradient norm for `stage` (1-based).
  obs::Gauge& GradNormGauge(int stage) {
    switch (stage) {
      case 1:
        return stage1_grad_norm;
      case 2:
        return stage2_grad_norm;
      default:
        return stage3_grad_norm;
    }
  }
};

// Argmax over a [1, n] logits row, optionally restricted to `candidates`.
int ArgmaxRow(const Tensor& logits, const std::vector<int32_t>& candidates) {
  if (candidates.empty()) {
    int best = 0;
    float best_v = logits.at(0, 0);
    for (int j = 1; j < logits.cols(); ++j) {
      if (logits.at(0, j) > best_v) {
        best_v = logits.at(0, j);
        best = j;
      }
    }
    return best;
  }
  int best = candidates[0];
  float best_v = logits.at(0, best);
  for (int32_t c : candidates) {
    if (logits.at(0, c) > best_v) {
      best_v = logits.at(0, c);
      best = c;
    }
  }
  return best;
}

// Top-k over a [1, n] logits row, optionally restricted to `candidates`;
// pads from the unrestricted ranking when the candidate set is short.
std::vector<int32_t> TopKRow(const Tensor& logits,
                             const std::vector<int32_t>& candidates, int k) {
  std::vector<int32_t> pool = candidates;
  if (pool.empty()) {
    pool.resize(static_cast<size_t>(logits.cols()));
    std::iota(pool.begin(), pool.end(), 0);
  }
  auto by_logit = [&](int32_t a, int32_t b) {
    return logits.at(0, a) > logits.at(0, b);
  };
  const int kk = std::min<int>(k, static_cast<int>(pool.size()));
  std::partial_sort(pool.begin(), pool.begin() + kk, pool.end(), by_logit);
  pool.resize(static_cast<size_t>(kk));
  if (static_cast<int>(pool.size()) < k && !candidates.empty()) {
    // Pad with the best unrestricted POIs not already present.
    std::vector<int32_t> rest(static_cast<size_t>(logits.cols()));
    std::iota(rest.begin(), rest.end(), 0);
    std::sort(rest.begin(), rest.end(), by_logit);
    for (int32_t id : rest) {
      if (static_cast<int>(pool.size()) >= k) break;
      if (std::find(pool.begin(), pool.end(), id) == pool.end()) {
        pool.push_back(id);
      }
    }
  }
  return pool;
}

}  // namespace

PaSeq2Seq::PaSeq2Seq(const poi::PoiTable& pois, PaSeq2SeqConfig config)
    : pois_(pois),
      config_(config),
      rng_(config.seed),
      embedding_(pois.size() + 1, config.embedding_dim, rng_),
      encoder_(config.embedding_dim + 2, config.hidden_dim,
               config.use_residual, rng_),
      dec_bottom_(config.embedding_dim + 2, 2 * config.hidden_dim, rng_),
      dec_top_(2 * config.hidden_dim, 2 * config.hidden_dim, rng_),
      dec_input_projection_(config.embedding_dim + 2, 2 * config.hidden_dim,
                            rng_),
      attention_(2 * config.hidden_dim, 2 * config.hidden_dim,
                 config.attention_window, rng_),
      output_(2 * config.hidden_dim, pois.size(), rng_) {}

std::vector<tensor::Tensor> PaSeq2Seq::Parameters() const {
  std::vector<Tensor> params = nn::ConcatParameters(
      {&embedding_, &encoder_, &dec_bottom_, &dec_top_,
       &dec_input_projection_, &attention_, &output_});
  return params;
}

int64_t PaSeq2Seq::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& p : Parameters()) n += p.numel();
  return n;
}

tensor::Tensor PaSeq2Seq::Decode(
    const WorkItem& item, bool training, std::vector<int>* predictions,
    std::vector<std::vector<int32_t>>* rankings, util::Rng* rng) const {
  util::Rng& zrng = rng != nullptr ? *rng : rng_;
  const int n = static_cast<int>(item.enc_tokens.size());
  if (n < 2) return {};

  std::vector<char> is_target(n, 0);
  std::vector<int> target_slot(n, -1);
  for (size_t i = 0; i < item.target_positions.size(); ++i) {
    is_target[item.target_positions[i]] = 1;
    target_slot[item.target_positions[i]] = static_cast<int>(i);
  }
  static const std::vector<int32_t> kAllPois;

  // --- Encoder ---
  std::vector<Tensor> xs(n);
  for (int t = 0; t < n; ++t) {
    Tensor emb = embedding_.Forward({item.enc_tokens[t]});
    Tensor feat = Tensor::FromData(
        {1, 2}, {item.feats[t].delta_t, item.feats[t].delta_d});
    xs[t] = tensor::ConcatCols({emb, feat});
  }
  nn::LstmState enc_final;
  std::vector<Tensor> enc_states = encoder_.Forward(xs, &enc_final);

  // --- Decoder ---
  const nn::ZoneoutConfig zoneout{config_.zoneout_prob, config_.zoneout_prob};
  nn::LstmState s1{enc_final.h, enc_final.c};
  nn::LstmState s2{enc_final.h, enc_final.c};

  std::vector<Tensor> loss_rows;
  std::vector<int> loss_targets;
  std::vector<int> predicted(n, -1);

  for (int t = 1; t < n; ++t) {
    // Previous check-in: observed, teacher-forced truth (training), or the
    // model's own prediction (inference; paper Fig. 5's red feedback arrow).
    int prev = item.enc_tokens[t - 1];
    if (training) {
      prev = item.truth[t - 1];
    } else if (prev == missing_token() && predicted[t - 1] >= 0) {
      prev = predicted[t - 1];
    }

    Tensor emb = embedding_.Forward({prev});
    Tensor feat = Tensor::FromData(
        {1, 2}, {item.feats[t].delta_t, item.feats[t].delta_d});
    Tensor x = tensor::ConcatCols({emb, feat});

    s1 = dec_bottom_.ForwardZoneout(x, s1, zoneout, training, zrng);
    Tensor top_in = s1.h;
    if (config_.use_residual) {
      // Both operands moved: the dying projection result is overwritten
      // in place under inference (top_in still shares s1.h, so it takes
      // the allocating path automatically).
      top_in = tensor::Add(std::move(top_in), dec_input_projection_.Forward(x));
    }
    s2 = dec_top_.ForwardZoneout(top_in, s2, zoneout, training, zrng);

    if (!is_target[t]) continue;

    Tensor hidden = s2.h;
    if (config_.use_attention) {
      hidden = attention_.Forward(s2.h, enc_states, /*center=*/t)
                   .attentional_hidden;
    }
    Tensor logits = output_.Forward(hidden);
    if (training) {
      loss_rows.push_back(logits);
      loss_targets.push_back(item.truth[t]);
    } else {
      const int slot = target_slot[t];
      const std::vector<int32_t>& cands =
          (slot >= 0 && slot < static_cast<int>(item.candidates.size()))
              ? item.candidates[static_cast<size_t>(slot)]
              : kAllPois;
      predicted[t] = ArgmaxRow(logits, cands);
      if (rankings != nullptr) {
        rankings->push_back(TopKRow(logits, cands, item.top_k));
      }
    }
  }

  if (!training) {
    if (predictions != nullptr) {
      predictions->clear();
      for (int t : item.target_positions) predictions->push_back(predicted[t]);
    }
    return {};
  }
  if (loss_rows.empty()) return {};
  return tensor::CrossEntropyLoss(tensor::ConcatRows(loss_rows), loss_targets);
}

tensor::Tensor PaSeq2Seq::DecoderLmLoss(const WorkItem& item,
                                        util::Rng* rng) const {
  util::Rng& zrng = rng != nullptr ? *rng : rng_;
  const int n = static_cast<int>(item.enc_tokens.size());
  if (n < 2) return {};
  const nn::ZoneoutConfig zoneout{config_.zoneout_prob, config_.zoneout_prob};
  nn::LstmState s1 = dec_bottom_.InitialState(1);
  nn::LstmState s2 = dec_top_.InitialState(1);

  std::vector<Tensor> loss_rows;
  std::vector<int> loss_targets;
  for (int t = 1; t < n; ++t) {
    Tensor emb = embedding_.Forward({item.truth[t - 1]});
    Tensor feat = Tensor::FromData(
        {1, 2}, {item.feats[t].delta_t, item.feats[t].delta_d});
    Tensor x = tensor::ConcatCols({emb, feat});
    s1 = dec_bottom_.ForwardZoneout(x, s1, zoneout, /*training=*/true, zrng);
    Tensor top_in = s1.h;
    if (config_.use_residual) {
      // Both operands moved: the dying projection result is overwritten
      // in place under inference (top_in still shares s1.h, so it takes
      // the allocating path automatically).
      top_in = tensor::Add(std::move(top_in), dec_input_projection_.Forward(x));
    }
    s2 = dec_top_.ForwardZoneout(top_in, s2, zoneout, /*training=*/true, zrng);
    loss_rows.push_back(output_.Forward(s2.h));
    loss_targets.push_back(item.truth[t]);
  }
  return tensor::CrossEntropyLoss(tensor::ConcatRows(loss_rows), loss_targets);
}

tensor::Tensor PaSeq2Seq::EncoderLmLoss(const WorkItem& item) const {
  const int n = static_cast<int>(item.enc_tokens.size());
  if (n < 2) return {};
  std::vector<Tensor> xs(n);
  for (int t = 0; t < n; ++t) {
    Tensor emb = embedding_.Forward({item.enc_tokens[t]});
    Tensor feat = Tensor::FromData(
        {1, 2}, {item.feats[t].delta_t, item.feats[t].delta_d});
    xs[t] = tensor::ConcatCols({emb, feat});
  }
  std::vector<Tensor> enc_states = encoder_.Forward(xs);
  std::vector<Tensor> loss_rows;
  std::vector<int> loss_targets;
  for (int t = 0; t + 1 < n; ++t) {
    loss_rows.push_back(output_.Forward(enc_states[t]));
    loss_targets.push_back(item.truth[t + 1]);
  }
  return tensor::CrossEntropyLoss(tensor::ConcatRows(loss_rows), loss_targets);
}

std::vector<PaSeq2Seq::WorkItem> PaSeq2Seq::MakeTrainingItems(
    const std::vector<poi::CheckinSequence>& train) const {
  std::vector<WorkItem> items;
  for (const auto& seq : train) {
    const int n = static_cast<int>(seq.size());
    for (int begin = 0; begin < n; begin += config_.max_seq_len) {
      const int len = std::min(config_.max_seq_len, n - begin);
      if (len < config_.min_seq_len) break;
      poi::CheckinSequence chunk(seq.begin() + begin,
                                 seq.begin() + begin + len);
      WorkItem item;
      item.enc_tokens.reserve(static_cast<size_t>(len));
      for (const poi::Checkin& c : chunk) item.enc_tokens.push_back(c.poi);
      item.truth = item.enc_tokens;
      item.feats = poi::ComputeSequenceFeatures(chunk, pois_,
                                                config_.feature_scale);
      for (int t = 1; t < len; ++t) item.target_positions.push_back(t);
      items.push_back(std::move(item));
    }
  }
  return items;
}

PaSeq2Seq::WorkItem PaSeq2Seq::MaskItem(const WorkItem& item, float ratio,
                                        util::Rng* rng) const {
  util::Rng& mrng = rng != nullptr ? *rng : rng_;
  WorkItem masked = item;
  masked.target_positions.clear();
  const int n = static_cast<int>(item.enc_tokens.size());
  for (int t = 1; t < n; ++t) {
    if (mrng.Uniform() < ratio) {
      masked.enc_tokens[t] = missing_token();
      masked.target_positions.push_back(t);
      // Distances touching an unobserved check-in are unknowable at
      // inference; mirror that during training.
      masked.feats[t].delta_d = 0.0f;
      if (t + 1 < n) masked.feats[t + 1].delta_d = 0.0f;
    }
  }
  if (masked.target_positions.empty()) {
    const int t = mrng.RandInt(1, n - 1);
    masked.enc_tokens[t] = missing_token();
    masked.target_positions.push_back(t);
    masked.feats[t].delta_d = 0.0f;
    if (t + 1 < n) masked.feats[t + 1].delta_d = 0.0f;
  }
  return masked;
}

float PaSeq2Seq::RunEpoch(
    std::vector<WorkItem>& items,
    const std::function<tensor::Tensor(const WorkItem&, util::Rng&)>& loss_fn,
    tensor::Adam& optimizer, int stage, TrainWatchdog* watchdog) {
  PA_TRACE_SPAN("train.epoch");
  auto& instruments = TrainInstruments::Get();
  obs::Gauge& grad_norm_gauge = instruments.GradNormGauge(stage);
  const auto epoch_start = std::chrono::steady_clock::now();
  rng_.Shuffle(items);
  double total = 0.0;
  int count = 0;

  const int batch = std::max(1, config_.batch_size);
  if (batch == 1) {
    // Per-item SGD, every draw from rng_ — the historical training loop.
    for (const WorkItem& item : items) {
      PA_TRACE_SPAN("train.item");
      Tensor loss = loss_fn(item, rng_);
      if (!loss.defined()) continue;
      const float loss_value = loss.item();
      optimizer.ZeroGrad();
      loss.Backward();
      const float grad_norm = optimizer.ClipGradNorm(config_.grad_clip);
      grad_norm_gauge.Set(grad_norm);
      // Veto BEFORE Step: a non-finite loss or gradient must not touch the
      // parameters.
      if (watchdog != nullptr &&
          !watchdog->ObserveStep(stage, loss_value, grad_norm)) {
        break;
      }
      optimizer.Step();
      total += loss_value;
      ++count;
    }
    instruments.epochs.Increment();
    instruments.epoch_ms.Record(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() -
                                    epoch_start)
                                    .count());
    return count > 0 ? static_cast<float>(total / count) : 0.0f;
  }

  // Data-parallel mini-batches. Each item runs forward + backward under a
  // GradRedirectScope on whichever pool thread picks it up, drawing from a
  // private stream; the per-item gradient buffers are merged in item order
  // (a fixed floating-point reduction order), so the result depends on the
  // batch size but not the thread count.
  std::vector<Tensor> params = Parameters();
  struct ItemResult {
    bool defined = false;
    float loss = 0.0f;
    std::vector<std::vector<float>> grads;
  };
  for (size_t start = 0; start < items.size();
       start += static_cast<size_t>(batch)) {
    const size_t end =
        std::min(items.size(), start + static_cast<size_t>(batch));
    // One rng_ draw per batch roots the item streams, keeping rng_'s
    // consumption independent of the batch contents.
    const uint64_t batch_seed = rng_.engine()();
    std::vector<ItemResult> results = util::GlobalPool().ParallelMap(
        static_cast<int64_t>(start), static_cast<int64_t>(end), /*grain=*/1,
        [&](int64_t i) {
          PA_TRACE_SPAN("train.item");
          util::Rng item_rng(util::StreamSeed(
              batch_seed, static_cast<uint64_t>(i - start)));
          tensor::GradRedirectScope scope(params);
          ItemResult r;
          Tensor loss = loss_fn(items[static_cast<size_t>(i)], item_rng);
          if (loss.defined()) {
            loss.Backward();
            r.defined = true;
            r.loss = loss.item();
          }
          r.grads = scope.TakeBuffers();
          return r;
        });

    int contributed = 0;
    for (const ItemResult& r : results) contributed += r.defined ? 1 : 0;
    if (contributed == 0) continue;
    optimizer.ZeroGrad();
    const float scale = 1.0f / static_cast<float>(contributed);
    double batch_total = 0.0;
    for (const ItemResult& r : results) {  // Item order: fixed merge order.
      if (!r.defined) continue;
      for (size_t p = 0; p < params.size(); ++p) {
        float* dst = params[p].grad_data();
        const std::vector<float>& src = r.grads[p];
        for (size_t j = 0; j < src.size(); ++j) dst[j] += src[j] * scale;
      }
      batch_total += r.loss;
      total += r.loss;
      ++count;
    }
    const float grad_norm = optimizer.ClipGradNorm(config_.grad_clip);
    grad_norm_gauge.Set(grad_norm);
    if (watchdog != nullptr &&
        !watchdog->ObserveStep(
            stage, static_cast<float>(batch_total / contributed), grad_norm)) {
      break;
    }
    optimizer.Step();
  }
  instruments.epochs.Increment();
  instruments.epoch_ms.Record(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() -
                                  epoch_start)
                                  .count());
  return count > 0 ? static_cast<float>(total / count) : 0.0f;
}

void PaSeq2Seq::Fit(const std::vector<poi::CheckinSequence>& train) {
  std::vector<WorkItem> items = MakeTrainingItems(train);
  if (items.empty()) return;
  tensor::Adam optimizer(Parameters(), config_.learning_rate);

  auto& instruments = TrainInstruments::Get();
  TrainWatchdog watchdog(config_.watchdog);

  // Stage 1: MLE pretraining of the uni-directional (decoder) and
  // bi-directional (encoder) LSTM paths.
  {
    PA_TRACE_SPAN("train.stage1");
    for (int e = 0; e < config_.stage1_epochs && !watchdog.aborted(); ++e) {
      const float loss = RunEpoch(
          items,
          [this](const WorkItem& item, util::Rng& rng) {
            Tensor dec = DecoderLmLoss(item, &rng);
            Tensor enc = EncoderLmLoss(item);
            if (!dec.defined()) return enc;
            if (!enc.defined()) return dec;
            return tensor::Scale(tensor::Add(dec, enc), 0.5f);
          },
          optimizer, /*stage=*/1, &watchdog);
      stats_.stage1.push_back(loss);
      instruments.stage1_loss.Set(loss);
      if (config_.verbose) {
        std::fprintf(stderr, "[pa-seq2seq] stage1 epoch %d loss %.4f\n", e,
                     loss);
      }
      if (!watchdog.aborted()) watchdog.ObserveEpoch(1, loss);
    }
  }

  // Stage 2: MLE pretraining of the full seq2seq (no masking).
  if (!watchdog.aborted()) {
    PA_TRACE_SPAN("train.stage2");
    for (int e = 0; e < config_.stage2_epochs && !watchdog.aborted(); ++e) {
      const float loss = RunEpoch(
          items,
          [this](const WorkItem& item, util::Rng& rng) {
            return Decode(item, /*training=*/true, nullptr, nullptr, &rng);
          },
          optimizer, /*stage=*/2, &watchdog);
      stats_.stage2.push_back(loss);
      instruments.stage2_loss.Set(loss);
      if (config_.verbose) {
        std::fprintf(stderr, "[pa-seq2seq] stage2 epoch %d loss %.4f\n", e,
                     loss);
      }
      if (!watchdog.aborted()) watchdog.ObserveEpoch(2, loss);
    }
  }

  // Stage 3: mask training with the ratio ramping from mask_start to
  // mask_end across epochs (the paper ramps 10% -> 50%).
  if (!watchdog.aborted()) {
    PA_TRACE_SPAN("train.stage3");
    for (int e = 0; e < config_.stage3_epochs && !watchdog.aborted(); ++e) {
      float ratio = config_.mask_end;
      if (config_.ramp_mask && config_.stage3_epochs > 1) {
        const float f = static_cast<float>(e) /
                        static_cast<float>(config_.stage3_epochs - 1);
        ratio =
            config_.mask_start + f * (config_.mask_end - config_.mask_start);
      }
      const float loss = RunEpoch(
          items,
          [this, ratio](const WorkItem& item, util::Rng& rng) {
            return Decode(MaskItem(item, ratio, &rng), /*training=*/true,
                          nullptr, nullptr, &rng);
          },
          optimizer, /*stage=*/3, &watchdog);
      stats_.stage3.push_back(loss);
      instruments.stage3_loss.Set(loss);
      if (config_.verbose) {
        std::fprintf(stderr,
                     "[pa-seq2seq] stage3 epoch %d mask %.2f loss %.4f\n", e,
                     ratio, loss);
      }
      if (!watchdog.aborted()) watchdog.ObserveEpoch(3, loss);
    }
  }

  if (watchdog.aborted()) {
    std::fprintf(stderr, "[pa-seq2seq] training aborted by watchdog: %s\n",
                 watchdog.diagnostic().c_str());
  }
}

std::vector<int32_t> PaSeq2Seq::Impute(const MaskedSequence& masked) const {
  // Decode-only entry point: no Backward() ever runs on these forwards.
  // (Decode itself is shared with training and must NOT scope itself.)
  const tensor::InferenceModeScope inference;
  const auto& timeline = masked.timeline;
  const int n = static_cast<int>(timeline.size());
  std::vector<int32_t> result;
  const int total_missing = poi::CountMissing(timeline);
  if (total_missing == 0) return result;
  result.reserve(static_cast<size_t>(total_missing));

  // Tokens and features over the full timeline. Δt comes from slot
  // timestamps; Δd is defined only between two observed slots.
  std::vector<int> tokens(n);
  std::vector<poi::StepFeatures> feats(n);
  for (int t = 0; t < n; ++t) {
    tokens[t] = timeline[t].missing()
                    ? missing_token()
                    : masked.observed[static_cast<size_t>(
                                          timeline[t].observed_index)]
                          .poi;
    if (t > 0) {
      const double hours = static_cast<double>(timeline[t].timestamp -
                                                timeline[t - 1].timestamp) /
                           3600.0;
      feats[t].delta_t = static_cast<float>(
          std::min(hours / config_.feature_scale.hours_scale, 10.0));
      if (tokens[t] != missing_token() && tokens[t - 1] != missing_token()) {
        const double km = pois_.DistanceKm(tokens[t - 1], tokens[t]);
        feats[t].delta_d = static_cast<float>(
            std::min(km / config_.feature_scale.km_scale, 10.0));
      }
    }
  }

  // Localized-region candidate sets (see PaSeq2SeqConfig comment): for each
  // missing position, POIs within `candidate_radius_km` of either observed
  // bracket POI.
  std::vector<int32_t> prev_obs(n, -1), next_obs(n, -1);
  for (int t = 0, last = -1; t < n; ++t) {
    if (!timeline[t].missing()) last = tokens[t];
    prev_obs[t] = last;
  }
  for (int t = n - 1, nxt = -1; t >= 0; --t) {
    if (!timeline[t].missing()) nxt = tokens[t];
    next_obs[t] = nxt;
  }
  std::unordered_map<int32_t, std::vector<int32_t>> radius_cache;
  auto pois_near = [&](int32_t poi) -> const std::vector<int32_t>& {
    auto it = radius_cache.find(poi);
    if (it != radius_cache.end()) return it->second;
    std::vector<int32_t> ids;
    for (const auto& nb : pois_.SpatialIndex().WithinRadius(
             pois_.coord(poi), config_.candidate_radius_km)) {
      ids.push_back(nb.id);
    }
    return radius_cache.emplace(poi, std::move(ids)).first->second;
  };
  auto candidates_for = [&](int t) {
    std::vector<int32_t> cands;
    if (config_.candidate_radius_km <= 0.0) return cands;
    for (int32_t bracket : {prev_obs[t], next_obs[t]}) {
      if (bracket < 0) continue;
      const auto& near = pois_near(bracket);
      cands.insert(cands.end(), near.begin(), near.end());
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    return cands;
  };

  // Decode in overlapping chunks; a position's prediction is taken from the
  // chunk where it sits past the leading overlap (except in the first).
  const int chunk = std::max(config_.max_seq_len, 8);
  const int overlap = std::min(2 * config_.attention_window, chunk / 2);
  std::vector<int> predicted(n, -1);

  int begin = 0;
  while (begin < n) {
    const int end = std::min(n, begin + chunk);
    WorkItem item;
    item.enc_tokens.assign(tokens.begin() + begin, tokens.begin() + end);
    item.feats.assign(feats.begin() + begin, feats.begin() + end);
    const int fresh_from = begin == 0 ? 0 : begin + overlap;
    for (int t = begin; t < end; ++t) {
      if (timeline[t].missing() && predicted[t] < 0 && t >= fresh_from) {
        item.target_positions.push_back(t - begin);
        item.candidates.push_back(candidates_for(t));
      }
    }
    // Earlier predictions inside the overlap feed back as decoder inputs.
    for (int t = begin; t < end; ++t) {
      if (timeline[t].missing() && predicted[t] >= 0) {
        item.enc_tokens[t - begin] = predicted[t];
      }
    }
    if (!item.target_positions.empty()) {
      std::vector<int> preds;
      Decode(item, /*training=*/false, &preds);
      for (size_t i = 0; i < item.target_positions.size(); ++i) {
        predicted[begin + item.target_positions[i]] = preds[i];
      }
    }
    if (end == n) break;
    begin = end - overlap;
  }

  for (int t = 0; t < n; ++t) {
    if (timeline[t].missing()) {
      result.push_back(predicted[t] >= 0 ? predicted[t] : tokens[0]);
    }
  }
  return result;
}

std::vector<int32_t> PaSeq2Seq::RankNext(const poi::CheckinSequence& history,
                                         int64_t next_timestamp,
                                         int k) const {
  if (history.empty()) return {};
  // Decode-only entry point (see Impute).
  const tensor::InferenceModeScope inference;

  // Tail of the history plus one trailing missing slot.
  const int tail = std::min<int>(static_cast<int>(history.size()),
                                 config_.max_seq_len - 1);
  const poi::CheckinSequence recent(history.end() - tail, history.end());

  WorkItem item;
  const int n = tail + 1;
  item.enc_tokens.reserve(static_cast<size_t>(n));
  for (const poi::Checkin& c : recent) item.enc_tokens.push_back(c.poi);
  item.enc_tokens.push_back(missing_token());
  item.feats =
      poi::ComputeSequenceFeatures(recent, pois_, config_.feature_scale);
  poi::StepFeatures last_feat;
  const double hours =
      static_cast<double>(next_timestamp - recent.back().timestamp) / 3600.0;
  last_feat.delta_t = static_cast<float>(std::min(
      std::max(hours, 0.0) / config_.feature_scale.hours_scale, 10.0));
  item.feats.push_back(last_feat);
  item.target_positions.push_back(n - 1);
  item.top_k = k;

  if (config_.candidate_radius_km > 0.0) {
    std::vector<int32_t> cands;
    for (const auto& nb : pois_.SpatialIndex().WithinRadius(
             pois_.coord(recent.back().poi), config_.candidate_radius_km)) {
      cands.push_back(nb.id);
    }
    item.candidates.push_back(std::move(cands));
  }

  std::vector<std::vector<int32_t>> rankings;
  Decode(item, /*training=*/false, nullptr, &rankings);
  return rankings.empty() ? std::vector<int32_t>{} : rankings.front();
}

poi::CheckinSequence PaSeq2Seq::ImputeTrip(const poi::Checkin& start,
                                           const poi::Checkin& end,
                                           int64_t interval_seconds,
                                           int max_missing_per_gap) const {
  poi::CheckinSequence endpoints = {start, end};
  return AugmentSequence(*this, endpoints, start.user, interval_seconds,
                         max_missing_per_gap);
}

std::vector<int32_t> PaSeq2Seq::ImputeBeam(const MaskedSequence& masked,
                                           int beam_width) const {
  // Decode-only entry point (see Impute).
  const tensor::InferenceModeScope inference;
  const auto& timeline = masked.timeline;
  const int n = static_cast<int>(timeline.size());
  const int total_missing = poi::CountMissing(timeline);
  if (total_missing == 0) return {};
  beam_width = std::max(1, beam_width);

  // Tokens, features and per-position candidate sets (same construction as
  // greedy Impute, single pass over the full timeline).
  std::vector<int> tokens(n);
  std::vector<poi::StepFeatures> feats(n);
  for (int t = 0; t < n; ++t) {
    tokens[t] = timeline[t].missing()
                    ? missing_token()
                    : masked.observed[static_cast<size_t>(
                                          timeline[t].observed_index)]
                          .poi;
    if (t > 0) {
      const double hours = static_cast<double>(timeline[t].timestamp -
                                                timeline[t - 1].timestamp) /
                           3600.0;
      feats[t].delta_t = static_cast<float>(
          std::min(hours / config_.feature_scale.hours_scale, 10.0));
      if (tokens[t] != missing_token() && tokens[t - 1] != missing_token()) {
        const double km = pois_.DistanceKm(tokens[t - 1], tokens[t]);
        feats[t].delta_d = static_cast<float>(
            std::min(km / config_.feature_scale.km_scale, 10.0));
      }
    }
  }
  std::vector<int32_t> prev_obs(n, -1), next_obs(n, -1);
  for (int t = 0, last = -1; t < n; ++t) {
    if (!timeline[t].missing()) last = tokens[t];
    prev_obs[t] = last;
  }
  for (int t = n - 1, nxt = -1; t >= 0; --t) {
    if (!timeline[t].missing()) nxt = tokens[t];
    next_obs[t] = nxt;
  }
  auto candidates_for = [&](int t) {
    std::vector<int32_t> cands;
    if (config_.candidate_radius_km <= 0.0) return cands;
    for (int32_t bracket : {prev_obs[t], next_obs[t]}) {
      if (bracket < 0) continue;
      for (const auto& nb : pois_.SpatialIndex().WithinRadius(
               pois_.coord(bracket), config_.candidate_radius_km)) {
        cands.push_back(nb.id);
      }
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    return cands;
  };

  // Encoder, once.
  std::vector<Tensor> xs(n);
  for (int t = 0; t < n; ++t) {
    Tensor emb = embedding_.Forward({tokens[t]});
    Tensor feat =
        Tensor::FromData({1, 2}, {feats[t].delta_t, feats[t].delta_d});
    xs[t] = tensor::ConcatCols({emb, feat});
  }
  nn::LstmState enc_final;
  std::vector<Tensor> enc_states = encoder_.Forward(xs, &enc_final);

  struct Beam {
    double logprob = 0.0;
    nn::LstmState s1, s2;
    std::vector<int> predicted;  // Per position; -1 where not missing.
  };
  std::vector<Beam> beams(1);
  beams[0].s1 = {enc_final.h, enc_final.c};
  beams[0].s2 = {enc_final.h, enc_final.c};
  beams[0].predicted.assign(static_cast<size_t>(n), -1);

  const nn::ZoneoutConfig zoneout{config_.zoneout_prob, config_.zoneout_prob};
  for (int t = 1; t < n; ++t) {
    // Advance every beam one decoder step.
    std::vector<Beam> advanced;
    advanced.reserve(beams.size());
    for (Beam& beam : beams) {
      int prev = tokens[t - 1];
      if (prev == missing_token() && beam.predicted[t - 1] >= 0) {
        prev = beam.predicted[t - 1];
      }
      Tensor emb = embedding_.Forward({prev});
      Tensor feat =
          Tensor::FromData({1, 2}, {feats[t].delta_t, feats[t].delta_d});
      Tensor x = tensor::ConcatCols({emb, feat});
      Beam next = beam;
      next.s1 = dec_bottom_.ForwardZoneout(x, beam.s1, zoneout,
                                           /*training=*/false, rng_);
      Tensor top_in = next.s1.h;
      if (config_.use_residual) {
        // Both operands moved: the dying projection result is overwritten
      // in place under inference (top_in still shares s1.h, so it takes
      // the allocating path automatically).
      top_in = tensor::Add(std::move(top_in), dec_input_projection_.Forward(x));
      }
      next.s2 = dec_top_.ForwardZoneout(top_in, beam.s2, zoneout,
                                        /*training=*/false, rng_);
      advanced.push_back(std::move(next));
    }

    if (!timeline[t].missing()) {
      beams = std::move(advanced);
      continue;
    }

    // Expand each beam with its top-width candidates for this slot.
    const std::vector<int32_t> cands = candidates_for(t);
    std::vector<Beam> expanded;
    for (Beam& beam : advanced) {
      Tensor hidden = beam.s2.h;
      if (config_.use_attention) {
        hidden = attention_.Forward(beam.s2.h, enc_states, t)
                     .attentional_hidden;
      }
      Tensor logp = tensor::LogSoftmax(output_.Forward(hidden));
      const std::vector<int32_t> top = TopKRow(logp, cands, beam_width);
      for (int32_t poi_id : top) {
        Beam child = beam;
        child.logprob += logp.at(0, poi_id);
        child.predicted[t] = poi_id;
        expanded.push_back(std::move(child));
      }
    }
    std::sort(expanded.begin(), expanded.end(),
              [](const Beam& a, const Beam& b) {
                return a.logprob > b.logprob;
              });
    if (static_cast<int>(expanded.size()) > beam_width) {
      expanded.resize(static_cast<size_t>(beam_width));
    }
    beams = std::move(expanded);
  }

  const Beam& best = beams.front();
  std::vector<int32_t> result;
  result.reserve(static_cast<size_t>(total_missing));
  for (int t = 0; t < n; ++t) {
    if (timeline[t].missing()) {
      result.push_back(best.predicted[t] >= 0 ? best.predicted[t]
                                              : tokens[0]);
    }
  }
  return result;
}

bool PaSeq2Seq::SaveToFile(const std::string& path) const {
  return nn::SaveParametersToFile(path, Parameters());
}

bool PaSeq2Seq::LoadFromFile(const std::string& path) {
  std::vector<Tensor> params = Parameters();
  return nn::LoadParametersFromFile(path, params);
}

}  // namespace pa::augment
