#ifndef PA_AUGMENT_PA_SEQ2SEQ_H_
#define PA_AUGMENT_PA_SEQ2SEQ_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "augment/augmenter.h"
#include "augment/train_watchdog.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "poi/features.h"
#include "poi/poi_table.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::augment {

/// Hyper-parameters of PA-Seq2Seq. Defaults follow the paper where it
/// specifies values (16-d POI embeddings, Adam at lr 0.008, attention
/// half-window D = 10, mask ratio ramping 10% → 50%) and use small
/// CPU-friendly sizes elsewhere.
struct PaSeq2SeqConfig {
  int embedding_dim = 16;      // Paper §IV-B.
  int hidden_dim = 24;         // Per direction in the BiLSTM.
  int attention_window = 10;   // Paper §III-D: D = 10.
  float zoneout_prob = 0.1f;   // §III-E zoneout on hidden and cell states.
  float learning_rate = 0.008f;  // Paper §IV-B (Adam).
  float grad_clip = 5.0f;

  // Three-stage training protocol (§IV-B).
  int stage1_epochs = 2;  // LSTM / BiLSTM MLE pretraining.
  int stage2_epochs = 2;  // Full seq2seq MLE pretraining.
  int stage3_epochs = 30;  // Mask training.
  float mask_start = 0.10f;  // Mask ratio at the first stage-3 epoch...
  float mask_end = 0.50f;    // ...ramping linearly to this at the last.

  /// Inference-time localized-region restriction: greedy decoding ranks
  /// only POIs within this radius of the observed check-ins bracketing the
  /// missing slot (0 disables). The paper's full-scale model ranks all
  /// POIs; at this build's CPU scale the softmax geography is undertrained,
  /// and an unrestricted argmax occasionally lands in the wrong city, so
  /// the same localized-region assumption FPMC-LR makes (users move within
  /// a bounded region between consecutive check-ins) is applied to keep
  /// imputations plausible. See DESIGN.md "Substitutions".
  double candidate_radius_km = 15.0;

  // Practicalities.
  int max_seq_len = 100;     // Training/inference chunk length.
  int min_seq_len = 4;       // Chunks shorter than this are skipped.
  /// Training mini-batch size. 1 (the default) is the paper's per-item SGD
  /// and is bit-identical to the historical sequential trainer. Larger
  /// values run the items of each batch forward+backward in parallel on the
  /// global thread pool — per-item gradients accumulate in private buffers
  /// (see tensor::GradRedirectScope) and are merged in item order, then
  /// averaged for one optimizer step, so the result depends on `batch_size`
  /// but NOT on the thread count.
  int batch_size = 1;
  uint64_t seed = 42;
  poi::FeatureScale feature_scale;

  // Ablation switches (bench_ablation_*): the paper's design choices.
  bool use_residual = true;   // Eq. 3 vs Eq. 2 stacking.
  bool use_attention = true;  // Local attention vs plain decoder output.
  bool ramp_mask = true;      // Ramped vs fixed (mask_end) mask ratio.

  /// Training-health watchdog (NaN/Inf guards, loss-divergence detector).
  /// On by default: a poisoned step or a diverging run aborts Fit with a
  /// diagnostic and flips /healthz to FAILED instead of silently training
  /// on garbage. Set `watchdog.enabled = false` for experiments that
  /// deliberately explore divergence.
  TrainWatchdogConfig watchdog;

  bool verbose = false;
};

/// The POI-Augmentation Sequence-to-Sequence model (paper §III).
///
/// Architecture (Figs. 3–5):
///  * a shared POI embedding table over `num_pois + 1` tokens — the extra
///    token is the *missing check-in* `mc`, indexed at `num_pois` exactly as
///    the paper places it at the end of the one-hot table;
///  * encoder: BiLSTM stacked with a uni-directional LSTM through a residual
///    connection (Eq. 1–3), reading `[embedding ; Δt ; Δd]` per slot;
///  * decoder: two-layer residual LSTM with zoneout whose step t input is
///    the previous check-in (observed, or the model's own prediction when
///    the previous slot was missing), producing predictions through local
///    attention (Eq. 4) and a softmax over POIs.
///
/// Training follows the paper's three stages: MLE pretraining of the LSTM
/// paths, MLE pretraining of the full seq2seq, then mask training in which
/// a ramped fraction of observed check-ins is replaced by `mc` in the
/// encoder input and must be recovered.
class PaSeq2Seq : public Augmenter {
 public:
  /// `pois` must outlive the model.
  explicit PaSeq2Seq(const poi::PoiTable& pois, PaSeq2SeqConfig config = {});

  std::string name() const override { return "PA-Seq2Seq"; }

  /// Runs the three-stage training protocol on the observed sequences.
  void Fit(const std::vector<poi::CheckinSequence>& train) override;

  /// Predicts a POI for every missing slot of the timeline (greedy
  /// decoding; predictions feed back as the next decoder input, and their
  /// coordinates supply the Δd features of later steps).
  std::vector<int32_t> Impute(const MaskedSequence& masked) const override;

  /// The id of the missing-check-in token.
  int missing_token() const { return pois_.size(); }

  /// Uses the trained model *directly* as a next-POI ranker — the paper's
  /// §VI observation that PA-Seq2Seq "has learned the visiting
  /// distribution" and can serve recommendation itself. Encodes (the tail
  /// of) the observed history plus one trailing missing slot at
  /// `next_timestamp` and returns the top-k POIs predicted for that slot.
  /// Candidate restriction follows `candidate_radius_km` around the last
  /// observed POI, padded from the unrestricted ranking when short.
  std::vector<int32_t> RankNext(const poi::CheckinSequence& history,
                                int64_t next_timestamp, int k) const;

  /// Trip imputation (paper §VI future work): given only a departure and a
  /// destination check-in and the slot interval, generates the whole
  /// trajectory between them — the number of imputed check-ins follows
  /// from the time budget. Returns the full sequence including both
  /// endpoints.
  poi::CheckinSequence ImputeTrip(const poi::Checkin& start,
                                  const poi::Checkin& end,
                                  int64_t interval_seconds,
                                  int max_missing_per_gap = 0) const;

  /// Beam-search imputation — an extension over the paper's greedy
  /// decoding. Maintains `beam_width` decoder hypotheses over the whole
  /// timeline (no chunking) and returns the highest-probability assignment
  /// of POIs to missing slots. `beam_width <= 1` degenerates to greedy
  /// decoding of the same single pass.
  std::vector<int32_t> ImputeBeam(const MaskedSequence& masked,
                                  int beam_width) const;

  /// Checkpointing: persists / restores all trainable parameters (the
  /// architecture in `config` must match at load time).
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  /// Mean training loss per epoch for each stage; tests assert descent.
  struct TrainStats {
    std::vector<float> stage1;
    std::vector<float> stage2;
    std::vector<float> stage3;
  };
  const TrainStats& train_stats() const { return stats_; }

  std::vector<tensor::Tensor> Parameters() const;
  int64_t NumParameters() const;

 private:
  /// One training/inference problem over a fixed-length chunk.
  struct WorkItem {
    /// Encoder-side tokens: POI ids, with `mc` at masked/missing positions.
    std::vector<int> enc_tokens;
    /// Ground truth per position (training; equals enc_tokens at observed
    /// positions). Empty at inference.
    std::vector<int> truth;
    std::vector<poi::StepFeatures> feats;
    /// Positions whose prediction participates in the loss / output.
    std::vector<int> target_positions;
    /// Inference only: per target position, the candidate POI ids the
    /// argmax may pick from (empty inner vector = all POIs).
    std::vector<std::vector<int32_t>> candidates;
    /// Inference only: ranking depth for `rankings` (see Decode).
    int top_k = 1;
  };

  /// Runs encoder + decoder over an item. In training mode returns the
  /// cross-entropy loss at the target positions (teacher-forcing decoder
  /// inputs from `truth`); in inference mode fills `predictions` (aligned
  /// with `target_positions`), optionally `rankings` (top `item.top_k`
  /// POIs per target), and returns an undefined tensor.
  ///
  /// `rng` supplies the zoneout draws in training mode; nullptr uses the
  /// model's `rng_`. Data-parallel training passes a per-item stream so
  /// concurrent items never touch the shared rng (which also keeps the
  /// draws independent of the thread count). Inference draws nothing.
  tensor::Tensor Decode(const WorkItem& item, bool training,
                        std::vector<int>* predictions,
                        std::vector<std::vector<int32_t>>* rankings = nullptr,
                        util::Rng* rng = nullptr) const;

  /// Decoder-only language-model loss (stage 1a). `rng` as in Decode.
  tensor::Tensor DecoderLmLoss(const WorkItem& item,
                               util::Rng* rng = nullptr) const;
  /// Encoder next-token loss (stage 1b); deterministic (no zoneout).
  tensor::Tensor EncoderLmLoss(const WorkItem& item) const;

  /// Splits training sequences into chunk WorkItems.
  std::vector<WorkItem> MakeTrainingItems(
      const std::vector<poi::CheckinSequence>& train) const;

  /// Runs one epoch over `items`; returns the mean loss. `loss_fn` receives
  /// the item plus the rng all of the item's stochastic draws (masking,
  /// zoneout) must come from.
  ///
  /// With `config_.batch_size == 1` this is plain sequential per-item SGD
  /// driven by `rng_` (the historical behavior, bit for bit). With larger
  /// batches, each batch's items run forward+backward concurrently on the
  /// global pool under a GradRedirectScope, each with a private rng stream
  /// derived from one `rng_` draw per batch; gradients merge in item order
  /// and are averaged for a single optimizer step per batch.
  /// `stage` (1-based) labels the grad-norm gauge and watchdog state;
  /// `watchdog` (may be null) vetoes poisoned optimizer steps — on veto the
  /// epoch stops early and the mean over the completed items is returned.
  float RunEpoch(
      std::vector<WorkItem>& items,
      const std::function<tensor::Tensor(const WorkItem&, util::Rng&)>&
          loss_fn,
      tensor::Adam& optimizer, int stage, TrainWatchdog* watchdog);

  /// Applies the stage-3 mask (ratio `ratio`) to a pristine item, drawing
  /// from `rng` (nullptr uses the model's `rng_`).
  WorkItem MaskItem(const WorkItem& item, float ratio,
                    util::Rng* rng = nullptr) const;

  const poi::PoiTable& pois_;
  PaSeq2SeqConfig config_;
  mutable util::Rng rng_;

  nn::Embedding embedding_;
  nn::ResidualBiLstmStack encoder_;
  nn::LstmCell dec_bottom_;
  nn::LstmCell dec_top_;
  nn::Linear dec_input_projection_;  // Residual skip around dec_bottom_.
  nn::LocalAttention attention_;
  nn::Linear output_;

  TrainStats stats_;
};

}  // namespace pa::augment

#endif  // PA_AUGMENT_PA_SEQ2SEQ_H_
