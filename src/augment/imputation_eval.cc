#include "augment/imputation_eval.h"

#include <algorithm>
#include <sstream>

namespace pa::augment {

std::string ImputationMetrics::ToString() const {
  std::ostringstream os;
  os << "tasks=" << num_tasks << " accuracy=" << accuracy
     << " mean_err_km=" << mean_error_km
     << " median_err_km=" << median_error_km;
  return os.str();
}

MaskedSequence MakeGroundTruthMasked(const poi::SyntheticLbsn& lbsn,
                                     int32_t user) {
  MaskedSequence masked;
  masked.user = user;
  const auto& visits = lbsn.true_visits[static_cast<size_t>(user)];
  const auto& mask = lbsn.observed_mask[static_cast<size_t>(user)];
  masked.observed = lbsn.observed.sequences[static_cast<size_t>(user)];

  int observed_index = 0;
  for (size_t i = 0; i < visits.size(); ++i) {
    poi::Slot slot;
    slot.timestamp = visits[i].timestamp;
    slot.observed_index = mask[i] ? observed_index++ : -1;
    masked.timeline.push_back(slot);
  }
  return masked;
}

ImputationMetrics EvaluateImputation(const Augmenter& augmenter,
                                     const poi::SyntheticLbsn& lbsn) {
  ImputationMetrics metrics;
  const poi::PoiTable& pois = lbsn.observed.pois;

  int hits = 0;
  std::vector<double> errors;
  for (int32_t u = 0; u < lbsn.observed.num_users(); ++u) {
    const auto& visits = lbsn.true_visits[static_cast<size_t>(u)];
    const auto& mask = lbsn.observed_mask[static_cast<size_t>(u)];
    MaskedSequence masked = MakeGroundTruthMasked(lbsn, u);
    if (poi::CountMissing(masked.timeline) == 0) continue;

    const std::vector<int32_t> imputed = augmenter.Impute(masked);
    size_t next = 0;
    for (size_t i = 0; i < visits.size(); ++i) {
      if (mask[i]) continue;
      const int32_t predicted = imputed[next++];
      const int32_t truth = visits[i].poi;
      ++metrics.num_tasks;
      if (predicted == truth) ++hits;
      errors.push_back(pois.DistanceKm(predicted, truth));
    }
  }

  if (metrics.num_tasks > 0) {
    metrics.accuracy =
        static_cast<double>(hits) / static_cast<double>(metrics.num_tasks);
    double sum = 0.0;
    for (double e : errors) sum += e;
    metrics.mean_error_km = sum / static_cast<double>(errors.size());
    std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                     errors.end());
    metrics.median_error_km = errors[errors.size() / 2];
  }
  return metrics;
}

}  // namespace pa::augment
