#include "augment/markov_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace pa::augment {

MarkovBridgeAugmenter::MarkovBridgeAugmenter(const poi::PoiTable& pois,
                                             Config config)
    : pois_(pois), config_(config) {}

void MarkovBridgeAugmenter::Fit(
    const std::vector<poi::CheckinSequence>& train) {
  out_.clear();
  in_.clear();
  out_totals_.clear();
  in_totals_.clear();
  user_counts_.assign(train.size(), {});
  user_totals_.assign(train.size(), 0);

  for (size_t u = 0; u < train.size(); ++u) {
    const auto& seq = train[u];
    for (size_t i = 0; i < seq.size(); ++i) {
      ++user_counts_[u][seq[i].poi];
      ++user_totals_[u];
      if (i > 0) {
        ++out_[seq[i - 1].poi][seq[i].poi];
        ++out_totals_[seq[i - 1].poi];
        ++in_[seq[i].poi][seq[i - 1].poi];
        ++in_totals_[seq[i].poi];
      }
    }
  }
}

int64_t MarkovBridgeAugmenter::TransitionCount(int32_t prev,
                                               int32_t next) const {
  auto it = out_.find(prev);
  if (it == out_.end()) return 0;
  auto jt = it->second.find(next);
  return jt == it->second.end() ? 0 : jt->second;
}

double MarkovBridgeAugmenter::ScoreBridge(int32_t user, int32_t left,
                                          int32_t candidate,
                                          int32_t right) const {
  const double k = config_.smoothing;
  const double v = static_cast<double>(pois_.size());

  auto total = [](const std::unordered_map<int32_t, int64_t>& m, int32_t key) {
    auto it = m.find(key);
    return it == m.end() ? int64_t{0} : it->second;
  };

  // log P(candidate | left)
  const double p_fwd =
      (TransitionCount(left, candidate) + k) /
      (static_cast<double>(total(out_totals_, left)) + k * v);
  // log P(right | candidate)
  const double p_bwd =
      (TransitionCount(candidate, right) + k) /
      (static_cast<double>(total(out_totals_, candidate)) + k * v);

  double score = std::log(p_fwd) + std::log(p_bwd);
  if (user >= 0 && user < static_cast<int32_t>(user_counts_.size()) &&
      user_totals_[static_cast<size_t>(user)] > 0) {
    const auto& counts = user_counts_[static_cast<size_t>(user)];
    auto it = counts.find(candidate);
    const double c = it == counts.end() ? 0.0 : static_cast<double>(it->second);
    const double p_user =
        (c + k) /
        (static_cast<double>(user_totals_[static_cast<size_t>(user)]) + k * v);
    score += config_.user_weight * std::log(p_user);
  }
  return score;
}

std::vector<int32_t> MarkovBridgeAugmenter::Impute(
    const MaskedSequence& masked) const {
  std::vector<int32_t> result;
  const auto& timeline = masked.timeline;
  const auto& observed = masked.observed;

  auto poi_at = [&](int slot) {
    return observed[static_cast<size_t>(timeline[slot].observed_index)].poi;
  };

  int32_t left = -1;
  for (size_t s = 0; s < timeline.size(); ++s) {
    if (!timeline[s].missing()) {
      left = poi_at(static_cast<int>(s));
      continue;
    }
    int32_t right = -1;
    for (size_t j = s + 1; j < timeline.size(); ++j) {
      if (!timeline[j].missing()) {
        right = poi_at(static_cast<int>(j));
        break;
      }
    }
    if (left < 0) left = right;
    if (right < 0) right = left;
    if (left < 0) {  // Degenerate: no observation at all.
      result.push_back(0);
      continue;
    }

    // Candidate set: successors of left, predecessors of right, and the
    // user's own POIs.
    std::set<int32_t> candidates;
    if (auto it = out_.find(left); it != out_.end()) {
      for (const auto& [poi, count] : it->second) candidates.insert(poi);
    }
    if (auto it = in_.find(right); it != in_.end()) {
      for (const auto& [poi, count] : it->second) candidates.insert(poi);
    }
    if (masked.user >= 0 &&
        masked.user < static_cast<int32_t>(user_counts_.size())) {
      for (const auto& [poi, count] :
           user_counts_[static_cast<size_t>(masked.user)]) {
        candidates.insert(poi);
      }
    }
    if (candidates.empty()) candidates.insert(left);

    int32_t best = *candidates.begin();
    double best_score = -std::numeric_limits<double>::infinity();
    for (int32_t candidate : candidates) {
      const double score = ScoreBridge(masked.user, left, candidate, right);
      if (score > best_score) {
        best_score = score;
        best = candidate;
      }
    }
    result.push_back(best);
    left = best;  // Greedy chaining across consecutive missing slots.
  }
  return result;
}

}  // namespace pa::augment
