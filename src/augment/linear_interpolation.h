#ifndef PA_AUGMENT_LINEAR_INTERPOLATION_H_
#define PA_AUGMENT_LINEAR_INTERPOLATION_H_

#include "augment/augmenter.h"
#include "poi/poi_table.h"

namespace pa::augment {

/// The paper's two linear-interpolation baselines (§IV-C).
///
/// Both assume the user travelled along the shortest (great-circle) path
/// between the two observed check-ins bracketing a missing slot, place a
/// point p at the time-proportional fraction along that path, and then pick
/// a POI near p:
///
///  * `kNearestNeighbor` — the POI nearest to p (an R-tree 1-NN query);
///  * `kMostPopular`     — the most popular POI within `pop_radius_km` of p
///    (an R-tree range query; falls back to 1-NN when empty).
///
/// The failure mode (paper Fig. 2): real trajectories are curves shaped by
/// preference and geography, so POIs chosen on the straight path can be far
/// from the truly visited one.
class LinearInterpolationAugmenter : public Augmenter {
 public:
  enum class Mode { kNearestNeighbor, kMostPopular };

  /// `pois` must outlive the augmenter; its popularity counters drive the
  /// POP mode, so call `Dataset::RecountPopularity()` (on training data
  /// only) before use.
  LinearInterpolationAugmenter(const poi::PoiTable& pois, Mode mode,
                               double pop_radius_km = 2.0);

  std::string name() const override;
  std::vector<int32_t> Impute(const MaskedSequence& masked) const override;

 private:
  const poi::PoiTable& pois_;
  Mode mode_;
  double pop_radius_km_;
};

}  // namespace pa::augment

#endif  // PA_AUGMENT_LINEAR_INTERPOLATION_H_
