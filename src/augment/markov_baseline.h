#ifndef PA_AUGMENT_MARKOV_BASELINE_H_
#define PA_AUGMENT_MARKOV_BASELINE_H_

#include <unordered_map>
#include <vector>

#include "augment/augmenter.h"
#include "poi/poi_table.h"

namespace pa::augment {

/// First-order Markov *bridge* imputation — an extension baseline beyond
/// the paper's two linear interpolators, closing the gap between geometric
/// interpolation and the learned seq2seq.
///
/// From the training sequences it estimates global transition counts
/// C(prev -> next) and per-user visit counts C_u(l). A missing slot
/// bracketed by observed check-ins (a, b) is imputed with
///
///   argmax_l  log P(l | a) + log P(b | l) + beta * log P_u(l)
///
/// over candidates that the user has visited or that were ever observed
/// after a / before b (add-one smoothed). Unlike linear interpolation this
/// uses behavioural rather than geometric structure; unlike PA-Seq2Seq it
/// cannot use longer context or time intervals. Consecutive missing slots
/// are bridged greedily left to right (the imputed POI becomes the next
/// slot's left bracket).
/// Options for MarkovBridgeAugmenter.
struct MarkovBridgeConfig {
  double user_weight = 1.0;  // beta in the bridge score.
  double smoothing = 0.1;    // Add-k smoothing for transition counts.
};

class MarkovBridgeAugmenter : public Augmenter {
 public:
  using Config = MarkovBridgeConfig;

  explicit MarkovBridgeAugmenter(const poi::PoiTable& pois,
                                 MarkovBridgeConfig config = {});

  std::string name() const override { return "MarkovBridge"; }
  void Fit(const std::vector<poi::CheckinSequence>& train) override;
  std::vector<int32_t> Impute(const MaskedSequence& masked) const override;

  /// Transition count C(prev -> next); exposed for tests.
  int64_t TransitionCount(int32_t prev, int32_t next) const;

 private:
  double ScoreBridge(int32_t user, int32_t left, int32_t candidate,
                     int32_t right) const;

  const poi::PoiTable& pois_;
  Config config_;
  // Sparse transition counts: out_[prev] -> (next -> count).
  std::unordered_map<int32_t, std::unordered_map<int32_t, int64_t>> out_;
  std::unordered_map<int32_t, std::unordered_map<int32_t, int64_t>> in_;
  std::unordered_map<int32_t, int64_t> out_totals_;
  std::unordered_map<int32_t, int64_t> in_totals_;
  // Per-user visit counts.
  std::vector<std::unordered_map<int32_t, int64_t>> user_counts_;
  std::vector<int64_t> user_totals_;
};

}  // namespace pa::augment

#endif  // PA_AUGMENT_MARKOV_BASELINE_H_
