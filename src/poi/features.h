#ifndef PA_POI_FEATURES_H_
#define PA_POI_FEATURES_H_

#include <vector>

#include "poi/dataset.h"

namespace pa::poi {

/// Per-step spatio-temporal context features: the Δt and Δd of §III-A,
/// normalized to roughly unit scale so they can be concatenated with POI
/// embeddings (encoder input x_t = [v_l ; Δt ; Δd], paper Fig. 4).
struct StepFeatures {
  float delta_t = 0.0f;  // Hours since the previous check-in / scale.
  float delta_d = 0.0f;  // Km from the previous check-in / scale.
};

/// Normalization constants; defaults put typical gaps near 1.0.
struct FeatureScale {
  float hours_scale = 6.0f;
  float km_scale = 10.0f;
};

/// Features for position i of a sequence (i == 0 gets zeros). `pois`
/// provides the coordinates.
StepFeatures ComputeStepFeatures(const CheckinSequence& seq, size_t i,
                                 const PoiTable& pois,
                                 const FeatureScale& scale = {});

/// Features for every position of a sequence.
std::vector<StepFeatures> ComputeSequenceFeatures(
    const CheckinSequence& seq, const PoiTable& pois,
    const FeatureScale& scale = {});

}  // namespace pa::poi

#endif  // PA_POI_FEATURES_H_
