#include "poi/slot_grid.h"

#include <cmath>

namespace pa::poi {

std::vector<Slot> BuildSlotTimeline(const CheckinSequence& seq,
                                    int64_t interval_seconds,
                                    int max_missing_per_gap) {
  std::vector<Slot> timeline;
  if (seq.empty() || interval_seconds <= 0) return timeline;

  timeline.push_back({seq[0].timestamp, 0});
  for (size_t i = 1; i < seq.size(); ++i) {
    const int64_t gap = seq[i].timestamp - seq[i - 1].timestamp;
    int missing = static_cast<int>(std::llround(
                      static_cast<double>(gap) / interval_seconds)) -
                  1;
    if (missing < 0) missing = 0;
    if (max_missing_per_gap > 0 && missing > max_missing_per_gap) {
      missing = max_missing_per_gap;
    }
    for (int m = 1; m <= missing; ++m) {
      const int64_t t =
          seq[i - 1].timestamp +
          static_cast<int64_t>(std::llround(
              static_cast<double>(gap) * m / (missing + 1)));
      timeline.push_back({t, -1});
    }
    timeline.push_back({seq[i].timestamp, static_cast<int>(i)});
  }
  return timeline;
}

int CountMissing(const std::vector<Slot>& timeline) {
  int n = 0;
  for (const Slot& s : timeline) {
    if (s.missing()) ++n;
  }
  return n;
}

}  // namespace pa::poi
