#include "poi/poi_table.h"

namespace pa::poi {

const geo::RTree& PoiTable::SpatialIndex() const {
  // Double-checked build: the acquire load pairs with the release store so
  // a reader that sees index_built_ == true also sees the finished tree.
  if (!index_built_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (!index_built_.load(std::memory_order_relaxed)) {
      geo::RTree fresh;
      for (int32_t i = 0; i < size(); ++i) fresh.Insert(coords_[i], i);
      index_ = std::move(fresh);
      index_built_.store(true, std::memory_order_release);
    }
  }
  return index_;
}

int32_t PoiTable::NearestPoi(const geo::LatLng& p) const {
  auto neighbors = SpatialIndex().Nearest(p, 1);
  return neighbors.empty() ? -1 : neighbors[0].id;
}

int32_t PoiTable::MostPopularWithin(const geo::LatLng& p,
                                    double radius_km) const {
  auto in_range = SpatialIndex().WithinRadius(p, radius_km);
  if (in_range.empty()) return NearestPoi(p);
  int32_t best = -1;
  int64_t best_pop = -1;
  for (const auto& n : in_range) {
    if (popularity_[n.id] > best_pop) {
      best_pop = popularity_[n.id];
      best = n.id;
    }
  }
  return best;
}

std::vector<int32_t> PoiTable::PoisWithin(int32_t poi,
                                          double radius_km) const {
  std::vector<int32_t> out;
  for (const auto& n : SpatialIndex().WithinRadius(coords_[poi], radius_km)) {
    if (n.id != poi) out.push_back(n.id);
  }
  return out;
}

}  // namespace pa::poi
