#ifndef PA_POI_SYNTHETIC_H_
#define PA_POI_SYNTHETIC_H_

#include <string>
#include <vector>

#include "poi/dataset.h"
#include "util/rng.h"

namespace pa::poi {

/// Parameters of the synthetic LBSN generator.
///
/// The generator substitutes for the real Gowalla / Brightkite snapshots
/// (which are not available offline) while preserving the properties the
/// paper's claims depend on:
///
///  * **Sparse, irregular observation** — users make *true visits* on an
///    (almost) evenly-spaced clock, but each visit is only checked in with
///    probability `observe_rate`. The dropped visits are retained as ground
///    truth, so imputation accuracy is directly measurable — something the
///    real datasets cannot offer.
///  * **Curved trajectories** — each user follows a personal cyclic
///    *routine* over POIs that are not collinear, so the straight-path
///    assumption of linear interpolation fails in exactly the way the
///    paper's Fig. 2 motivates, while a sequence model can learn the
///    transition pattern.
///  * **Dataset contrast** — the Brightkite profile has a higher observe
///    rate and much stronger home-anchor dominance than the Gowalla
///    profile, reproducing the paper's Table I vs Table II shape
///    (Brightkite HR ≫ Gowalla HR).
struct LbsnProfile {
  std::string name;

  // POI universe.
  int num_pois = 1000;
  int num_cities = 5;
  double map_extent_km = 300.0;   // Cities scatter inside this square.
  double city_stddev_km = 8.0;    // POI scatter around a city centre.
  double zipf_exponent = 1.0;     // POI base-popularity skew.

  // User behaviour.
  int num_users = 80;
  int min_visits = 160;           // True visits per user (uniform range).
  int max_visits = 240;
  int routine_length = 5;         // Distinct POIs in the routine cycle.
  double routine_radius_km = 4.0; // Routine POIs live this close to home.
  /// Probability that the home anchor is inserted after each routine stop.
  /// Interleaving home into the cycle (home → A → home → B → …) creates
  /// *higher-order* structure: P(next | home) is multi-modal, so first-order
  /// Markov recommenders cannot resolve it while sequence models can — the
  /// property behind the paper's neural-beats-factorization ordering.
  double home_interleave = 0.5;
  double routine_prob = 0.55;     // P(advance along the routine).
  double home_prob = 0.25;        // P(jump back to the home anchor).
  double explore_radius_km = 6.0; // Local exploration radius otherwise.

  // Clock.
  int64_t visit_interval_seconds = 3 * 3600;  // Paper Fig. 1 uses 3 hours.
  double interval_jitter = 0.05;  // Fractional jitter on visit spacing.

  // Observation process. Check-in behaviour is *bursty*: users alternate
  // between active phases (most visits checked in) and silent phases
  // (almost none). Burstiness matters for the reproduction: within-burst
  // transitions are true consecutive visits, so a training set densified by
  // augmentation matches the transition statistics that dominate the test
  // set — the mechanism by which augmentation helps even the Markov-chain
  // recommenders in the paper's tables.
  double observe_active = 0.85;   // P(check-in) during an active phase.
  double observe_silent = 0.08;   // P(check-in) during a silent phase.
  double mean_burst_visits = 6.0;   // Mean active-phase length (visits).
  double mean_silence_visits = 6.0; // Mean silent-phase length (visits).
};

/// Scaled-down profile shaped like the Gowalla snapshot (sparser
/// observation, weaker anchors, more POIs).
LbsnProfile GowallaProfile();

/// Scaled-down profile shaped like the Brightkite snapshot (denser
/// observation, dominant home anchor).
LbsnProfile BrightkiteProfile();

/// Output of the generator: what a model may see plus the hidden truth.
struct SyntheticLbsn {
  /// Observed check-ins only — the sparse dataset models train on.
  Dataset observed;
  /// Every true visit of every user (superset of the observed sequences).
  std::vector<CheckinSequence> true_visits;
  /// observed_mask[u][i] — whether true_visits[u][i] was checked in.
  std::vector<std::vector<bool>> observed_mask;
};

/// Generates a synthetic dataset. The POI world is built sequentially from
/// `rng`; user trajectories are then generated in parallel on the global
/// thread pool, each user drawing from its own RNG stream seeded via
/// `util::StreamSeed(base, user)` where `base` is one draw from `rng`.
/// The output therefore depends only on the seed, not the thread count.
SyntheticLbsn GenerateLbsn(const LbsnProfile& profile, util::Rng& rng);

/// One imputation problem extracted from a synthetic dataset: an observed
/// context with one hidden true visit to recover.
struct ImputationTask {
  int32_t user = 0;
  /// Index into the *true* sequence of the hidden visit.
  int true_index = 0;
  int64_t timestamp = 0;
  int32_t true_poi = 0;
};

/// All hidden interior visits (never the first or last of a user) — the
/// evaluation set for imputation accuracy.
std::vector<ImputationTask> MakeImputationTasks(const SyntheticLbsn& lbsn);

}  // namespace pa::poi

#endif  // PA_POI_SYNTHETIC_H_
