#ifndef PA_POI_DATASET_H_
#define PA_POI_DATASET_H_

#include <string>
#include <vector>

#include "poi/checkin.h"
#include "poi/poi_table.h"

namespace pa::poi {

/// A check-in dataset: the POI universe plus one chronological check-in
/// sequence per user (user ids are dense `[0, num_users)`).
struct Dataset {
  PoiTable pois;
  std::vector<CheckinSequence> sequences;

  int num_users() const { return static_cast<int>(sequences.size()); }
  int num_pois() const { return pois.size(); }
  int64_t num_checkins() const;

  /// Fraction of the user × POI matrix with at least one check-in — the
  /// "density" the paper reports (0.012% Gowalla, 0.209% Brightkite).
  double Density() const;

  /// Recomputes POI popularity counters from the sequences.
  void RecountPopularity();

  /// Asserts structural sanity (chronological sequences, ids in range);
  /// returns false with a reason when violated.
  bool Validate(std::string* why = nullptr) const;
};

/// Aggregate statistics used by dataset reports and tests.
struct DatasetStats {
  int num_users = 0;
  int num_pois = 0;
  int64_t num_checkins = 0;
  double density = 0.0;
  double mean_seq_len = 0.0;
  double mean_interval_hours = 0.0;    // Mean gap between check-ins.
  double median_interval_hours = 0.0;
  double mean_hop_km = 0.0;            // Mean consecutive-check-in distance.
};

DatasetStats ComputeStats(const Dataset& dataset);
std::string FormatStats(const DatasetStats& stats);

/// Per-user chronological split (§IV-E): first 80% of each user's check-ins
/// train, rest test; the last 10% of the training portion is validation.
struct Split {
  std::vector<CheckinSequence> train;
  std::vector<CheckinSequence> validation;
  std::vector<CheckinSequence> test;
};

Split ChronologicalSplit(const Dataset& dataset, double train_fraction = 0.8,
                         double validation_fraction_of_train = 0.1);

/// Builds a dataset that reuses `pois` with the given training sequences
/// (the augmenters return these: train sequences change, POIs don't).
Dataset WithSequences(const Dataset& base,
                      std::vector<CheckinSequence> sequences);

}  // namespace pa::poi

#endif  // PA_POI_DATASET_H_
