#ifndef PA_POI_SLOT_GRID_H_
#define PA_POI_SLOT_GRID_H_

#include <cstdint>
#include <vector>

#include "poi/checkin.h"

namespace pa::poi {

/// One position on the evenly-spaced timeline of a check-in sequence
/// (paper Fig. 1). A slot either carries an observed check-in or is a
/// *missing* slot the augmenter must fill.
struct Slot {
  int64_t timestamp = 0;
  /// Index of the observed check-in occupying the slot, or -1 when missing.
  int observed_index = -1;

  bool missing() const { return observed_index < 0; }
};

/// Builds the evenly-spaced timeline for an observed sequence.
///
/// Between each consecutive observed pair (t_i, t_j), the number of missing
/// slots is round((t_j - t_i) / interval) - 1, placed evenly inside the gap.
/// The paper's Fig. 1 example — check-ins at 8 a.m., 10 a.m. and 7 p.m. with
/// a 3-hour interval — yields missing slots at 1 p.m. and 4 p.m. (the
/// 8→10 a.m. gap is shorter than the interval and gets none).
///
/// `max_missing_per_gap` caps imputation inside pathologically long gaps
/// (e.g. a user silent for a month); 0 means no cap.
std::vector<Slot> BuildSlotTimeline(const CheckinSequence& seq,
                                    int64_t interval_seconds,
                                    int max_missing_per_gap = 0);

/// Number of missing slots in a timeline.
int CountMissing(const std::vector<Slot>& timeline);

}  // namespace pa::poi

#endif  // PA_POI_SLOT_GRID_H_
