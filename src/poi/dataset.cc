#include "poi/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace pa::poi {

bool IsChronological(const CheckinSequence& seq) {
  for (size_t i = 1; i < seq.size(); ++i) {
    if (seq[i].timestamp < seq[i - 1].timestamp) return false;
  }
  return true;
}

void SortChronological(CheckinSequence& seq) {
  std::stable_sort(seq.begin(), seq.end(),
                   [](const Checkin& a, const Checkin& b) {
                     return a.timestamp < b.timestamp;
                   });
}

int64_t Dataset::num_checkins() const {
  int64_t n = 0;
  for (const auto& seq : sequences) n += static_cast<int64_t>(seq.size());
  return n;
}

double Dataset::Density() const {
  if (num_users() == 0 || num_pois() == 0) return 0.0;
  std::set<std::pair<int32_t, int32_t>> pairs;
  for (const auto& seq : sequences) {
    for (const Checkin& c : seq) pairs.insert({c.user, c.poi});
  }
  return static_cast<double>(pairs.size()) /
         (static_cast<double>(num_users()) * num_pois());
}

void Dataset::RecountPopularity() {
  pois.ResetPopularity();
  for (const auto& seq : sequences) {
    for (const Checkin& c : seq) pois.AddPopularity(c.poi, 1);
  }
}

bool Dataset::Validate(std::string* why) const {
  for (int u = 0; u < num_users(); ++u) {
    if (!IsChronological(sequences[u])) {
      if (why) *why = "sequence of user " + std::to_string(u) +
                      " not chronological";
      return false;
    }
    for (const Checkin& c : sequences[u]) {
      if (c.user != u) {
        if (why) *why = "check-in user id mismatch";
        return false;
      }
      if (c.poi < 0 || c.poi >= num_pois()) {
        if (why) *why = "POI id out of range";
        return false;
      }
    }
  }
  return true;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats s;
  s.num_users = dataset.num_users();
  s.num_pois = dataset.num_pois();
  s.num_checkins = dataset.num_checkins();
  s.density = dataset.Density();

  std::vector<double> intervals;
  double hop_sum = 0.0;
  int64_t hop_count = 0;
  for (const auto& seq : dataset.sequences) {
    for (size_t i = 1; i < seq.size(); ++i) {
      intervals.push_back(
          static_cast<double>(seq[i].timestamp - seq[i - 1].timestamp) /
          3600.0);
      hop_sum += dataset.pois.DistanceKm(seq[i - 1].poi, seq[i].poi);
      ++hop_count;
    }
  }
  if (s.num_users > 0) {
    s.mean_seq_len =
        static_cast<double>(s.num_checkins) / static_cast<double>(s.num_users);
  }
  if (!intervals.empty()) {
    double sum = 0.0;
    for (double v : intervals) sum += v;
    s.mean_interval_hours = sum / static_cast<double>(intervals.size());
    std::nth_element(intervals.begin(),
                     intervals.begin() + intervals.size() / 2,
                     intervals.end());
    s.median_interval_hours = intervals[intervals.size() / 2];
  }
  if (hop_count > 0) s.mean_hop_km = hop_sum / static_cast<double>(hop_count);
  return s;
}

std::string FormatStats(const DatasetStats& s) {
  std::ostringstream os;
  os << "users=" << s.num_users << " pois=" << s.num_pois
     << " checkins=" << s.num_checkins << " density=" << s.density * 100.0
     << "% mean_seq_len=" << s.mean_seq_len
     << " mean_gap_h=" << s.mean_interval_hours
     << " median_gap_h=" << s.median_interval_hours
     << " mean_hop_km=" << s.mean_hop_km;
  return os.str();
}

Split ChronologicalSplit(const Dataset& dataset, double train_fraction,
                         double validation_fraction_of_train) {
  Split split;
  split.train.resize(dataset.num_users());
  split.validation.resize(dataset.num_users());
  split.test.resize(dataset.num_users());
  for (int u = 0; u < dataset.num_users(); ++u) {
    const CheckinSequence& seq = dataset.sequences[u];
    const int n = static_cast<int>(seq.size());
    const int train_end = static_cast<int>(std::floor(n * train_fraction));
    const int val_len = static_cast<int>(
        std::floor(train_end * validation_fraction_of_train));
    const int train_len = train_end - val_len;
    split.train[u].assign(seq.begin(), seq.begin() + train_len);
    split.validation[u].assign(seq.begin() + train_len,
                               seq.begin() + train_end);
    split.test[u].assign(seq.begin() + train_end, seq.end());
  }
  return split;
}

Dataset WithSequences(const Dataset& base,
                      std::vector<CheckinSequence> sequences) {
  Dataset out;
  out.pois = base.pois;
  out.sequences = std::move(sequences);
  out.RecountPopularity();
  return out;
}

}  // namespace pa::poi
