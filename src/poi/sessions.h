#ifndef PA_POI_SESSIONS_H_
#define PA_POI_SESSIONS_H_

#include <cstdint>
#include <vector>

#include "poi/checkin.h"

namespace pa::poi {

/// Sessionization: splits a user's chronological check-in sequence into
/// *sessions* wherever the gap between consecutive check-ins exceeds
/// `max_gap_seconds`. LBSN pipelines commonly train sequence models on
/// sessions rather than whole histories; the bursty observation process of
/// the synthetic generator makes the session structure visible (bursts
/// become sessions).
std::vector<CheckinSequence> SplitSessions(const CheckinSequence& seq,
                                           int64_t max_gap_seconds);

/// Summary of a sessionized history.
struct SessionStats {
  int num_sessions = 0;
  double mean_length = 0.0;  // Check-ins per session.
  int max_length = 0;
  double mean_span_hours = 0.0;  // First-to-last time span per session.
};

SessionStats ComputeSessionStats(
    const std::vector<CheckinSequence>& sessions);

}  // namespace pa::poi

#endif  // PA_POI_SESSIONS_H_
