#ifndef PA_POI_CHECKIN_H_
#define PA_POI_CHECKIN_H_

#include <cstdint>
#include <vector>

namespace pa::poi {

/// One check-in record: the user-place-time tuple (u, l, t) of §III-A.
struct Checkin {
  int32_t user = 0;
  int32_t poi = 0;
  int64_t timestamp = 0;  // Seconds since epoch.
  /// True for records inserted by an augmenter rather than observed; lets
  /// downstream code and the visualisation benches distinguish the "black"
  /// and "red" icons of paper Figs. 6–7.
  bool imputed = false;

  friend bool operator==(const Checkin& a, const Checkin& b) {
    return a.user == b.user && a.poi == b.poi && a.timestamp == b.timestamp;
  }
};

/// A user's check-in sequence ordered by timestamp.
using CheckinSequence = std::vector<Checkin>;

/// Returns true if the sequence is sorted by non-decreasing timestamp.
bool IsChronological(const CheckinSequence& seq);

/// Sorts a sequence chronologically (stable, so equal-time records keep
/// their relative order).
void SortChronological(CheckinSequence& seq);

}  // namespace pa::poi

#endif  // PA_POI_CHECKIN_H_
