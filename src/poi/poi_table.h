#ifndef PA_POI_POI_TABLE_H_
#define PA_POI_POI_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "geo/latlng.h"
#include "geo/rtree.h"

namespace pa::poi {

/// The POI universe: coordinates and (check-in) popularity per POI id.
/// POI ids are dense `[0, size)`.
class PoiTable {
 public:
  PoiTable() = default;
  explicit PoiTable(std::vector<geo::LatLng> coords)
      : coords_(std::move(coords)), popularity_(coords_.size(), 0) {}

  /// Copying copies the POI data but not the lazily built spatial index
  /// (the copy rebuilds it on first use); the R-tree itself is move-only.
  PoiTable(const PoiTable& other)
      : coords_(other.coords_), popularity_(other.popularity_) {}
  PoiTable& operator=(const PoiTable& other) {
    if (this != &other) {
      coords_ = other.coords_;
      popularity_ = other.popularity_;
      index_ = geo::RTree();
      index_built_.store(false, std::memory_order_relaxed);
    }
    return *this;
  }
  /// Moves are manual because the index-build mutex is neither movable nor
  /// needed by the destination (a fresh one is constructed). Moving a table
  /// that other threads are concurrently querying is a caller bug.
  PoiTable(PoiTable&& other) noexcept
      : coords_(std::move(other.coords_)),
        popularity_(std::move(other.popularity_)),
        index_(std::move(other.index_)),
        index_built_(other.index_built_.load(std::memory_order_relaxed)) {}
  PoiTable& operator=(PoiTable&& other) noexcept {
    if (this != &other) {
      coords_ = std::move(other.coords_);
      popularity_ = std::move(other.popularity_);
      index_ = std::move(other.index_);
      index_built_.store(other.index_built_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    return *this;
  }

  int32_t Add(const geo::LatLng& coord) {
    coords_.push_back(coord);
    popularity_.push_back(0);
    index_built_.store(false, std::memory_order_relaxed);
    return static_cast<int32_t>(coords_.size()) - 1;
  }

  int size() const { return static_cast<int>(coords_.size()); }
  const geo::LatLng& coord(int32_t poi) const { return coords_[poi]; }
  int64_t popularity(int32_t poi) const { return popularity_[poi]; }
  void AddPopularity(int32_t poi, int64_t delta) { popularity_[poi] += delta; }
  void ResetPopularity() { popularity_.assign(coords_.size(), 0); }

  /// Distance in km between two POIs.
  double DistanceKm(int32_t a, int32_t b) const {
    return geo::HaversineKm(coords_[a], coords_[b]);
  }

  /// Spatial index over all POIs; built lazily, rebuilt after Add. The
  /// build is guarded by a mutex, so concurrent readers (parallel eval /
  /// generation sessions) may race to the first query safely. `Add` itself
  /// is NOT thread-safe; mutate the table before sharing it.
  const geo::RTree& SpatialIndex() const;

  /// POI nearest to `p`; -1 on an empty table.
  int32_t NearestPoi(const geo::LatLng& p) const;

  /// Most popular POI within `radius_km` of `p`; falls back to the nearest
  /// POI when the radius is empty. -1 on an empty table. This is exactly the
  /// query the POP linear-interpolation baseline issues (§IV-C).
  int32_t MostPopularWithin(const geo::LatLng& p, double radius_km) const;

  /// POIs within `radius_km` of the given POI (excluding itself) — the
  /// localized-region candidate set of FPMC-LR.
  std::vector<int32_t> PoisWithin(int32_t poi, double radius_km) const;

 private:
  std::vector<geo::LatLng> coords_;
  std::vector<int64_t> popularity_;
  mutable std::mutex index_mu_;  // Guards the lazy build of index_.
  mutable geo::RTree index_;
  mutable std::atomic<bool> index_built_{false};
};

}  // namespace pa::poi

#endif  // PA_POI_POI_TABLE_H_
