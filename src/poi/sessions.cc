#include "poi/sessions.h"

#include <algorithm>

namespace pa::poi {

std::vector<CheckinSequence> SplitSessions(const CheckinSequence& seq,
                                           int64_t max_gap_seconds) {
  std::vector<CheckinSequence> sessions;
  if (seq.empty()) return sessions;
  sessions.emplace_back();
  sessions.back().push_back(seq[0]);
  for (size_t i = 1; i < seq.size(); ++i) {
    if (seq[i].timestamp - seq[i - 1].timestamp > max_gap_seconds) {
      sessions.emplace_back();
    }
    sessions.back().push_back(seq[i]);
  }
  return sessions;
}

SessionStats ComputeSessionStats(
    const std::vector<CheckinSequence>& sessions) {
  SessionStats stats;
  stats.num_sessions = static_cast<int>(sessions.size());
  if (sessions.empty()) return stats;
  int64_t total = 0;
  double span_sum = 0.0;
  for (const CheckinSequence& s : sessions) {
    total += static_cast<int64_t>(s.size());
    stats.max_length = std::max(stats.max_length, static_cast<int>(s.size()));
    if (!s.empty()) {
      span_sum += static_cast<double>(s.back().timestamp -
                                      s.front().timestamp) /
                  3600.0;
    }
  }
  stats.mean_length =
      static_cast<double>(total) / static_cast<double>(sessions.size());
  stats.mean_span_hours = span_sum / static_cast<double>(sessions.size());
  return stats;
}

}  // namespace pa::poi
