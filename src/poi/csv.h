#ifndef PA_POI_CSV_H_
#define PA_POI_CSV_H_

#include <iosfwd>
#include <string>

#include "poi/dataset.h"

namespace pa::poi {

/// Check-in file I/O in the SNAP LBSN layout used by the public Gowalla and
/// Brightkite dumps: one record per line,
///
///     user <sep> timestamp <sep> latitude <sep> longitude <sep> location_id
///
/// with tab or comma separators. Timestamps are integral seconds (the SNAP
/// ISO-8601 strings are assumed pre-converted; the synthetic generators emit
/// seconds directly). User and location ids in the file may be sparse; the
/// loader densifies both and keeps per-POI coordinates (first occurrence
/// wins; the dumps repeat identical coordinates per location id).

/// Writes `dataset` in the canonical comma-separated layout.
bool SaveCheckinsCsv(std::ostream& os, const Dataset& dataset);
bool SaveCheckinsCsvFile(const std::string& path, const Dataset& dataset);

/// Parses a check-in file; returns false on malformed input.
bool LoadCheckinsCsv(std::istream& is, Dataset* dataset, std::string* why);
bool LoadCheckinsCsvFile(const std::string& path, Dataset* dataset,
                         std::string* why);

}  // namespace pa::poi

#endif  // PA_POI_CSV_H_
