#include "poi/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "geo/latlng.h"
#include "util/thread_pool.h"

namespace pa::poi {

LbsnProfile GowallaProfile() {
  LbsnProfile p;
  p.name = "gowalla";
  p.num_pois = 2600;
  p.num_cities = 5;
  p.map_extent_km = 400.0;
  p.city_stddev_km = 4.0;
  p.zipf_exponent = 1.0;
  p.num_users = 80;
  p.min_visits = 170;
  p.max_visits = 240;
  p.routine_length = 6;
  p.home_interleave = 0.45;
  p.routine_prob = 0.6;
  p.home_prob = 0.1;
  p.explore_radius_km = 2.0;
  p.routine_radius_km = 3.0;
  p.visit_interval_seconds = 3 * 3600;
  p.interval_jitter = 0.05;
  p.observe_active = 0.85;
  p.observe_silent = 0.08;
  p.mean_burst_visits = 6.0;
  p.mean_silence_visits = 7.0;
  return p;
}

LbsnProfile BrightkiteProfile() {
  LbsnProfile p;
  p.name = "brightkite";
  p.num_pois = 2000;
  p.num_cities = 4;
  p.map_extent_km = 300.0;
  p.city_stddev_km = 4.0;
  p.zipf_exponent = 1.2;
  p.num_users = 80;
  p.min_visits = 180;
  p.max_visits = 260;
  p.routine_length = 4;
  p.home_interleave = 0.7;  // Brightkite users overwhelmingly revisit home.
  p.routine_prob = 0.55;
  p.home_prob = 0.25;
  p.explore_radius_km = 1.8;
  p.routine_radius_km = 2.5;
  p.visit_interval_seconds = 3 * 3600;
  p.interval_jitter = 0.05;
  p.observe_active = 0.9;
  p.observe_silent = 0.15;
  p.mean_burst_visits = 8.0;
  p.mean_silence_visits = 4.0;
  return p;
}

namespace {

constexpr double kKmPerDegLat = 111.195;  // 2*pi*R/360 at mean radius.

// Converts a local (east_km, north_km) offset around `origin` to LatLng.
geo::LatLng OffsetKm(const geo::LatLng& origin, double east_km,
                     double north_km) {
  const double lat = origin.lat + north_km / kKmPerDegLat;
  const double cos_lat =
      std::max(0.05, std::cos(origin.lat * 3.14159265358979 / 180.0));
  const double lng = origin.lng + east_km / (kKmPerDegLat * cos_lat);
  return {lat, lng};
}

struct World {
  PoiTable pois;
  std::vector<double> base_popularity;     // Zipf weights.
  std::vector<int> poi_city;               // City id per POI.
  std::vector<std::vector<int32_t>> city_pois;
};

World BuildWorld(const LbsnProfile& profile, util::Rng& rng) {
  World world;
  // Anchor the map at a plausible mid-latitude origin.
  const geo::LatLng origin{37.0, -95.0};

  std::vector<geo::LatLng> cities;
  cities.reserve(profile.num_cities);
  for (int c = 0; c < profile.num_cities; ++c) {
    cities.push_back(OffsetKm(origin,
                              rng.Uniform(0.0, profile.map_extent_km),
                              rng.Uniform(0.0, profile.map_extent_km)));
  }

  world.city_pois.resize(profile.num_cities);
  world.base_popularity.resize(profile.num_pois);
  world.poi_city.resize(profile.num_pois);
  for (int i = 0; i < profile.num_pois; ++i) {
    const int c = rng.RandInt(0, profile.num_cities - 1);
    const geo::LatLng coord =
        OffsetKm(cities[c], rng.Normal(0.0, profile.city_stddev_km),
                 rng.Normal(0.0, profile.city_stddev_km));
    const int32_t id = world.pois.Add(coord);
    world.poi_city[id] = c;
    world.city_pois[c].push_back(id);
    // Zipf-like base popularity over a random permutation implied by id.
    world.base_popularity[id] =
        1.0 / std::pow(static_cast<double>(i + 1), profile.zipf_exponent);
  }
  return world;
}

// Picks a POI near `from` within the exploration radius, weighted by base
// popularity; falls back to the nearest few POIs when the radius is empty.
int32_t ExploreNear(const World& world, int32_t from, double radius_km,
                    util::Rng& rng) {
  auto near = world.pois.SpatialIndex().WithinRadius(
      world.pois.coord(from), radius_km);
  std::vector<double> weights;
  std::vector<int32_t> ids;
  for (const auto& n : near) {
    if (n.id == from) continue;
    ids.push_back(n.id);
    weights.push_back(world.base_popularity[n.id]);
  }
  if (ids.empty()) {
    auto nn = world.pois.SpatialIndex().Nearest(world.pois.coord(from), 4);
    for (const auto& n : nn) {
      if (n.id != from) return n.id;
    }
    return from;
  }
  return ids[static_cast<size_t>(rng.Categorical(weights))];
}

// One user's trajectory + observation mask, written into the user's own
// output slots. Reads only shared immutable state (the world) and the
// user-private `rng`, so users can run concurrently on the pool.
void GenerateUser(const LbsnProfile& profile, const World& world, int u,
                  util::Rng& rng, CheckinSequence* out_visits,
                  std::vector<bool>* out_mask,
                  CheckinSequence* out_observed) {
  // Home city and anchor.
  const int city = rng.RandInt(0, profile.num_cities - 1);
  const auto& city_pois = world.city_pois[city];
  if (city_pois.empty()) return;
  const int32_t home =
      city_pois[static_cast<size_t>(rng.RandInt(
          0, static_cast<int>(city_pois.size()) - 1))];

  // Personal routine: a fixed cycle of POIs near home (users' daily lives
  // are spatially compact). The cycle is the learnable, *non-collinear*
  // transition pattern.
  std::vector<int32_t> routine;
  routine.push_back(home);
  auto near_home = world.pois.SpatialIndex().WithinRadius(
      world.pois.coord(home), profile.routine_radius_km);
  for (int r = 1; r < profile.routine_length; ++r) {
    int32_t stop;
    if (near_home.size() > 1) {
      stop = near_home[static_cast<size_t>(rng.RandInt(
                           0, static_cast<int>(near_home.size()) - 1))]
                 .id;
    } else {
      stop = city_pois[static_cast<size_t>(
          rng.RandInt(0, static_cast<int>(city_pois.size()) - 1))];
    }
    routine.push_back(stop);
    // Interleaving home makes P(next | home) multi-modal; see LbsnProfile.
    if (rng.Bernoulli(profile.home_interleave)) routine.push_back(home);
  }

  const int num_visits = rng.RandInt(profile.min_visits, profile.max_visits);
  CheckinSequence visits;
  visits.reserve(static_cast<size_t>(num_visits));

  int32_t current = home;
  int routine_pos = 0;
  int64_t t = 1262304000 +  // 2010-01-01, in the datasets' era.
              static_cast<int64_t>(rng.RandInt(0, 30 * 24 * 3600));
  for (int v = 0; v < num_visits; ++v) {
    Checkin c;
    c.user = u;
    c.poi = current;
    c.timestamp = t;
    visits.push_back(c);

    // Next step of the mobility model.
    const double roll = rng.Uniform();
    if (roll < profile.routine_prob) {
      routine_pos = (routine_pos + 1) % static_cast<int>(routine.size());
      current = routine[static_cast<size_t>(routine_pos)];
    } else if (roll < profile.routine_prob + profile.home_prob) {
      current = home;
      routine_pos = 0;
    } else {
      current = ExploreNear(world, current, profile.explore_radius_km, rng);
    }

    const double jitter =
        1.0 + profile.interval_jitter * rng.Uniform(-1.0, 1.0);
    t += static_cast<int64_t>(profile.visit_interval_seconds * jitter);
  }

  // Observation: a two-phase (bursty) process — active phases check in
  // most visits, silent phases almost none; phase lengths are geometric.
  // The first and last visits are always kept so every observed sequence
  // spans the full time range.
  std::vector<bool> mask(visits.size(), false);
  bool active = rng.Bernoulli(0.5);
  for (size_t i = 0; i < visits.size(); ++i) {
    const double flip_prob =
        active ? 1.0 / std::max(1.0, profile.mean_burst_visits)
               : 1.0 / std::max(1.0, profile.mean_silence_visits);
    if (rng.Bernoulli(flip_prob)) active = !active;
    const double rate =
        active ? profile.observe_active : profile.observe_silent;
    mask[i] =
        i == 0 || i + 1 == visits.size() || rng.Bernoulli(rate);
    if (mask[i]) out_observed->push_back(visits[i]);
  }
  *out_visits = std::move(visits);
  *out_mask = std::move(mask);
}

}  // namespace

SyntheticLbsn GenerateLbsn(const LbsnProfile& profile, util::Rng& rng) {
  World world = BuildWorld(profile, rng);
  // Force the lazy spatial index now, while still single-threaded; the
  // parallel region below only reads it.
  world.pois.SpatialIndex();

  SyntheticLbsn out;
  out.true_visits.resize(profile.num_users);
  out.observed_mask.resize(profile.num_users);
  out.observed.pois = world.pois;
  out.observed.sequences.resize(profile.num_users);

  // One draw from the caller's rng roots every user's private stream, so
  // the dataset is a pure function of the seed: each user writes only its
  // own output slots, whichever thread runs it.
  const uint64_t user_seed_base = rng.engine()();
  util::GlobalPool().ParallelFor(
      0, profile.num_users, /*grain=*/1, [&](int64_t u) {
        util::Rng user_rng(
            util::StreamSeed(user_seed_base, static_cast<uint64_t>(u)));
        const size_t us = static_cast<size_t>(u);
        GenerateUser(profile, world, static_cast<int>(u), user_rng,
                     &out.true_visits[us], &out.observed_mask[us],
                     &out.observed.sequences[us]);
      });

  out.observed.RecountPopularity();
  return out;
}

std::vector<ImputationTask> MakeImputationTasks(const SyntheticLbsn& lbsn) {
  std::vector<ImputationTask> tasks;
  for (size_t u = 0; u < lbsn.true_visits.size(); ++u) {
    const auto& visits = lbsn.true_visits[u];
    const auto& mask = lbsn.observed_mask[u];
    for (size_t i = 1; i + 1 < visits.size(); ++i) {
      if (!mask[i]) {
        tasks.push_back({static_cast<int32_t>(u), static_cast<int>(i),
                         visits[i].timestamp, visits[i].poi});
      }
    }
  }
  return tasks;
}

}  // namespace pa::poi
