#include "poi/csv.h"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <system_error>
#include <vector>

namespace pa::poi {

bool SaveCheckinsCsv(std::ostream& os, const Dataset& dataset) {
  os << std::setprecision(12);  // Coordinates survive a round trip.
  for (const auto& seq : dataset.sequences) {
    for (const Checkin& c : seq) {
      const geo::LatLng& p = dataset.pois.coord(c.poi);
      os << c.user << ',' << c.timestamp << ',' << p.lat << ',' << p.lng
         << ',' << c.poi << '\n';
    }
  }
  return static_cast<bool>(os);
}

bool SaveCheckinsCsvFile(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path);
  return os && SaveCheckinsCsv(os, dataset);
}

namespace {

// Splits on tab if present, otherwise comma.
std::vector<std::string> SplitFields(const std::string& line) {
  const char sep = line.find('\t') != std::string::npos ? '\t' : ',';
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) fields.push_back(field);
  return fields;
}

// Parses the ENTIRE field as a number. Unlike std::stoll/std::stod — which
// accept leading whitespace and silently ignore trailing garbage, so a
// corrupt field like "12abc" used to load as 12 — this rejects partial
// matches, empty fields, and out-of-range values.
template <typename T>
bool ParseField(const std::string& field, T* out) {
  const char* first = field.data();
  const char* last = field.data() + field.size();
  if (first == last) return false;
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

constexpr const char* kFieldNames[5] = {"user", "timestamp", "lat", "lng",
                                        "poi"};

void FieldError(std::string* why, int lineno, int field_idx,
                const std::string& field) {
  if (why == nullptr) return;
  *why = "line " + std::to_string(lineno) + ": field " +
         std::to_string(field_idx + 1) + " (" + kFieldNames[field_idx] +
         ") is not a valid number: \"" + field + "\"";
}

}  // namespace

bool LoadCheckinsCsv(std::istream& is, Dataset* dataset, std::string* why) {
  struct RawRecord {
    int64_t user, timestamp, poi;
    geo::LatLng coord;
  };
  std::vector<RawRecord> records;
  std::map<int64_t, int32_t> user_ids;
  std::map<int64_t, int32_t> poi_ids;
  std::map<int64_t, geo::LatLng> poi_coords;

  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Files written on Windows (or fetched in binary mode) end lines with
    // \r\n; getline leaves the \r on the last field, which used to make
    // every row of a CRLF file fail to parse.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitFields(line);
    if (fields.size() != 5) {
      if (why) {
        *why = "line " + std::to_string(lineno) + ": expected 5 fields, got " +
               std::to_string(fields.size());
      }
      return false;
    }
    RawRecord r;
    int64_t* const int_slots[5] = {&r.user, &r.timestamp, nullptr, nullptr,
                                   &r.poi};
    double* const real_slots[5] = {nullptr, nullptr, &r.coord.lat,
                                   &r.coord.lng, nullptr};
    bool ok = true;
    for (int f = 0; f < 5 && ok; ++f) {
      ok = int_slots[f] != nullptr ? ParseField(fields[f], int_slots[f])
                                   : ParseField(fields[f], real_slots[f]);
      if (!ok) FieldError(why, lineno, f, fields[f]);
    }
    if (!ok) return false;
    records.push_back(r);
    user_ids.emplace(r.user, 0);
    if (poi_ids.emplace(r.poi, 0).second) poi_coords[r.poi] = r.coord;
  }

  // Densify ids in sorted order for determinism.
  int32_t next = 0;
  for (auto& [raw, dense] : user_ids) dense = next++;
  next = 0;
  for (auto& [raw, dense] : poi_ids) dense = next++;

  Dataset out;
  std::vector<geo::LatLng> coords(poi_ids.size());
  for (const auto& [raw, dense] : poi_ids) coords[dense] = poi_coords[raw];
  out.pois = PoiTable(std::move(coords));
  out.sequences.resize(user_ids.size());
  for (const RawRecord& r : records) {
    Checkin c;
    c.user = user_ids[r.user];
    c.poi = poi_ids[r.poi];
    c.timestamp = r.timestamp;
    out.sequences[c.user].push_back(c);
  }
  for (auto& seq : out.sequences) SortChronological(seq);
  out.RecountPopularity();
  *dataset = std::move(out);
  return true;
}

bool LoadCheckinsCsvFile(const std::string& path, Dataset* dataset,
                         std::string* why) {
  std::ifstream is(path);
  if (!is) {
    if (why) *why = "cannot open " + path;
    return false;
  }
  return LoadCheckinsCsv(is, dataset, why);
}

}  // namespace pa::poi
