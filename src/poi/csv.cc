#include "poi/csv.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace pa::poi {

bool SaveCheckinsCsv(std::ostream& os, const Dataset& dataset) {
  os << std::setprecision(12);  // Coordinates survive a round trip.
  for (const auto& seq : dataset.sequences) {
    for (const Checkin& c : seq) {
      const geo::LatLng& p = dataset.pois.coord(c.poi);
      os << c.user << ',' << c.timestamp << ',' << p.lat << ',' << p.lng
         << ',' << c.poi << '\n';
    }
  }
  return static_cast<bool>(os);
}

bool SaveCheckinsCsvFile(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path);
  return os && SaveCheckinsCsv(os, dataset);
}

namespace {

// Splits on tab if present, otherwise comma.
std::vector<std::string> SplitFields(const std::string& line) {
  const char sep = line.find('\t') != std::string::npos ? '\t' : ',';
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) fields.push_back(field);
  return fields;
}

}  // namespace

bool LoadCheckinsCsv(std::istream& is, Dataset* dataset, std::string* why) {
  struct RawRecord {
    int64_t user, timestamp, poi;
    geo::LatLng coord;
  };
  std::vector<RawRecord> records;
  std::map<int64_t, int32_t> user_ids;
  std::map<int64_t, int32_t> poi_ids;
  std::map<int64_t, geo::LatLng> poi_coords;

  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitFields(line);
    if (fields.size() != 5) {
      if (why) {
        *why = "line " + std::to_string(lineno) + ": expected 5 fields, got " +
               std::to_string(fields.size());
      }
      return false;
    }
    try {
      RawRecord r;
      r.user = std::stoll(fields[0]);
      r.timestamp = std::stoll(fields[1]);
      r.coord.lat = std::stod(fields[2]);
      r.coord.lng = std::stod(fields[3]);
      r.poi = std::stoll(fields[4]);
      records.push_back(r);
      user_ids.emplace(r.user, 0);
      if (poi_ids.emplace(r.poi, 0).second) poi_coords[r.poi] = r.coord;
    } catch (const std::exception& e) {
      if (why) *why = "line " + std::to_string(lineno) + ": " + e.what();
      return false;
    }
  }

  // Densify ids in sorted order for determinism.
  int32_t next = 0;
  for (auto& [raw, dense] : user_ids) dense = next++;
  next = 0;
  for (auto& [raw, dense] : poi_ids) dense = next++;

  Dataset out;
  std::vector<geo::LatLng> coords(poi_ids.size());
  for (const auto& [raw, dense] : poi_ids) coords[dense] = poi_coords[raw];
  out.pois = PoiTable(std::move(coords));
  out.sequences.resize(user_ids.size());
  for (const RawRecord& r : records) {
    Checkin c;
    c.user = user_ids[r.user];
    c.poi = poi_ids[r.poi];
    c.timestamp = r.timestamp;
    out.sequences[c.user].push_back(c);
  }
  for (auto& seq : out.sequences) SortChronological(seq);
  out.RecountPopularity();
  *dataset = std::move(out);
  return true;
}

bool LoadCheckinsCsvFile(const std::string& path, Dataset* dataset,
                         std::string* why) {
  std::ifstream is(path);
  if (!is) {
    if (why) *why = "cannot open " + path;
    return false;
  }
  return LoadCheckinsCsv(is, dataset, why);
}

}  // namespace pa::poi
