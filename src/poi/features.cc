#include "poi/features.h"

#include <algorithm>

namespace pa::poi {

StepFeatures ComputeStepFeatures(const CheckinSequence& seq, size_t i,
                                 const PoiTable& pois,
                                 const FeatureScale& scale) {
  StepFeatures f;
  if (i == 0 || i >= seq.size()) return f;
  const double hours =
      static_cast<double>(seq[i].timestamp - seq[i - 1].timestamp) / 3600.0;
  const double km = pois.DistanceKm(seq[i - 1].poi, seq[i].poi);
  // Clamp so pathological month-long gaps don't dominate the input scale.
  f.delta_t = static_cast<float>(std::min(hours / scale.hours_scale, 10.0));
  f.delta_d = static_cast<float>(std::min(km / scale.km_scale, 10.0));
  return f;
}

std::vector<StepFeatures> ComputeSequenceFeatures(const CheckinSequence& seq,
                                                  const PoiTable& pois,
                                                  const FeatureScale& scale) {
  std::vector<StepFeatures> out(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    out[i] = ComputeStepFeatures(seq, i, pois, scale);
  }
  return out;
}

}  // namespace pa::poi
