#ifndef PA_NN_MODULE_H_
#define PA_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace pa::nn {

/// Base class for trainable components.
///
/// A module owns leaf parameter tensors and exposes them for optimizers and
/// serialization. Forward computation is defined per-module (signatures
/// differ: cells take states, attention takes windows), so the base class
/// carries only the parameter protocol.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, in a stable order (required for Save/Load).
  virtual std::vector<tensor::Tensor> Parameters() const = 0;

  /// Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const tensor::Tensor& p : Parameters()) n += p.numel();
    return n;
  }
};

/// Concatenates the parameter lists of several modules.
inline std::vector<tensor::Tensor> ConcatParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<tensor::Tensor> all;
  for (const Module* m : modules) {
    for (const tensor::Tensor& p : m->Parameters()) all.push_back(p);
  }
  return all;
}

}  // namespace pa::nn

#endif  // PA_NN_MODULE_H_
