#include "nn/gru_cell.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

namespace {

using tensor::Tensor;

Tensor OneMinus(const Tensor& x) {
  return tensor::AddScalar(tensor::Scale(x, -1.0f), 1.0f);
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_x_(tensor::XavierInit({input_dim, 3 * hidden_dim}, rng)),
      w_h_(tensor::XavierInit({hidden_dim, 3 * hidden_dim}, rng)),
      b_(tensor::Tensor::Zeros({1, 3 * hidden_dim}, /*requires_grad=*/true)) {}

tensor::Tensor GruCell::Forward(const tensor::Tensor& x,
                                const tensor::Tensor& h) const {
  const int hd = hidden_dim_;
  // Compiled replay folds the constant `SliceCols(w_h_, 2h, h)` weight
  // block at compile time and reads the xg/hg gate slices as views.
  std::vector<Tensor> out = tensor::fusion::RunStep(
      site_, /*variant=*/0, {x, h}, {}, [&]() -> std::vector<Tensor> {
        Tensor xg = tensor::Add(tensor::MatMul(x, w_x_), b_);
        Tensor hg = tensor::MatMul(h, w_h_);

        Tensor z = tensor::Sigmoid(tensor::Add(tensor::SliceCols(xg, 0, hd),
                                               tensor::SliceCols(hg, 0, hd)));
        Tensor r = tensor::Sigmoid(tensor::Add(tensor::SliceCols(xg, hd, hd),
                                               tensor::SliceCols(hg, hd, hd)));
        // Candidate uses the reset-gated hidden state.
        Tensor n_h = tensor::MatMul(tensor::Mul(r, h),
                                    tensor::SliceCols(w_h_, 2 * hd, hd));
        Tensor n = tensor::Tanh(
            tensor::Add(tensor::SliceCols(xg, 2 * hd, hd), n_h));
        return {tensor::Add(tensor::Mul(OneMinus(z), n), tensor::Mul(z, h))};
      });
  return std::move(out[0]);
}

tensor::Tensor GruCell::InitialState(int batch) const {
  return tensor::Tensor::Zeros({batch, hidden_dim_});
}

std::vector<tensor::Tensor> GruCell::Parameters() const {
  return {w_x_, w_h_, b_};
}

}  // namespace pa::nn
