#ifndef PA_NN_ATTENTION_H_
#define PA_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Luong-style *local* attention with a Gaussian window (paper §III-D,
/// Eq. 4), used by the PA-Seq2Seq decoder.
///
/// When imputing the missing check-in at position t, the alignment centre
/// p_t is placed at the last check-in, and only encoder states inside the
/// window [p_t - D, p_t + D] participate. The alignment weight of source
/// position s is
///
///     a_t(s) = softmax_s(h_t^T W_a h_s) * exp(-(s - p_t)^2 / (2 sigma^2))
///
/// with sigma = D / 2 (Luong et al., 2015). The context vector c_t is the
/// a_t-weighted sum of windowed encoder states, and the attentional hidden
/// state is tanh(W_c [c_t ; h_t]).
class LocalAttention : public Module {
 public:
  /// `window` is the half-width D; the paper sets D = 10.
  LocalAttention(int decoder_dim, int encoder_dim, int window, util::Rng& rng);

  struct Output {
    tensor::Tensor context;             // [1, encoder_dim]
    tensor::Tensor weights;             // [1, window size actually used]
    tensor::Tensor attentional_hidden;  // [1, decoder_dim]
    int window_begin = 0;               // First source index in the window.
  };

  /// `h_t` is `[1, decoder_dim]`; `encoder_states[s]` is `[1, encoder_dim]`.
  /// `center` is p_t, clamped into the valid source range internally.
  Output Forward(const tensor::Tensor& h_t,
                 const std::vector<tensor::Tensor>& encoder_states,
                 int center) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int window() const { return window_; }

 private:
  int decoder_dim_;
  int encoder_dim_;
  int window_;
  tensor::Tensor w_a_;  // [decoder_dim, encoder_dim], general score.
  Linear combine_;      // [decoder_dim + encoder_dim] -> decoder_dim.
};

}  // namespace pa::nn

#endif  // PA_NN_ATTENTION_H_
