#include "nn/st_clstm.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

namespace {

using tensor::Tensor;

// 1 - x, elementwise.
Tensor OneMinus(const Tensor& x) {
  return tensor::AddScalar(tensor::Scale(x, -1.0f), 1.0f);
}

}  // namespace

StClstmCell::StClstmCell(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_x_(tensor::XavierInit({input_dim, 3 * hidden_dim}, rng)),
      w_h_(tensor::XavierInit({hidden_dim, 3 * hidden_dim}, rng)),
      b_(tensor::Tensor::Zeros({1, 3 * hidden_dim}, /*requires_grad=*/true)),
      w_xt_(tensor::XavierInit({input_dim, hidden_dim}, rng)),
      w_t_(tensor::UniformInit({1, hidden_dim}, 0.1f, rng)),
      b_t_(tensor::Tensor::Full({1, hidden_dim}, 1.0f,
                                /*requires_grad=*/true)),
      w_xd_(tensor::XavierInit({input_dim, hidden_dim}, rng)),
      w_d_(tensor::UniformInit({1, hidden_dim}, 0.1f, rng)),
      b_d_(tensor::Tensor::Full({1, hidden_dim}, 1.0f,
                                /*requires_grad=*/true)) {}

LstmState StClstmCell::Forward(const tensor::Tensor& x, const LstmState& prev,
                               float delta_t, float delta_d) const {
  const int h = hidden_dim_;
  // Δt/Δd are declared as per-step scalars: the recorder discriminates the
  // Scale immediates they feed from genuine constants across two traces,
  // then patches them into the replayed program each step.
  std::vector<Tensor> out = tensor::fusion::RunStep(
      site_, /*variant=*/0, {x, prev.h, prev.c}, {delta_t, delta_d},
      [&]() -> std::vector<Tensor> {
        Tensor gates = tensor::Add(
            tensor::Add(tensor::MatMul(x, w_x_), tensor::MatMul(prev.h, w_h_)),
            b_);
        Tensor i = tensor::Sigmoid(tensor::SliceCols(gates, 0, h));
        Tensor g = tensor::Tanh(tensor::SliceCols(gates, h, h));
        Tensor o = tensor::Sigmoid(tensor::SliceCols(gates, 2 * h, h));

        Tensor t_gate = tensor::Sigmoid(tensor::Add(
            tensor::Add(tensor::MatMul(x, w_xt_), tensor::Scale(w_t_, delta_t)),
            b_t_));
        Tensor d_gate = tensor::Sigmoid(tensor::Add(
            tensor::Add(tensor::MatMul(x, w_xd_), tensor::Scale(w_d_, delta_d)),
            b_d_));

        Tensor effective_i = tensor::Mul(tensor::Mul(i, t_gate), d_gate);
        Tensor c = tensor::Add(tensor::Mul(OneMinus(effective_i), prev.c),
                               tensor::Mul(effective_i, g));
        Tensor hh = tensor::Mul(o, tensor::Tanh(c));
        return {std::move(hh), std::move(c)};
      });
  return {std::move(out[0]), std::move(out[1])};
}

LstmState StClstmCell::InitialState(int batch) const {
  return {tensor::Tensor::Zeros({batch, hidden_dim_}),
          tensor::Tensor::Zeros({batch, hidden_dim_})};
}

std::vector<tensor::Tensor> StClstmCell::Parameters() const {
  return {w_x_, w_h_, b_, w_xt_, w_t_, b_t_, w_xd_, w_d_, b_d_};
}

}  // namespace pa::nn
