#ifndef PA_NN_RNN_CELL_H_
#define PA_NN_RNN_CELL_H_

#include <vector>

#include "nn/module.h"
#include "tensor/compiled_step.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Vanilla (Elman) recurrent cell: h' = tanh(x W_x + h W_h + b). The "RNN"
/// baseline of the paper's Tables I–II.
class RnnCell : public Module {
 public:
  RnnCell(int input_dim, int hidden_dim, util::Rng& rng);

  /// x is `[batch, input_dim]`, h is `[batch, hidden_dim]`.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  tensor::Tensor InitialState(int batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  tensor::Tensor w_x_;
  tensor::Tensor w_h_;
  tensor::Tensor b_;
  tensor::fusion::StepSite site_;
};

}  // namespace pa::nn

#endif  // PA_NN_RNN_CELL_H_
