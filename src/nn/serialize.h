#ifndef PA_NN_SERIALIZE_H_
#define PA_NN_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pa::nn {

/// Binary parameter checkpointing.
///
/// Current (v2) layout: a magic word, a v2 tag, the format version, the
/// parameter count, an FNV-1a checksum over every tensor block, then the
/// blocks themselves (shape + raw float payload). The checksum makes
/// truncated or bit-flipped checkpoints fail loudly instead of loading
/// garbage into a model. Legacy v1 files (magic + count, no version or
/// checksum) still load; `SaveParameters` always writes v2.
///
/// `LoadParameters` writes *into* the given tensors in place (shapes must
/// match exactly), so a module can be constructed first and then restored —
/// the pattern the multi-stage PA-Seq2Seq training protocol uses to hand
/// pretrained LSTM weights to the encoder and decoder. On failure the
/// target tensors may be partially overwritten; callers must treat the
/// model as unusable when loading fails.

/// The version `SaveParameters` writes.
inline constexpr uint32_t kParameterFormatVersion = 2;

/// FNV-1a over a byte range, chainable via `seed` (pass a previous result
/// to extend the hash). This is the checksum the v2 header stores and the
/// one `serve::` artifacts reuse for their payload framing.
inline constexpr uint64_t kChecksumSeed = 0xCBF29CE484222325ULL;
uint64_t Checksum64(const void* bytes, size_t n, uint64_t seed = kChecksumSeed);

/// Return false on failure; when `error` is non-null it receives a
/// one-line reason (bad magic, version mismatch, truncation, checksum
/// mismatch, shape mismatch, I/O error).
bool SaveParameters(std::ostream& os, const std::vector<tensor::Tensor>& params,
                    std::string* error = nullptr);
bool LoadParameters(std::istream& is, std::vector<tensor::Tensor>& params,
                    std::string* error = nullptr);

/// File-path convenience wrappers.
bool SaveParametersToFile(const std::string& path,
                          const std::vector<tensor::Tensor>& params,
                          std::string* error = nullptr);
bool LoadParametersFromFile(const std::string& path,
                            std::vector<tensor::Tensor>& params,
                            std::string* error = nullptr);

/// Copies values elementwise from `src` into `dst` (shapes must match
/// pairwise). Used to initialize encoder/decoder cells from the stage-1
/// pretrained models.
bool CopyParameters(const std::vector<tensor::Tensor>& src,
                    std::vector<tensor::Tensor>& dst);

}  // namespace pa::nn

#endif  // PA_NN_SERIALIZE_H_
