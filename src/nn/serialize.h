#ifndef PA_NN_SERIALIZE_H_
#define PA_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pa::nn {

/// Binary parameter checkpointing.
///
/// The format is a magic header, the parameter count, then for each tensor
/// its shape and raw float payload. `LoadParameters` writes *into* the given
/// tensors in place (shapes must match exactly), so a module can be
/// constructed first and then restored — the pattern the multi-stage
/// PA-Seq2Seq training protocol uses to hand pretrained LSTM weights to the
/// encoder and decoder.

/// Returns false (and leaves the stream in a failed state untouched
/// semantically) on I/O errors.
bool SaveParameters(std::ostream& os, const std::vector<tensor::Tensor>& params);
bool LoadParameters(std::istream& is, std::vector<tensor::Tensor>& params);

/// File-path convenience wrappers.
bool SaveParametersToFile(const std::string& path,
                          const std::vector<tensor::Tensor>& params);
bool LoadParametersFromFile(const std::string& path,
                            std::vector<tensor::Tensor>& params);

/// Copies values elementwise from `src` into `dst` (shapes must match
/// pairwise). Used to initialize encoder/decoder cells from the stage-1
/// pretrained models.
bool CopyParameters(const std::vector<tensor::Tensor>& src,
                    std::vector<tensor::Tensor>& dst);

}  // namespace pa::nn

#endif  // PA_NN_SERIALIZE_H_
