#include "nn/rnn_cell.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

RnnCell::RnnCell(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_x_(tensor::XavierInit({input_dim, hidden_dim}, rng)),
      w_h_(tensor::XavierInit({hidden_dim, hidden_dim}, rng)),
      b_(tensor::Tensor::Zeros({1, hidden_dim}, /*requires_grad=*/true)) {}

tensor::Tensor RnnCell::Forward(const tensor::Tensor& x,
                                const tensor::Tensor& h) const {
  std::vector<tensor::Tensor> out = tensor::fusion::RunStep(
      site_, /*variant=*/0, {x, h}, {},
      [&]() -> std::vector<tensor::Tensor> {
        return {tensor::Tanh(tensor::Add(
            tensor::Add(tensor::MatMul(x, w_x_), tensor::MatMul(h, w_h_)),
            b_))};
      });
  return std::move(out[0]);
}

tensor::Tensor RnnCell::InitialState(int batch) const {
  return tensor::Tensor::Zeros({batch, hidden_dim_});
}

std::vector<tensor::Tensor> RnnCell::Parameters() const {
  return {w_x_, w_h_, b_};
}

}  // namespace pa::nn
