#ifndef PA_NN_ST_CLSTM_H_
#define PA_NN_ST_CLSTM_H_

#include <vector>

#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/compiled_step.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Spatio-temporal coupled LSTM cell (Zhao et al., 2018) — the strongest
/// baseline in the paper's Tables I–II.
///
/// Two modifications to the standard cell:
///  * *coupled* input/forget gates (Greff et al.): the forget gate is
///    1 - effective input gate, halving gate parameters and tying memory
///    retention to admission;
///  * *time and distance gates*: sigmoidal gates driven by the Δt and Δd
///    intervals between consecutive check-ins that modulate how much of the
///    new candidate enters the cell,
///
///      T_t = sigmoid(x W_xt + Δt · w_t + b_t)
///      D_t = sigmoid(x W_xd + Δd · w_d + b_d)
///      ĩ_t = i_t ∘ T_t ∘ D_t
///      c_t = (1 - ĩ_t) ∘ c_{t-1} + ĩ_t ∘ g_t
///      h_t = o_t ∘ tanh(c_t)
class StClstmCell : public Module {
 public:
  StClstmCell(int input_dim, int hidden_dim, util::Rng& rng);

  /// One step. `delta_t` and `delta_d` are the (normalized) time and
  /// distance intervals from the previous check-in to this one.
  LstmState Forward(const tensor::Tensor& x, const LstmState& prev,
                    float delta_t, float delta_d) const;

  LstmState InitialState(int batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  tensor::Tensor w_x_;   // [input_dim, 3 * hidden] for i, g, o.
  tensor::Tensor w_h_;   // [hidden, 3 * hidden]
  tensor::Tensor b_;     // [1, 3 * hidden]
  tensor::Tensor w_xt_;  // [input_dim, hidden] time-gate input weights.
  tensor::Tensor w_t_;   // [1, hidden] time-interval weights.
  tensor::Tensor b_t_;   // [1, hidden]
  tensor::Tensor w_xd_;  // [input_dim, hidden] distance-gate input weights.
  tensor::Tensor w_d_;   // [1, hidden]
  tensor::Tensor b_d_;   // [1, hidden]
  tensor::fusion::StepSite site_;
};

}  // namespace pa::nn

#endif  // PA_NN_ST_CLSTM_H_
