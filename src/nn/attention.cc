#include "nn/attention.h"

#include <algorithm>
#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

using tensor::Tensor;

LocalAttention::LocalAttention(int decoder_dim, int encoder_dim, int window,
                               util::Rng& rng)
    : decoder_dim_(decoder_dim),
      encoder_dim_(encoder_dim),
      window_(window),
      w_a_(tensor::XavierInit({decoder_dim, encoder_dim}, rng)),
      combine_(decoder_dim + encoder_dim, decoder_dim, rng) {}

LocalAttention::Output LocalAttention::Forward(
    const tensor::Tensor& h_t,
    const std::vector<tensor::Tensor>& encoder_states, int center) const {
  const int n = static_cast<int>(encoder_states.size());
  const int p_t = std::clamp(center, 0, n - 1);
  const int begin = std::max(0, p_t - window_);
  const int end = std::min(n - 1, p_t + window_);
  const int width = end - begin + 1;

  // Stack the windowed encoder states into [width, encoder_dim].
  std::vector<Tensor> rows(encoder_states.begin() + begin,
                           encoder_states.begin() + end + 1);
  Tensor window_states = tensor::ConcatRows(rows);

  // General score: h_t W_a H_win^T -> [1, width].
  Tensor query = tensor::MatMul(h_t, w_a_);  // [1, encoder_dim]
  Tensor scores = tensor::MatMul(query, tensor::Transpose(window_states));
  Tensor align = tensor::Softmax(scores);

  // Gaussian prior centred on p_t with sigma = D / 2; the prior carries no
  // gradient (it depends only on positions).
  const float sigma = std::max(1.0f, static_cast<float>(window_) / 2.0f);
  Tensor gauss = Tensor::Zeros({1, width});
  for (int s = 0; s < width; ++s) {
    const float d = static_cast<float>(begin + s - p_t);
    gauss.data()[s] = std::exp(-(d * d) / (2.0f * sigma * sigma));
  }
  Tensor weights = tensor::Mul(align, gauss);

  Output out;
  out.window_begin = begin;
  out.weights = weights;
  out.context = tensor::MatMul(weights, window_states);  // [1, encoder_dim]
  out.attentional_hidden =
      tensor::Tanh(combine_.Forward(tensor::ConcatCols({out.context, h_t})));
  return out;
}

std::vector<tensor::Tensor> LocalAttention::Parameters() const {
  std::vector<tensor::Tensor> params = {w_a_};
  for (const tensor::Tensor& p : combine_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace pa::nn
