#ifndef PA_NN_LAYERS_H_
#define PA_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Affine map y = x W + b with W `[in, out]`, b `[1, out]`.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, util::Rng& rng);

  /// x is `[batch, in]`; returns `[batch, out]`.
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int in_dim_;
  int out_dim_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Lookup table mapping token ids to dense vectors.
///
/// The PA-Seq2Seq vocabulary is the POI set plus one *missing check-in*
/// token (the paper places it at index `|POIs|` in the one-hot table), so
/// callers typically construct this with `vocab = num_pois + 1`.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, util::Rng& rng);

  /// Returns `[ids.size(), dim]`, row i = table[ids[i]].
  tensor::Tensor Forward(const std::vector<int>& ids) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const tensor::Tensor& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  tensor::Tensor table_;
};

}  // namespace pa::nn

#endif  // PA_NN_LAYERS_H_
