#include "nn/layers.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

Linear::Linear(int in_dim, int out_dim, util::Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(tensor::XavierInit({in_dim, out_dim}, rng)),
      bias_(tensor::Tensor::Zeros({1, out_dim}, /*requires_grad=*/true)) {}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  return tensor::Add(tensor::MatMul(x, weight_), bias_);
}

std::vector<tensor::Tensor> Linear::Parameters() const {
  return {weight_, bias_};
}

Embedding::Embedding(int vocab_size, int dim, util::Rng& rng)
    : vocab_size_(vocab_size),
      dim_(dim),
      table_(tensor::NormalInit({vocab_size, dim}, 0.1f, rng)) {}

tensor::Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return tensor::Rows(table_, ids);
}

std::vector<tensor::Tensor> Embedding::Parameters() const { return {table_}; }

}  // namespace pa::nn
