#include "nn/lstm.h"

#include <algorithm>

#include "nn/layers.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

namespace {

using tensor::Tensor;

// Draws a {0,1} keep-mask tensor; 1 means "preserve the previous state".
Tensor BernoulliMask(tensor::Shape shape, float keep_prob, util::Rng& rng) {
  Tensor mask = Tensor::Zeros(shape);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng.Bernoulli(keep_prob) ? 1.0f : 0.0f;
  }
  return mask;
}

// blend = mask * prev + (1 - mask) * next, where mask carries no gradient.
// One fused pass (bit-identical to the old Mul/Mul/Add composition — see
// Lerp in ops.h); `next` is the dying fresh state, overwritten in place
// under inference mode.
Tensor ZoneoutBlend(const Tensor& mask, const Tensor& prev, Tensor&& next) {
  return tensor::Lerp(mask, prev, std::move(next));
}

}  // namespace

LstmCell::LstmCell(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_x_(tensor::XavierInit({input_dim, 4 * hidden_dim}, rng)),
      w_h_(tensor::XavierInit({hidden_dim, 4 * hidden_dim}, rng)),
      b_(tensor::Tensor::Zeros({1, 4 * hidden_dim}, /*requires_grad=*/true)) {
  // Forget-gate bias starts at 1 so early training does not erase memory.
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) b_.set(0, j, 1.0f);
}

LstmState LstmCell::Forward(const tensor::Tensor& x,
                            const LstmState& prev) const {
  const int h = hidden_dim_;
  std::vector<Tensor> out = tensor::fusion::RunStep(
      site_, /*variant=*/0, {x, prev.h, prev.c}, {},
      [&]() -> std::vector<Tensor> {
        Tensor gates = tensor::Add(
            tensor::Add(tensor::MatMul(x, w_x_), tensor::MatMul(prev.h, w_h_)),
            b_);
        Tensor i = tensor::Sigmoid(tensor::SliceCols(gates, 0, h));
        Tensor f = tensor::Sigmoid(tensor::SliceCols(gates, h, h));
        Tensor g = tensor::Tanh(tensor::SliceCols(gates, 2 * h, h));
        Tensor o = tensor::Sigmoid(tensor::SliceCols(gates, 3 * h, h));
        Tensor c = tensor::Add(tensor::Mul(f, prev.c), tensor::Mul(i, g));
        Tensor hh = tensor::Mul(o, tensor::Tanh(c));
        // Move: h and c are dead locals, and shared_ptr copies cost a locked
        // refcount pair each — measurable next to a 24-wide cell step.
        return {std::move(hh), std::move(c)};
      });
  return {std::move(out[0]), std::move(out[1])};
}

LstmState LstmCell::ForwardZoneout(const tensor::Tensor& x,
                                   const LstmState& prev,
                                   const ZoneoutConfig& zoneout, bool training,
                                   util::Rng& rng) const {
  LstmState next = Forward(x, prev);
  if (!zoneout.enabled()) return next;
  if (training) {
    if (zoneout.hidden_prob > 0.0f) {
      Tensor mask = BernoulliMask(next.h.shape(), zoneout.hidden_prob, rng);
      next.h = ZoneoutBlend(mask, prev.h, std::move(next.h));
    }
    if (zoneout.cell_prob > 0.0f) {
      Tensor mask = BernoulliMask(next.c.shape(), zoneout.cell_prob, rng);
      next.c = ZoneoutBlend(mask, prev.c, std::move(next.c));
    }
  } else {
    // Evaluation uses the expected blend: one fused axpby pass, overwriting
    // the dying fresh state in place instead of two Scale temporaries plus
    // an Add.
    if (zoneout.hidden_prob > 0.0f) {
      next.h = tensor::Axpby(prev.h, zoneout.hidden_prob, std::move(next.h),
                             1.0f - zoneout.hidden_prob);
    }
    if (zoneout.cell_prob > 0.0f) {
      next.c = tensor::Axpby(prev.c, zoneout.cell_prob, std::move(next.c),
                             1.0f - zoneout.cell_prob);
    }
  }
  return next;
}

LstmState LstmCell::InitialState(int batch) const {
  return {Tensor::Zeros({batch, hidden_dim_}),
          Tensor::Zeros({batch, hidden_dim_})};
}

std::vector<tensor::Tensor> LstmCell::Parameters() const {
  return {w_x_, w_h_, b_};
}

BiLstm::BiLstm(int input_dim, int hidden_dim, util::Rng& rng)
    : hidden_dim_(hidden_dim),
      fw_(input_dim, hidden_dim, rng),
      bw_(input_dim, hidden_dim, rng) {}

std::vector<tensor::Tensor> BiLstm::Forward(
    const std::vector<tensor::Tensor>& xs) const {
  const int n = static_cast<int>(xs.size());
  std::vector<tensor::Tensor> fw_h(n), bw_h(n);
  if (n == 0) return {};
  const int batch = xs[0].rows();

  LstmState state = fw_.InitialState(batch);
  for (int t = 0; t < n; ++t) {
    state = fw_.Forward(xs[t], state);
    fw_h[t] = state.h;
  }
  state = bw_.InitialState(batch);
  for (int t = n - 1; t >= 0; --t) {
    state = bw_.Forward(xs[t], state);
    bw_h[t] = state.h;
  }

  std::vector<tensor::Tensor> out(n);
  for (int t = 0; t < n; ++t) {
    out[t] = tensor::ConcatCols({fw_h[t], bw_h[t]});
  }
  return out;
}

std::vector<tensor::Tensor> BiLstm::Parameters() const {
  return ConcatParameters({&fw_, &bw_});
}

ResidualBiLstmStack::ResidualBiLstmStack(int input_dim, int hidden_dim,
                                         bool use_residual, util::Rng& rng)
    : use_residual_(use_residual),
      bottom_(input_dim, hidden_dim, rng),
      top_(2 * hidden_dim, 2 * hidden_dim, rng) {
  if (use_residual_ && input_dim != 2 * hidden_dim) {
    input_projection_ = std::make_unique<Linear>(input_dim, 2 * hidden_dim, rng);
  }
}

ResidualBiLstmStack::~ResidualBiLstmStack() = default;

int ResidualBiLstmStack::output_dim() const { return top_.hidden_dim(); }

std::vector<tensor::Tensor> ResidualBiLstmStack::Forward(
    const std::vector<tensor::Tensor>& xs, LstmState* final_state) const {
  std::vector<tensor::Tensor> bottom_out = bottom_.Forward(xs);
  const int n = static_cast<int>(bottom_out.size());
  std::vector<tensor::Tensor> out(n);
  if (n == 0) return out;

  LstmState state = top_.InitialState(xs[0].rows());
  for (int t = 0; t < n; ++t) {
    tensor::Tensor top_in = bottom_out[t];
    if (use_residual_) {
      tensor::Tensor skip =
          input_projection_ ? input_projection_->Forward(xs[t]) : xs[t];
      // x^1 = h^1 + x^0 (paper Eq. 3). Both operands are moved: the dying
      // one (the projection result, when there is one) is overwritten in
      // place under inference; tensors still shared (bottom_out[t], xs[t])
      // fail the sole-owner test and take the allocating path unchanged.
      top_in = tensor::Add(std::move(top_in), std::move(skip));
    }
    state = top_.Forward(top_in, state);
    out[t] = state.h;
  }
  if (final_state != nullptr) *final_state = state;
  return out;
}

std::vector<tensor::Tensor> ResidualBiLstmStack::Parameters() const {
  std::vector<tensor::Tensor> params = ConcatParameters({&bottom_, &top_});
  if (input_projection_) {
    for (const tensor::Tensor& p : input_projection_->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

}  // namespace pa::nn
