#include "nn/st_rnn_cell.h"

#include <algorithm>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace pa::nn {

StRnnCell::StRnnCell(int input_dim, int hidden_dim, util::Rng& rng,
                     int time_buckets, int distance_buckets,
                     float max_interval)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      time_buckets_(std::max(1, time_buckets)),
      distance_buckets_(std::max(1, distance_buckets)),
      max_interval_(max_interval),
      b_(tensor::Tensor::Zeros({1, hidden_dim}, /*requires_grad=*/true)) {
  w_x_.reserve(static_cast<size_t>(distance_buckets_));
  for (int k = 0; k < distance_buckets_; ++k) {
    w_x_.push_back(tensor::XavierInit({input_dim, hidden_dim}, rng));
  }
  w_h_.reserve(static_cast<size_t>(time_buckets_));
  for (int k = 0; k < time_buckets_; ++k) {
    w_h_.push_back(tensor::XavierInit({hidden_dim, hidden_dim}, rng));
  }
}

int StRnnCell::Bucket(float value, int buckets) const {
  if (value <= 0.0f) return 0;
  if (value >= max_interval_) return buckets - 1;
  return std::min(buckets - 1,
                  static_cast<int>(value / max_interval_ * buckets));
}

int StRnnCell::TimeBucket(float delta_t) const {
  return Bucket(delta_t, time_buckets_);
}

int StRnnCell::DistanceBucket(float delta_d) const {
  return Bucket(delta_d, distance_buckets_);
}

tensor::Tensor StRnnCell::Forward(const tensor::Tensor& x,
                                  const tensor::Tensor& h, float delta_t,
                                  float delta_d) const {
  const int db = DistanceBucket(delta_d);
  const int tb = TimeBucket(delta_t);
  const tensor::Tensor& wx = w_x_[static_cast<size_t>(db)];
  const tensor::Tensor& wh = w_h_[static_cast<size_t>(tb)];
  // The bucket pair selects which weight matrices the body closes over, so
  // it is the compiled-program variant, not a per-step scalar.
  const uint32_t variant =
      static_cast<uint32_t>(db) * static_cast<uint32_t>(time_buckets_) +
      static_cast<uint32_t>(tb);
  std::vector<tensor::Tensor> out = tensor::fusion::RunStep(
      site_, variant, {x, h}, {}, [&]() -> std::vector<tensor::Tensor> {
        return {tensor::Tanh(tensor::Add(
            tensor::Add(tensor::MatMul(x, wx), tensor::MatMul(h, wh)), b_))};
      });
  return std::move(out[0]);
}

tensor::Tensor StRnnCell::InitialState(int batch) const {
  return tensor::Tensor::Zeros({batch, hidden_dim_});
}

std::vector<tensor::Tensor> StRnnCell::Parameters() const {
  std::vector<tensor::Tensor> params = w_x_;
  params.insert(params.end(), w_h_.begin(), w_h_.end());
  params.push_back(b_);
  return params;
}

}  // namespace pa::nn
