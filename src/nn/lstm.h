#ifndef PA_NN_LSTM_H_
#define PA_NN_LSTM_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/compiled_step.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Hidden and cell state of one LSTM layer at one timestep.
struct LstmState {
  tensor::Tensor h;
  tensor::Tensor c;
};

/// Zoneout configuration (Krueger et al., 2016), the regularizer the paper
/// applies during PA-Seq2Seq training (§III-E): at each step, each hidden /
/// cell unit is kept at its *previous* value with the given probability.
/// In the check-in context this randomly "removes" part of the check-in
/// information, teaching the model to cope with unobserved check-ins.
struct ZoneoutConfig {
  float hidden_prob = 0.0f;  // Probability of preserving h units.
  float cell_prob = 0.0f;    // Probability of preserving c units.
  bool enabled() const { return hidden_prob > 0.0f || cell_prob > 0.0f; }
};

/// Single LSTM layer (Hochreiter & Schmidhuber, 1997) with optional zoneout.
///
/// Gate layout in the fused weight matrices is [input, forget, candidate,
/// output]. The forget-gate bias is initialized to 1, the standard trick for
/// long-range gradient flow.
class LstmCell : public Module {
 public:
  LstmCell(int input_dim, int hidden_dim, util::Rng& rng);

  /// Plain step: x is `[batch, input_dim]`, returns the next state.
  LstmState Forward(const tensor::Tensor& x, const LstmState& prev) const;

  /// Step with zoneout. When `training` is true, units are preserved by
  /// Bernoulli masks drawn from `rng`; at evaluation time the expectation
  /// (a convex blend of previous and new state) is used instead, mirroring
  /// the train/eval asymmetry of dropout.
  LstmState ForwardZoneout(const tensor::Tensor& x, const LstmState& prev,
                           const ZoneoutConfig& zoneout, bool training,
                           util::Rng& rng) const;

  /// Zero state for a batch of the given size.
  LstmState InitialState(int batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  tensor::Tensor w_x_;  // [input_dim, 4 * hidden_dim]
  tensor::Tensor w_h_;  // [hidden_dim, 4 * hidden_dim]
  tensor::Tensor b_;    // [1, 4 * hidden_dim]
  // Compiled-step identity of this cell's Forward body; a fresh cell (or a
  // copy) gets a fresh id, so rebuilt models never replay stale programs.
  tensor::fusion::StepSite site_;
};

/// Bi-directional LSTM layer: a forward cell reading c_1..c_n and a backward
/// cell reading c_n..c_1 (paper Eq. 1). Per-timestep outputs are the
/// concatenation `[h_fw, h_bw]` of both direction's hidden states.
class BiLstm : public Module {
 public:
  BiLstm(int input_dim, int hidden_dim, util::Rng& rng);

  /// xs[t] is `[batch, input_dim]`; returns one `[batch, 2 * hidden_dim]`
  /// tensor per timestep.
  std::vector<tensor::Tensor> Forward(
      const std::vector<tensor::Tensor>& xs) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int output_dim() const { return 2 * hidden_dim_; }
  const LstmCell& forward_cell() const { return fw_; }
  const LstmCell& backward_cell() const { return bw_; }

 private:
  int hidden_dim_;
  LstmCell fw_;
  LstmCell bw_;
};

/// The paper's stacked encoder body (Fig. 4): a BiLSTM first layer stacked
/// with a uni-directional LSTM, joined by a *residual* connection
/// x_t^1 = h_t^1 + x_t^0 (Eq. 3) rather than a direct one (Eq. 2). Because
/// the BiLSTM output width (2H) generally differs from the raw input width,
/// the residual path projects the input with a learned linear map first —
/// the standard treatment when GNMT-style residuals meet a width change.
class ResidualBiLstmStack : public Module {
 public:
  /// `use_residual=false` reproduces the plain stacking of Eq. 2, which the
  /// residual ablation benchmark compares against.
  ResidualBiLstmStack(int input_dim, int hidden_dim, bool use_residual,
                      util::Rng& rng);
  ~ResidualBiLstmStack() override;

  /// Returns the top-layer hidden state per timestep, each
  /// `[batch, 2 * hidden_dim]`, plus the final top-layer state through
  /// `final_state` if non-null.
  std::vector<tensor::Tensor> Forward(const std::vector<tensor::Tensor>& xs,
                                      LstmState* final_state = nullptr) const;

  std::vector<tensor::Tensor> Parameters() const override;

  bool use_residual() const { return use_residual_; }
  int output_dim() const;

 private:
  bool use_residual_;
  BiLstm bottom_;
  LstmCell top_;
  // Projects raw inputs onto the BiLSTM output width for the residual sum;
  // null when the widths already match.
  std::unique_ptr<class Linear> input_projection_;
};

}  // namespace pa::nn

#endif  // PA_NN_LSTM_H_
