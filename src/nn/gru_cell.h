#ifndef PA_NN_GRU_CELL_H_
#define PA_NN_GRU_CELL_H_

#include <vector>

#include "nn/module.h"
#include "tensor/compiled_step.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// Gated recurrent unit (Cho et al., 2014) — the other recurrent family the
/// paper's related work builds on (e.g. the CARA line adds contextual gates
/// to a GRU). Provided so downstream users can swap recurrent cores.
///
///   z = sigmoid(x W_xz + h W_hz + b_z)      (update gate)
///   r = sigmoid(x W_xr + h W_hr + b_r)      (reset gate)
///   n = tanh(x W_xn + (r ∘ h) W_hn + b_n)   (candidate)
///   h' = (1 - z) ∘ n + z ∘ h
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, util::Rng& rng);

  /// x is `[batch, input_dim]`, h is `[batch, hidden_dim]`.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  tensor::Tensor InitialState(int batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  tensor::Tensor w_x_;  // [input_dim, 3 * hidden] for z, r, n.
  tensor::Tensor w_h_;  // [hidden, 3 * hidden]
  tensor::Tensor b_;    // [1, 3 * hidden]
  tensor::fusion::StepSite site_;
};

}  // namespace pa::nn

#endif  // PA_NN_GRU_CELL_H_
