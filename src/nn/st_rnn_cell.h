#ifndef PA_NN_ST_RNN_CELL_H_
#define PA_NN_ST_RNN_CELL_H_

#include <vector>

#include "nn/module.h"
#include "tensor/compiled_step.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::nn {

/// ST-RNN cell (Liu et al., 2016), as described in the paper's §II-A: a
/// recurrent cell whose "standard weight matrix is replaced with
/// time-specific and distance-specific transition matrices".
///
/// This implementation discretizes the (normalized) time interval Δt and
/// distance interval Δd into a small number of buckets and learns one input
/// matrix per distance bucket and one recurrent matrix per time bucket:
///
///   h' = tanh( x · W_x[bucket_d(Δd)] + h · W_h[bucket_t(Δt)] + b )
///
/// Buckets are equal-width over [0, max_interval] with the final bucket
/// absorbing everything larger (the original interpolates between bucket
/// matrices; hard assignment keeps the cell simple and testable while
/// preserving the interval-conditioned-transition idea).
class StRnnCell : public Module {
 public:
  StRnnCell(int input_dim, int hidden_dim, util::Rng& rng,
            int time_buckets = 4, int distance_buckets = 4,
            float max_interval = 4.0f);

  /// One step; `delta_t` / `delta_d` are normalized intervals (the same
  /// scale `poi::FeatureScale` produces).
  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& h,
                         float delta_t, float delta_d) const;

  tensor::Tensor InitialState(int batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  /// Bucket index for an interval; exposed for tests.
  int TimeBucket(float delta_t) const;
  int DistanceBucket(float delta_d) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int Bucket(float value, int buckets) const;

  int input_dim_;
  int hidden_dim_;
  int time_buckets_;
  int distance_buckets_;
  float max_interval_;
  std::vector<tensor::Tensor> w_x_;  // One [input, hidden] per d-bucket.
  std::vector<tensor::Tensor> w_h_;  // One [hidden, hidden] per t-bucket.
  tensor::Tensor b_;
  // One compiled program per (d-bucket, t-bucket) weight pair, selected by
  // the RunStep `variant` argument — bucketed weights are bound as
  // constants in the trace, so each pair must compile separately.
  tensor::fusion::StepSite site_;
};

}  // namespace pa::nn

#endif  // PA_NN_ST_RNN_CELL_H_
