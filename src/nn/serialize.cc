#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace pa::nn {

namespace {

constexpr uint32_t kMagic = 0x50415332;  // "PAS2"
// v1 files follow the magic directly with the parameter count; v2+ files
// put this tag there instead (no real checkpoint has 2^32-1 parameters),
// then the version word — which is how the loader tells the formats apart.
constexpr uint32_t kV2Tag = 0xFFFFFFFFu;

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

void SetError(std::string* error, const std::string& message) {
  if (error) *error = message;
}

/// Folds one tensor block (shape words + float payload) into a checksum.
uint64_t HashBlock(uint64_t h, const tensor::Tensor& p) {
  const int32_t rows = p.rows();
  const int32_t cols = p.cols();
  h = Checksum64(&rows, sizeof(rows), h);
  h = Checksum64(&cols, sizeof(cols), h);
  return Checksum64(p.data(), static_cast<size_t>(p.numel()) * sizeof(float),
                    h);
}

}  // namespace

uint64_t Checksum64(const void* bytes, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool SaveParameters(std::ostream& os, const std::vector<tensor::Tensor>& params,
                    std::string* error) {
  uint64_t checksum = kChecksumSeed;
  for (const tensor::Tensor& p : params) checksum = HashBlock(checksum, p);

  WritePod(os, kMagic);
  WritePod(os, kV2Tag);
  WritePod(os, kParameterFormatVersion);
  WritePod(os, static_cast<uint32_t>(params.size()));
  WritePod(os, checksum);
  for (const tensor::Tensor& p : params) {
    WritePod(os, static_cast<int32_t>(p.rows()));
    WritePod(os, static_cast<int32_t>(p.cols()));
    os.write(reinterpret_cast<const char*>(p.data()),
             static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  if (!os) {
    SetError(error, "I/O error writing parameter checkpoint");
    return false;
  }
  return true;
}

bool LoadParameters(std::istream& is, std::vector<tensor::Tensor>& params,
                    std::string* error) {
  uint32_t magic = 0;
  if (!ReadPod(is, &magic) || magic != kMagic) {
    SetError(error, "not a parameter checkpoint (bad magic)");
    return false;
  }
  uint32_t second = 0;
  if (!ReadPod(is, &second)) {
    SetError(error, "truncated checkpoint (missing header)");
    return false;
  }

  uint32_t count = 0;
  uint64_t expected_checksum = 0;
  bool verify_checksum = false;
  if (second == kV2Tag) {
    uint32_t version = 0;
    if (!ReadPod(is, &version)) {
      SetError(error, "truncated checkpoint (missing version)");
      return false;
    }
    if (version != kParameterFormatVersion) {
      SetError(error, "unsupported checkpoint format version " +
                          std::to_string(version) + " (this build reads v1-v" +
                          std::to_string(kParameterFormatVersion) + ")");
      return false;
    }
    if (!ReadPod(is, &count) || !ReadPod(is, &expected_checksum)) {
      SetError(error, "truncated checkpoint (missing count/checksum)");
      return false;
    }
    verify_checksum = true;
  } else {
    // Legacy v1 header: `second` is the parameter count; no checksum.
    count = second;
  }

  if (count != params.size()) {
    SetError(error, "parameter count mismatch (file has " +
                        std::to_string(count) + ", model expects " +
                        std::to_string(params.size()) + ")");
    return false;
  }

  uint64_t checksum = kChecksumSeed;
  for (tensor::Tensor& p : params) {
    int32_t rows = 0, cols = 0;
    if (!ReadPod(is, &rows) || !ReadPod(is, &cols)) {
      SetError(error, "truncated checkpoint (missing tensor header)");
      return false;
    }
    if (rows != p.rows() || cols != p.cols()) {
      SetError(error, "tensor shape mismatch (file has [" +
                          std::to_string(rows) + ", " + std::to_string(cols) +
                          "], model expects " + p.shape().ToString() + ")");
      return false;
    }
    is.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!is) {
      SetError(error, "truncated checkpoint (incomplete tensor payload)");
      return false;
    }
    if (verify_checksum) {
      checksum = HashBlock(checksum, p);
    }
  }
  if (verify_checksum && checksum != expected_checksum) {
    SetError(error, "checksum mismatch (corrupt checkpoint)");
    return false;
  }
  return true;
}

bool SaveParametersToFile(const std::string& path,
                          const std::vector<tensor::Tensor>& params,
                          std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  return SaveParameters(os, params, error);
}

bool LoadParametersFromFile(const std::string& path,
                            std::vector<tensor::Tensor>& params,
                            std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    SetError(error, "cannot open " + path + " for reading");
    return false;
  }
  return LoadParameters(is, params, error);
}

bool CopyParameters(const std::vector<tensor::Tensor>& src,
                    std::vector<tensor::Tensor>& dst) {
  if (src.size() != dst.size()) return false;
  for (size_t i = 0; i < src.size(); ++i) {
    if (!(src[i].shape() == dst[i].shape())) return false;
  }
  for (size_t i = 0; i < src.size(); ++i) {
    std::memcpy(dst[i].data(), src[i].data(),
                static_cast<size_t>(src[i].numel()) * sizeof(float));
  }
  return true;
}

}  // namespace pa::nn
