#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace pa::nn {

namespace {

constexpr uint32_t kMagic = 0x50415332;  // "PAS2"

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

bool SaveParameters(std::ostream& os,
                    const std::vector<tensor::Tensor>& params) {
  WritePod(os, kMagic);
  WritePod(os, static_cast<uint32_t>(params.size()));
  for (const tensor::Tensor& p : params) {
    WritePod(os, static_cast<int32_t>(p.rows()));
    WritePod(os, static_cast<int32_t>(p.cols()));
    os.write(reinterpret_cast<const char*>(p.data()),
             static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  return static_cast<bool>(os);
}

bool LoadParameters(std::istream& is, std::vector<tensor::Tensor>& params) {
  uint32_t magic = 0, count = 0;
  if (!ReadPod(is, &magic) || magic != kMagic) return false;
  if (!ReadPod(is, &count) || count != params.size()) return false;
  for (tensor::Tensor& p : params) {
    int32_t rows = 0, cols = 0;
    if (!ReadPod(is, &rows) || !ReadPod(is, &cols)) return false;
    if (rows != p.rows() || cols != p.cols()) return false;
    is.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!is) return false;
  }
  return true;
}

bool SaveParametersToFile(const std::string& path,
                          const std::vector<tensor::Tensor>& params) {
  std::ofstream os(path, std::ios::binary);
  return os && SaveParameters(os, params);
}

bool LoadParametersFromFile(const std::string& path,
                            std::vector<tensor::Tensor>& params) {
  std::ifstream is(path, std::ios::binary);
  return is && LoadParameters(is, params);
}

bool CopyParameters(const std::vector<tensor::Tensor>& src,
                    std::vector<tensor::Tensor>& dst) {
  if (src.size() != dst.size()) return false;
  for (size_t i = 0; i < src.size(); ++i) {
    if (!(src[i].shape() == dst[i].shape())) return false;
  }
  for (size_t i = 0; i < src.size(); ++i) {
    std::memcpy(dst[i].data(), src[i].data(),
                static_cast<size_t>(src[i].numel()) * sizeof(float));
  }
  return true;
}

}  // namespace pa::nn
