#include "obs/slow_trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace pa::obs {

namespace {

// Minting volume and capture outcomes as registry counters, so a scrape can
// tell "no slow traces" apart from "tracing disabled / slots exhausted".
struct ReservoirInstruments {
  Counter& started;
  Counter& captured;
  Counter& slots_busy;

  static ReservoirInstruments& Get() {
    static ReservoirInstruments instruments{
        MetricRegistry::Global().GetCounter("obs.trace.requests_total"),
        MetricRegistry::Global().GetCounter("obs.trace.slow_captured_total"),
        MetricRegistry::Global().GetCounter("obs.trace.slots_busy_total")};
    return instruments;
  }
};

bool RequestTracingDefault() {
  const char* env = std::getenv("PA_TRACE_REQUESTS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& RequestTracingFlag() {
  static std::atomic<bool> flag{RequestTracingDefault()};
  return flag;
}

void AppendMicros(uint64_t ns, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

void AppendSpanJson(const TraceEvent& e, std::string* out) {
  *out += "{\"name\":\"";
  internal::AppendJsonEscaped(e.name != nullptr ? e.name : "?", out);
  *out += "\",\"ts_us\":";
  AppendMicros(e.start_ns, out);
  *out += ",\"dur_us\":";
  AppendMicros(e.dur_ns, out);
  *out += ",\"tid\":";
  *out += std::to_string(e.tid);
  *out += ",\"id\":";
  *out += std::to_string(e.id);
  *out += ",\"parent\":";
  *out += std::to_string(e.parent_id);
  *out += '}';
}

}  // namespace

bool RequestTracingEnabled() {
  return RequestTracingFlag().load(std::memory_order_relaxed);
}

void SetRequestTracingEnabled(bool on) {
  RequestTracingFlag().store(on, std::memory_order_relaxed);
}

SlowTraceReservoir::SlowTraceReservoir() = default;

SlowTraceReservoir& SlowTraceReservoir::Global() {
  // Leaked: spans may be recorded from worker threads during static
  // teardown (same lifetime rule as the trace ring buffers).
  static SlowTraceReservoir* reservoir = new SlowTraceReservoir;
  return *reservoir;
}

TraceContext SlowTraceReservoir::Begin(const char* root_name) {
  if (!RequestTracingEnabled()) return {};
  const uint32_t start = next_slot_.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t i = 0; i < kSlots; ++i) {
    const uint32_t index = (start + i) % kSlots;
    Slot& slot = slots_[index];
    uint64_t expected = 0;
    // Claim with a sentinel first: the trace id embeds the per-slot
    // generation, which only the claimer may advance.
    if (!slot.owner.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    // generation >= 1 keeps every trace id >= kSlots (> the sentinel).
    const uint64_t trace_id = ++slot.generation * kSlots + index;
    const uint64_t root = internal::NextSpanId();
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.root_name = root_name;
      slot.root_span = root;
      slot.start_ns = internal::NowNs();
      slot.dropped = 0;
      slot.spans.clear();
    }
    slot.owner.store(trace_id, std::memory_order_release);
    ReservoirInstruments::Get().started.Increment();
    return TraceContext{trace_id, root};
  }
  ReservoirInstruments::Get().slots_busy.Increment();
  return {};
}

void SlowTraceReservoir::Append(uint64_t trace_id, const TraceEvent& event) {
  Slot& slot = SlotFor(trace_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  // Stale spans — work that outlived its request's End — are discarded
  // rather than polluting the slot's next occupant.
  if (slot.owner.load(std::memory_order_acquire) != trace_id) return;
  if (slot.spans.size() >= kMaxSpansPerTrace) {
    ++slot.dropped;
    return;
  }
  slot.spans.push_back(event);
}

void SlowTraceReservoir::End(const TraceContext& ctx, uint64_t end_ns) {
  if (!ctx.active()) return;
  Slot& slot = SlotFor(ctx.trace_id);
  const char* root_name = nullptr;
  uint64_t start_ns = 0;
  uint64_t root_span = 0;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.owner.load(std::memory_order_acquire) != ctx.trace_id) return;
    root_name = slot.root_name;
    start_ns = slot.start_ns;
    root_span = slot.root_span;
  }
  if (end_ns == 0) end_ns = internal::NowNs();
  // The root span goes through the normal record path so it reaches the
  // ring buffers too; Append routes its trace copy into this slot.
  internal::RecordSpan(root_name, start_ns, end_ns, root_span, ctx.trace_id,
                       /*parent_id=*/0);

  const uint64_t total_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  const uint64_t floor = floor_ns_.load(std::memory_order_relaxed);
  std::shared_ptr<CompletedTrace> trace;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.owner.load(std::memory_order_acquire) != ctx.trace_id) return;
    if (floor == 0 || total_ns > floor) {
      // Slow enough to matter: harvest the span tree before freeing.
      trace = std::make_shared<CompletedTrace>();
      trace->spans = std::move(slot.spans);
      trace->spans_dropped = slot.dropped;
    }
    slot.spans.clear();
    slot.owner.store(0, std::memory_order_release);
  }
  if (!trace) return;  // Fast reject: faster than the K-th worst.
  trace->trace_id = ctx.trace_id;
  trace->root_span = root_span;
  trace->start_ns = start_ns;
  trace->total_ns = total_ns;
  Publish(std::move(trace));
}

void SlowTraceReservoir::Abort(const TraceContext& ctx) {
  if (!ctx.active()) return;
  Slot& slot = SlotFor(ctx.trace_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.owner.load(std::memory_order_acquire) != ctx.trace_id) return;
  slot.spans.clear();
  slot.owner.store(0, std::memory_order_release);
}

void SlowTraceReservoir::Publish(std::shared_ptr<const CompletedTrace> trace) {
  for (;;) {
    int min_index = -1;
    std::shared_ptr<const CompletedTrace> min_entry;
    for (int i = 0; i < kWorst; ++i) {
      std::shared_ptr<const CompletedTrace> entry =
          worst_[i].load(std::memory_order_acquire);
      if (!entry) {
        min_index = i;
        min_entry = nullptr;
        break;
      }
      if (!min_entry || entry->total_ns < min_entry->total_ns) {
        min_index = i;
        min_entry = std::move(entry);
      }
    }
    if (min_entry && trace->total_ns <= min_entry->total_ns) return;
    if (worst_[min_index].compare_exchange_strong(
            min_entry, trace, std::memory_order_acq_rel)) {
      ReservoirInstruments::Get().captured.Increment();
      RecomputeFloor();
      return;
    }
    // Another publisher swapped this entry first; re-scan and retry.
  }
}

void SlowTraceReservoir::RecomputeFloor() {
  uint64_t floor = UINT64_MAX;
  for (int i = 0; i < kWorst; ++i) {
    const std::shared_ptr<const CompletedTrace> entry =
        worst_[i].load(std::memory_order_acquire);
    if (!entry) return;  // Not warm yet: every completed trace still enters.
    floor = std::min(floor, entry->total_ns);
  }
  // Entries are only ever replaced by slower traces, so the true floor is
  // monotone non-decreasing; a stale (lower) published value merely lets an
  // extra candidate through to the CAS loop, never rejects a deserving one.
  floor_ns_.store(floor, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<const CompletedTrace>>
SlowTraceReservoir::WorstTraces() const {
  std::vector<std::shared_ptr<const CompletedTrace>> traces;
  traces.reserve(kWorst);
  for (int i = 0; i < kWorst; ++i) {
    std::shared_ptr<const CompletedTrace> entry =
        worst_[i].load(std::memory_order_acquire);
    if (entry) traces.push_back(std::move(entry));
  }
  std::sort(traces.begin(), traces.end(),
            [](const auto& a, const auto& b) {
              return a->total_ns != b->total_ns ? a->total_ns > b->total_ns
                                                : a->trace_id < b->trace_id;
            });
  return traces;
}

std::shared_ptr<const CompletedTrace> SlowTraceReservoir::Find(
    uint64_t trace_id) const {
  for (int i = 0; i < kWorst; ++i) {
    std::shared_ptr<const CompletedTrace> entry =
        worst_[i].load(std::memory_order_acquire);
    if (entry && entry->trace_id == trace_id) return entry;
  }
  return nullptr;
}

std::string SlowTraceReservoir::Json() const {
  const auto traces = WorstTraces();
  std::string out = "{\"k\":";
  out += std::to_string(kWorst);
  out += ",\"floor_us\":";
  AppendMicros(floor_ns(), &out);
  out += ",\"traces\":[";
  bool first_trace = true;
  for (const auto& trace : traces) {
    if (!first_trace) out += ',';
    first_trace = false;
    out += "{\"trace\":\"";
    out += TraceIdHex(trace->trace_id);
    out += "\",\"root\":";
    out += std::to_string(trace->root_span);
    out += ",\"start_us\":";
    AppendMicros(trace->start_ns, &out);
    out += ",\"total_us\":";
    AppendMicros(trace->total_ns, &out);
    out += ",\"spans_dropped\":";
    out += std::to_string(trace->spans_dropped);
    out += ",\"spans\":[";
    bool first_span = true;
    for (const TraceEvent& e : trace->spans) {
      if (!first_span) out += ',';
      first_span = false;
      AppendSpanJson(e, &out);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void SlowTraceReservoir::Clear() {
  floor_ns_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kWorst; ++i) {
    worst_[i].store(nullptr, std::memory_order_release);
  }
}

}  // namespace pa::obs
