#ifndef PA_OBS_HEALTH_H_
#define PA_OBS_HEALTH_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pa::obs {

/// Process-wide component health: named components each report OK, DEGRADED,
/// or FAILED plus a human-readable detail line. Consumers:
///
///  * `GET /healthz` on the exposition server renders the registry as JSON
///    and answers 503 iff the overall status is FAILED (load balancers and
///    smoke tests key off the status code alone);
///  * the PA-Seq2Seq training watchdog publishes "train.watchdog" so a
///    diverging or NaN run is visible to a scraper before the process
///    decides to abort.
///
/// Updates take a mutex — health transitions are rare (per-epoch, per-model
/// swap), never per-request, so there is no lock-free fast path to preserve.

enum class HealthStatus { kOk, kDegraded, kFailed };

/// "ok" / "degraded" / "failed".
const char* HealthStatusName(HealthStatus status);

class HealthRegistry {
 public:
  static HealthRegistry& Global();

  /// Sets (or creates) `component`'s status. `detail` should say *why* for
  /// anything other than OK ("loss diverged: 12.3 vs window min 0.8").
  void Set(const std::string& component, HealthStatus status,
           const std::string& detail = "");

  /// Removes `component` (e.g. a serve loop shutting down cleanly).
  void Remove(const std::string& component);

  struct Component {
    std::string name;
    HealthStatus status = HealthStatus::kOk;
    std::string detail;
  };

  /// All components, sorted by name.
  std::vector<Component> Components() const;

  /// Worst status across components; OK when none are registered (an empty
  /// registry means "nothing has complained", not "nothing works").
  HealthStatus Overall() const;

  /// {"status":"ok","components":{"name":{"status":...,"detail":...},...}}
  std::string Json() const;

  /// Test hook: drops every component.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Component> components_;
};

}  // namespace pa::obs

#endif  // PA_OBS_HEALTH_H_
