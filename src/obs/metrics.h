#ifndef PA_OBS_METRICS_H_
#define PA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pa::obs {

/// Process-wide metrics: named lock-free instruments behind a registry.
///
/// Three instrument kinds, all safe to bump from any thread with relaxed
/// atomics (one atomic RMW per update — cheap enough for per-request and
/// per-epoch call sites; per-op hot loops should accumulate thread-locally
/// and flush deltas, see tensor::internal::BufferPool):
///
///  * `Counter`   — monotonically increasing uint64.
///  * `Gauge`     — last-written double, with `Add` and `UpdateMax` CAS
///                  helpers (queue depths, high-water marks, loss values).
///  * `Histogram` — geometric-bucket distribution promoted from the former
///                  serve::LatencyHistogram; records values (canonically
///                  microseconds) and answers interpolated percentiles.
///
/// Instruments are addressable by string name through `MetricRegistry`:
/// `GetCounter(name)` creates on first use and returns a stable reference,
/// so hot call sites cache the handle once (function-local static) and the
/// steady-state cost is the atomic bump alone. Components with
/// per-instance state (e.g. serve::Engine) can instead *register* the
/// instruments they own so the snapshot covers them without double
/// counting; see RegisterCounter et al.

class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void UpdateMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time digest of a histogram, derived from one bucket snapshot so
/// count and percentiles always describe the same sample set.
struct HistogramStats {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Bucket-midpoint estimate of the mean (no extra atomic on Record).
  double mean = 0.0;
};

/// Lock-free histogram with geometric buckets.
///
/// Bucket i covers values in [1 * 1.5^i, 1 * 1.5^(i+1)); 64 buckets span
/// ~1 to ~2.4e11 (µs: ~1µs to ~66 hours), so the last bucket acts as a
/// catch-all. Percentiles interpolate linearly inside the winning bucket,
/// bounding relative error by the bucket ratio (50%) in the worst case and
/// far less in practice.
///
/// There is deliberately no separate total counter: every read path copies
/// the buckets once and derives the count from that same copy, so a reader
/// concurrent with `Record` or `Reset` sees an internally consistent (if
/// slightly stale or partially reset) sample set — never a total that
/// disagrees with the buckets. This replaces the torn-reset-prone
/// `total_` + buckets design of the old serve::LatencyHistogram.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kFirstBucket = 1.0;
  static constexpr double kRatio = 1.5;

  void Record(double value);

  /// Value at quantile `q` in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  /// Total recorded samples (one consistent bucket pass).
  uint64_t count() const;

  /// One consistent digest (single bucket snapshot for all fields).
  HistogramStats Stats() const;

  void Reset();

 private:
  std::array<uint64_t, kBuckets> SnapshotBuckets() const;

  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
};

/// The process-wide instrument registry.
///
/// Lookup takes a mutex; instrument updates do not. `Get*` instruments are
/// owned by the registry and live forever (stable addresses — cache the
/// reference). `Register*` attaches caller-owned instruments (or a callback
/// computing a gauge value on demand) under a name; a second registration
/// under the same name replaces the first (last wins), and `Unregister`
/// detaches only if `owner` still matches — so an Engine being destroyed
/// never evicts its replacement.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Caller-owned instruments; `instrument` doubles as the owner tag.
  /// The pointee must stay alive until Unregister.
  void RegisterCounter(const std::string& name, const Counter* instrument);
  void RegisterGauge(const std::string& name, const Gauge* instrument);
  void RegisterHistogram(const std::string& name, const Histogram* instrument);

  /// Gauge whose value is computed at snapshot time (e.g. live session
  /// count). `fn` runs under the registry mutex: it must not call back into
  /// the registry.
  void RegisterCallbackGauge(const std::string& name, const void* owner,
                             std::function<double()> fn);

  /// Removes `name` if it is still owned by `owner` (the instrument pointer
  /// passed to Register*, or the `owner` of a callback gauge).
  void Unregister(const std::string& name, const void* owner);

  /// Typed snapshot for tests and embedding.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// The snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":...,"p50":...,"p95":...,"p99":...,
  ///                  "mean":...}}}
  /// Keys are sorted, values always finite — the shape
  /// scripts/bench_compare.py --schema validates inside BENCH_*.json.
  std::string SnapshotJson() const;

 private:
  struct Entry {
    enum class Kind { kNone, kCounter, kGauge, kHistogram, kCallbackGauge };
    Kind kind = Kind::kNone;
    // Registry-owned instruments (Get*). unique_ptr keeps the address
    // stable even though map nodes already are; it also allows one Entry
    // type for both owned and external instruments.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    // Read-side pointers: for owned instruments these alias the unique_ptrs;
    // for Register* they point at caller-owned storage.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<double()> callback;
    const void* owner = nullptr;  // nullptr for registry-owned entries.
  };

  mutable std::mutex mu_;
  // node-based map: entry addresses are stable across inserts.
  std::map<std::string, Entry> entries_;
};

}  // namespace pa::obs

#endif  // PA_OBS_METRICS_H_
