#ifndef PA_OBS_METRICS_H_
#define PA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pa::obs {

/// Process-wide metrics: named lock-free instruments behind a registry.
///
/// Three instrument kinds, all safe to bump from any thread with relaxed
/// atomics (one atomic RMW per update — cheap enough for per-request and
/// per-epoch call sites; per-op hot loops should accumulate thread-locally
/// and flush deltas, see tensor::internal::BufferPool):
///
///  * `Counter`   — monotonically increasing uint64.
///  * `Gauge`     — last-written double, with `Add` and `UpdateMax` CAS
///                  helpers (queue depths, high-water marks, loss values).
///  * `Histogram` — geometric-bucket distribution promoted from the former
///                  serve::LatencyHistogram; records values (canonically
///                  microseconds) and answers interpolated percentiles.
///
/// Instruments are addressable by string name through `MetricRegistry`:
/// `GetCounter(name)` creates on first use and returns a stable reference,
/// so hot call sites cache the handle once (function-local static) and the
/// steady-state cost is the atomic bump alone. Components with
/// per-instance state (e.g. serve::Engine) can instead *register* the
/// instruments they own so the snapshot covers them without double
/// counting; see RegisterCounter et al.

class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void UpdateMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time digest of a histogram, derived from one bucket snapshot so
/// count and percentiles always describe the same sample set.
struct HistogramStats {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Bucket-midpoint estimate of the mean (no extra atomic on Record).
  double mean = 0.0;
  /// Trace-span id exemplifying the p99 bucket (0 = none recorded): the most
  /// recent RecordWithExemplar that landed in the bucket the p99 falls in,
  /// falling back to the nearest occupied bucket above, then below. Links a
  /// tail percentile to a concrete span in the PA_OBS_TRACE dump.
  uint64_t p99_exemplar_span = 0;
};

/// Lock-free histogram with geometric buckets.
///
/// Bucket i covers values in [1 * 1.5^i, 1 * 1.5^(i+1)); 64 buckets span
/// ~1 to ~2.4e11 (µs: ~1µs to ~66 hours), so the last bucket acts as a
/// catch-all. Percentiles interpolate linearly inside the winning bucket,
/// bounding relative error by the bucket ratio (50%) in the worst case and
/// far less in practice.
///
/// There is deliberately no separate total counter: every read path copies
/// the buckets once and derives the count from that same copy, so a reader
/// concurrent with `Record` or `Reset` sees an internally consistent (if
/// slightly stale or partially reset) sample set — never a total that
/// disagrees with the buckets. This replaces the torn-reset-prone
/// `total_` + buckets design of the old serve::LatencyHistogram.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kFirstBucket = 1.0;
  static constexpr double kRatio = 1.5;

  void Record(double value);

  /// Record plus exemplar: remembers `span_id` as the most recent trace span
  /// to land in the value's bucket (last-wins per bucket, one extra relaxed
  /// store). `span_id == 0` (tracing off) degrades to a plain Record, so
  /// call sites can pass `TraceSpan::id()` unconditionally at zero cost when
  /// tracing is disabled.
  void RecordWithExemplar(double value, uint64_t span_id);

  /// Value at quantile `q` in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  /// Total recorded samples (one consistent bucket pass).
  uint64_t count() const;

  /// One consistent digest (single bucket snapshot for all fields).
  HistogramStats Stats() const;

  /// Raw per-bucket view for exposition formats that need real buckets
  /// (Prometheus text): counts plus the last exemplar span id per bucket
  /// (0 = none). Both arrays come from one pass each; they are advisory
  /// (an exemplar may be newer than the counts next to it).
  struct Export {
    std::array<uint64_t, kBuckets> counts{};
    std::array<uint64_t, kBuckets> exemplar_span{};
  };
  Export ExportBuckets() const;

  /// Inclusive lower / exclusive upper value bound of bucket `i`.
  static double BucketLowerBound(int i);
  static double BucketUpperBound(int i);

  void Reset();

 private:
  std::array<uint64_t, kBuckets> SnapshotBuckets() const;

  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  // Most recent exemplar span id per bucket; written only by
  // RecordWithExemplar with a nonzero id, so the common Record path never
  // touches it.
  std::array<std::atomic<uint64_t>, kBuckets> exemplar_span_{};
};

/// The process-wide instrument registry.
///
/// Lookup takes a mutex; instrument updates do not. `Get*` instruments are
/// owned by the registry and live forever (stable addresses — cache the
/// reference). `Register*` attaches caller-owned instruments (or a callback
/// computing a gauge value on demand) under a name; a second registration
/// under the same name replaces the first (last wins), and `Unregister`
/// detaches only if `owner` still matches — so an Engine being destroyed
/// never evicts its replacement.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Caller-owned instruments; `instrument` doubles as the owner tag.
  /// The pointee must stay alive until Unregister.
  void RegisterCounter(const std::string& name, const Counter* instrument);
  void RegisterGauge(const std::string& name, const Gauge* instrument);
  void RegisterHistogram(const std::string& name, const Histogram* instrument);

  /// Gauge whose value is computed at snapshot time (e.g. live session
  /// count). `fn` runs under the registry mutex: it must not call back into
  /// the registry.
  void RegisterCallbackGauge(const std::string& name, const void* owner,
                             std::function<double()> fn);

  /// Removes `name` if it is still owned by `owner` (the instrument pointer
  /// passed to Register*, or the `owner` of a callback gauge).
  void Unregister(const std::string& name, const void* owner);

  /// Typed snapshot for tests and embedding.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// The snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":...,"p50":...,"p95":...,"p99":...,
  ///                  "mean":...,"p99_exemplar_span":...}}}
  /// Keys are sorted, values always finite — the shape
  /// scripts/bench_compare.py --schema validates inside BENCH_*.json.
  std::string SnapshotJson() const;

  /// Prometheus text exposition of every instrument: `# TYPE` lines plus
  /// one sample line per counter/gauge and cumulative `_bucket{le=...}` /
  /// `_sum` / `_count` lines per histogram. Names are sanitized to the
  /// Prometheus charset ('.' and other illegal characters become '_').
  /// Buckets carrying an exemplar span id append it in OpenMetrics exemplar
  /// syntax (` # {span_id="N"} <bound>`), linking the tail of a latency
  /// histogram to a concrete span in a PA_OBS_TRACE dump.
  std::string PrometheusText() const;

 private:
  struct Entry {
    enum class Kind { kNone, kCounter, kGauge, kHistogram, kCallbackGauge };
    Kind kind = Kind::kNone;
    // Registry-owned instruments (Get*). unique_ptr keeps the address
    // stable even though map nodes already are; it also allows one Entry
    // type for both owned and external instruments.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    // Read-side pointers: for owned instruments these alias the unique_ptrs;
    // for Register* they point at caller-owned storage.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<double()> callback;
    const void* owner = nullptr;  // nullptr for registry-owned entries.
  };

  mutable std::mutex mu_;
  // node-based map: entry addresses are stable across inserts.
  std::map<std::string, Entry> entries_;
};

/// Serializes an already-taken snapshot in the exact SnapshotJson shape —
/// lets callers render modified snapshots (e.g. the telemetry sampler's
/// delta-encoded counters) without a second registry pass.
std::string SnapshotToJson(const MetricRegistry::Snapshot& snapshot);

/// The change between two snapshots of the same registry, as one JSON
/// object mirroring the SnapshotJson shape: counters carry `after - before`
/// (a counter absent from `before`, or one that went backwards after a
/// re-registration, reports its `after` value), histograms carry the count
/// delta plus `after`'s percentiles, and gauges are point-in-time so they
/// carry `after`'s value unchanged. `pa_serve stats` uses this to report
/// its probe workload separately from whatever the process counted before.
std::string SnapshotDeltaJson(const MetricRegistry::Snapshot& before,
                              const MetricRegistry::Snapshot& after);

}  // namespace pa::obs

#endif  // PA_OBS_METRICS_H_
