#ifndef PA_OBS_JSON_UTIL_H_
#define PA_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace pa::obs::internal {

/// Minimal JSON emission helpers for the observability exporters.
///
/// `obs` sits below every other layer (serve, eval, augment all report
/// through it), so it cannot borrow serve::JsonWriter without inverting the
/// dependency graph; these two functions are all the generation it needs.

/// Appends `s` to `out` escaped for inclusion inside a JSON string literal
/// (quotes not added).
inline void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Appends `value` as a JSON number. Integral values print without a
/// fractional part; non-finite values (which valid snapshots never produce,
/// but a caller-supplied gauge callback might) degrade to 0 so the output
/// stays schema-clean rather than emitting bare `nan`/`inf` tokens.
inline void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "0";
    return;
  }
  char buf[40];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  *out += buf;
}

}  // namespace pa::obs::internal

#endif  // PA_OBS_JSON_UTIL_H_
