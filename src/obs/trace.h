#ifndef PA_OBS_TRACE_H_
#define PA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pa::obs {

/// Scoped tracing with per-thread ring buffers and request-scoped trace
/// contexts.
///
/// Usage at a call site:
///
///   void Engine::Run(...) {
///     PA_TRACE_SPAN("serve.request");
///     ...
///   }  // span closes here
///
/// `name` must be a string literal (or otherwise outlive the trace): spans
/// store the pointer, not a copy, so the hot path never allocates.
///
/// Two independent switches decide whether a span records anything:
///
///  * **Process tracing** (`SetTracingEnabled` / `PA_OBS_TRACE=<path>`):
///    every span goes to the calling thread's ring buffer for a
///    chrome://tracing / NDJSON dump. Off by default.
///  * **An active request trace** (`TraceContext`, see below): the span
///    additionally links itself under the current trace and is captured
///    into that trace's span tree (see slow_trace.h). Always on in serving
///    binaries unless `PA_TRACE_REQUESTS=off`.
///
/// When both are off a span is one relaxed atomic load, one thread-local
/// read and a branch — the constructor records nothing. When either is on,
/// begin/end take one steady-clock read each.
///
/// Buffers hold the most recent `kMaxEventsPerThread` spans per thread;
/// older spans are overwritten and counted as dropped (visible as the
/// `obs.trace.dropped_total` registry counter).
///
/// ## Request-scoped tracing (Dapper-style, in-process)
///
/// A `TraceContext` is {trace id, parent span id}, carried in a
/// thread-local slot. Spans opened while a context is active record the
/// trace id and link to the innermost enclosing span (`parent_id`); each
/// span installs itself as the parent for its own scope, so nesting falls
/// out of RAII. The context never crosses a thread by itself — every
/// thread handoff captures `CurrentTraceContext()` alongside the work and
/// restores it on the other side with a `TraceContextScope`:
///
///   ShardedEngine::Task captures at enqueue, restores in the shard worker;
///   ThreadPool::Submit/ParallelForRange capture at submit, restore in the
///   pool worker; NdjsonServer mints a fresh context per request line.
struct TraceContext {
  /// 0 = no active trace (spans still work, they just do not link).
  uint64_t trace_id = 0;
  /// Span id new child spans link under (the trace's root span until a
  /// nested span installs itself).
  uint64_t parent_span = 0;

  bool active() const { return trace_id != 0; }
};

/// One completed span. Times are steady-clock nanoseconds relative to the
/// process trace epoch; `tid` is a small dense id assigned per thread in
/// first-span order (the exporter uses it as the chrome tid).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  /// Process-unique span id (1-based; 0 only in hand-built events). Lets
  /// other signals reference a specific span — e.g. histogram exemplars
  /// (Histogram::RecordWithExemplar) link a p99 latency to the request span
  /// that produced it.
  uint64_t id = 0;
  /// Request trace this span belongs to (0 = none active when it ran).
  uint64_t trace_id = 0;
  /// Enclosing span within the trace (0 = root / unlinked).
  uint64_t parent_id = 0;
};

namespace internal {
extern std::atomic<bool> g_tracing;
/// Appends one completed span to the calling thread's ring buffer and, when
/// `trace_id` names a live request trace, to that trace's span collection.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t id, uint64_t trace_id, uint64_t parent_id);
/// Steady-clock nanoseconds since the process trace epoch.
uint64_t NowNs();
/// Next process-unique span id (never 0).
uint64_t NextSpanId();
/// The calling thread's current-context slot. Mutated only through
/// TraceContextScope and TraceSpan (LIFO by construction).
inline TraceContext& ContextSlot() {
  thread_local TraceContext slot;
  return slot;
}
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool on);

/// The calling thread's active request context ({0,0} when none). Capture
/// this next to work that hops threads and restore it with a
/// TraceContextScope on the executing thread.
inline TraceContext CurrentTraceContext() { return internal::ContextSlot(); }

/// Installs `ctx` as the thread's current context for the enclosing scope
/// and restores the previous context on exit. Cheap enough to install
/// unconditionally (two thread-local copies), including an inactive {0,0}
/// context — which deliberately *isolates* the scope from any ambient one.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx)
      : saved_(internal::ContextSlot()) {
    internal::ContextSlot() = ctx;
  }
  ~TraceContextScope() { internal::ContextSlot() = saved_; }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Steady-clock nanoseconds since the trace epoch (public alias of
/// internal::NowNs for stage-timing call sites outside obs).
uint64_t TraceClockNs();

/// Converts a steady_clock time point (e.g. a queue-entry stamp taken for
/// deadline math) to trace-epoch nanoseconds without a second clock read.
uint64_t ToTraceNs(std::chrono::steady_clock::time_point tp);

/// Records a completed span synthesized from explicit timestamps — for
/// stages whose start and end are observed on different threads (queue
/// wait, write wait) where no RAII scope can cover the interval. Links
/// under `ctx` exactly as a TraceSpan opened there would. Returns the span
/// id, or 0 when neither tracing switch was on (safe to pass straight to
/// RecordWithExemplar).
uint64_t RecordStageSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                         const TraceContext& ctx);

/// Lower-case hex rendering of a trace id — the form echoed in NDJSON
/// response envelopes ("trace":"<hex>") and accepted by
/// `trace_summary.py --trace`.
std::string TraceIdHex(uint64_t trace_id);

/// Moves every buffered span out of every thread's ring buffer (including
/// threads that have since exited) and returns them sorted by start time.
std::vector<TraceEvent> DrainTraceEvents();

/// Spans lost to ring overflow or recorded after thread teardown.
uint64_t TraceEventsDropped();

/// Trace Event JSON ("X" complete events) that chrome://tracing and
/// Perfetto load directly: {"traceEvents":[{"name":...,"ph":"X",...}]}.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// One flat JSON object per line:
/// {"name":...,"ts_us":...,"dur_us":...,"tid":...,"id":...,
///  "trace":"<hex>","parent":N}  (trace/parent only on linked spans)
std::string TraceNdjson(const std::vector<TraceEvent>& events);

/// Drains and writes to `path` (NDJSON when the path ends in ".ndjson",
/// Trace Event JSON otherwise). Returns false on I/O failure.
bool WriteTraceFile(const std::string& path);

/// RAII span; prefer the PA_TRACE_SPAN macro. Use a named TraceSpan when a
/// call site wants the span's `id()` (e.g. to attach it as a histogram
/// exemplar).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceContext& ctx = internal::ContextSlot();
    if (internal::g_tracing.load(std::memory_order_relaxed) ||
        ctx.trace_id != 0) {
      name_ = name;
      start_ns_ = internal::NowNs();
      id_ = internal::NextSpanId();
      trace_id_ = ctx.trace_id;
      parent_ = ctx.parent_span;
      if (trace_id_ != 0) ctx.parent_span = id_;  // Children link under us.
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      if (trace_id_ != 0) internal::ContextSlot().parent_span = parent_;
      internal::RecordSpan(name_, start_ns_, internal::NowNs(), id_,
                           trace_id_, parent_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Process-unique id of this span, or 0 when tracing was off at
  /// construction — safe to pass straight to RecordWithExemplar, which
  /// treats 0 as "no exemplar".
  uint64_t id() const { return id_; }

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t parent_ = 0;
};

#define PA_OBS_CONCAT_INNER_(a, b) a##b
#define PA_OBS_CONCAT_(a, b) PA_OBS_CONCAT_INNER_(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PA_TRACE_SPAN(name) \
  ::pa::obs::TraceSpan PA_OBS_CONCAT_(pa_trace_span_, __LINE__)(name)

}  // namespace pa::obs

#endif  // PA_OBS_TRACE_H_
