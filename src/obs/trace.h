#ifndef PA_OBS_TRACE_H_
#define PA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pa::obs {

/// Scoped tracing with per-thread ring buffers.
///
/// Usage at a call site:
///
///   void Engine::Run(...) {
///     PA_TRACE_SPAN("serve.request");
///     ...
///   }  // span closes here
///
/// `name` must be a string literal (or otherwise outlive the trace): spans
/// store the pointer, not a copy, so the hot path never allocates.
///
/// Off by default. When tracing is off a span is one relaxed atomic load
/// and a branch — the constructor reads the global flag and records
/// nothing. When on, begin/end take one steady-clock read each and the
/// completed span is appended to the calling thread's ring buffer (per
/// buffer mutex, uncontended except against a concurrent drain). Buffers
/// hold the most recent `kMaxEventsPerThread` spans per thread; older spans
/// are overwritten and counted as dropped.
///
/// Enable programmatically with `SetTracingEnabled(true)` and export with
/// `DrainTraceEvents` + `ChromeTraceJson`/`TraceNdjson`, or set
/// `PA_OBS_TRACE=<path>` in the environment: any binary linking an
/// instrumented layer then starts with tracing on and dumps the trace to
/// `<path>` at process exit (Trace Event JSON for chrome://tracing /
/// Perfetto, or NDJSON when the path ends in ".ndjson").

/// One completed span. Times are steady-clock nanoseconds relative to the
/// process trace epoch; `tid` is a small dense id assigned per thread in
/// first-span order (the exporter uses it as the chrome tid).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  /// Process-unique span id (1-based; 0 only in hand-built events). Lets
  /// other signals reference a specific span — e.g. histogram exemplars
  /// (Histogram::RecordWithExemplar) link a p99 latency to the request span
  /// that produced it.
  uint64_t id = 0;
};

namespace internal {
extern std::atomic<bool> g_tracing;
/// Appends one completed span to the calling thread's ring buffer.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t id);
/// Steady-clock nanoseconds since the process trace epoch.
uint64_t NowNs();
/// Next process-unique span id (never 0).
uint64_t NextSpanId();
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool on);

/// Moves every buffered span out of every thread's ring buffer (including
/// threads that have since exited) and returns them sorted by start time.
std::vector<TraceEvent> DrainTraceEvents();

/// Spans lost to ring overflow or recorded after thread teardown.
uint64_t TraceEventsDropped();

/// Trace Event JSON ("X" complete events) that chrome://tracing and
/// Perfetto load directly: {"traceEvents":[{"name":...,"ph":"X",...}]}.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// One flat JSON object per line:
/// {"name":...,"ts_us":...,"dur_us":...,"tid":...,"id":...}
std::string TraceNdjson(const std::vector<TraceEvent>& events);

/// Drains and writes to `path` (NDJSON when the path ends in ".ndjson",
/// Trace Event JSON otherwise). Returns false on I/O failure.
bool WriteTraceFile(const std::string& path);

/// RAII span; prefer the PA_TRACE_SPAN macro. Use a named TraceSpan when a
/// call site wants the span's `id()` (e.g. to attach it as a histogram
/// exemplar).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (internal::g_tracing.load(std::memory_order_relaxed)) {
      name_ = name;
      start_ns_ = internal::NowNs();
      id_ = internal::NextSpanId();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, internal::NowNs(), id_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Process-unique id of this span, or 0 when tracing was off at
  /// construction — safe to pass straight to RecordWithExemplar, which
  /// treats 0 as "no exemplar".
  uint64_t id() const { return id_; }

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
};

#define PA_OBS_CONCAT_INNER_(a, b) a##b
#define PA_OBS_CONCAT_(a, b) PA_OBS_CONCAT_INNER_(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PA_TRACE_SPAN(name) \
  ::pa::obs::TraceSpan PA_OBS_CONCAT_(pa_trace_span_, __LINE__)(name)

}  // namespace pa::obs

#endif  // PA_OBS_TRACE_H_
