#include "obs/http_exposition.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket_util.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slow_trace.h"

namespace pa::obs {

namespace internal {

namespace {

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
  }
  return "Error";
}

/// Health as Prometheus gauges, appended after the metric registry so
/// /metrics alone carries the full signal set.
std::string HealthPrometheusText() {
  std::string out = "# TYPE pa_health_status gauge\n";
  for (const auto& c : HealthRegistry::Global().Components()) {
    out += "pa_health_status{component=\"";
    // Component names are code-chosen identifiers; strip the one character
    // that would break the label syntax.
    for (const char ch : c.name) {
      if (ch != '"' && ch != '\\' && ch != '\n') out += ch;
    }
    out += "\"} ";
    out += std::to_string(static_cast<int>(c.status));
    out += '\n';
  }
  return out;
}

}  // namespace

HttpResponse Route(const std::string& method, const std::string& path) {
  HttpResponse r;
  if (method != "GET") {
    r.status = 405;
    r.content_type = "text/plain";
    r.body = "method not allowed\n";
    return r;
  }
  if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4";
    r.body = MetricRegistry::Global().PrometheusText() +
             HealthPrometheusText();
  } else if (path == "/varz") {
    r.content_type = "application/json";
    r.body = MetricRegistry::Global().SnapshotJson() + "\n";
  } else if (path == "/healthz") {
    r.content_type = "application/json";
    r.body = HealthRegistry::Global().Json() + "\n";
    if (HealthRegistry::Global().Overall() == HealthStatus::kFailed) {
      r.status = 503;
    }
  } else if (path == "/slowz") {
    r.content_type = "application/json";
    r.body = SlowTraceReservoir::Global().Json() + "\n";
  } else {
    r.status = 404;
    r.content_type = "text/plain";
    r.body = "not found; try /metrics /varz /healthz /slowz\n";
  }
  return r;
}

std::string RenderHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace internal

/// Reads up to the end of the request headers (or a size cap) and answers
/// one request. Deliberately minimal: the request body, if any, is ignored,
/// and only the request line is parsed.
void ExpositionServer::HandleConnection(int fd) {
  // A scraper that dawdles must not wedge the single listener thread.
  timeval timeout{};
  timeout.tv_sec = config_.recv_timeout_ms / 1000;
  timeout.tv_usec = (config_.recv_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < config_.max_request_bytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  internal::HttpResponse response;
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    response.status = 400;
    response.content_type = "text/plain";
    response.body = "bad request\n";
  } else {
    // "GET /path HTTP/1.1"
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      response.status = 400;
      response.content_type = "text/plain";
      response.body = "bad request\n";
    } else {
      const std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      response = internal::Route(method, path);
    }
  }

  const std::string wire = internal::RenderHttpResponse(response);
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  close(fd);
}

bool ExpositionServer::Start(const ExpositionServerConfig& config) {
  if (thread_.joinable()) return false;
  uint16_t bound = 0;
  const int fd = net::ListenTcp(config.port, /*loopback_only=*/true, &bound,
                                /*error=*/nullptr);
  if (fd < 0) return false;
  config_ = config;
  listen_fd_ = fd;
  port_ = bound;
  // Discoverability for ephemeral ports (--metrics-port=0): the bound port
  // rides on every registry surface (/varz, stats op, telemetry NDJSON).
  port_gauge_.Set(static_cast<double>(bound));
  MetricRegistry::Global().RegisterGauge("obs.exposition.port", &port_gauge_);
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&ExpositionServer::Run, this);
  return true;
}

void ExpositionServer::Stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
  MetricRegistry::Global().Unregister("obs.exposition.port", &port_gauge_);
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void ExpositionServer::Run() {
  // poll with a timeout rather than blocking accept: Stop() only has to
  // flip the flag and wait at most one poll interval. PollRetry absorbs
  // EINTR (a signal used to be mistaken for a timeout and could starve an
  // already-queued connection for a poll interval), and AcceptConnection
  // retries interrupted accepts and sets FD_CLOEXEC on every connection.
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = net::PollRetry(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // Timeout; re-check the stop flag.
    const int conn = net::AcceptConnection(listen_fd_);
    if (conn < 0) continue;
    HandleConnection(conn);
  }
}

}  // namespace pa::obs
