#ifndef PA_OBS_TELEMETRY_SAMPLER_H_
#define PA_OBS_TELEMETRY_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pa::obs {

/// Background time-series sampler over a MetricRegistry.
///
/// A single thread wakes every `period_ms`, takes one registry snapshot,
/// and appends it to (a) an in-memory ring of the most recent `ring_size`
/// samples (for embedding into a stats dump) and (b) an optional NDJSON
/// sink, one line per tick:
///
///   {"schema":"pa.timeseries.v1","seq":3,"ts_ms":1500,"uptime_ms":1500,
///    "dropped":0,"counters":{...deltas...},"gauges":{...},
///    "histograms":{...}}
///
/// Counters are delta-encoded against the previous tick (seq 0 carries the
/// absolute values); gauges and histogram digests are point-in-time.
/// `ts_ms` derives from the steady clock so consecutive lines are always
/// monotonic — `scripts/bench_compare.py --schema` enforces this shape.
///
/// Drop accounting: a tick that cannot happen on time (snapshot + write
/// overran the period) or whose sink write fails increments `dropped`,
/// which is carried on every subsequent line — a gap in `seq` plus a
/// matching `dropped` rise tells a consumer data is missing rather than
/// the process being idle.
///
/// Not started ⇒ zero cost: no thread, no atomics on any hot path.
/// Start/Stop are not thread-safe against each other; call from one owner.
class TelemetrySampler {
 public:
  struct Options {
    uint64_t period_ms = 1000;
    /// Most recent samples kept in memory.
    size_t ring_size = 128;
    /// NDJSON sink path; empty = ring only.
    std::string sink_path;
  };

  struct Sample {
    uint64_t seq = 0;
    /// Milliseconds since sampler start (steady clock).
    uint64_t uptime_ms = 0;
    /// Ticks lost so far (missed deadlines + failed sink writes).
    uint64_t dropped = 0;
    /// Counters as deltas vs. the previous tick; gauges/histograms as-is.
    MetricRegistry::Snapshot snapshot;
  };

  explicit TelemetrySampler(MetricRegistry& registry) : registry_(registry) {}
  ~TelemetrySampler() { Stop(); }
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launches the sampling thread. Returns false (and stays stopped) if the
  /// sink path cannot be opened or the sampler is already running.
  bool Start(const Options& options);

  /// Signals the thread, waits for it to exit, flushes + closes the sink.
  /// Safe to call when not running.
  void Stop();

  bool running() const { return thread_.joinable(); }

  /// Ring contents, oldest first.
  std::vector<Sample> RecentSamples() const;

  /// Ticks lost so far (see class comment).
  uint64_t dropped() const;

  /// Reads PA_OBS_TIMESERIES (sink path) and PA_OBS_SAMPLE_PERIOD_MS
  /// (default 1000) and starts the process-wide sampler over
  /// MetricRegistry::Global() if the former is set. Returns whether a
  /// sampler is now running. Called from long-lived binaries' main();
  /// idempotent.
  static bool MaybeStartFromEnv();

 private:
  void Run();
  /// One tick: snapshot, delta-encode, append to ring + sink. Returns false
  /// when the sink write failed.
  bool SampleOnce(uint64_t uptime_ms);

  MetricRegistry& registry_;
  Options options_;
  std::FILE* sink_ = nullptr;

  std::thread thread_;
  mutable std::mutex mu_;  // Guards ring_, dropped_, and stop signaling.
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::deque<Sample> ring_;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  bool have_prev_ = false;
  MetricRegistry::Snapshot prev_;  // Previous tick's raw counters.
};

}  // namespace pa::obs

#endif  // PA_OBS_TELEMETRY_SAMPLER_H_
