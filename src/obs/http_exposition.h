#ifndef PA_OBS_HTTP_EXPOSITION_H_
#define PA_OBS_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace pa::obs {

/// Minimal dependency-free HTTP/1.1 exposition server — the repo's first
/// network surface, deliberately tiny: one listener thread, short-lived
/// connections handled inline (`Connection: close` on every response), no
/// keep-alive, no TLS, loopback only. It exists to let a scraper watch a
/// long-lived process, not to serve traffic.
///
/// Endpoints (GET only):
///
///   /metrics   Prometheus text exposition of MetricRegistry::Global()
///              plus one `pa_health_status{component=...}` gauge per
///              HealthRegistry component (0=ok 1=degraded 2=failed).
///   /varz      MetricRegistry::Global().SnapshotJson() (application/json).
///   /healthz   HealthRegistry::Global().Json(); status 200 unless the
///              overall health is FAILED, then 503 — load balancers and
///              smoke tests can key off the status code alone.
///   /slowz     SlowTraceReservoir::Global().Json(): the K worst-latency
///              completed request traces with full span trees (see
///              slow_trace.h and DESIGN.md "Request tracing").
///
/// Anything else answers 404; non-GET answers 405.
///
/// While running, the bound port is published as the `obs.exposition.port`
/// gauge, so the stats op / /varz / telemetry NDJSON all carry it — tooling
/// can discover an ephemeral `--metrics-port=0` without parsing stderr.
struct ExpositionServerConfig {
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// A client that stops sending mid-request (slow loris) is cut off after
  /// this long; it holds the single listener thread until then.
  int recv_timeout_ms = 5000;
  /// Request bytes read before giving up on finding the header terminator.
  size_t max_request_bytes = 16 * 1024;
};

class ExpositionServer {
 public:
  ExpositionServer() = default;
  ~ExpositionServer() { Stop(); }
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  /// the listener thread. Returns false if the socket cannot be bound or
  /// the server is already running.
  bool Start(uint16_t port) {
    ExpositionServerConfig config;
    config.port = port;
    return Start(config);
  }
  bool Start(const ExpositionServerConfig& config);

  /// Unblocks the listener, joins the thread, closes the socket. Safe to
  /// call when not running.
  void Stop();

  bool running() const { return thread_.joinable(); }

  /// The bound port (useful with port 0); 0 when not running.
  uint16_t port() const { return port_; }

 private:
  void Run();
  void HandleConnection(int fd);

  ExpositionServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
  Gauge port_gauge_;
};

namespace internal {

/// Routing logic, separated from the sockets so tests can hit it directly.
struct HttpResponse {
  int status = 200;
  std::string content_type;
  std::string body;
};
HttpResponse Route(const std::string& method, const std::string& path);

/// Serializes status line + headers + body (adds Content-Length and
/// Connection: close).
std::string RenderHttpResponse(const HttpResponse& response);

}  // namespace internal

}  // namespace pa::obs

#endif  // PA_OBS_HTTP_EXPOSITION_H_
