#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json_util.h"

namespace pa::obs {

namespace {

// log(1.5) — bucket index is floor(log(value) / log(ratio)).
const double kLogRatio = std::log(Histogram::kRatio);

int BucketIndex(double value) {
  if (value <= Histogram::kFirstBucket) return 0;
  const int idx =
      static_cast<int>(std::log(value / Histogram::kFirstBucket) / kLogRatio);
  return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

double BucketLower(int i) {
  return Histogram::kFirstBucket * std::pow(Histogram::kRatio, i);
}

// Percentile over a consistent bucket snapshot whose total is `total`.
// `bucket_out`, when non-null, receives the index of the bucket the
// percentile fell in (the last bucket when the scan runs off the end).
double PercentileOf(const std::array<uint64_t, Histogram::kBuckets>& counts,
                    uint64_t total, double q, int* bucket_out = nullptr) {
  if (bucket_out != nullptr) *bucket_out = Histogram::kBuckets - 1;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t c = counts[i];
    if (seen + c >= rank) {
      // Interpolate inside the bucket by the rank's position in it.
      const double frac =
          c == 0 ? 0.0 : double(rank - seen) / double(c);
      const double lo = BucketLower(i);
      const double hi = lo * Histogram::kRatio;
      if (bucket_out != nullptr) *bucket_out = i;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return BucketLower(Histogram::kBuckets - 1) * Histogram::kRatio;
}

}  // namespace

void Histogram::Record(double value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::RecordWithExemplar(double value, uint64_t span_id) {
  const int i = BucketIndex(value);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  if (span_id != 0) {
    exemplar_span_[i].store(span_id, std::memory_order_relaxed);
  }
}

std::array<uint64_t, Histogram::kBuckets> Histogram::SnapshotBuckets() const {
  std::array<uint64_t, kBuckets> snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Percentile(double q) const {
  const auto snap = SnapshotBuckets();
  uint64_t total = 0;
  for (const uint64_t c : snap) total += c;
  return PercentileOf(snap, total, q);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

HistogramStats Histogram::Stats() const {
  const auto snap = SnapshotBuckets();
  HistogramStats stats;
  double weighted = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    stats.count += snap[i];
    if (snap[i] > 0) {
      const double lo = BucketLower(i);
      weighted += static_cast<double>(snap[i]) * (lo + lo * kRatio) * 0.5;
    }
  }
  stats.p50 = PercentileOf(snap, stats.count, 0.50);
  stats.p95 = PercentileOf(snap, stats.count, 0.95);
  int p99_bucket = kBuckets - 1;
  stats.p99 = PercentileOf(snap, stats.count, 0.99, &p99_bucket);
  stats.mean = stats.count > 0 ? weighted / double(stats.count) : 0.0;
  if (stats.count > 0) {
    // Exemplar for the tail: the p99 bucket itself, else the nearest bucket
    // above (a more extreme tail sample), else the nearest below.
    for (int i = p99_bucket; i < kBuckets && stats.p99_exemplar_span == 0;
         ++i) {
      stats.p99_exemplar_span =
          exemplar_span_[i].load(std::memory_order_relaxed);
    }
    for (int i = p99_bucket - 1; i >= 0 && stats.p99_exemplar_span == 0;
         --i) {
      stats.p99_exemplar_span =
          exemplar_span_[i].load(std::memory_order_relaxed);
    }
  }
  return stats;
}

Histogram::Export Histogram::ExportBuckets() const {
  Export out;
  for (int i = 0; i < kBuckets; ++i) {
    out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    out.exemplar_span[i] = exemplar_span_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::BucketLowerBound(int i) { return BucketLower(i); }

double Histogram::BucketUpperBound(int i) {
  return BucketLower(i) * kRatio;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& e : exemplar_span_) e.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  // Leaked: instruments must outlive atexit hooks (trace dump, bench
  // snapshots) and worker-thread teardown flushes.
  static MetricRegistry* registry = new MetricRegistry;
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kCounter || e.owned_counter == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kCounter;
    e.owned_counter = std::make_unique<Counter>();
    e.counter = e.owned_counter.get();
  }
  return *e.owned_counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kGauge || e.owned_gauge == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kGauge;
    e.owned_gauge = std::make_unique<Gauge>();
    e.gauge = e.owned_gauge.get();
  }
  return *e.owned_gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kHistogram || e.owned_histogram == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kHistogram;
    e.owned_histogram = std::make_unique<Histogram>();
    e.histogram = e.owned_histogram.get();
  }
  return *e.owned_histogram;
}

void MetricRegistry::RegisterCounter(const std::string& name,
                                     const Counter* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.counter = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterGauge(const std::string& name,
                                   const Gauge* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.gauge = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterHistogram(const std::string& name,
                                       const Histogram* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.histogram = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterCallbackGauge(const std::string& name,
                                           const void* owner,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kCallbackGauge;
  e.callback = std::move(fn);
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricRegistry::Unregister(const std::string& name, const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.owner == owner) {
    entries_.erase(it);
  }
}

MetricRegistry::Snapshot MetricRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        snap.counters[name] = e.counter->value();
        break;
      case Entry::Kind::kGauge:
        snap.gauges[name] = e.gauge->value();
        break;
      case Entry::Kind::kCallbackGauge:
        snap.gauges[name] = e.callback ? e.callback() : 0.0;
        break;
      case Entry::Kind::kHistogram:
        snap.histograms[name] = e.histogram->Stats();
        break;
      case Entry::Kind::kNone:
        break;
    }
  }
  return snap;
}

std::string MetricRegistry::SnapshotJson() const {
  return SnapshotToJson(TakeSnapshot());
}

std::string SnapshotToJson(const MetricRegistry::Snapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":";
    internal::AppendJsonNumber(value, &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"p50\":";
    internal::AppendJsonNumber(h.p50, &out);
    out += ",\"p95\":";
    internal::AppendJsonNumber(h.p95, &out);
    out += ",\"p99\":";
    internal::AppendJsonNumber(h.p99, &out);
    out += ",\"mean\":";
    internal::AppendJsonNumber(h.mean, &out);
    out += ",\"p99_exemplar_span\":";
    out += std::to_string(h.p99_exemplar_span);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string SnapshotDeltaJson(const MetricRegistry::Snapshot& before,
                              const MetricRegistry::Snapshot& after) {
  MetricRegistry::Snapshot delta = after;
  for (auto& [name, value] : delta.counters) {
    const auto it = before.counters.find(name);
    if (it != before.counters.end() && it->second <= value) {
      value -= it->second;
    }  // else: new or re-registered counter — report the absolute value.
  }
  for (auto& [name, h] : delta.histograms) {
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end() && it->second.count <= h.count) {
      h.count -= it->second.count;
    }
  }
  return SnapshotToJson(delta);
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit first
// character; everything else (the registry's '.' separators, most notably)
// maps to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void AppendPrometheusNumber(double value, std::string* out) {
  if (std::isnan(value)) {
    *out += "NaN";
  } else if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
  } else {
    internal::AppendJsonNumber(value, out);
  }
}

}  // namespace

std::string MetricRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    const std::string pname = PrometheusName(name);
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + pname + " counter\n";
        out += pname + ' ' + std::to_string(e.counter->value()) + '\n';
        break;
      case Entry::Kind::kGauge:
      case Entry::Kind::kCallbackGauge: {
        const double v = e.kind == Entry::Kind::kGauge
                             ? e.gauge->value()
                             : (e.callback ? e.callback() : 0.0);
        out += "# TYPE " + pname + " gauge\n";
        out += pname + ' ';
        AppendPrometheusNumber(v, &out);
        out += '\n';
        break;
      }
      case Entry::Kind::kHistogram: {
        const Histogram::Export exp = e.histogram->ExportBuckets();
        out += "# TYPE " + pname + " histogram\n";
        uint64_t cumulative = 0;
        double sum = 0.0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (exp.counts[i] == 0 && exp.exemplar_span[i] == 0) continue;
          cumulative += exp.counts[i];
          const double lo = Histogram::BucketLowerBound(i);
          const double hi = Histogram::BucketUpperBound(i);
          sum += static_cast<double>(exp.counts[i]) * (lo + hi) * 0.5;
          out += pname + "_bucket{le=\"";
          AppendPrometheusNumber(hi, &out);
          out += "\"} " + std::to_string(cumulative);
          if (exp.exemplar_span[i] != 0) {
            // OpenMetrics exemplar: the most recent trace span that landed
            // in this bucket, valued at the bucket bound.
            out += " # {span_id=\"" +
                   std::to_string(exp.exemplar_span[i]) + "\"} ";
            AppendPrometheusNumber(hi, &out);
          }
          out += '\n';
        }
        out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               '\n';
        out += pname + "_sum ";
        AppendPrometheusNumber(sum, &out);
        out += '\n';
        out += pname + "_count " + std::to_string(cumulative) + '\n';
        break;
      }
      case Entry::Kind::kNone:
        break;
    }
  }
  return out;
}

}  // namespace pa::obs
