#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json_util.h"

namespace pa::obs {

namespace {

// log(1.5) — bucket index is floor(log(value) / log(ratio)).
const double kLogRatio = std::log(Histogram::kRatio);

int BucketIndex(double value) {
  if (value <= Histogram::kFirstBucket) return 0;
  const int idx =
      static_cast<int>(std::log(value / Histogram::kFirstBucket) / kLogRatio);
  return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

double BucketLower(int i) {
  return Histogram::kFirstBucket * std::pow(Histogram::kRatio, i);
}

// Percentile over a consistent bucket snapshot whose total is `total`.
double PercentileOf(const std::array<uint64_t, Histogram::kBuckets>& counts,
                    uint64_t total, double q) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t c = counts[i];
    if (seen + c >= rank) {
      // Interpolate inside the bucket by the rank's position in it.
      const double frac =
          c == 0 ? 0.0 : double(rank - seen) / double(c);
      const double lo = BucketLower(i);
      const double hi = lo * Histogram::kRatio;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return BucketLower(Histogram::kBuckets - 1) * Histogram::kRatio;
}

}  // namespace

void Histogram::Record(double value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kBuckets> Histogram::SnapshotBuckets() const {
  std::array<uint64_t, kBuckets> snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Percentile(double q) const {
  const auto snap = SnapshotBuckets();
  uint64_t total = 0;
  for (const uint64_t c : snap) total += c;
  return PercentileOf(snap, total, q);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

HistogramStats Histogram::Stats() const {
  const auto snap = SnapshotBuckets();
  HistogramStats stats;
  double weighted = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    stats.count += snap[i];
    if (snap[i] > 0) {
      const double lo = BucketLower(i);
      weighted += static_cast<double>(snap[i]) * (lo + lo * kRatio) * 0.5;
    }
  }
  stats.p50 = PercentileOf(snap, stats.count, 0.50);
  stats.p95 = PercentileOf(snap, stats.count, 0.95);
  stats.p99 = PercentileOf(snap, stats.count, 0.99);
  stats.mean = stats.count > 0 ? weighted / double(stats.count) : 0.0;
  return stats;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  // Leaked: instruments must outlive atexit hooks (trace dump, bench
  // snapshots) and worker-thread teardown flushes.
  static MetricRegistry* registry = new MetricRegistry;
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kCounter || e.owned_counter == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kCounter;
    e.owned_counter = std::make_unique<Counter>();
    e.counter = e.owned_counter.get();
  }
  return *e.owned_counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kGauge || e.owned_gauge == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kGauge;
    e.owned_gauge = std::make_unique<Gauge>();
    e.gauge = e.owned_gauge.get();
  }
  return *e.owned_gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.kind != Entry::Kind::kHistogram || e.owned_histogram == nullptr) {
    e = Entry{};
    e.kind = Entry::Kind::kHistogram;
    e.owned_histogram = std::make_unique<Histogram>();
    e.histogram = e.owned_histogram.get();
  }
  return *e.owned_histogram;
}

void MetricRegistry::RegisterCounter(const std::string& name,
                                     const Counter* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.counter = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterGauge(const std::string& name,
                                   const Gauge* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.gauge = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterHistogram(const std::string& name,
                                       const Histogram* instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.histogram = instrument;
  e.owner = instrument;
  entries_[name] = std::move(e);
}

void MetricRegistry::RegisterCallbackGauge(const std::string& name,
                                           const void* owner,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kCallbackGauge;
  e.callback = std::move(fn);
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricRegistry::Unregister(const std::string& name, const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.owner == owner) {
    entries_.erase(it);
  }
}

MetricRegistry::Snapshot MetricRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        snap.counters[name] = e.counter->value();
        break;
      case Entry::Kind::kGauge:
        snap.gauges[name] = e.gauge->value();
        break;
      case Entry::Kind::kCallbackGauge:
        snap.gauges[name] = e.callback ? e.callback() : 0.0;
        break;
      case Entry::Kind::kHistogram:
        snap.histograms[name] = e.histogram->Stats();
        break;
      case Entry::Kind::kNone:
        break;
    }
  }
  return snap;
}

std::string MetricRegistry::SnapshotJson() const {
  const Snapshot snap = TakeSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":";
    internal::AppendJsonNumber(value, &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"p50\":";
    internal::AppendJsonNumber(h.p50, &out);
    out += ",\"p95\":";
    internal::AppendJsonNumber(h.p95, &out);
    out += ",\"p99\":";
    internal::AppendJsonNumber(h.p99, &out);
    out += ",\"mean\":";
    internal::AppendJsonNumber(h.mean, &out);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace pa::obs
