#ifndef PA_OBS_SLOW_TRACE_H_
#define PA_OBS_SLOW_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pa::obs {

/// Always-on capture of the K worst-latency completed request traces.
///
/// The request front-ends mint a trace per request line (`Begin`), every
/// span recorded under that trace's context is collected into a small
/// per-trace buffer, and `End` completes the trace with its wall time. A
/// completed trace enters the reservoir only if it is slower than the
/// current K-th worst — so steady-state traffic pays one relaxed load
/// against the floor and nothing else, while a genuine tail outlier's full
/// span tree (parse, queue wait, compute, serialize, write wait, and every
/// engine/tensor span that ran under it) is retained for `GET /slowz` and
/// `pa_serve slowz`, no matter whether anyone was watching when it
/// happened.
///
/// Concurrency: in-flight traces live in a fixed pool of slots (trace id ≡
/// slot index mod kSlots); appends take the owning slot's uncontended
/// mutex. The completed-trace reservoir itself is lock-free — entries are
/// `std::atomic<std::shared_ptr>` swapped in by CAS, so a /slowz reader
/// never blocks a request thread and vice versa.
///
/// Request tracing is on by default in every binary that links this layer;
/// `PA_TRACE_REQUESTS=off` (or `0`/`false`) disables minting, which turns
/// the whole subsystem into a single relaxed load per request line.
struct CompletedTrace {
  uint64_t trace_id = 0;
  uint64_t root_span = 0;
  /// Trace-epoch nanoseconds of request start / total wall time.
  uint64_t start_ns = 0;
  uint64_t total_ns = 0;
  /// Span tree, in completion order; includes the synthesized root span
  /// (named at Begin, default "net.request") covering the whole request.
  std::vector<TraceEvent> spans;
  /// Spans this trace lost to the per-trace cap.
  uint64_t spans_dropped = 0;
};

bool RequestTracingEnabled();
void SetRequestTracingEnabled(bool on);

class SlowTraceReservoir {
 public:
  /// K: completed traces retained (the K worst by total wall time).
  static constexpr int kWorst = 8;
  /// Concurrent in-flight traces; Begin past this returns an inactive
  /// context (counted on obs.trace.slots_busy_total) rather than blocking.
  static constexpr uint32_t kSlots = 64;
  /// Spans captured per trace; beyond this they are counted, not stored.
  static constexpr size_t kMaxSpansPerTrace = 96;

  static SlowTraceReservoir& Global();

  SlowTraceReservoir();
  SlowTraceReservoir(const SlowTraceReservoir&) = delete;
  SlowTraceReservoir& operator=(const SlowTraceReservoir&) = delete;

  /// Mints a new trace: claims an in-flight slot, allocates the trace id
  /// and a root span id, and returns the context to install/propagate
  /// (parent_span = the root span). Returns an inactive context when
  /// request tracing is disabled or every slot is in flight. `root_name`
  /// must be a string literal (it is stored by pointer).
  TraceContext Begin(const char* root_name = "net.request");

  /// Collects one completed span into the in-flight trace. Called from
  /// internal::RecordSpan for every span carrying a trace id; spans from a
  /// previous occupant of the slot (a trace that already ended) are
  /// silently discarded.
  void Append(uint64_t trace_id, const TraceEvent& event);

  /// Completes the trace at `end_ns` (0 = now): records the root span,
  /// frees the slot, and publishes the trace into the K-worst reservoir if
  /// it beats the current floor. No-op on inactive contexts and repeated
  /// Ends.
  void End(const TraceContext& ctx, uint64_t end_ns = 0);

  /// Frees the slot without considering the trace for the reservoir (the
  /// connection died before the response flushed).
  void Abort(const TraceContext& ctx);

  /// The retained traces, worst first. Lock-free readers: each entry is an
  /// atomic shared_ptr load.
  std::vector<std::shared_ptr<const CompletedTrace>> WorstTraces() const;

  /// The retained trace with this id, or null.
  std::shared_ptr<const CompletedTrace> Find(uint64_t trace_id) const;

  /// The /slowz body: {"k":K,"floor_us":...,"traces":[...]} with full span
  /// trees, worst first.
  std::string Json() const;

  /// Drops retained traces and resets the floor. For tests and bench arms;
  /// not safe against concurrent End publication.
  void Clear();

  /// Current reservoir floor in nanoseconds (0 until kWorst traces are
  /// retained): a completed trace at least this fast cannot enter.
  uint64_t floor_ns() const {
    return floor_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// 0 = free, 1 = being claimed, else the owning trace id.
    std::atomic<uint64_t> owner{0};
    /// Completed claims of this slot; only the claimer writes it.
    uint64_t generation = 0;
    std::mutex mu;  // Guards everything below.
    const char* root_name = "net.request";
    uint64_t root_span = 0;
    uint64_t start_ns = 0;
    uint64_t dropped = 0;
    std::vector<TraceEvent> spans;
  };

  Slot& SlotFor(uint64_t trace_id) { return slots_[trace_id % kSlots]; }
  /// Publishes into worst_ if `trace` beats the floor (CAS loop).
  void Publish(std::shared_ptr<const CompletedTrace> trace);
  void RecomputeFloor();

  Slot slots_[kSlots];
  std::atomic<uint32_t> next_slot_{0};
  std::atomic<std::shared_ptr<const CompletedTrace>> worst_[kWorst];
  std::atomic<uint64_t> floor_ns_{0};
};

}  // namespace pa::obs

#endif  // PA_OBS_SLOW_TRACE_H_
