#include "obs/telemetry_sampler.h"

#include <chrono>
#include <cstdlib>

namespace pa::obs {

namespace {

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool TelemetrySampler::Start(const Options& options) {
  if (thread_.joinable()) return false;
  options_ = options;
  if (options_.period_ms == 0) options_.period_ms = 1;
  if (options_.ring_size == 0) options_.ring_size = 1;
  if (!options_.sink_path.empty()) {
    sink_ = std::fopen(options_.sink_path.c_str(), "w");
    if (sink_ == nullptr) return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
    ring_.clear();
    dropped_ = 0;
    next_seq_ = 0;
    have_prev_ = false;
  }
  thread_ = std::thread(&TelemetrySampler::Run, this);
  return true;
}

void TelemetrySampler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

std::vector<TelemetrySampler::Sample> TelemetrySampler::RecentSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t TelemetrySampler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TelemetrySampler::Run() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto period = std::chrono::milliseconds(options_.period_ms);
  // Absolute deadlines, not sleep-after-work: a tick whose work overruns
  // the period skips the missed deadlines (counted as drops) instead of
  // drifting.
  Clock::time_point deadline = start + period;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (!cv_.wait_until(lock, deadline, [this] { return stop_requested_; })) {
      lock.unlock();
      const uint64_t uptime_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                start)
              .count());
      const bool wrote = SampleOnce(uptime_ms);
      // Count deadlines that elapsed while sampling/writing as drops, and
      // jump past them.
      uint64_t missed = 0;
      const Clock::time_point now = Clock::now();
      deadline += period;
      while (deadline <= now) {
        deadline += period;
        ++missed;
      }
      lock.lock();
      if (!wrote) ++dropped_;
      dropped_ += missed;
    }
  }
}

bool TelemetrySampler::SampleOnce(uint64_t uptime_ms) {
  const MetricRegistry::Snapshot raw = registry_.TakeSnapshot();

  Sample sample;
  sample.uptime_ms = uptime_ms;
  sample.snapshot = raw;
  // Delta-encode counters against the previous tick; a counter that is new
  // or went backwards (re-registration) reports its absolute value.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (have_prev_) {
      for (auto& [name, value] : sample.snapshot.counters) {
        const auto it = prev_.counters.find(name);
        if (it != prev_.counters.end() && it->second <= value) {
          value -= it->second;
        }
      }
    }
    prev_.counters = raw.counters;
    have_prev_ = true;
    sample.seq = next_seq_++;
    sample.dropped = dropped_;
    ring_.push_back(sample);
    while (ring_.size() > options_.ring_size) ring_.pop_front();
  }

  if (sink_ == nullptr) return true;
  std::string line = "{\"schema\":\"pa.timeseries.v1\",\"seq\":";
  line += std::to_string(sample.seq);
  line += ",\"ts_ms\":";
  line += std::to_string(SteadyNowMs());
  line += ",\"uptime_ms\":";
  line += std::to_string(sample.uptime_ms);
  line += ",\"dropped\":";
  line += std::to_string(sample.dropped);
  // Splice the registry fields into the same object: SnapshotToJson yields
  // {"counters":...}; drop its outer '{'.
  const std::string body = SnapshotToJson(sample.snapshot);
  line += ',';
  line.append(body, 1, body.size() - 1);
  line += '\n';
  const size_t written = std::fwrite(line.data(), 1, line.size(), sink_);
  if (written != line.size()) return false;
  return std::fflush(sink_) == 0;
}

bool TelemetrySampler::MaybeStartFromEnv() {
  static TelemetrySampler* sampler = nullptr;
  if (sampler != nullptr) return sampler->running();
  const char* path = std::getenv("PA_OBS_TIMESERIES");
  if (path == nullptr || *path == '\0') return false;
  Options options;
  options.sink_path = path;
  if (const char* period = std::getenv("PA_OBS_SAMPLE_PERIOD_MS");
      period != nullptr && *period != '\0') {
    const long v = std::strtol(period, nullptr, 10);
    if (v > 0) options.period_ms = static_cast<uint64_t>(v);
  }
  // Leaked: the sampler must outlive main() callers; the sink is flushed
  // per line so losing the destructor's Stop() only forfeits the final
  // partial period.
  sampler = new TelemetrySampler(MetricRegistry::Global());
  if (!sampler->Start(options)) {
    std::fprintf(stderr, "obs: cannot open PA_OBS_TIMESERIES file %s\n",
                 path);
    return false;
  }
  return true;
}

}  // namespace pa::obs
