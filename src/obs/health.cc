#include "obs/health.h"

#include "obs/json_util.h"

namespace pa::obs {

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

HealthRegistry& HealthRegistry::Global() {
  // Leaked for the same reason as the trace globals: health may be read
  // from atexit paths after static destruction begins.
  static HealthRegistry* registry = new HealthRegistry;
  return *registry;
}

void HealthRegistry::Set(const std::string& component, HealthStatus status,
                         const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  Component& c = components_[component];
  c.name = component;
  c.status = status;
  c.detail = detail;
}

void HealthRegistry::Remove(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  components_.erase(component);
}

std::vector<HealthRegistry::Component> HealthRegistry::Components() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Component> out;
  out.reserve(components_.size());
  for (const auto& [name, c] : components_) out.push_back(c);
  return out;
}

HealthStatus HealthRegistry::Overall() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthStatus worst = HealthStatus::kOk;
  for (const auto& [name, c] : components_) {
    if (static_cast<int>(c.status) > static_cast<int>(worst)) worst = c.status;
  }
  return worst;
}

std::string HealthRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthStatus worst = HealthStatus::kOk;
  for (const auto& [name, c] : components_) {
    if (static_cast<int>(c.status) > static_cast<int>(worst)) worst = c.status;
  }
  std::string out = "{\"status\":\"";
  out += HealthStatusName(worst);
  out += "\",\"components\":{";
  bool first = true;
  for (const auto& [name, c] : components_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    internal::AppendJsonEscaped(name, &out);
    out += "\":{\"status\":\"";
    out += HealthStatusName(c.status);
    out += "\",\"detail\":\"";
    internal::AppendJsonEscaped(c.detail, &out);
    out += "\"}";
  }
  out += "}}";
  return out;
}

void HealthRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  components_.clear();
}

}  // namespace pa::obs
