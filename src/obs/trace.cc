#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/slow_trace.h"

namespace pa::obs {

namespace internal {
std::atomic<bool> g_tracing{false};
}  // namespace internal

namespace {

// Most recent spans kept per thread; older spans are overwritten (ring).
// 64Ki events * 48 bytes = 3 MiB per tracing thread, bounded.
constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // Ring once it reaches the cap.
  size_t next = 0;                 // Overwrite cursor when full.
  uint64_t overwritten = 0;
  uint32_t tid = 0;
};

// All trace globals are leaked on purpose: the PA_OBS_TRACE dump runs from
// atexit, after static destructors of later-initialized translation units
// may already have run, and exited threads' buffers must survive into the
// final drain.
std::mutex& BuffersMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<std::shared_ptr<ThreadTraceBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadTraceBuffer>>;
  return *buffers;
}

std::atomic<uint64_t> g_dropped_after_teardown{0};

// Ring overflow surfaced as registry instruments (satellite of the request
// tracing work): `obs.trace.dropped_total` mirrors TraceEventsDropped() and
// `obs.trace.ring_high_water` is the largest per-thread ring occupancy seen.
// Registry-owned instruments are immortal, so drop accounting keeps working
// during static teardown.
struct TraceInstruments {
  Counter& dropped;
  Gauge& ring_high_water;

  static TraceInstruments& Get() {
    static TraceInstruments instruments{
        MetricRegistry::Global().GetCounter("obs.trace.dropped_total"),
        MetricRegistry::Global().GetGauge("obs.trace.ring_high_water")};
    return instruments;
  }
};

// Teardown-safe thread-local pointer (same pattern as
// tensor::internal::t_buffer_pool): null before first span and after
// thread_local destructors; spans in either window are dropped, not
// recorded into a half-dead buffer.
thread_local ThreadTraceBuffer* t_trace_buffer = nullptr;
thread_local bool t_trace_torn_down = false;

struct TraceBufferOwner {
  std::shared_ptr<ThreadTraceBuffer> buffer;
  TraceBufferOwner() : buffer(std::make_shared<ThreadTraceBuffer>()) {
    std::lock_guard<std::mutex> lock(BuffersMutex());
    buffer->tid = static_cast<uint32_t>(Buffers().size());
    Buffers().push_back(buffer);
    t_trace_buffer = buffer.get();
  }
  ~TraceBufferOwner() {
    t_trace_buffer = nullptr;
    t_trace_torn_down = true;
    // The global Buffers() vector keeps the buffer itself alive for the
    // final drain.
  }
};

ThreadTraceBuffer* ThisThreadBuffer() {
  ThreadTraceBuffer* buf = t_trace_buffer;
  if (buf != nullptr) return buf;
  if (t_trace_torn_down) return nullptr;
  thread_local TraceBufferOwner owner;
  return owner.buffer.get();
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Force the epoch anchor before any span math happens.
[[maybe_unused]] const auto g_epoch_anchor = TraceEpoch();

}  // namespace

namespace internal {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> g_next_span_id{1};
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t id, uint64_t trace_id, uint64_t parent_id) {
  ThreadTraceBuffer* buf = ThisThreadBuffer();

  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.tid = buf != nullptr ? buf->tid : 0;
  event.id = id;
  event.trace_id = trace_id;
  event.parent_id = parent_id;

  // Request-trace capture first: it must see the span even when the ring
  // buffers are off (the always-on slow-request reservoir rides on it).
  if (trace_id != 0) SlowTraceReservoir::Global().Append(trace_id, event);

  if (!g_tracing.load(std::memory_order_relaxed)) return;
  if (buf == nullptr) {
    g_dropped_after_teardown.fetch_add(1, std::memory_order_relaxed);
    TraceInstruments::Get().dropped.Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() < kMaxEventsPerThread) {
    buf->events.push_back(event);
    TraceInstruments::Get().ring_high_water.UpdateMax(
        static_cast<double>(buf->events.size()));
  } else {
    buf->events[buf->next] = event;
    buf->next = (buf->next + 1) % kMaxEventsPerThread;
    ++buf->overwritten;
    TraceInstruments::Get().dropped.Increment();
  }
}

}  // namespace internal

void SetTracingEnabled(bool on) {
  internal::g_tracing.store(on, std::memory_order_relaxed);
}

uint64_t TraceClockNs() { return internal::NowNs(); }

uint64_t ToTraceNs(std::chrono::steady_clock::time_point tp) {
  const auto since_epoch = tp - TraceEpoch();
  if (since_epoch.count() < 0) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}

uint64_t RecordStageSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                         const TraceContext& ctx) {
  if (ctx.trace_id == 0 &&
      !internal::g_tracing.load(std::memory_order_relaxed)) {
    return 0;
  }
  const uint64_t id = internal::NextSpanId();
  internal::RecordSpan(name, start_ns, end_ns, id, ctx.trace_id,
                       ctx.parent_span);
  return id;
}

std::vector<TraceEvent> DrainTraceEvents() {
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(BuffersMutex());
    buffers = Buffers();
  }
  std::vector<TraceEvent> events;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    // Ring order: oldest surviving event first.
    for (size_t i = 0; i < buf->events.size(); ++i) {
      events.push_back(buf->events[(buf->next + i) % buf->events.size()]);
    }
    buf->events.clear();
    buf->next = 0;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.dur_ns > b.dur_ns;
            });
  return events;
}

uint64_t TraceEventsDropped() {
  uint64_t dropped = g_dropped_after_teardown.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(BuffersMutex());
  for (const auto& buf : Buffers()) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    dropped += buf->overwritten;
  }
  return dropped;
}

namespace {

void AppendMicros(uint64_t ns, std::string* out) {
  // Microseconds with nanosecond precision, without going through double
  // (keeps long traces exact).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

}  // namespace

std::string TraceIdHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    internal::AppendJsonEscaped(e.name != nullptr ? e.name : "?", &out);
    out += "\",\"cat\":\"pa\",\"ph\":\"X\",\"ts\":";
    AppendMicros(e.start_ns, &out);
    out += ",\"dur\":";
    AppendMicros(e.dur_ns, &out);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // Top-level (non-standard) fields; chrome://tracing ignores unknown
    // keys. trace/parent appear only on spans linked into a request trace.
    out += ",\"id\":";
    out += std::to_string(e.id);
    if (e.trace_id != 0) {
      out += ",\"trace\":\"";
      out += TraceIdHex(e.trace_id);
      out += "\",\"parent\":";
      out += std::to_string(e.parent_id);
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceNdjson(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out += "{\"name\":\"";
    internal::AppendJsonEscaped(e.name != nullptr ? e.name : "?", &out);
    out += "\",\"ts_us\":";
    AppendMicros(e.start_ns, &out);
    out += ",\"dur_us\":";
    AppendMicros(e.dur_ns, &out);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"id\":";
    out += std::to_string(e.id);
    if (e.trace_id != 0) {
      out += ",\"trace\":\"";
      out += TraceIdHex(e.trace_id);
      out += "\",\"parent\":";
      out += std::to_string(e.parent_id);
    }
    out += "}\n";
  }
  return out;
}

bool WriteTraceFile(const std::string& path) {
  const std::vector<TraceEvent> events = DrainTraceEvents();
  const bool ndjson =
      path.size() >= 7 && path.compare(path.size() - 7, 7, ".ndjson") == 0;
  const std::string body =
      ndjson ? TraceNdjson(events) : ChromeTraceJson(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  return written == body.size() && close_rc == 0;
}

namespace {

// PA_OBS_TRACE=<path>: tracing on from process start, trace dumped at exit.
// Lives here (not in a runtime init function) so every binary that links
// any instrumented layer gets the switch for free.
std::string* g_exit_trace_path = nullptr;

void DumpTraceAtExit() {
  if (g_exit_trace_path == nullptr) return;
  if (!WriteTraceFile(*g_exit_trace_path)) {
    std::fprintf(stderr, "obs: cannot write PA_OBS_TRACE file %s\n",
                 g_exit_trace_path->c_str());
  }
}

struct TraceEnvInit {
  TraceEnvInit() {
    const char* path = std::getenv("PA_OBS_TRACE");
    if (path == nullptr || *path == '\0') return;
    g_exit_trace_path = new std::string(path);
    SetTracingEnabled(true);
    std::atexit(DumpTraceAtExit);
  }
};
TraceEnvInit g_trace_env_init;

}  // namespace

}  // namespace pa::obs
