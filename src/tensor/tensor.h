#ifndef PA_TENSOR_TENSOR_H_
#define PA_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pa::tensor {

/// Shape of a 2-D tensor. The autograd engine in this library is
/// deliberately restricted to dense 2-D float matrices: every quantity a
/// recurrent model needs — parameter matrices, hidden states `[batch, dim]`,
/// logits `[batch, vocab]`, scalar losses `[1, 1]` — is a matrix, and the
/// restriction keeps every kernel simple enough to verify by hand and by
/// numerical gradient check.
struct Shape {
  int rows = 0;
  int cols = 0;

  int64_t numel() const { return static_cast<int64_t>(rows) * cols; }
  bool operator==(const Shape& other) const = default;
  std::string ToString() const;
};

namespace internal {

/// Reference-counted tensor storage plus its position in the autograd graph.
///
/// A node records its parents and a closure that, given the node's
/// accumulated output gradient, accumulates gradients into the parents.
/// `Tensor::Backward` runs these closures in reverse topological order.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily sized to `data.size()` on first use.
  bool requires_grad = false;
  // True when `data` came from the thread-local BufferPool (inference mode);
  // the destructor then recycles the storage instead of freeing it.
  bool pooled = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  TensorImpl() = default;
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Gradient buffer the current thread should accumulate into for `impl`:
/// the thread-local redirect buffer while a `GradRedirectScope` on this
/// thread covers `impl` (data-parallel training), else `impl.grad`. All op
/// backward closures route their parent-gradient writes through this.
std::vector<float>& GradBuffer(TensorImpl& impl);

/// True while the calling thread is inside at least one `InferenceModeScope`
/// (and the process-wide test override below is not engaged). Ops consult
/// this once per call to pick the graph-free path.
bool InferenceModeActive();

/// Test/bench-only: while alive, `InferenceModeActive()` reports false on
/// every thread even inside an `InferenceModeScope`. This is the reference
/// hook the equivalence tests and benchmarks use to re-run a wired-up
/// inference path (e.g. EvaluateHr, which scopes its own workers) with full
/// graph construction for bit-comparison. Process-wide and not meant to be
/// toggled while worker threads are mid-forward; production code must never
/// use it.
class ScopedInferenceDisable {
 public:
  ScopedInferenceDisable();
  ~ScopedInferenceDisable();
  ScopedInferenceDisable(const ScopedInferenceDisable&) = delete;
  ScopedInferenceDisable& operator=(const ScopedInferenceDisable&) = delete;
};

}  // namespace internal

/// Value-semantic handle to a node in a dynamically built autograd graph.
///
/// Copies are shallow (they alias the same storage and graph node), which is
/// what makes it cheap to return tensors from ops and to hold parameter
/// lists. A default-constructed Tensor is "undefined" and may only be
/// queried via `defined()`.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a tensor filled with zeros.
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  /// Creates a tensor where every element is `value`.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// Creates a tensor from a row-major flat buffer; `data.size()` must equal
  /// `shape.numel()`.
  static Tensor FromData(Shape shape, std::vector<float> data,
                         bool requires_grad = false);
  /// Creates a `[1, 1]` scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const {
    CheckDefined("shape()");
    return impl_->shape;
  }
  int rows() const {
    CheckDefined("rows()");
    return impl_->shape.rows;
  }
  int cols() const {
    CheckDefined("cols()");
    return impl_->shape.cols;
  }
  int64_t numel() const {
    CheckDefined("numel()");
    return impl_->shape.numel();
  }
  bool requires_grad() const {
    CheckDefined("requires_grad()");
    return impl_->requires_grad;
  }

  float* data() {
    CheckDefined("data()");
    return impl_->data.data();
  }
  const float* data() const {
    CheckDefined("data()");
    return impl_->data.data();
  }

  /// Element access (bounds-checked in debug builds only through asserts).
  float at(int r, int c) const { return impl_->data[Index(r, c)]; }
  void set(int r, int c, float v) { impl_->data[Index(r, c)] = v; }

  /// Value of a `[1, 1]` tensor; aborts on any other shape.
  float item() const;

  /// Gradient buffer (allocated on demand). Only meaningful after
  /// `Backward()` has run on a graph containing this tensor.
  float* grad_data();
  const std::vector<float>& grad_vector() const;
  float grad_at(int r, int c) const;

  /// Zeroes this tensor's gradient buffer.
  void ZeroGrad();

  /// Returns a new leaf tensor sharing no graph history; the data is copied.
  Tensor Detach() const;

  /// Runs reverse-mode differentiation from this tensor, which must be a
  /// `[1, 1]` scalar (a loss). Gradients *accumulate* into `grad` buffers of
  /// all reachable tensors with `requires_grad`.
  void Backward();

  /// In-place SGD-style update helper used by optimizers: data -= lr * delta.
  void AxpyInPlace(float alpha, const std::vector<float>& delta);

  std::string ToString() const;

  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

  /// Wraps an existing impl; used by op implementations.
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  int Index(int r, int c) const { return r * impl_->shape.cols + c; }

  // Aborts with a clear message instead of dereferencing a null impl_ (raw
  // UB) when an accessor is called on a default-constructed Tensor.
  void CheckDefined(const char* accessor) const {
    if (impl_ == nullptr) DieUndefined(accessor);
  }
  [[noreturn]] static void DieUndefined(const char* accessor);

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Thread-local RAII switch that puts every tensor op on this thread onto the
/// graph-free inference fast path: ops skip parent recording, backward
/// closures, and `requires_grad` propagation entirely, and draw their output
/// storage from the thread-local `BufferPool` instead of the allocator.
///
/// Invariants:
///  - Forward values are bit-identical to the graph-building path (the ops
///    run the exact same floating-point sequence; only bookkeeping differs).
///  - Tensors created under the scope never require grad and are permanent
///    leaves; calling `Backward()` through them is a no-op beyond the root.
///  - Scopes nest freely (a depth counter — inner scopes are no-ops) and are
///    strictly per-thread: pool worker threads must enter their own scope.
///  - Pooled tensors may outlive the scope; their storage returns to the
///    pool of whichever thread drops the last reference.
class InferenceModeScope {
 public:
  InferenceModeScope();
  ~InferenceModeScope();
  InferenceModeScope(const InferenceModeScope&) = delete;
  InferenceModeScope& operator=(const InferenceModeScope&) = delete;

  /// Equivalent to `internal::InferenceModeActive()`.
  static bool Active();
};

/// Redirects gradient accumulation for a set of leaf tensors (parameters)
/// into private per-scope buffers on the *constructing thread*.
///
/// This is what makes data-parallel training deterministic: each work item
/// runs forward + `Backward()` inside its own scope on its own thread, so
/// shared parameters never see concurrent `grad` writes, and the caller
/// merges the per-item buffers into the real `grad` vectors in item order —
/// a fixed floating-point reduction order whatever the thread count.
///
/// Scopes must not nest on one thread, and a scope must be destroyed on the
/// thread that created it. Interior (non-covered) nodes are untouched: their
/// gradients live in the per-item graph, which is thread-private anyway.
class GradRedirectScope {
 public:
  explicit GradRedirectScope(const std::vector<Tensor>& leaves);
  ~GradRedirectScope();

  GradRedirectScope(const GradRedirectScope&) = delete;
  GradRedirectScope& operator=(const GradRedirectScope&) = delete;

  /// The captured gradients, aligned with the constructor's `leaves`.
  /// (A leaf listed twice gets all its gradient in its first buffer.)
  std::vector<std::vector<float>> TakeBuffers() { return std::move(buffers_); }

 private:
  std::vector<std::vector<float>> buffers_;
};

}  // namespace pa::tensor

#endif  // PA_TENSOR_TENSOR_H_
