#ifndef PA_TENSOR_TENSOR_H_
#define PA_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pa::tensor {

/// Shape of a 2-D tensor. The autograd engine in this library is
/// deliberately restricted to dense 2-D float matrices: every quantity a
/// recurrent model needs — parameter matrices, hidden states `[batch, dim]`,
/// logits `[batch, vocab]`, scalar losses `[1, 1]` — is a matrix, and the
/// restriction keeps every kernel simple enough to verify by hand and by
/// numerical gradient check.
struct Shape {
  int rows = 0;
  int cols = 0;

  int64_t numel() const { return static_cast<int64_t>(rows) * cols; }
  bool operator==(const Shape& other) const = default;
  std::string ToString() const;
};

namespace internal {

/// Reference-counted tensor storage plus its position in the autograd graph.
///
/// A node records its parents and a closure that, given the node's
/// accumulated output gradient, accumulates gradients into the parents.
/// `Tensor::Backward` runs these closures in reverse topological order.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily sized to `data.size()` on first use.
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Gradient buffer the current thread should accumulate into for `impl`:
/// the thread-local redirect buffer while a `GradRedirectScope` on this
/// thread covers `impl` (data-parallel training), else `impl.grad`. All op
/// backward closures route their parent-gradient writes through this.
std::vector<float>& GradBuffer(TensorImpl& impl);

}  // namespace internal

/// Value-semantic handle to a node in a dynamically built autograd graph.
///
/// Copies are shallow (they alias the same storage and graph node), which is
/// what makes it cheap to return tensors from ops and to hold parameter
/// lists. A default-constructed Tensor is "undefined" and may only be
/// queried via `defined()`.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a tensor filled with zeros.
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  /// Creates a tensor where every element is `value`.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// Creates a tensor from a row-major flat buffer; `data.size()` must equal
  /// `shape.numel()`.
  static Tensor FromData(Shape shape, std::vector<float> data,
                         bool requires_grad = false);
  /// Creates a `[1, 1]` scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int rows() const { return impl_->shape.rows; }
  int cols() const { return impl_->shape.cols; }
  int64_t numel() const { return impl_->shape.numel(); }
  bool requires_grad() const { return impl_->requires_grad; }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }

  /// Element access (bounds-checked in debug builds only through asserts).
  float at(int r, int c) const { return impl_->data[Index(r, c)]; }
  void set(int r, int c, float v) { impl_->data[Index(r, c)] = v; }

  /// Value of a `[1, 1]` tensor; aborts on any other shape.
  float item() const;

  /// Gradient buffer (allocated on demand). Only meaningful after
  /// `Backward()` has run on a graph containing this tensor.
  float* grad_data();
  const std::vector<float>& grad_vector() const;
  float grad_at(int r, int c) const;

  /// Zeroes this tensor's gradient buffer.
  void ZeroGrad();

  /// Returns a new leaf tensor sharing no graph history; the data is copied.
  Tensor Detach() const;

  /// Runs reverse-mode differentiation from this tensor, which must be a
  /// `[1, 1]` scalar (a loss). Gradients *accumulate* into `grad` buffers of
  /// all reachable tensors with `requires_grad`.
  void Backward();

  /// In-place SGD-style update helper used by optimizers: data -= lr * delta.
  void AxpyInPlace(float alpha, const std::vector<float>& delta);

  std::string ToString() const;

  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

  /// Wraps an existing impl; used by op implementations.
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  int Index(int r, int c) const { return r * impl_->shape.cols + c; }

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Redirects gradient accumulation for a set of leaf tensors (parameters)
/// into private per-scope buffers on the *constructing thread*.
///
/// This is what makes data-parallel training deterministic: each work item
/// runs forward + `Backward()` inside its own scope on its own thread, so
/// shared parameters never see concurrent `grad` writes, and the caller
/// merges the per-item buffers into the real `grad` vectors in item order —
/// a fixed floating-point reduction order whatever the thread count.
///
/// Scopes must not nest on one thread, and a scope must be destroyed on the
/// thread that created it. Interior (non-covered) nodes are untouched: their
/// gradients live in the per-item graph, which is thread-private anyway.
class GradRedirectScope {
 public:
  explicit GradRedirectScope(const std::vector<Tensor>& leaves);
  ~GradRedirectScope();

  GradRedirectScope(const GradRedirectScope&) = delete;
  GradRedirectScope& operator=(const GradRedirectScope&) = delete;

  /// The captured gradients, aligned with the constructor's `leaves`.
  /// (A leaf listed twice gets all its gradient in its first buffer.)
  std::vector<std::vector<float>> TakeBuffers() { return std::move(buffers_); }

 private:
  std::vector<std::vector<float>> buffers_;
};

}  // namespace pa::tensor

#endif  // PA_TENSOR_TENSOR_H_
