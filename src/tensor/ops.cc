#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "tensor/buffer_pool.h"
#include "tensor/compiled_step.h"
#include "tensor/kernels/kernels.h"
#include "util/thread_pool.h"

namespace pa::tensor {

namespace {

using internal::TensorImpl;

// Compiled-step recorder hooks (compiled_step.cc). Each inference fast-path
// branch reports the op it just executed when a RunStep body is recording;
// `fu::Recording()` is a thread-local flag check, so the hooks cost nothing
// on ordinary forwards.
namespace fu = pa::tensor::fusion::internal;

[[noreturn]] void Fatal(const std::string& msg) {
  std::fprintf(stderr, "pa::tensor::ops fatal: %s\n", msg.c_str());
  std::abort();
}

// A node needs a gradient if it is a leaf the user marked as trainable or an
// interior node gradients must flow through.
bool NeedsGrad(const TensorImpl& impl) {
  return impl.requires_grad || impl.backward_fn != nullptr;
}

bool NeedsGrad(const Tensor& t) { return NeedsGrad(*t.impl()); }

// Creates the result node of an op. `parents` are recorded for topological
// ordering; `backward` is installed only if some parent needs a gradient.
Tensor MakeResult(Shape shape, std::vector<float> data,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  bool any = false;
  for (const Tensor& p : parents) any = any || NeedsGrad(p);
  if (any) {
    impl->requires_grad = true;
    for (const Tensor& p : parents) impl->parents.push_back(p.impl());
    impl->backward_fn = std::move(backward);
  }
  return Tensor::FromImpl(std::move(impl));
}

// Result node on the graph-free inference path: no parents, no backward
// closure, no requires_grad propagation. The storage came from the
// thread-local BufferPool and returns there when the node dies; the node
// allocation itself recycles through the thread-local node-block pool.
Tensor MakeInferenceResult(Shape shape, std::vector<float> data) {
  auto impl = std::allocate_shared<TensorImpl>(
      internal::NodeBlockAllocator<TensorImpl>());
  impl->shape = shape;
  impl->data = std::move(data);
  impl->pooled = true;
  // Node blocks recycle: a dead recorded value's address may be reborn
  // here as an unrelated result, so drop any stale SSA mapping first.
  if (fu::Recording()) fu::NoteFreshResult(impl.get());
  return Tensor::FromImpl(std::move(impl));
}

// Output storage for an op's forward pass: recycled pool capacity under
// inference mode, a plain allocation otherwise. Contents are unspecified —
// every caller fully overwrites all `n` elements before the tensor escapes.
std::vector<float> ForwardBuffer(int64_t n, bool inference) {
  if (inference) {
    return internal::ThisThreadPool().Acquire(static_cast<size_t>(n));
  }
  return std::vector<float>(static_cast<size_t>(n));
}

// Zero-initialised variant for accumulate-style kernels (`+=` into out).
std::vector<float> ZeroedForwardBuffer(int64_t n, bool inference) {
  if (inference) {
    return internal::ThisThreadPool().AcquireZeroed(
        static_cast<size_t>(n));
  }
  return std::vector<float>(static_cast<size_t>(n), 0.0f);
}

// Accumulates `g` into the gradient buffer of `dst` if it needs one. All
// parent-gradient writes go through internal::GradBuffer so data-parallel
// training can redirect them into thread-private buffers (see
// GradRedirectScope in tensor.h).
void Accumulate(const std::shared_ptr<TensorImpl>& dst,
                const std::function<float(int64_t)>& g) {
  if (!NeedsGrad(*dst)) return;
  std::vector<float>& grad = internal::GradBuffer(*dst);
  const int64_t n = dst->shape.numel();
  for (int64_t i = 0; i < n; ++i) grad[i] += g(i);
}

enum class BroadcastKind { kSame, kRow, kScalar };

BroadcastKind CheckBroadcast(const Tensor& a, const Tensor& b,
                             const char* op) {
  if (a.shape() == b.shape()) return BroadcastKind::kSame;
  if (b.rows() == 1 && b.cols() == a.cols()) return BroadcastKind::kRow;
  if (b.rows() == 1 && b.cols() == 1) return BroadcastKind::kScalar;
  Fatal(std::string(op) + ": incompatible shapes " + a.shape().ToString() +
        " and " + b.shape().ToString());
}

// Index of the b-element matching flat index i of a under broadcasting.
int64_t BIndex(BroadcastKind kind, int64_t i, int cols) {
  switch (kind) {
    case BroadcastKind::kSame:
      return i;
    case BroadcastKind::kRow:
      return i % cols;
    case BroadcastKind::kScalar:
      return 0;
  }
  return 0;
}

// The vector-vector and vector-scalar kernel pair implementing one binary
// op (e.g. {add, addc}), pulled from the active dispatch table per call.
struct BinaryKernels {
  void (*vv)(const float* a, const float* b, float* out, int64_t n);
  void (*vs)(const float* a, float c, float* out, int64_t n);
};

// Forward of the elementwise binary ops, specialised per broadcast kind on
// top of the dispatched kernels. The kernel contract allows `out` to alias
// `a` or `b` exactly (read-before-write at the same index), which is how
// the rvalue-overload in-place path below reuses this single entry point;
// values are bit-identical to the allocating path either way.
void BinaryForward(const float* a, const float* b, float* out, int64_t numel,
                   int cols, BroadcastKind kind, const BinaryKernels& bk) {
  switch (kind) {
    case BroadcastKind::kSame:
      bk.vv(a, b, out, numel);
      break;
    case BroadcastKind::kRow: {
      const int64_t rows = cols > 0 ? numel / cols : 0;
      for (int64_t r = 0; r < rows; ++r) {
        bk.vv(a + r * cols, b, out + r * cols, cols);
      }
      break;
    }
    case BroadcastKind::kScalar:
      bk.vs(a, b[0], out, numel);
      break;
  }
}

// Whether an op bound through an rvalue overload may overwrite `t`'s
// storage in place and return `t`'s node as its result. Requires inference
// mode (graph mode must record the parent's values for backward), that the
// caller's reference is the impl's only owner — i.e. the argument really is
// a dying temporary, not a moved-from named tensor someone still shares —
// and that no autograd state is attached. The overwrite is elementwise
// read-then-write at the same index, so the result is bit-identical to the
// allocating path; only the allocation round trip disappears.
bool ReusableTemp(const Tensor& t, bool inference) {
  const std::shared_ptr<TensorImpl>& impl = t.impl();
  return inference && impl.use_count() == 1 && !impl->requires_grad &&
         impl->backward_fn == nullptr;
}

Tensor BinaryOp(const char* name, fu::OpKind rop, const Tensor& a,
                const Tensor& b, bool reuse_a, bool reuse_b,
                const BinaryKernels& bk,
                std::function<void(TensorImpl&)> (*make_backward)(
                    std::shared_ptr<TensorImpl>, std::shared_ptr<TensorImpl>,
                    BroadcastKind, int)) {
  const BroadcastKind kind = CheckBroadcast(a, b, name);
  const int cols = a.cols();
  const int64_t numel = a.numel();
  const bool inference = internal::InferenceModeActive();
  if (inference) {
    if (reuse_a && ReusableTemp(a, true)) {
      BinaryForward(a.data(), b.data(), a.impl()->data.data(), numel, cols,
                    kind, bk);
      if (fu::Recording()) fu::RecordBinary(rop, a.impl(), b.impl(), a.impl());
      return Tensor::FromImpl(a.impl());
    }
    if (reuse_b && kind == BroadcastKind::kSame && ReusableTemp(b, true)) {
      // Output aliases `b` (kSame only — the result has `a`'s shape, which
      // matches `b`'s only under kSame).
      BinaryForward(a.data(), b.data(), b.impl()->data.data(), numel, cols,
                    kind, bk);
      if (fu::Recording()) fu::RecordBinary(rop, a.impl(), b.impl(), b.impl());
      return Tensor::FromImpl(b.impl());
    }
    std::vector<float> out = ForwardBuffer(numel, true);
    BinaryForward(a.data(), b.data(), out.data(), numel, cols, kind, bk);
    Tensor r = MakeInferenceResult(a.shape(), std::move(out));
    if (fu::Recording()) fu::RecordBinary(rop, a.impl(), b.impl(), r.impl());
    return r;
  }
  std::vector<float> out = ForwardBuffer(numel, false);
  BinaryForward(a.data(), b.data(), out.data(), numel, cols, kind, bk);
  return MakeResult(a.shape(), std::move(out), {a, b},
                    make_backward(a.impl(), b.impl(), kind, cols));
}

std::function<void(TensorImpl&)> AddBackward(std::shared_ptr<TensorImpl> ai,
                                             std::shared_ptr<TensorImpl> bi,
                                             BroadcastKind kind, int cols) {
  return [ai, bi, kind, cols](TensorImpl& y) {
    Accumulate(ai, [&](int64_t i) { return y.grad[i]; });
    if (NeedsGrad(*bi)) {
      std::vector<float>& bgrad = internal::GradBuffer(*bi);
      for (int64_t i = 0; i < y.shape.numel(); ++i) {
        bgrad[BIndex(kind, i, cols)] += y.grad[i];
      }
    }
  };
}

std::function<void(TensorImpl&)> SubBackward(std::shared_ptr<TensorImpl> ai,
                                             std::shared_ptr<TensorImpl> bi,
                                             BroadcastKind kind, int cols) {
  return [ai, bi, kind, cols](TensorImpl& y) {
    Accumulate(ai, [&](int64_t i) { return y.grad[i]; });
    if (NeedsGrad(*bi)) {
      std::vector<float>& bgrad = internal::GradBuffer(*bi);
      for (int64_t i = 0; i < y.shape.numel(); ++i) {
        bgrad[BIndex(kind, i, cols)] -= y.grad[i];
      }
    }
  };
}

// Kernel pair for one binary op, pulled from the active dispatch table.
BinaryKernels AddKernels() {
  const kernels::KernelTable& kt = kernels::Active();
  return {kt.add, kt.addc};
}
BinaryKernels SubKernels() {
  const kernels::KernelTable& kt = kernels::Active();
  return {kt.sub, kt.subc};
}
BinaryKernels MulKernels() {
  const kernels::KernelTable& kt = kernels::Active();
  return {kt.mul, kt.mulc};
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp("Add", fu::OpKind::kAdd, a, b, false, false, AddKernels(), AddBackward);
}

Tensor Add(Tensor&& a, const Tensor& b) {
  return BinaryOp("Add", fu::OpKind::kAdd, a, b, true, false, AddKernels(), AddBackward);
}

Tensor Add(const Tensor& a, Tensor&& b) {
  return BinaryOp("Add", fu::OpKind::kAdd, a, b, false, true, AddKernels(), AddBackward);
}

Tensor Add(Tensor&& a, Tensor&& b) {
  return BinaryOp("Add", fu::OpKind::kAdd, a, b, true, true, AddKernels(), AddBackward);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp("Sub", fu::OpKind::kSub, a, b, false, false, SubKernels(), SubBackward);
}

Tensor Sub(Tensor&& a, const Tensor& b) {
  return BinaryOp("Sub", fu::OpKind::kSub, a, b, true, false, SubKernels(), SubBackward);
}

namespace {

// Mul's backward reads the *parents'* forward values, which is why in-place
// reuse is restricted to inference mode: under a graph, a parent's buffer
// must survive untouched until Backward().
std::function<void(TensorImpl&)> MulBackward(std::shared_ptr<TensorImpl> ai,
                                             std::shared_ptr<TensorImpl> bi,
                                             BroadcastKind kind, int cols) {
  return [ai, bi, kind, cols](TensorImpl& y) {
    Accumulate(ai, [&](int64_t i) {
      return y.grad[i] * bi->data[BIndex(kind, i, cols)];
    });
    if (NeedsGrad(*bi)) {
      std::vector<float>& bgrad = internal::GradBuffer(*bi);
      for (int64_t i = 0; i < y.shape.numel(); ++i) {
        bgrad[BIndex(kind, i, cols)] += y.grad[i] * ai->data[i];
      }
    }
  };
}

}  // namespace

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp("Mul", fu::OpKind::kMul, a, b, false, false, MulKernels(), MulBackward);
}

Tensor Mul(Tensor&& a, const Tensor& b) {
  return BinaryOp("Mul", fu::OpKind::kMul, a, b, true, false, MulKernels(), MulBackward);
}

Tensor Mul(const Tensor& a, Tensor&& b) {
  return BinaryOp("Mul", fu::OpKind::kMul, a, b, false, true, MulKernels(), MulBackward);
}

Tensor Mul(Tensor&& a, Tensor&& b) {
  return BinaryOp("Mul", fu::OpKind::kMul, a, b, true, true, MulKernels(), MulBackward);
}

namespace {

// Fused blends. Same-shape only: these exist for the recurrent-cell state
// updates, where everything is the step's row vector. One kernel pass,
// values bit-identical to the op compositions they replace (kernels.h).

void CheckSameShape3(const char* name, const Tensor& x, const Tensor& y,
                     const Tensor& z) {
  if (!(x.shape() == y.shape()) || !(y.shape() == z.shape())) {
    Fatal(std::string(name) + ": shapes must match, got " +
          x.shape().ToString() + ", " + y.shape().ToString() + ", " +
          z.shape().ToString());
  }
}

Tensor LerpOp(const Tensor& mask, const Tensor& a, const Tensor& b,
              bool reuse_a, bool reuse_b) {
  CheckSameShape3("Lerp", mask, a, b);
  const int64_t numel = a.numel();
  const bool inference = internal::InferenceModeActive();
  const kernels::KernelTable& kt = kernels::Active();
  if (inference) {
    if (reuse_a && ReusableTemp(a, true)) {
      kt.lerp(mask.data(), a.data(), b.data(), a.impl()->data.data(), numel);
      if (fu::Recording()) {
        fu::RecordLerp(mask.impl(), a.impl(), b.impl(), a.impl());
      }
      return Tensor::FromImpl(a.impl());
    }
    if (reuse_b && ReusableTemp(b, true)) {
      kt.lerp(mask.data(), a.data(), b.data(), b.impl()->data.data(), numel);
      if (fu::Recording()) {
        fu::RecordLerp(mask.impl(), a.impl(), b.impl(), b.impl());
      }
      return Tensor::FromImpl(b.impl());
    }
    std::vector<float> out = ForwardBuffer(numel, true);
    kt.lerp(mask.data(), a.data(), b.data(), out.data(), numel);
    Tensor r = MakeInferenceResult(a.shape(), std::move(out));
    if (fu::Recording()) {
      fu::RecordLerp(mask.impl(), a.impl(), b.impl(), r.impl());
    }
    return r;
  }
  std::vector<float> out = ForwardBuffer(numel, false);
  kt.lerp(mask.data(), a.data(), b.data(), out.data(), numel);
  auto mi = mask.impl();
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(a.shape(), std::move(out), {mask, a, b},
                    [mi, ai, bi](TensorImpl& y) {
                      Accumulate(ai, [&](int64_t i) {
                        return y.grad[i] * mi->data[i];
                      });
                      Accumulate(bi, [&](int64_t i) {
                        return y.grad[i] * (1.0f - mi->data[i]);
                      });
                      Accumulate(mi, [&](int64_t i) {
                        return y.grad[i] * (ai->data[i] - bi->data[i]);
                      });
                    });
}

Tensor AxpbyOp(const Tensor& a, float alpha, const Tensor& b, float beta,
               bool reuse_a, bool reuse_b) {
  if (!(a.shape() == b.shape())) {
    Fatal("Axpby: shapes must match, got " + a.shape().ToString() + " and " +
          b.shape().ToString());
  }
  const int64_t numel = a.numel();
  const bool inference = internal::InferenceModeActive();
  const kernels::KernelTable& kt = kernels::Active();
  if (inference) {
    if (reuse_a && ReusableTemp(a, true)) {
      kt.axpby(a.data(), alpha, b.data(), beta, a.impl()->data.data(), numel);
      if (fu::Recording()) {
        fu::RecordAxpby(a.impl(), alpha, b.impl(), beta, a.impl());
      }
      return Tensor::FromImpl(a.impl());
    }
    if (reuse_b && ReusableTemp(b, true)) {
      kt.axpby(a.data(), alpha, b.data(), beta, b.impl()->data.data(), numel);
      if (fu::Recording()) {
        fu::RecordAxpby(a.impl(), alpha, b.impl(), beta, b.impl());
      }
      return Tensor::FromImpl(b.impl());
    }
    std::vector<float> out = ForwardBuffer(numel, true);
    kt.axpby(a.data(), alpha, b.data(), beta, out.data(), numel);
    Tensor r = MakeInferenceResult(a.shape(), std::move(out));
    if (fu::Recording()) {
      fu::RecordAxpby(a.impl(), alpha, b.impl(), beta, r.impl());
    }
    return r;
  }
  std::vector<float> out = ForwardBuffer(numel, false);
  kt.axpby(a.data(), alpha, b.data(), beta, out.data(), numel);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(a.shape(), std::move(out), {a, b},
                    [ai, bi, alpha, beta](TensorImpl& y) {
                      Accumulate(ai, [&](int64_t i) {
                        return y.grad[i] * alpha;
                      });
                      Accumulate(bi, [&](int64_t i) {
                        return y.grad[i] * beta;
                      });
                    });
}

}  // namespace

Tensor Lerp(const Tensor& mask, const Tensor& a, const Tensor& b) {
  return LerpOp(mask, a, b, false, false);
}
Tensor Lerp(const Tensor& mask, Tensor&& a, const Tensor& b) {
  return LerpOp(mask, a, b, true, false);
}
Tensor Lerp(const Tensor& mask, const Tensor& a, Tensor&& b) {
  return LerpOp(mask, a, b, false, true);
}

Tensor Axpby(const Tensor& a, float alpha, const Tensor& b, float beta) {
  return AxpbyOp(a, alpha, b, beta, false, false);
}
Tensor Axpby(Tensor&& a, float alpha, const Tensor& b, float beta) {
  return AxpbyOp(a, alpha, b, beta, true, false);
}
Tensor Axpby(const Tensor& a, float alpha, Tensor&& b, float beta) {
  return AxpbyOp(a, alpha, b, beta, false, true);
}

namespace {

// Below this many multiply-adds a MatMul (or one side of its backward) runs
// sequentially — pool dispatch would cost more than it saves.
constexpr int64_t kMatMulParallelFlops = int64_t{1} << 16;

// Whether an m x k x n product is worth tiling across the pool.
bool MatMulParallelWorthwhile(int m, int k, int n) {
  return static_cast<int64_t>(m) * k * n >= kMatMulParallelFlops &&
         util::GlobalPool().num_threads() > 1;
}

// Tiles rows across the pool when there are enough of them, otherwise
// columns (the library's hot products are [1, k] x [k, vocab], all columns).
// The per-tile inner loop lives in the dispatch table (matmul_block); every
// variant accumulates each out[i, j] as the same ascending-p axpy chain, so
// tiling and dispatch choice never change a bit.
void MatMulCompute(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  const kernels::KernelTable& kt = kernels::Active();
  if (!MatMulParallelWorthwhile(m, k, n)) {
    kt.matmul_block(a, b, out, k, n, 0, m, 0, n);
    return;
  }
  util::ThreadPool& pool = util::GlobalPool();
  if (m >= pool.num_threads()) {
    pool.ParallelForRange(0, m, 1, [&](int64_t lo, int64_t hi) {
      kt.matmul_block(a, b, out, k, n, static_cast<int>(lo),
                      static_cast<int>(hi), 0, n);
    });
  } else {
    pool.ParallelForRange(0, n, 64, [&](int64_t lo, int64_t hi) {
      kt.matmul_block(a, b, out, k, n, 0, m, static_cast<int>(lo),
                      static_cast<int>(hi));
    });
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    Fatal("MatMul: inner dims mismatch " + a.shape().ToString() + " x " +
          b.shape().ToString());
  }
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (internal::InferenceModeActive()) {
    const int64_t numel = static_cast<int64_t>(m) * n;
    std::vector<float> out = ZeroedForwardBuffer(numel, true);
    MatMulCompute(a.data(), b.data(), out.data(), m, k, n);
    Tensor r = MakeInferenceResult({m, n}, std::move(out));
    if (fu::Recording()) fu::RecordMatMul(a.impl(), b.impl(), r.impl());
    return r;
  }
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  MatMulCompute(a.data(), b.data(), out.data(), m, k, n);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(
      {m, n}, std::move(out), {a, b}, [ai, bi, m, k, n](TensorImpl& y) {
        // Gradient buffers resolve on this thread (GradBuffer consults
        // thread-local redirection), then tiles write disjoint elements.
        if (NeedsGrad(*ai)) {
          float* agrad = internal::GradBuffer(*ai).data();
          const float* grad = y.grad.data();
          const float* bdata = bi->data.data();
          // dA = dY * B^T; each dA row is independent, and for a single row
          // the k entries are independent dot products.
          auto rows = [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              for (int p = 0; p < k; ++p) {
                float acc = 0.0f;
                const float* grow = grad + i * n;
                const float* brow = bdata + p * n;
                for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
                agrad[i * k + p] += acc;
              }
            }
          };
          if (MatMulParallelWorthwhile(m, k, n) && m > 1) {
            util::GlobalPool().ParallelForRange(0, m, 1, rows);
          } else {
            rows(0, m);
          }
        }
        if (NeedsGrad(*bi)) {
          float* bgrad = internal::GradBuffer(*bi).data();
          const float* grad = y.grad.data();
          const float* adata = ai->data.data();
          // dB = A^T * dY; partitioned by dB row p — for fixed (p, j) the
          // sum over i runs ascending exactly as in the sequential loop.
          auto rows = [&](int64_t lo, int64_t hi) {
            for (int64_t p = lo; p < hi; ++p) {
              float* brow = bgrad + p * n;
              for (int i = 0; i < m; ++i) {
                const float av = adata[i * k + p];
                if (av == 0.0f) continue;
                const float* grow = grad + i * n;
                for (int j = 0; j < n; ++j) brow[j] += av * grow[j];
              }
            }
          };
          if (MatMulParallelWorthwhile(m, k, n) && k > 1) {
            util::GlobalPool().ParallelForRange(0, k, 1, rows);
          } else {
            rows(0, k);
          }
        }
      });
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out = ForwardBuffer(a.numel(), inference);
  const float* ad = a.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out[j * m + i] = ad[i * n + j];
  }
  if (inference) return MakeInferenceResult({n, m}, std::move(out));
  auto ai = a.impl();
  return MakeResult({n, m}, std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) agrad[i * n + j] += y.grad[j * m + i];
    }
  });
}

namespace {

// Shared implementation for elementwise unary ops whose derivative is a
// function of the *output* value (sigmoid, tanh, exp) or *input* value.
// The forward loop is a dispatched kernel; `reuse` (set by the rvalue
// overloads) lets inference mode overwrite a dying temporary in place via
// the kernels' exact-aliasing contract — see ReusableTemp.
template <typename BwdFn>
Tensor UnaryKernelOp(const Tensor& a, fu::OpKind rop, bool reuse,
                     void (*kernel)(const float*, float*, int64_t),
                     BwdFn bwd_from_in_out) {
  const int64_t numel = a.numel();
  const bool inference = internal::InferenceModeActive();
  if (reuse && ReusableTemp(a, inference)) {
    float* d = a.impl()->data.data();
    kernel(d, d, numel);
    if (fu::Recording()) fu::RecordUnary(rop, a.impl(), a.impl());
    return Tensor::FromImpl(a.impl());
  }
  std::vector<float> out = ForwardBuffer(numel, inference);
  kernel(a.data(), out.data(), numel);
  if (inference) {
    Tensor r = MakeInferenceResult(a.shape(), std::move(out));
    if (fu::Recording()) fu::RecordUnary(rop, a.impl(), r.impl());
    return r;
  }
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a},
                    [ai, bwd_from_in_out](TensorImpl& y) {
                      Accumulate(ai, [&](int64_t i) {
                        return y.grad[i] *
                               bwd_from_in_out(ai->data[i], y.data[i]);
                      });
                    });
}

// Same shape for the scalar-parameter ops (Scale, AddScalar), which reuse
// the binary tables' broadcast-scalar kernels.
template <typename BwdFn>
Tensor UnaryScalarKernelOp(const Tensor& a, float c, fu::OpKind rop,
                           bool reuse,
                           void (*kernel)(const float*, float, float*,
                                          int64_t),
                           BwdFn bwd_from_in_out) {
  const int64_t numel = a.numel();
  const bool inference = internal::InferenceModeActive();
  if (reuse && ReusableTemp(a, inference)) {
    float* d = a.impl()->data.data();
    kernel(d, c, d, numel);
    if (fu::Recording()) fu::RecordScalarOp(rop, a.impl(), c, a.impl());
    return Tensor::FromImpl(a.impl());
  }
  std::vector<float> out = ForwardBuffer(numel, inference);
  kernel(a.data(), c, out.data(), numel);
  if (inference) {
    Tensor r = MakeInferenceResult(a.shape(), std::move(out));
    if (fu::Recording()) fu::RecordScalarOp(rop, a.impl(), c, r.impl());
    return r;
  }
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a},
                    [ai, bwd_from_in_out](TensorImpl& y) {
                      Accumulate(ai, [&](int64_t i) {
                        return y.grad[i] *
                               bwd_from_in_out(ai->data[i], y.data[i]);
                      });
                    });
}

Tensor SigmoidOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(a, fu::OpKind::kSigmoid, reuse,
                       kernels::Active().sigmoid,
                       [](float /*x*/, float y) { return y * (1.0f - y); });
}

Tensor TanhOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(a, fu::OpKind::kTanh, reuse, kernels::Active().tanh,
                       [](float /*x*/, float y) { return 1.0f - y * y; });
}

Tensor ReluOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(
      a, fu::OpKind::kUnsupported, reuse, kernels::Active().relu,
      [](float x, float /*y*/) { return x > 0.0f ? 1.0f : 0.0f; });
}

}  // namespace

Tensor Sigmoid(const Tensor& a) { return SigmoidOp(a, false); }
Tensor Sigmoid(Tensor&& a) { return SigmoidOp(a, true); }

Tensor Tanh(const Tensor& a) { return TanhOp(a, false); }
Tensor Tanh(Tensor&& a) { return TanhOp(a, true); }

Tensor Relu(const Tensor& a) { return ReluOp(a, false); }
Tensor Relu(Tensor&& a) { return ReluOp(a, true); }

namespace {

Tensor ScaleOp(const Tensor& a, float alpha, bool reuse) {
  return UnaryScalarKernelOp(
      a, alpha, fu::OpKind::kScale, reuse, kernels::Active().mulc,
      [alpha](float /*x*/, float /*y*/) { return alpha; });
}

Tensor AddScalarOp(const Tensor& a, float alpha, bool reuse) {
  return UnaryScalarKernelOp(
      a, alpha, fu::OpKind::kAddScalar, reuse, kernels::Active().addc,
      [](float /*x*/, float /*y*/) { return 1.0f; });
}

}  // namespace

Tensor Scale(const Tensor& a, float alpha) { return ScaleOp(a, alpha, false); }
Tensor Scale(Tensor&& a, float alpha) { return ScaleOp(a, alpha, true); }

Tensor AddScalar(const Tensor& a, float alpha) {
  return AddScalarOp(a, alpha, false);
}
Tensor AddScalar(Tensor&& a, float alpha) {
  return AddScalarOp(a, alpha, true);
}

namespace {

Tensor ExpOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(a, fu::OpKind::kUnsupported, reuse,
                       kernels::Active().exp,
                       [](float /*x*/, float y) { return y; });
}

Tensor LogOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(a, fu::OpKind::kUnsupported, reuse,
                       kernels::Active().log,
                       [](float x, float /*y*/) { return 1.0f / x; });
}

Tensor SquareOp(const Tensor& a, bool reuse) {
  return UnaryKernelOp(a, fu::OpKind::kUnsupported, reuse,
                       kernels::Active().square,
                       [](float x, float /*y*/) { return 2.0f * x; });
}

}  // namespace

Tensor Exp(const Tensor& a) { return ExpOp(a, false); }
Tensor Exp(Tensor&& a) { return ExpOp(a, true); }

Tensor Log(const Tensor& a) { return LogOp(a, false); }
Tensor Log(Tensor&& a) { return LogOp(a, true); }

Tensor Square(const Tensor& a) { return SquareOp(a, false); }
Tensor Square(Tensor&& a) { return SquareOp(a, true); }

namespace {

Tensor SoftmaxOp(const Tensor& a, bool reuse) {
  const int m = a.rows(), n = a.cols();
  const bool inference = internal::InferenceModeActive();
  const kernels::KernelTable& kt = kernels::Active();
  // Not replayable — and the in-place path could silently forward a
  // recorded temporary's storage, so the trace must be poisoned, not just
  // left unaware (see compiled_step.h).
  if (fu::Recording()) fu::RecordUnsupported();
  // The kernel's n <= 0 guard makes a zero-width input a no-op instead of
  // the old out-of-bounds row[0] read.
  if (reuse && ReusableTemp(a, inference)) {
    float* d = a.impl()->data.data();
    kt.softmax(d, d, m, n);
    return Tensor::FromImpl(a.impl());
  }
  std::vector<float> out = ForwardBuffer(a.numel(), inference);
  kt.softmax(a.data(), out.data(), m, n);
  if (inference) return MakeInferenceResult(a.shape(), std::move(out));
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      const float* yrow = y.data.data() + i * n;
      const float* grow = y.grad.data() + i * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += yrow[j] * grow[j];
      for (int j = 0; j < n; ++j) {
        agrad[i * n + j] += yrow[j] * (grow[j] - dot);
      }
    }
  });
}

Tensor LogSoftmaxOp(const Tensor& a, bool reuse) {
  const int m = a.rows(), n = a.cols();
  const bool inference = internal::InferenceModeActive();
  const kernels::KernelTable& kt = kernels::Active();
  if (fu::Recording()) fu::RecordUnsupported();  // see SoftmaxOp
  if (reuse && ReusableTemp(a, inference)) {
    // The log_softmax kernel stages its exp pass through a private chunk,
    // so exact out==a aliasing is safe here too.
    float* d = a.impl()->data.data();
    kt.log_softmax(d, d, m, n);
    return Tensor::FromImpl(a.impl());
  }
  std::vector<float> out = ForwardBuffer(a.numel(), inference);
  kt.log_softmax(a.data(), out.data(), m, n);
  if (inference) return MakeInferenceResult(a.shape(), std::move(out));
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      const float* yrow = y.data.data() + i * n;
      const float* grow = y.grad.data() + i * n;
      float gsum = 0.0f;
      for (int j = 0; j < n; ++j) gsum += grow[j];
      for (int j = 0; j < n; ++j) {
        agrad[i * n + j] += grow[j] - std::exp(yrow[j]) * gsum;
      }
    }
  });
}

}  // namespace

Tensor Softmax(const Tensor& a) { return SoftmaxOp(a, false); }
Tensor Softmax(Tensor&& a) { return SoftmaxOp(a, true); }

Tensor LogSoftmax(const Tensor& a) { return LogSoftmaxOp(a, false); }
Tensor LogSoftmax(Tensor&& a) { return LogSoftmaxOp(a, true); }

Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets) {
  const int m = log_probs.rows(), n = log_probs.cols();
  if (static_cast<int>(targets.size()) != m) {
    Fatal("NllLoss: expected " + std::to_string(m) + " targets, got " +
          std::to_string(targets.size()));
  }
  float loss = 0.0f;
  for (int i = 0; i < m; ++i) {
    const int t = targets[i];
    if (t < 0 || t >= n) Fatal("NllLoss: target out of range");
    loss -= log_probs.at(i, t);
  }
  loss /= static_cast<float>(m);
  if (internal::InferenceModeActive()) {
    std::vector<float> out = ForwardBuffer(1, true);
    out[0] = loss;
    return MakeInferenceResult({1, 1}, std::move(out));
  }
  auto li = log_probs.impl();
  return MakeResult({1, 1}, {loss}, {log_probs},
                    [li, targets, m, n](TensorImpl& y) {
                      if (!NeedsGrad(*li)) return;
                      std::vector<float>& lgrad = internal::GradBuffer(*li);
                      const float g = y.grad[0] / static_cast<float>(m);
                      for (int i = 0; i < m; ++i) {
                        lgrad[i * n + targets[i]] -= g;
                      }
                    });
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets) {
  return NllLoss(LogSoftmax(logits), targets);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  if (parts.empty()) Fatal("ConcatCols: empty input");
  const int m = parts[0].rows();
  int total = 0;
  for (const Tensor& p : parts) {
    if (p.rows() != m) Fatal("ConcatCols: row mismatch");
    total += p.cols();
  }
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out =
      ForwardBuffer(static_cast<int64_t>(m) * total, inference);
  int off = 0;
  for (const Tensor& p : parts) {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < p.cols(); ++j) {
        out[i * total + off + j] = p.at(i, j);
      }
    }
    off += p.cols();
  }
  if (inference) return MakeInferenceResult({m, total}, std::move(out));
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const Tensor& p : parts) impls.push_back(p.impl());
  return MakeResult({m, total}, std::move(out), parts,
                    [impls, m, total](TensorImpl& y) {
                      int off2 = 0;
                      for (const auto& pi : impls) {
                        const int pc = pi->shape.cols;
                        if (NeedsGrad(*pi)) {
                          std::vector<float>& pgrad =
                              internal::GradBuffer(*pi);
                          for (int i = 0; i < m; ++i) {
                            for (int j = 0; j < pc; ++j) {
                              pgrad[i * pc + j] +=
                                  y.grad[i * total + off2 + j];
                            }
                          }
                        }
                        off2 += pc;
                      }
                    });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  if (parts.empty()) Fatal("ConcatRows: empty input");
  const int n = parts[0].cols();
  int total = 0;
  for (const Tensor& p : parts) {
    if (p.cols() != n) Fatal("ConcatRows: col mismatch");
    total += p.rows();
  }
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out =
      ForwardBuffer(static_cast<int64_t>(total) * n, inference);
  size_t off = 0;
  for (const Tensor& p : parts) {
    const size_t cnt = static_cast<size_t>(p.numel());
    std::copy(p.data(), p.data() + cnt, out.begin() + off);
    off += cnt;
  }
  if (inference) return MakeInferenceResult({total, n}, std::move(out));
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const Tensor& p : parts) impls.push_back(p.impl());
  return MakeResult({total, n}, std::move(out), parts,
                    [impls, n](TensorImpl& y) {
                      int64_t off2 = 0;
                      for (const auto& pi : impls) {
                        const int64_t cnt = pi->shape.numel();
                        if (NeedsGrad(*pi)) {
                          std::vector<float>& pgrad =
                              internal::GradBuffer(*pi);
                          for (int64_t i = 0; i < cnt; ++i) {
                            pgrad[i] += y.grad[off2 + i];
                          }
                        }
                        off2 += cnt;
                      }
                    });
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  if (start < 0 || len < 0 || start + len > n) Fatal("SliceCols: out of range");
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out =
      ForwardBuffer(static_cast<int64_t>(m) * len, inference);
  const float* ad = a.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = ad + static_cast<int64_t>(i) * n + start;
    for (int j = 0; j < len; ++j) out[i * len + j] = arow[j];
  }
  if (inference) {
    Tensor r = MakeInferenceResult({m, len}, std::move(out));
    if (fu::Recording()) fu::RecordSlice(a.impl(), start, len, r.impl());
    return r;
  }
  auto ai = a.impl();
  return MakeResult({m, len}, std::move(out), {a},
                    [ai, start, len, m, n](TensorImpl& y) {
                      if (!NeedsGrad(*ai)) return;
                      std::vector<float>& agrad = internal::GradBuffer(*ai);
                      for (int i = 0; i < m; ++i) {
                        for (int j = 0; j < len; ++j) {
                          agrad[i * n + start + j] += y.grad[i * len + j];
                        }
                      }
                    });
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  if (start < 0 || len < 0 || start + len > m) Fatal("SliceRows: out of range");
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out =
      ForwardBuffer(static_cast<int64_t>(len) * n, inference);
  std::copy(a.data() + static_cast<size_t>(start) * n,
            a.data() + static_cast<size_t>(start + len) * n, out.begin());
  if (inference) return MakeInferenceResult({len, n}, std::move(out));
  auto ai = a.impl();
  return MakeResult({len, n}, std::move(out), {a},
                    [ai, start, len, n](TensorImpl& y) {
                      if (!NeedsGrad(*ai)) return;
                      std::vector<float>& agrad = internal::GradBuffer(*ai);
                      for (int64_t i = 0; i < static_cast<int64_t>(len) * n;
                           ++i) {
                        agrad[static_cast<int64_t>(start) * n + i] +=
                            y.grad[i];
                      }
                    });
}

Tensor Rows(const Tensor& table, const std::vector<int>& indices) {
  const int v = table.rows(), d = table.cols();
  const int b = static_cast<int>(indices.size());
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out =
      ForwardBuffer(static_cast<int64_t>(b) * d, inference);
  const float* td = table.data();
  for (int i = 0; i < b; ++i) {
    const int idx = indices[i];
    if (idx < 0 || idx >= v) Fatal("Rows: index out of range");
    const float* trow = td + static_cast<int64_t>(idx) * d;
    for (int j = 0; j < d; ++j) out[i * d + j] = trow[j];
  }
  if (inference) return MakeInferenceResult({b, d}, std::move(out));
  auto ti = table.impl();
  return MakeResult({b, d}, std::move(out), {table},
                    [ti, indices, b, d](TensorImpl& y) {
                      if (!NeedsGrad(*ti)) return;
                      std::vector<float>& tgrad = internal::GradBuffer(*ti);
                      for (int i = 0; i < b; ++i) {
                        float* row = tgrad.data() + indices[i] * d;
                        for (int j = 0; j < d; ++j) {
                          row[j] += y.grad[i * d + j];
                        }
                      }
                    });
}

Tensor Sum(const Tensor& a) {
  const int64_t numel = a.numel();
  const float* ad = a.data();
  float total = 0.0f;
  for (int64_t i = 0; i < numel; ++i) total += ad[i];
  if (internal::InferenceModeActive()) {
    std::vector<float> out = ForwardBuffer(1, true);
    out[0] = total;
    return MakeInferenceResult({1, 1}, std::move(out));
  }
  auto ai = a.impl();
  return MakeResult({1, 1}, {total}, {a}, [ai](TensorImpl& y) {
    Accumulate(ai, [&](int64_t) { return y.grad[0]; });
  });
}

Tensor Mean(const Tensor& a) {
  const int64_t numel = a.numel();
  const float inv = 1.0f / static_cast<float>(numel);
  const float* ad = a.data();
  float total = 0.0f;
  for (int64_t i = 0; i < numel; ++i) total += ad[i];
  if (internal::InferenceModeActive()) {
    std::vector<float> out = ForwardBuffer(1, true);
    out[0] = total * inv;
    return MakeInferenceResult({1, 1}, std::move(out));
  }
  auto ai = a.impl();
  return MakeResult({1, 1}, {total * inv}, {a}, [ai, inv](TensorImpl& y) {
    Accumulate(ai, [&](int64_t) { return y.grad[0] * inv; });
  });
}

Tensor SumRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  const bool inference = internal::InferenceModeActive();
  std::vector<float> out = ZeroedForwardBuffer(m, inference);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out[i] += a.at(i, j);
  }
  if (inference) return MakeInferenceResult({m, 1}, std::move(out));
  auto ai = a.impl();
  return MakeResult({m, 1}, std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) agrad[i * n + j] += y.grad[i];
    }
  });
}

StridedView SliceColsView(const Tensor& a, int start, int len) {
  if (start < 0 || len < 0 || start + len > a.cols()) {
    Fatal("SliceColsView: out of range");
  }
  return {a.data() + start, a.rows(), len, a.cols()};
}

StridedView SliceRowsView(const Tensor& a, int start, int len) {
  if (start < 0 || len < 0 || start + len > a.rows()) {
    Fatal("SliceRowsView: out of range");
  }
  return {a.data() + static_cast<int64_t>(start) * a.cols(), len, a.cols(),
          a.cols()};
}

namespace detail {

void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  MatMulCompute(a, b, out, m, k, n);
}

Tensor MakeInferencePooled(Shape shape, std::vector<float> data) {
  return MakeInferenceResult(shape, std::move(data));
}

}  // namespace detail

}  // namespace pa::tensor
