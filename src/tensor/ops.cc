#include "tensor/ops.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/thread_pool.h"

namespace pa::tensor {

namespace {

using internal::TensorImpl;

[[noreturn]] void Fatal(const std::string& msg) {
  std::fprintf(stderr, "pa::tensor::ops fatal: %s\n", msg.c_str());
  std::abort();
}

// A node needs a gradient if it is a leaf the user marked as trainable or an
// interior node gradients must flow through.
bool NeedsGrad(const TensorImpl& impl) {
  return impl.requires_grad || impl.backward_fn != nullptr;
}

bool NeedsGrad(const Tensor& t) { return NeedsGrad(*t.impl()); }

// Creates the result node of an op. `parents` are recorded for topological
// ordering; `backward` is installed only if some parent needs a gradient.
Tensor MakeResult(Shape shape, std::vector<float> data,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  bool any = false;
  for (const Tensor& p : parents) any = any || NeedsGrad(p);
  if (any) {
    impl->requires_grad = true;
    for (const Tensor& p : parents) impl->parents.push_back(p.impl());
    impl->backward_fn = std::move(backward);
  }
  return Tensor::FromImpl(std::move(impl));
}

// Accumulates `g` into the gradient buffer of `dst` if it needs one. All
// parent-gradient writes go through internal::GradBuffer so data-parallel
// training can redirect them into thread-private buffers (see
// GradRedirectScope in tensor.h).
void Accumulate(const std::shared_ptr<TensorImpl>& dst,
                const std::function<float(int64_t)>& g) {
  if (!NeedsGrad(*dst)) return;
  std::vector<float>& grad = internal::GradBuffer(*dst);
  const int64_t n = dst->shape.numel();
  for (int64_t i = 0; i < n; ++i) grad[i] += g(i);
}

enum class BroadcastKind { kSame, kRow, kScalar };

BroadcastKind CheckBroadcast(const Tensor& a, const Tensor& b,
                             const char* op) {
  if (a.shape() == b.shape()) return BroadcastKind::kSame;
  if (b.rows() == 1 && b.cols() == a.cols()) return BroadcastKind::kRow;
  if (b.rows() == 1 && b.cols() == 1) return BroadcastKind::kScalar;
  Fatal(std::string(op) + ": incompatible shapes " + a.shape().ToString() +
        " and " + b.shape().ToString());
}

// Index of the b-element matching flat index i of a under broadcasting.
int64_t BIndex(BroadcastKind kind, int64_t i, int cols) {
  switch (kind) {
    case BroadcastKind::kSame:
      return i;
    case BroadcastKind::kRow:
      return i % cols;
    case BroadcastKind::kScalar:
      return 0;
  }
  return 0;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = CheckBroadcast(a, b, "Add");
  const int cols = a.cols();
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a.data()[i] + b.data()[BIndex(kind, i, cols)];
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(
      a.shape(), std::move(out), {a, b}, [ai, bi, kind, cols](TensorImpl& y) {
        Accumulate(ai, [&](int64_t i) { return y.grad[i]; });
        if (NeedsGrad(*bi)) {
          std::vector<float>& bgrad = internal::GradBuffer(*bi);
          for (int64_t i = 0; i < y.shape.numel(); ++i) {
            bgrad[BIndex(kind, i, cols)] += y.grad[i];
          }
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = CheckBroadcast(a, b, "Sub");
  const int cols = a.cols();
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a.data()[i] - b.data()[BIndex(kind, i, cols)];
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(
      a.shape(), std::move(out), {a, b}, [ai, bi, kind, cols](TensorImpl& y) {
        Accumulate(ai, [&](int64_t i) { return y.grad[i]; });
        if (NeedsGrad(*bi)) {
          std::vector<float>& bgrad = internal::GradBuffer(*bi);
          for (int64_t i = 0; i < y.shape.numel(); ++i) {
            bgrad[BIndex(kind, i, cols)] -= y.grad[i];
          }
        }
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = CheckBroadcast(a, b, "Mul");
  const int cols = a.cols();
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a.data()[i] * b.data()[BIndex(kind, i, cols)];
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(
      a.shape(), std::move(out), {a, b}, [ai, bi, kind, cols](TensorImpl& y) {
        Accumulate(ai, [&](int64_t i) {
          return y.grad[i] * bi->data[BIndex(kind, i, cols)];
        });
        if (NeedsGrad(*bi)) {
          std::vector<float>& bgrad = internal::GradBuffer(*bi);
          for (int64_t i = 0; i < y.shape.numel(); ++i) {
            bgrad[BIndex(kind, i, cols)] += y.grad[i] * ai->data[i];
          }
        }
      });
}

Tensor Scale(const Tensor& a, float alpha) {
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a.data()[i] * alpha;
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai, alpha](TensorImpl& y) {
    Accumulate(ai, [&](int64_t i) { return y.grad[i] * alpha; });
  });
}

Tensor AddScalar(const Tensor& a, float alpha) {
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a.data()[i] + alpha;
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai](TensorImpl& y) {
    Accumulate(ai, [&](int64_t i) { return y.grad[i]; });
  });
}

namespace {

// Below this many multiply-adds a MatMul (or one side of its backward) runs
// sequentially — pool dispatch would cost more than it saves.
constexpr int64_t kMatMulParallelFlops = int64_t{1} << 16;

// Whether an m x k x n product is worth tiling across the pool.
bool MatMulParallelWorthwhile(int m, int k, int n) {
  return static_cast<int64_t>(m) * k * n >= kMatMulParallelFlops &&
         util::GlobalPool().num_threads() > 1;
}

// out[i, j] for rows [row_lo, row_hi) and columns [col_lo, col_hi) of
// A (m x k) * B (k x n). Each output element is an ascending-p sum, the same
// order as the sequential triple loop, so tiling never changes a bit.
void MatMulTile(const float* a, const float* b, float* out, int k, int n,
                int row_lo, int row_hi, int col_lo, int col_hi) {
  for (int i = row_lo; i < row_hi; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n + col_lo;
      float* orow = out + i * n + col_lo;
      for (int j = 0; j < col_hi - col_lo; ++j) orow[j] += av * brow[j];
    }
  }
}

// Tiles rows across the pool when there are enough of them, otherwise
// columns (the library's hot products are [1, k] x [k, vocab], all columns).
void MatMulCompute(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  if (!MatMulParallelWorthwhile(m, k, n)) {
    MatMulTile(a, b, out, k, n, 0, m, 0, n);
    return;
  }
  util::ThreadPool& pool = util::GlobalPool();
  if (m >= pool.num_threads()) {
    pool.ParallelForRange(0, m, 1, [&](int64_t lo, int64_t hi) {
      MatMulTile(a, b, out, k, n, static_cast<int>(lo), static_cast<int>(hi),
                 0, n);
    });
  } else {
    pool.ParallelForRange(0, n, 64, [&](int64_t lo, int64_t hi) {
      MatMulTile(a, b, out, k, n, 0, m, static_cast<int>(lo),
                 static_cast<int>(hi));
    });
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    Fatal("MatMul: inner dims mismatch " + a.shape().ToString() + " x " +
          b.shape().ToString());
  }
  const int m = a.rows(), k = a.cols(), n = b.cols();
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  MatMulCompute(a.data(), b.data(), out.data(), m, k, n);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(
      {m, n}, std::move(out), {a, b}, [ai, bi, m, k, n](TensorImpl& y) {
        // Gradient buffers resolve on this thread (GradBuffer consults
        // thread-local redirection), then tiles write disjoint elements.
        if (NeedsGrad(*ai)) {
          float* agrad = internal::GradBuffer(*ai).data();
          const float* grad = y.grad.data();
          const float* bdata = bi->data.data();
          // dA = dY * B^T; each dA row is independent, and for a single row
          // the k entries are independent dot products.
          auto rows = [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              for (int p = 0; p < k; ++p) {
                float acc = 0.0f;
                const float* grow = grad + i * n;
                const float* brow = bdata + p * n;
                for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
                agrad[i * k + p] += acc;
              }
            }
          };
          if (MatMulParallelWorthwhile(m, k, n) && m > 1) {
            util::GlobalPool().ParallelForRange(0, m, 1, rows);
          } else {
            rows(0, m);
          }
        }
        if (NeedsGrad(*bi)) {
          float* bgrad = internal::GradBuffer(*bi).data();
          const float* grad = y.grad.data();
          const float* adata = ai->data.data();
          // dB = A^T * dY; partitioned by dB row p — for fixed (p, j) the
          // sum over i runs ascending exactly as in the sequential loop.
          auto rows = [&](int64_t lo, int64_t hi) {
            for (int64_t p = lo; p < hi; ++p) {
              float* brow = bgrad + p * n;
              for (int i = 0; i < m; ++i) {
                const float av = adata[i * k + p];
                if (av == 0.0f) continue;
                const float* grow = grad + i * n;
                for (int j = 0; j < n; ++j) brow[j] += av * grow[j];
              }
            }
          };
          if (MatMulParallelWorthwhile(m, k, n) && k > 1) {
            util::GlobalPool().ParallelForRange(0, k, 1, rows);
          } else {
            rows(0, k);
          }
        }
      });
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  std::vector<float> out(a.numel());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out[j * m + i] = a.data()[i * n + j];
  }
  auto ai = a.impl();
  return MakeResult({n, m}, std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) agrad[i * n + j] += y.grad[j * m + i];
    }
  });
}

namespace {

// Shared implementation for elementwise unary ops whose derivative is a
// function of the *output* value (sigmoid, tanh, exp) or *input* value.
template <typename FwdFn, typename BwdFn>
Tensor UnaryOp(const Tensor& a, FwdFn fwd, BwdFn bwd_from_in_out) {
  std::vector<float> out(a.numel());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = fwd(a.data()[i]);
  }
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a},
                    [ai, bwd_from_in_out](TensorImpl& y) {
                      Accumulate(ai, [&](int64_t i) {
                        return y.grad[i] *
                               bwd_from_in_out(ai->data[i], y.data[i]);
                      });
                    });
}

}  // namespace

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float /*x*/, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float /*x*/, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float /*y*/) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float /*x*/, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float /*y*/) { return 1.0f / x; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float /*y*/) { return 2.0f * x; });
}

Tensor Softmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  std::vector<float> out(a.numel());
  for (int i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      out[i * n + j] = std::exp(row[j] - mx);
      sum += out[i * n + j];
    }
    for (int j = 0; j < n; ++j) out[i * n + j] /= sum;
  }
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      const float* yrow = y.data.data() + i * n;
      const float* grow = y.grad.data() + i * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += yrow[j] * grow[j];
      for (int j = 0; j < n; ++j) {
        agrad[i * n + j] += yrow[j] * (grow[j] - dot);
      }
    }
  });
}

Tensor LogSoftmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  std::vector<float> out(a.numel());
  for (int i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += std::exp(row[j] - mx);
    const float lse = mx + std::log(sum);
    for (int j = 0; j < n; ++j) out[i * n + j] = row[j] - lse;
  }
  auto ai = a.impl();
  return MakeResult(a.shape(), std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      const float* yrow = y.data.data() + i * n;
      const float* grow = y.grad.data() + i * n;
      float gsum = 0.0f;
      for (int j = 0; j < n; ++j) gsum += grow[j];
      for (int j = 0; j < n; ++j) {
        agrad[i * n + j] += grow[j] - std::exp(yrow[j]) * gsum;
      }
    }
  });
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets) {
  const int m = log_probs.rows(), n = log_probs.cols();
  if (static_cast<int>(targets.size()) != m) {
    Fatal("NllLoss: expected " + std::to_string(m) + " targets, got " +
          std::to_string(targets.size()));
  }
  float loss = 0.0f;
  for (int i = 0; i < m; ++i) {
    const int t = targets[i];
    if (t < 0 || t >= n) Fatal("NllLoss: target out of range");
    loss -= log_probs.at(i, t);
  }
  loss /= static_cast<float>(m);
  auto li = log_probs.impl();
  return MakeResult({1, 1}, {loss}, {log_probs},
                    [li, targets, m, n](TensorImpl& y) {
                      if (!NeedsGrad(*li)) return;
                      std::vector<float>& lgrad = internal::GradBuffer(*li);
                      const float g = y.grad[0] / static_cast<float>(m);
                      for (int i = 0; i < m; ++i) {
                        lgrad[i * n + targets[i]] -= g;
                      }
                    });
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets) {
  return NllLoss(LogSoftmax(logits), targets);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  if (parts.empty()) Fatal("ConcatCols: empty input");
  const int m = parts[0].rows();
  int total = 0;
  for (const Tensor& p : parts) {
    if (p.rows() != m) Fatal("ConcatCols: row mismatch");
    total += p.cols();
  }
  std::vector<float> out(static_cast<size_t>(m) * total);
  int off = 0;
  for (const Tensor& p : parts) {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < p.cols(); ++j) {
        out[i * total + off + j] = p.at(i, j);
      }
    }
    off += p.cols();
  }
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const Tensor& p : parts) impls.push_back(p.impl());
  return MakeResult({m, total}, std::move(out), parts,
                    [impls, m, total](TensorImpl& y) {
                      int off2 = 0;
                      for (const auto& pi : impls) {
                        const int pc = pi->shape.cols;
                        if (NeedsGrad(*pi)) {
                          std::vector<float>& pgrad =
                              internal::GradBuffer(*pi);
                          for (int i = 0; i < m; ++i) {
                            for (int j = 0; j < pc; ++j) {
                              pgrad[i * pc + j] +=
                                  y.grad[i * total + off2 + j];
                            }
                          }
                        }
                        off2 += pc;
                      }
                    });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  if (parts.empty()) Fatal("ConcatRows: empty input");
  const int n = parts[0].cols();
  int total = 0;
  for (const Tensor& p : parts) {
    if (p.cols() != n) Fatal("ConcatRows: col mismatch");
    total += p.rows();
  }
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total) * n);
  for (const Tensor& p : parts) {
    out.insert(out.end(), p.data(), p.data() + p.numel());
  }
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const Tensor& p : parts) impls.push_back(p.impl());
  return MakeResult({total, n}, std::move(out), parts,
                    [impls, n](TensorImpl& y) {
                      int64_t off = 0;
                      for (const auto& pi : impls) {
                        const int64_t cnt = pi->shape.numel();
                        if (NeedsGrad(*pi)) {
                          std::vector<float>& pgrad =
                              internal::GradBuffer(*pi);
                          for (int64_t i = 0; i < cnt; ++i) {
                            pgrad[i] += y.grad[off + i];
                          }
                        }
                        off += cnt;
                      }
                    });
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  if (start < 0 || len < 0 || start + len > n) Fatal("SliceCols: out of range");
  std::vector<float> out(static_cast<size_t>(m) * len);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < len; ++j) out[i * len + j] = a.at(i, start + j);
  }
  auto ai = a.impl();
  return MakeResult({m, len}, std::move(out), {a},
                    [ai, start, len, m, n](TensorImpl& y) {
                      if (!NeedsGrad(*ai)) return;
                      std::vector<float>& agrad = internal::GradBuffer(*ai);
                      for (int i = 0; i < m; ++i) {
                        for (int j = 0; j < len; ++j) {
                          agrad[i * n + start + j] += y.grad[i * len + j];
                        }
                      }
                    });
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  const int m = a.rows(), n = a.cols();
  if (start < 0 || len < 0 || start + len > m) Fatal("SliceRows: out of range");
  std::vector<float> out(a.data() + static_cast<size_t>(start) * n,
                         a.data() + static_cast<size_t>(start + len) * n);
  auto ai = a.impl();
  return MakeResult({len, n}, std::move(out), {a},
                    [ai, start, len, n](TensorImpl& y) {
                      if (!NeedsGrad(*ai)) return;
                      std::vector<float>& agrad = internal::GradBuffer(*ai);
                      for (int64_t i = 0; i < static_cast<int64_t>(len) * n;
                           ++i) {
                        agrad[static_cast<int64_t>(start) * n + i] +=
                            y.grad[i];
                      }
                    });
}

Tensor Rows(const Tensor& table, const std::vector<int>& indices) {
  const int v = table.rows(), d = table.cols();
  const int b = static_cast<int>(indices.size());
  std::vector<float> out(static_cast<size_t>(b) * d);
  for (int i = 0; i < b; ++i) {
    const int idx = indices[i];
    if (idx < 0 || idx >= v) Fatal("Rows: index out of range");
    for (int j = 0; j < d; ++j) out[i * d + j] = table.at(idx, j);
  }
  auto ti = table.impl();
  return MakeResult({b, d}, std::move(out), {table},
                    [ti, indices, b, d](TensorImpl& y) {
                      if (!NeedsGrad(*ti)) return;
                      std::vector<float>& tgrad = internal::GradBuffer(*ti);
                      for (int i = 0; i < b; ++i) {
                        float* row = tgrad.data() + indices[i] * d;
                        for (int j = 0; j < d; ++j) {
                          row[j] += y.grad[i * d + j];
                        }
                      }
                    });
}

Tensor Sum(const Tensor& a) {
  float total = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) total += a.data()[i];
  auto ai = a.impl();
  return MakeResult({1, 1}, {total}, {a}, [ai](TensorImpl& y) {
    Accumulate(ai, [&](int64_t) { return y.grad[0]; });
  });
}

Tensor Mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  float total = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) total += a.data()[i];
  auto ai = a.impl();
  return MakeResult({1, 1}, {total * inv}, {a}, [ai, inv](TensorImpl& y) {
    Accumulate(ai, [&](int64_t) { return y.grad[0] * inv; });
  });
}

Tensor SumRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  std::vector<float> out(m, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out[i] += a.at(i, j);
  }
  auto ai = a.impl();
  return MakeResult({m, 1}, std::move(out), {a}, [ai, m, n](TensorImpl& y) {
    if (!NeedsGrad(*ai)) return;
    std::vector<float>& agrad = internal::GradBuffer(*ai);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) agrad[i * n + j] += y.grad[i];
    }
  });
}

}  // namespace pa::tensor
