#ifndef PA_TENSOR_KERNELS_KERNELS_H_
#define PA_TENSOR_KERNELS_KERNELS_H_

#include <cstdint>

namespace pa::tensor::kernels {

/// Table of the elementwise / row-reduction / GEMM inner kernels behind
/// every tensor op hot loop, in the spirit of THTensor's generic/simd
/// split: the same kernel source is compiled once as the scalar reference
/// and once per SIMD target (plain auto-vectorized baseline, and an AVX2
/// translation unit on x86-64), and one table is selected at startup by
/// `Active()`.
///
/// Contracts shared by every entry:
///  * Buffers are dense row-major float32. `n` is an element count (or the
///    column count for the row reductions).
///  * For the elementwise entries, `out` may alias `a` or `b` *exactly*
///    (same base pointer) — every element is read before the same index is
///    written. Partial overlap is not allowed.
///  * The row reductions (`softmax`, `log_softmax`) allow `out` to alias
///    `a` exactly, and treat `n <= 0` as a no-op: this is the shared
///    empty-row guard — callers never read `row[0]` of a zero-width row.
///  * `matmul_block` and `gemv_i8` require `out` disjoint from the inputs.
///
/// Bit-identity contract (asserted by tests/tensor_kernels_test.cc):
///  * add/sub/mul/addc/subc/mulc/relu/square/matmul_block/gemv_i8 are
///    bit-identical across all tables: the per-element arithmetic is the
///    same source compiled without FMA contraction, so lane width never
///    changes a result.
///  * sigmoid/tanh/exp/softmax/log_softmax route through expf. The scalar
///    table keeps libm `std::exp` (bit-identical to the pre-SIMD engine);
///    the SIMD tables substitute a branchless polynomial exp (see
///    `kernel_impl.inc`) with ~2 ulp relative error against libm, so these
///    entries carry a small documented tolerance vs. the scalar table while
///    remaining bit-identical *between* the SIMD tables.
///  * `log` is libm in every table (cold op, never vectorized).
struct KernelTable {
  const char* name;  // "scalar" | "generic" | "avx2"

  // Elementwise binary (vector-vector) and scalar-broadcast forms.
  void (*add)(const float* a, const float* b, float* out, int64_t n);
  void (*sub)(const float* a, const float* b, float* out, int64_t n);
  void (*mul)(const float* a, const float* b, float* out, int64_t n);
  void (*addc)(const float* a, float c, float* out, int64_t n);
  void (*subc)(const float* a, float c, float* out, int64_t n);
  void (*mulc)(const float* a, float c, float* out, int64_t n);

  // Elementwise unary.
  void (*sigmoid)(const float* a, float* out, int64_t n);
  void (*tanh)(const float* a, float* out, int64_t n);
  void (*relu)(const float* a, float* out, int64_t n);
  void (*exp)(const float* a, float* out, int64_t n);
  void (*log)(const float* a, float* out, int64_t n);
  void (*square)(const float* a, float* out, int64_t n);

  // Row reductions over an [m, n] matrix (n == 0 rows are a no-op).
  void (*softmax)(const float* a, float* out, int m, int n);
  void (*log_softmax)(const float* a, float* out, int m, int n);

  // GEMM tile: out[i, j] += sum_p a[i, p] * b[p, j] for rows [row_lo,
  // row_hi) and columns [col_lo, col_hi) of A (rows x k) * B (k x n), each
  // element an ascending-p accumulation with an exact-zero skip on a[i, p]
  // — the semantics the tensor engine has always had, so tiling and lane
  // width never change a bit.
  void (*matmul_block)(const float* a, const float* b, float* out, int k,
                       int n, int row_lo, int row_hi, int col_lo, int col_hi);

  // Row-scaled int8 GEMV for the quantized serving path:
  //   out[j] = dx * scales[j] * (sum_p qx[p] * qw[p * n + j]) + bias[j]
  // with qw laid out [k, n] like the float weight matrix and one scale per
  // output column. The accumulation is exact int32 arithmetic, so this
  // entry is bit-identical across all tables.
  void (*gemv_i8)(const int8_t* qx, const int8_t* qw, const float* scales,
                  float dx, const float* bias, float* out, int k, int n);

  // --- Fused single-pass entries for the recurrent-cell hot chains. Each
  // one computes, per element, the *exact* FP sequence of the unfused op
  // composition it replaces (the equivalences rest on bitwise-exact
  // identities: FP add/mul are commutative bitwise, negation is exact, so
  // e.g. `(m * -1) + 1 == 1 - m` and `a + b == b + a` bit-for-bit). The
  // elementwise aliasing contract is unchanged: `out` may alias any input
  // *exactly*. add3/lerp/axpby/cell_update are bit-identical across all
  // tables; tanh_mul and gate_act route through expf and carry the same
  // scalar-vs-SIMD tolerance as sigmoid/tanh.

  // out = (a + b) + c — the `Add(Add(xW, hW), bias)` pre-activation chain.
  void (*add3)(const float* a, const float* b, const float* c, float* out,
               int64_t n);
  // out = a*mask + b*(1 - mask) — the zoneout blend
  // `Add(Mul(a, mask), Mul(b, OneMinus(mask)))` and the coupled-gate /
  // GRU-style convex state updates.
  void (*lerp)(const float* mask, const float* a, const float* b, float* out,
               int64_t n);
  // out = a*alpha + b*beta — the expected-zoneout blend
  // `Add(Scale(a, alpha), Scale(b, beta))`.
  void (*axpby)(const float* a, float alpha, const float* b, float beta,
                float* out, int64_t n);
  // out = f*c_prev + i*g — the LSTM cell update
  // `Add(Mul(f, c_prev), Mul(i, g))`.
  void (*cell_update)(const float* f, const float* c_prev, const float* i,
                      const float* g, float* out, int64_t n);
  // out = o * tanh(c) — the hidden-state tail `Mul(o, Tanh(c))`, with the
  // same one-expf FastTanh formula as the `tanh` entry.
  void (*tanh_mul)(const float* o, const float* c, float* out, int64_t n);
  // Per-slice activations over an [m, nslices*h] gates matrix read in
  // place: acts[s] == 0 applies sigmoid, == 1 applies tanh to columns
  // [s*h, (s+1)*h) of every row. Replaces the SliceCols-copy-then-activate
  // chain; `out` may alias `gates` exactly.
  void (*gate_act)(const float* gates, float* out, int m, int h,
                   const uint8_t* acts, int nslices);
};

/// The table the process dispatches through: a test/bench override if one
/// is installed, else the PA_SIMD-resolved choice (computed once).
///   PA_SIMD=scalar   scalar reference table (pre-SIMD bit-exact engine)
///   PA_SIMD=auto     best SIMD table the CPU supports (default)
/// `generic` and `avx2` are also accepted for targeted debugging; an
/// unknown value aborts loudly like any other bad configuration.
const KernelTable& Active();

/// Individual tables, for the equivalence tests and the bench's
/// scalar-vs-SIMD arms.
const KernelTable& ScalarTable();
const KernelTable& GenericTable();
/// AVX2 table, or null when not compiled in or the CPU lacks AVX2.
const KernelTable* Avx2Table();
/// The table `PA_SIMD=auto` resolves to on this machine.
const KernelTable& BestSimdTable();

/// Test/bench hook: while set, `Active()` returns `table` on every thread.
/// Pass nullptr to restore the PA_SIMD-resolved choice. Not for production
/// code paths; installers must not race in-flight forwards.
void SetDispatchOverride(const KernelTable* table);

#if defined(__x86_64__) || defined(__i386__)
/// Implementation detail of the dispatch (defined in kernels_avx2.cc): the
/// raw AVX2 table, ungated. Executing its kernels on a CPU without AVX2 is
/// an illegal instruction — go through Avx2Table() instead.
const KernelTable& Avx2TableUnchecked();
#endif

}  // namespace pa::tensor::kernels

#endif  // PA_TENSOR_KERNELS_KERNELS_H_
