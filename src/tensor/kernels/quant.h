#ifndef PA_TENSOR_KERNELS_QUANT_H_
#define PA_TENSOR_KERNELS_QUANT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pa::tensor::kernels {

/// Per-output-scaled int8 affine layer for the quantized serving path,
/// ggml-style: the float weight matrix W `[in, out]` is kept in the same
/// row-major layout but with each *output column* j quantized to int8
/// against its own scale d_j = max_p |W[p, j]| / 127, so
/// W[p, j] ~ q[p, j] * scales[j]. The bias stays float. A forward pass
/// quantizes the activation row once against a single scale and runs the
/// exact-int32 `gemv_i8` kernel through the active dispatch table —
/// deterministic and bit-identical across dispatch variants; only the
/// quantization error (bounded by half a step per weight/activation) sets
/// it apart from the float reference.
struct QuantizedLinear {
  int in_dim = 0;
  int out_dim = 0;
  std::vector<int8_t> weight;  // [in_dim, out_dim] row-major.
  std::vector<float> scales;   // One per output column.
  std::vector<float> bias;     // Float copy, [out_dim].

  bool valid() const { return in_dim > 0 && out_dim > 0; }
};

/// Builds a QuantizedLinear from float weights `[in_dim, out_dim]` and bias
/// `[out_dim]`. Non-finite weights are clamped into the int8 range (NaN to
/// 0) rather than invoking UB; an all-zero column gets scale 0 and
/// dequantizes to exact zeros.
QuantizedLinear QuantizeLinear(const float* weight, const float* bias,
                               int in_dim, int out_dim);

/// out[j] = x . W_q[:, j] + bias[j] for a contiguous activation row x of
/// `q.in_dim` floats, via the active dispatch table's int8 kernel.
void QuantizedGemv(const QuantizedLinear& q, const float* x, float* out);

/// Quantizes one activation row to int8: qx[i] = round(x[i] * 127 / amax),
/// returning the dequant scale dx = amax / 127 (0 for an all-zero row).
/// Exposed for the kernel-equivalence tests.
float QuantizeRow(const float* x, int n, int8_t* qx);

/// Byte (de)serialization for the artifact's optional quantized section.
/// The container checksum covers these bytes; Load additionally validates
/// dims and sizes before allocating.
void SaveQuantizedLinear(std::ostream& os, const QuantizedLinear& q);
bool LoadQuantizedLinear(std::istream& is, QuantizedLinear* q,
                         std::string* error);

}  // namespace pa::tensor::kernels

#endif  // PA_TENSOR_KERNELS_QUANT_H_
