// AVX2 SIMD table: identical source to kernels_generic.cc, compiled with
// -mavx2 (and -ffp-contract=off like every kernel TU, so no FMA contraction
// can diverge from the other tables). Only built on x86; executing these
// kernels requires runtime AVX2 — dispatch goes through Avx2Table().
#if defined(__x86_64__) || defined(__i386__)
#define PA_KERNEL_TABLE Avx2TableUnchecked
#define PA_KERNEL_LABEL "avx2"
#define PA_KERNEL_FASTEXP 1
#include "tensor/kernels/kernel_impl.inc"
#endif
