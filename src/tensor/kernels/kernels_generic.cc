// Generic SIMD table: the branchless-expf kernels compiled for the build's
// baseline target (SSE2 on x86-64) — every portable compiler still
// auto-vectorizes these loops, just at the baseline lane width.
#define PA_KERNEL_TABLE GenericTable
#define PA_KERNEL_LABEL "generic"
#define PA_KERNEL_FASTEXP 1
#include "tensor/kernels/kernel_impl.inc"
