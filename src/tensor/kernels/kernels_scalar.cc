// Scalar reference table: libm expf, baseline target flags — the exact
// per-element math the tensor engine had before the kernel layer, kept
// bit-identical so PA_SIMD=scalar reproduces the pre-SIMD fast path.
#define PA_KERNEL_TABLE ScalarTable
#define PA_KERNEL_LABEL "scalar"
#include "tensor/kernels/kernel_impl.inc"
