#include "tensor/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pa::tensor::kernels {

namespace {

[[noreturn]] void FatalConfig(const char* value) {
  std::fprintf(stderr,
               "pa::tensor::kernels fatal: bad PA_SIMD value \"%s\" "
               "(want scalar|auto, or generic|avx2 for debugging)\n",
               value);
  std::abort();
}

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// Test/bench override; when set, wins on every thread.
std::atomic<const KernelTable*> g_override{nullptr};
// Lazily resolved PA_SIMD choice. Concurrent first calls may resolve twice;
// both stores write the same pointer, so the benign race is invisible.
std::atomic<const KernelTable*> g_env_choice{nullptr};

const KernelTable* ResolveFromEnv() {
  const char* env = std::getenv("PA_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return &BestSimdTable();
  }
  if (std::strcmp(env, "scalar") == 0) return &ScalarTable();
  if (std::strcmp(env, "generic") == 0) return &GenericTable();
  if (std::strcmp(env, "avx2") == 0) {
    if (const KernelTable* t = Avx2Table()) return t;
    std::fprintf(stderr,
                 "pa::tensor::kernels fatal: PA_SIMD=avx2 but this "
                 "build/CPU has no AVX2 table\n");
    std::abort();
  }
  FatalConfig(env);
}

}  // namespace

const KernelTable* Avx2Table() {
#if defined(__x86_64__) || defined(__i386__)
  return Avx2Supported() ? &Avx2TableUnchecked() : nullptr;
#else
  return nullptr;
#endif
}

const KernelTable& BestSimdTable() {
  if (const KernelTable* t = Avx2Table()) return *t;
  return GenericTable();
}

const KernelTable& Active() {
  if (const KernelTable* t = g_override.load(std::memory_order_acquire)) {
    return *t;
  }
  const KernelTable* t = g_env_choice.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = ResolveFromEnv();
    g_env_choice.store(t, std::memory_order_release);
  }
  return *t;
}

void SetDispatchOverride(const KernelTable* table) {
  g_override.store(table, std::memory_order_release);
}

}  // namespace pa::tensor::kernels
