#include "tensor/kernels/quant.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "tensor/kernels/kernels.h"

namespace pa::tensor::kernels {

namespace {

// Round-to-int8 with the value already mapped onto the 127-step grid.
// Clamp-then-NaN-select keeps the int cast in range and defined for any
// input bits (the equivalence suite feeds NaN/inf edge tensors under
// UBSan); NaN quantizes to 0, +-inf saturate the grid.
inline int8_t QuantValue(float v) {
  v = v > 127.0f ? 127.0f : v;
  v = v < -127.0f ? -127.0f : v;
  v = v == v ? v : 0.0f;
  return static_cast<int8_t>(std::nearbyint(v));
}

// max |x| over a strided sequence; NaN entries are skipped (comparisons
// are false), +inf saturates to FLT_MAX so the scale stays finite.
float AbsMax(const float* x, int n, int stride) {
  float amax = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float a = std::fabs(x[static_cast<int64_t>(i) * stride]);
    if (a > amax) amax = a;
  }
  const float kMax = std::numeric_limits<float>::max();
  return amax < kMax ? amax : kMax;
}

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

bool Fail(std::string* error, const char* why) {
  if (error) *error = why;
  return false;
}

}  // namespace

QuantizedLinear QuantizeLinear(const float* weight, const float* bias,
                               int in_dim, int out_dim) {
  QuantizedLinear q;
  q.in_dim = in_dim;
  q.out_dim = out_dim;
  q.weight.resize(static_cast<size_t>(in_dim) * out_dim);
  q.scales.resize(static_cast<size_t>(out_dim));
  q.bias.assign(bias, bias + out_dim);
  for (int j = 0; j < out_dim; ++j) {
    const float amax = AbsMax(weight + j, in_dim, out_dim);
    const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
    q.scales[static_cast<size_t>(j)] = amax / 127.0f;
    for (int p = 0; p < in_dim; ++p) {
      const size_t idx = static_cast<size_t>(p) * out_dim + j;
      q.weight[idx] = QuantValue(weight[idx] * inv);
    }
  }
  return q;
}

float QuantizeRow(const float* x, int n, int8_t* qx) {
  const float amax = AbsMax(x, n, 1);
  const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
  for (int i = 0; i < n; ++i) qx[i] = QuantValue(x[i] * inv);
  return amax / 127.0f;
}

void QuantizedGemv(const QuantizedLinear& q, const float* x, float* out) {
  // Activation scratch: serving calls this once per TopK with a small
  // hidden row, so a recycled thread-local beats a fresh allocation.
  static thread_local std::vector<int8_t> qx;
  qx.resize(static_cast<size_t>(q.in_dim));
  const float dx = QuantizeRow(x, q.in_dim, qx.data());
  Active().gemv_i8(qx.data(), q.weight.data(), q.scales.data(), dx,
                   q.bias.data(), out, q.in_dim, q.out_dim);
}

void SaveQuantizedLinear(std::ostream& os, const QuantizedLinear& q) {
  WritePod(os, static_cast<int32_t>(q.in_dim));
  WritePod(os, static_cast<int32_t>(q.out_dim));
  os.write(reinterpret_cast<const char*>(q.scales.data()),
           static_cast<std::streamsize>(q.scales.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(q.bias.data()),
           static_cast<std::streamsize>(q.bias.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(q.weight.data()),
           static_cast<std::streamsize>(q.weight.size()));
}

bool LoadQuantizedLinear(std::istream& is, QuantizedLinear* q,
                         std::string* error) {
  int32_t in_dim = 0, out_dim = 0;
  if (!ReadPod(is, &in_dim) || !ReadPod(is, &out_dim)) {
    return Fail(error, "quantized section: truncated header");
  }
  // The artifact container caps and checksums the enclosing bytes; this
  // bound just keeps a corrupt-but-checksummed-elsewhere stream from
  // requesting an absurd allocation.
  constexpr int64_t kMaxElems = int64_t{1} << 28;
  if (in_dim <= 0 || out_dim <= 0 ||
      static_cast<int64_t>(in_dim) * out_dim > kMaxElems) {
    return Fail(error, "quantized section: implausible dimensions");
  }
  q->in_dim = in_dim;
  q->out_dim = out_dim;
  q->scales.resize(static_cast<size_t>(out_dim));
  q->bias.resize(static_cast<size_t>(out_dim));
  q->weight.resize(static_cast<size_t>(in_dim) * out_dim);
  is.read(reinterpret_cast<char*>(q->scales.data()),
          static_cast<std::streamsize>(q->scales.size() * sizeof(float)));
  is.read(reinterpret_cast<char*>(q->bias.data()),
          static_cast<std::streamsize>(q->bias.size() * sizeof(float)));
  is.read(reinterpret_cast<char*>(q->weight.data()),
          static_cast<std::streamsize>(q->weight.size()));
  if (!is) return Fail(error, "quantized section: truncated body");
  return true;
}

}  // namespace pa::tensor::kernels
