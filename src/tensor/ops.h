#ifndef PA_TENSOR_OPS_H_
#define PA_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace pa::tensor {

/// Differentiable matrix operations. Every op builds an autograd node, so a
/// scalar produced by composing these supports `Backward()`.
///
/// Broadcasting rules are deliberately minimal: binary elementwise ops accept
/// either identical shapes, or a `[1, n]` right operand broadcast across the
/// rows of an `[m, n]` left operand (the bias-add pattern), or a `[1, 1]`
/// right operand broadcast everywhere.

/// Elementwise a + b.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// a * alpha for a compile-time-known scalar.
Tensor Scale(const Tensor& a, float alpha);
/// a + alpha elementwise.
Tensor AddScalar(const Tensor& a, float alpha);

/// Rvalue overloads of the elementwise hot-path ops. When an argument is a
/// dying temporary (`Sigmoid(SliceCols(...))`, `Add(MatMul(...), MatMul(...))`
/// — the pattern every recurrent cell is built from), inference mode
/// overwrites that temporary's storage in place and returns its node,
/// skipping the output allocation round trip entirely. Results are
/// bit-identical to the const& forms; under a graph (training) these defer
/// to the allocating path, so autograd semantics are unchanged. Only bind
/// via std::move if the moved-from tensor is never read again.
Tensor Add(Tensor&& a, const Tensor& b);
Tensor Add(const Tensor& a, Tensor&& b);
Tensor Add(Tensor&& a, Tensor&& b);
Tensor Sub(Tensor&& a, const Tensor& b);
Tensor Mul(Tensor&& a, const Tensor& b);
Tensor Mul(const Tensor& a, Tensor&& b);
Tensor Mul(Tensor&& a, Tensor&& b);
Tensor Scale(Tensor&& a, float alpha);
Tensor AddScalar(Tensor&& a, float alpha);

/// Fused convex blend: `a*mask + b*(1 - mask)` elementwise, all three the
/// same shape (no broadcasting). Bit-identical to
/// `Add(Mul(a, mask), Mul(b, AddScalar(Scale(mask, -1), 1)))` — negation is
/// exact and FP add/mul commute bitwise — but a single pass with no
/// temporaries. Differentiable in all three arguments
/// (da = mask·dy, db = (1-mask)·dy, dmask = (a-b)·dy).
Tensor Lerp(const Tensor& mask, const Tensor& a, const Tensor& b);
/// Fused scaled sum: `a*alpha + b*beta` elementwise, same shapes only.
/// Bit-identical to `Add(Scale(a, alpha), Scale(b, beta))` in one pass.
Tensor Axpby(const Tensor& a, float alpha, const Tensor& b, float beta);
/// Rvalue forms: overwrite the dying operand's storage under inference
/// mode (the blend target is usually the previous state being replaced).
Tensor Lerp(const Tensor& mask, Tensor&& a, const Tensor& b);
Tensor Lerp(const Tensor& mask, const Tensor& a, Tensor&& b);
Tensor Axpby(Tensor&& a, float alpha, const Tensor& b, float beta);
Tensor Axpby(const Tensor& a, float alpha, Tensor&& b, float beta);

/// Matrix product of `[m, k]` and `[k, n]`.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Matrix transpose.
Tensor Transpose(const Tensor& a);

/// Elementwise nonlinearities. The rvalue overloads recycle a dying
/// temporary in place under inference mode (see the binary-op note above).
Tensor Sigmoid(const Tensor& a);
Tensor Sigmoid(Tensor&& a);
Tensor Tanh(const Tensor& a);
Tensor Tanh(Tensor&& a);
Tensor Relu(const Tensor& a);
Tensor Relu(Tensor&& a);
Tensor Exp(const Tensor& a);
Tensor Exp(Tensor&& a);
/// Natural log; input values must be strictly positive.
Tensor Log(const Tensor& a);
Tensor Log(Tensor&& a);
/// Elementwise square.
Tensor Square(const Tensor& a);
Tensor Square(Tensor&& a);

/// Row-wise softmax / log-softmax over the column dimension. Zero-width
/// inputs (`[m, 0]`) are well-defined no-ops. The rvalue overloads recycle
/// a dying temporary in place under inference mode.
Tensor Softmax(const Tensor& a);
Tensor Softmax(Tensor&& a);
Tensor LogSoftmax(const Tensor& a);
Tensor LogSoftmax(Tensor&& a);

/// Mean negative log likelihood. `log_probs` is `[batch, classes]` of
/// log-probabilities (e.g. from LogSoftmax); `targets[i]` is the class index
/// of row i. Returns a `[1, 1]` scalar.
Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets);
/// Convenience: NllLoss(LogSoftmax(logits), targets).
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets);

/// Concatenates tensors with equal row counts along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Concatenates tensors with equal column counts along rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Contiguous column slice [start, start + len).
Tensor SliceCols(const Tensor& a, int start, int len);
/// Contiguous row slice [start, start + len).
Tensor SliceRows(const Tensor& a, int start, int len);

/// Gathers rows of `table` by index: result row i is `table[indices[i]]`.
/// This is the embedding-lookup primitive; the backward pass scatter-adds
/// into the gathered rows only.
Tensor Rows(const Tensor& table, const std::vector<int>& indices);

/// Sum / mean of all elements; both return `[1, 1]`.
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
/// Per-row sum: `[m, n]` -> `[m, 1]`.
Tensor SumRows(const Tensor& a);

/// Read-only strided view over a rectangular region of a tensor's storage.
/// This is the no-copy read path for kernel-level consumers: where
/// `SliceCols` materializes the slice (an autograd node with its own
/// buffer), a view is pointer arithmetic over the parent's storage. The
/// view does not keep the parent alive — it is valid only while the parent
/// tensor is; take views immediately before the loop that consumes them.
struct StridedView {
  const float* data = nullptr;
  int rows = 0;
  int cols = 0;
  int row_stride = 0;  // elements between consecutive rows of the view

  const float* row(int r) const { return data + static_cast<int64_t>(r) * row_stride; }
  /// True when the viewed elements are one dense block (`rows == 1`, or the
  /// view spans every column of the parent) — the precondition for handing
  /// `data` to a flat elementwise kernel as a single `rows*cols` run.
  bool contiguous() const { return rows <= 1 || row_stride == cols; }
};

/// View of columns [start, start + len) — every gate slice of a row-vector
/// state is this, contiguous, with zero copies.
StridedView SliceColsView(const Tensor& a, int start, int len);
/// View of rows [start, start + len); always contiguous.
StridedView SliceRowsView(const Tensor& a, int start, int len);

namespace detail {

/// Internal hooks for the compiled-step replayer (compiled_step.cc). Not
/// for general use: these bypass the autograd layer entirely.

/// The exact inference-mode MatMul forward (same zero-skip inner kernel,
/// same parallel tiling decision), writing into a caller-provided
/// zero-initialized out buffer. Replay goes through this so a compiled
/// step's matmuls stay bit-identical to the eager op, including the
/// threaded path.
void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n);

/// Wraps a pool-acquired buffer as an inference-mode tensor node (pooled,
/// no grad, recycled like any fast-path result).
Tensor MakeInferencePooled(Shape shape, std::vector<float> data);

}  // namespace detail

}  // namespace pa::tensor

#endif  // PA_TENSOR_OPS_H_
