#include "tensor/tensor.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "tensor/buffer_pool.h"

namespace pa::tensor {

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[" << rows << ", " << cols << "]";
  return os.str();
}

namespace {

[[noreturn]] void Fatal(const std::string& msg) {
  std::fprintf(stderr, "pa::tensor fatal: %s\n", msg.c_str());
  std::abort();
}

// Inference-mode nesting depth for this thread (see InferenceModeScope).
thread_local int t_inference_depth = 0;

// Test-only process-wide override; relaxed is enough because it is flipped
// only while no worker thread is mid-forward (see ScopedInferenceDisable).
std::atomic<bool> g_inference_disabled{false};

}  // namespace

namespace internal {

TensorImpl::~TensorImpl() {
  if (pooled) ReleaseToThreadPool(std::move(data));
}

bool InferenceModeActive() {
  return t_inference_depth > 0 &&
         !g_inference_disabled.load(std::memory_order_relaxed);
}

ScopedInferenceDisable::ScopedInferenceDisable() {
  g_inference_disabled.store(true, std::memory_order_relaxed);
}

ScopedInferenceDisable::~ScopedInferenceDisable() {
  g_inference_disabled.store(false, std::memory_order_relaxed);
}

}  // namespace internal

InferenceModeScope::InferenceModeScope() { ++t_inference_depth; }

InferenceModeScope::~InferenceModeScope() { --t_inference_depth; }

bool InferenceModeScope::Active() { return internal::InferenceModeActive(); }

void Tensor::DieUndefined(const char* accessor) {
  Fatal(std::string("Tensor::") + accessor +
        " called on a default-constructed (undefined) Tensor; check "
        "defined() first");
}

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  if (shape.rows < 0 || shape.cols < 0) Fatal("negative shape");
  const bool inference = !requires_grad && internal::InferenceModeActive();
  auto impl = inference
                  ? std::allocate_shared<internal::TensorImpl>(
                        internal::NodeBlockAllocator<internal::TensorImpl>())
                  : std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  const size_t n = static_cast<size_t>(shape.numel());
  if (inference) {
    // Transient fill tensors (initial hidden states, masks) recycle pool
    // capacity like any other inference-mode intermediate.
    impl->data = internal::ThisThreadPool().Acquire(n);
    impl->data.assign(n, value);
    impl->pooled = true;
  } else {
    impl->data.assign(n, value);
  }
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::FromData(Shape shape, std::vector<float> data,
                        bool requires_grad) {
  if (static_cast<int64_t>(data.size()) != shape.numel()) {
    Fatal("FromData: buffer size " + std::to_string(data.size()) +
          " does not match shape " + shape.ToString());
  }
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1, 1}, {value}, requires_grad);
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

float Tensor::item() const {
  if (shape().rows != 1 || shape().cols != 1) {
    Fatal("item() called on non-scalar tensor of shape " + shape().ToString());
  }
  return impl_->data[0];
}

float* Tensor::grad_data() {
  impl_->EnsureGrad();
  return impl_->grad.data();
}

const std::vector<float>& Tensor::grad_vector() const {
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::grad_at(int r, int c) const {
  impl_->EnsureGrad();
  return impl_->grad[Index(r, c)];
}

void Tensor::ZeroGrad() {
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

Tensor Tensor::Detach() const {
  const bool inference = internal::InferenceModeActive();
  auto impl = inference
                  ? std::allocate_shared<internal::TensorImpl>(
                        internal::NodeBlockAllocator<internal::TensorImpl>())
                  : std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  if (inference) {
    impl->data = internal::ThisThreadPool().Acquire(impl_->data.size());
    impl->data.assign(impl_->data.begin(), impl_->data.end());
    impl->pooled = true;
  } else {
    impl->data = impl_->data;
  }
  impl->requires_grad = false;
  return FromImpl(std::move(impl));
}

void Tensor::AxpyInPlace(float alpha, const std::vector<float>& delta) {
  if (delta.size() != impl_->data.size()) Fatal("AxpyInPlace: size mismatch");
  for (size_t i = 0; i < delta.size(); ++i) {
    impl_->data[i] += alpha * delta[i];
  }
}

namespace {

// Iterative post-order topological sort over the autograd DAG. Recursion is
// avoided because sequence models routinely build graphs tens of thousands of
// nodes deep (one LSTM step per check-in per layer).
void TopoSort(internal::TensorImpl* root,
              std::vector<internal::TensorImpl*>* order) {
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent =
          frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  if (shape().rows != 1 || shape().cols != 1) {
    Fatal("Backward() must start from a scalar loss; got shape " +
          shape().ToString());
  }
  std::vector<internal::TensorImpl*> order;
  TopoSort(impl_.get(), &order);

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;

  // Post-order yields parents before children; reverse iteration visits each
  // node only after all of its consumers have contributed its gradient.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }

  // Eager graph release: no caller retains a graph for a second Backward()
  // over the same nodes (leaf gradients accumulate across *rebuilt* graphs),
  // so drop every edge and closure now. This caps peak memory at one graph's
  // tensors and severs any accidental shared_ptr cycle through captured
  // impls. Iterating `order` forward (parents before consumers) means a node
  // whose only owners are its consumers' parent lists is destroyed only
  // after its own slot has been processed, and with its parent list already
  // empty — so teardown is iterative, never a deep destructor recursion.
  for (internal::TensorImpl* node : order) {
    node->parents.clear();
    node->backward_fn = nullptr;
  }
}

namespace {

// Active gradient redirection on this thread: leaf impl -> private buffer.
thread_local std::unordered_map<internal::TensorImpl*, std::vector<float>*>*
    t_grad_redirect = nullptr;

}  // namespace

namespace internal {

std::vector<float>& GradBuffer(TensorImpl& impl) {
  if (t_grad_redirect != nullptr) {
    auto it = t_grad_redirect->find(&impl);
    if (it != t_grad_redirect->end()) return *it->second;
  }
  impl.EnsureGrad();
  return impl.grad;
}

}  // namespace internal

GradRedirectScope::GradRedirectScope(const std::vector<Tensor>& leaves) {
  if (t_grad_redirect != nullptr) {
    Fatal("GradRedirectScope: scopes must not nest on one thread");
  }
  buffers_.resize(leaves.size());
  auto* map =
      new std::unordered_map<internal::TensorImpl*, std::vector<float>*>();
  map->reserve(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    buffers_[i].assign(leaves[i].impl()->data.size(), 0.0f);
    // emplace: a duplicated leaf keeps accumulating into its first buffer.
    map->emplace(leaves[i].impl().get(), &buffers_[i]);
  }
  t_grad_redirect = map;
}

GradRedirectScope::~GradRedirectScope() {
  delete t_grad_redirect;
  t_grad_redirect = nullptr;
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << shape().ToString() << " [";
  const int64_t n = numel();
  const int64_t show = n > 8 ? 8 : n;
  for (int64_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << impl_->data[static_cast<size_t>(i)];
  }
  if (show < n) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace pa::tensor
