#ifndef PA_TENSOR_OPTIMIZER_H_
#define PA_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace pa::tensor {

/// Gradient-descent optimizers over a fixed list of leaf parameters.
///
/// Usage follows the usual loop:
///   optimizer.ZeroGrad(); loss.Backward(); optimizer.Step();
///
/// `Step` consumes whatever is in each parameter's grad buffer, so gradient
/// accumulation across several losses before one Step also works.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (Tensor& p : params_) p.ZeroGrad();
  }

  /// Clips the global L2 norm of all gradients to `max_norm`; returns the
  /// pre-clip norm. Essential for stability of the deep recurrent stacks.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba, 2014) — the optimizer the paper trains PA-Seq2Seq with
/// (learning rate 0.008 in the paper's experiments).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;  // First-moment estimates.
  std::vector<std::vector<float>> v_;  // Second-moment estimates.
};

}  // namespace pa::tensor

#endif  // PA_TENSOR_OPTIMIZER_H_
