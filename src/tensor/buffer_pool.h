#ifndef PA_TENSOR_BUFFER_POOL_H_
#define PA_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <utility>
#include <vector>

namespace pa::tensor::internal {

struct BufferPoolStats {
  uint64_t acquires = 0;
  uint64_t reuses = 0;    // Acquires served from the freelist.
  uint64_t releases = 0;
  uint64_t discards = 0;  // Releases dropped because the pool was full.
};

/// Thread-local freelist of `std::vector<float>` storage.
///
/// Inference-mode ops (see `InferenceModeScope` in tensor.h) draw their
/// output buffers from here instead of the allocator, and `TensorImpl`
/// destructors return pooled buffers to the pool of whatever thread drops
/// the last reference. The pool is strictly thread-local — no locks, no
/// cross-thread sharing — so a buffer acquired on one thread and destroyed
/// on another simply migrates between pools.
///
/// Recycling rules:
///  - `Acquire(n)` returns a vector of size exactly `n` whose *contents are
///    unspecified* (stale floats from a previous tensor). Every caller must
///    fully overwrite all `n` elements; `set_debug_poison(true)` fills
///    acquired buffers with NaN so a violation shows up as a bit-mismatch
///    against the unpooled path.
///  - `AcquireZeroed(n)` returns a vector of `n` zeros (for accumulate-style
///    kernels such as the MatMul `+=` loop).
///  - The freelist is capped (count and bytes); releases beyond the cap are
///    discarded to the allocator so one huge tensor cannot pin memory.
///
/// The hot entry points are defined inline (with the raw thread-local
/// pointers below) so the per-op acquire/release round trip costs a TLS load
/// and a few branches, not an out-of-line call with an init guard.
class BufferPool {
 public:
  std::vector<float> Acquire(size_t n) {
    ++stats_.acquires;
    // Best-fit scan: smallest cached capacity that still holds n. The list
    // is capped at kMaxBuffers entries, so the scan is bounded and cheap
    // next to the allocation it replaces. Scanning newest-first finds the
    // just-released buffer of the same size — the overwhelmingly common
    // case in a steady-state forward loop — in one or two probes, and an
    // exact capacity match ends the scan (nothing fits tighter).
    size_t best = free_.size();
    for (size_t i = free_.size(); i-- > 0;) {
      const size_t cap = free_[i].capacity();
      if (cap < n) continue;
      if (cap == n) {
        best = i;
        break;
      }
      if (best == free_.size() || cap < free_[best].capacity()) {
        best = i;
      }
    }
    std::vector<float> buf;
    if (best != free_.size()) {
      buf = std::move(free_[best]);
      free_[best] = std::move(free_.back());
      free_.pop_back();
      cached_bytes_ -= buf.capacity() * sizeof(float);
      ++stats_.reuses;
    }
    buf.resize(n);
    if (debug_poison_) {
      buf.assign(n, std::numeric_limits<float>::quiet_NaN());
    }
    return buf;
  }

  std::vector<float> AcquireZeroed(size_t n) {
    std::vector<float> buf = Acquire(n);
    buf.assign(n, 0.0f);
    return buf;
  }

  void Release(std::vector<float> buf) {
    ++stats_.releases;
    const size_t bytes = buf.capacity() * sizeof(float);
    if (bytes == 0 || free_.size() >= kMaxBuffers ||
        cached_bytes_ + bytes > kMaxBytes) {
      ++stats_.discards;
      return;  // buf frees on scope exit.
    }
    cached_bytes_ += bytes;
    if (cached_bytes_ > high_water_bytes_) high_water_bytes_ = cached_bytes_;
    free_.push_back(std::move(buf));
  }

  /// Drops every cached buffer back to the allocator.
  void Trim() {
    free_.clear();
    free_.shrink_to_fit();
    cached_bytes_ = 0;
  }

  const BufferPoolStats& stats() const { return stats_; }
  size_t cached_buffers() const { return free_.size(); }
  size_t cached_bytes() const { return cached_bytes_; }
  size_t high_water_bytes() const { return high_water_bytes_; }
  void set_debug_poison(bool on) { debug_poison_ = on; }

  /// Publishes this pool's tallies as deltas-since-last-flush to the
  /// process-wide obs::MetricRegistry ("tensor.pool.hits" / ".misses" /
  /// ".releases" / ".discards" counters, ".high_water_bytes" max gauge).
  /// The hot Acquire/Release path stays plain thread-local arithmetic; call
  /// this at coarse boundaries (request end, per-user eval, thread exit —
  /// the pool owner's destructor flushes automatically). Cost: a few
  /// relaxed atomic adds against cached registry handles.
  void FlushStatsToRegistry();

  /// The calling thread's pool (created on first use, destroyed with the
  /// thread). `ReleaseToThreadPool` below is teardown-safe; this accessor is
  /// not and must only be called from live code paths.
  static BufferPool& ThisThread();

 private:
  static constexpr size_t kMaxBuffers = 64;
  static constexpr size_t kMaxBytes = size_t{16} << 20;  // 16 MiB per thread.

  std::vector<std::vector<float>> free_;
  size_t cached_bytes_ = 0;
  size_t high_water_bytes_ = 0;
  bool debug_poison_ = false;
  BufferPoolStats stats_;
  BufferPoolStats flushed_;  // Last tallies published to the registry.
};

/// Raw pointer to the calling thread's live BufferPool, or null both before
/// the thread first touches the pool and after thread_local teardown.
/// Maintained by buffer_pool.cc; treat as read-only everywhere else.
extern thread_local BufferPool* t_buffer_pool;

/// Returns `buf` to the calling thread's pool, or frees it normally when the
/// pool has already been torn down (a `TensorImpl` can die after its thread's
/// thread_local destructors have run).
inline void ReleaseToThreadPool(std::vector<float>&& buf) {
  if (t_buffer_pool != nullptr) t_buffer_pool->Release(std::move(buf));
}

/// Fast-path equivalent of `BufferPool::ThisThread()`: one TLS load and a
/// branch once the pool exists, falling back to the guarded constructor on
/// the thread's first touch. Live code paths only, like ThisThread().
inline BufferPool& ThisThreadPool() {
  BufferPool* pool = t_buffer_pool;
  return pool != nullptr ? *pool : BufferPool::ThisThread();
}

/// Fixed-size raw-block recycling for inference-mode graph nodes.
///
/// Every inference-mode op heap-allocates exactly one block: the
/// `allocate_shared` control block with its in-place `TensorImpl`. Those
/// blocks are all the same size, die at the same rate they are born, and —
/// like pooled float buffers — may be freed on a different thread than the
/// one that made them. The freelist is strictly thread-local (no locks):
/// acquire pops from the calling thread's list, release pushes to the
/// destroying thread's list. The first-seen block size pins the pool; blocks
/// of any other size fall through to the allocator.
struct NodeBlockPool {
  // At most this many cached node blocks per thread. Blocks are ~200 bytes,
  // so the cap bounds the cache at ~50 KiB while still covering the deepest
  // single-expression graphs the forward passes build.
  static constexpr size_t kMaxNodeBlocks = 256;

  std::vector<void*> free;
  size_t block_bytes = 0;

  ~NodeBlockPool() {
    for (void* p : free) ::operator delete(p);
  }
};

/// Same teardown guard as t_buffer_pool: null before first acquire on this
/// thread and after thread_local teardown.
extern thread_local NodeBlockPool* t_node_pool;

/// Out-of-line slow path: constructs the calling thread's node pool.
void* AcquireNodeBlockSlow(size_t bytes);

inline void* AcquireNodeBlock(size_t bytes) {
  NodeBlockPool* pool = t_node_pool;
  if (pool != nullptr && bytes == pool->block_bytes && !pool->free.empty()) {
    void* p = pool->free.back();
    pool->free.pop_back();
    return p;
  }
  return AcquireNodeBlockSlow(bytes);
}

/// Returns `block` (of `bytes` bytes) to the calling thread's node pool, or
/// frees it when the pool is full, torn down, or pinned to another size. A
/// release-only thread (pooled impls migrating here) just frees.
inline void ReleaseNodeBlock(void* block, size_t bytes) {
  NodeBlockPool* pool = t_node_pool;
  if (pool != nullptr && bytes == pool->block_bytes &&
      pool->free.size() < NodeBlockPool::kMaxNodeBlocks) {
    pool->free.push_back(block);
    return;
  }
  ::operator delete(block);
}

/// STL allocator over Acquire/ReleaseNodeBlock; `std::allocate_shared` with
/// this allocator turns a node + control block into one recycled block.
template <typename T>
struct NodeBlockAllocator {
  using value_type = T;
  NodeBlockAllocator() = default;
  template <typename U>
  NodeBlockAllocator(const NodeBlockAllocator<U>&) {}
  T* allocate(size_t n) {
    return static_cast<T*>(AcquireNodeBlock(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { ReleaseNodeBlock(p, n * sizeof(T)); }
};

template <typename T, typename U>
bool operator==(const NodeBlockAllocator<T>&, const NodeBlockAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const NodeBlockAllocator<T>&, const NodeBlockAllocator<U>&) {
  return false;
}

}  // namespace pa::tensor::internal

#endif  // PA_TENSOR_BUFFER_POOL_H_
