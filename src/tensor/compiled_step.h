#ifndef PA_TENSOR_COMPILED_STEP_H_
#define PA_TENSOR_COMPILED_STEP_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pa::tensor::fusion {

/// Record-and-replay "compiled step" for recurrent cells.
///
/// A recurrent cell runs the same op sequence over the same shapes
/// thousands of times per request. `RunStep` captures that sequence once
/// per (site, variant, input shapes) under inference mode — op kinds, SSA
/// value graph, constant bindings — runs a small pattern-rewrite pass over
/// the trace (fuse elementwise chains into the single-pass KernelTable
/// entries, fold constant subexpressions, turn column slices of row
/// vectors into pointer-offset views, generalize the rvalue in-place rule
/// into an in-placing pass over the planned buffers), and then replays
/// subsequent steps straight through kernel function pointers with a
/// pre-planned arena: no graph walk, no per-op dispatch, no BufferPool
/// traffic for interior temporaries.
///
/// Correctness contract:
///  - Replayed forwards are bit-identical to the unfused inference path on
///    the same kernel table (every rewrite rests on bitwise-exact FP
///    identities — see kernels.h); the unfused path is itself bit-identical
///    to the graph path, so all three agree.
///  - Replay reads bound constants (parameters) through their live
///    storage, so in-place weight updates remain visible.
///  - A trace that contains anything the recorder cannot express (an
///    unhooked op, a broadcast the replayer doesn't model, a value not
///    reachable from the declared inputs/constants) is discarded and the
///    site permanently falls back to the interpreted body — fallback is
///    always correct, only uncompiled.
///  - Per-step float arguments (e.g. ST-CLSTM's Δt/Δd) must be declared as
///    `scalars`: the recorder captures two traces with differing scalar
///    values and only compiles once every immediate that tracks a scalar
///    is discriminated from genuine constants.
///
/// All compilation state is thread-local; sessions on different serving
/// workers compile independently and share nothing mutable.
///
/// The body passed to `RunStep` must consist purely of `pa::tensor` ops
/// over the declared inputs, module parameters, and values derived from
/// them (no `Detach`, no I/O). Every op with an inference fast path is
/// either recorded or poisons the trace; the one unexpressible case is an
/// op that silently forwards a recorded temporary's storage, which is why
/// the in-place-capable non-recorded ops (`Softmax`, `LogSoftmax`, `Relu`,
/// `Exp`, `Log`, `Square`) explicitly invalidate the trace when recording.

/// True when compiled-step replay is allowed on this thread: PA_FUSION is
/// not "off"/"0"/"false" (read once per process; default on) and no
/// ScopedFusionDisable is alive on this thread.
bool Enabled();

/// Test/bench hook: while alive, `RunStep` on this thread always executes
/// the interpreted body (records nothing, replays nothing). This is how
/// the equivalence suites and the bench's unfused arms re-run the exact
/// pre-fusion fast path in a process whose PA_FUSION default is on.
class ScopedFusionDisable {
 public:
  ScopedFusionDisable();
  ~ScopedFusionDisable();
  ScopedFusionDisable(const ScopedFusionDisable&) = delete;
  ScopedFusionDisable& operator=(const ScopedFusionDisable&) = delete;
};

/// Identity of one RunStep call site, owned by the module that calls it
/// (one per cell instance). A fresh instance gets a fresh id, so replacing
/// a model (serving hot-swap, session rebuild) can never replay a stale
/// program: the old site's cache entries simply age out of the per-thread
/// LRU. Copying a holder object allocates a new id for the copy.
struct StepSite {
  StepSite();
  StepSite(const StepSite&) : StepSite() {}
  StepSite& operator=(const StepSite&) { return *this; }
  uint64_t id;
};

/// Per-thread counters for tests and diagnostics.
struct FusionStats {
  uint64_t recorded = 0;   // bodies executed under the recorder
  uint64_t compiled = 0;   // traces compiled into programs
  uint64_t replayed = 0;   // steps served by program replay
  uint64_t fallback = 0;   // steps interpreted (disabled/failed/batched)
};
const FusionStats& ThisThreadStats();

/// Executes one recurrent step. On the hot path (site compiled for these
/// input shapes) this replays the program and never calls `body`; before
/// compilation (or whenever fusion is disabled, a graph is being built,
/// any input has more than one row, or the site failed to compile) it
/// executes `body` directly. `inputs` are the per-step tensors the body
/// reads (x, previous state...); `scalars` are the per-step floats it
/// closes over. Returns what `body` returns (replay reproduces the same
/// tensors bit-for-bit).
std::vector<Tensor> RunStep(const StepSite& site, uint32_t variant,
                            std::initializer_list<Tensor> inputs,
                            std::initializer_list<float> scalars,
                            const std::function<std::vector<Tensor>()>& body);

namespace internal {

/// Recording hooks called by the ops layer (ops.cc) on the inference fast
/// path. `Recording()` is the cheap gate: a thread-local flag that is only
/// true while `RunStep` is executing a body under the recorder.
extern thread_local bool t_recording;
inline bool Recording() { return t_recording; }

enum class OpKind : uint8_t {
  // Recorded directly by the ops layer.
  kAdd,
  kSub,
  kMul,
  kScale,      // f0 = alpha
  kAddScalar,  // f0 = alpha
  kSigmoid,
  kTanh,
  kMatMul,
  kSliceCols,  // i0 = start, i1 = len
  kLerp,       // out = a*mask + b*(1-mask)
  kAxpby,      // f0 = alpha, f1 = beta
  // Produced only by the rewrite passes.
  kAdd3,        // out = (a + b) + c
  kCellUpdate,  // out = a*b + c*d
  kTanhMul,     // out = a * tanh(b)
  kGateAct,     // per-slice sigmoid/tanh over one gates row
  // Poison: an op the replayer cannot express.
  kUnsupported,
};

using ImplPtr = std::shared_ptr<pa::tensor::internal::TensorImpl>;

void RecordBinary(OpKind kind, const ImplPtr& a, const ImplPtr& b,
                  const ImplPtr& out);
void RecordUnary(OpKind kind, const ImplPtr& a, const ImplPtr& out);
void RecordScalarOp(OpKind kind, const ImplPtr& a, float c,
                    const ImplPtr& out);
void RecordMatMul(const ImplPtr& a, const ImplPtr& b, const ImplPtr& out);
void RecordSlice(const ImplPtr& a, int start, int len, const ImplPtr& out);
void RecordLerp(const ImplPtr& mask, const ImplPtr& a, const ImplPtr& b,
                const ImplPtr& out);
void RecordAxpby(const ImplPtr& a, float alpha, const ImplPtr& b, float beta,
                 const ImplPtr& out);
/// Marks the in-flight trace unusable (unhooked op with an in-place path,
/// unsupported broadcast, ...). The site falls back to the interpreted
/// body forever after.
void RecordUnsupported();
/// Called for every inference-path result node while recording, *before*
/// any Record* hook registers it. Scrubs a possibly-recycled node address
/// from the SSA map: a recorded temporary that died mid-body can have its
/// pooled node block reused by an unhooked op's result, and without the
/// scrub that new tensor would alias the dead value's SSA id.
void NoteFreshResult(pa::tensor::internal::TensorImpl* node);

}  // namespace internal

}  // namespace pa::tensor::fusion

#endif  // PA_TENSOR_COMPILED_STEP_H_
