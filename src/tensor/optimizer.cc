#include "tensor/optimizer.h"

#include <cmath>

namespace pa::tensor {

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (Tensor& p : params_) {
    const float* g = p.grad_data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      float* g = p.grad_data();
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void Sgd::Step() {
  for (Tensor& p : params_) {
    float* w = p.data();
    const float* g = p.grad_data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      float grad = g[i];
      if (weight_decay_ != 0.0f) grad += weight_decay_ * w[i];
      w[i] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    float* w = p.data();
    const float* g = p.grad_data();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (int64_t i = 0; i < p.numel(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace pa::tensor
