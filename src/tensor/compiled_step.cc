#include "tensor/compiled_step.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "tensor/buffer_pool.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace pa::tensor::fusion {

namespace ti = pa::tensor::internal;

using internal::ImplPtr;
using internal::OpKind;

// ---------------------------------------------------------------------------
// Gate + site identity + stats.

namespace {

bool EnvEnabled() {
  static const bool on = [] {
    const char* v = std::getenv("PA_FUSION");
    if (v == nullptr) return true;
    return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0 &&
           std::strcmp(v, "false") != 0;
  }();
  return on;
}

// PA_FUSION_DEBUG=1 logs every compile bail-out to stderr — the first stop
// when a site that should replay keeps falling back.
bool DebugEnabled() {
  static const bool on = std::getenv("PA_FUSION_DEBUG") != nullptr;
  return on;
}

#define PA_FUSION_LOG(...)                             \
  do {                                                 \
    if (DebugEnabled()) {                              \
      std::fprintf(stderr, "pa-fusion: " __VA_ARGS__); \
      std::fputc('\n', stderr);                        \
    }                                                  \
  } while (0)

thread_local int t_disable_depth = 0;

std::atomic<uint64_t> g_next_site_id{1};

thread_local FusionStats t_stats;

}  // namespace

bool Enabled() { return t_disable_depth == 0 && EnvEnabled(); }

ScopedFusionDisable::ScopedFusionDisable() { ++t_disable_depth; }
ScopedFusionDisable::~ScopedFusionDisable() { --t_disable_depth; }

StepSite::StepSite()
    : id(g_next_site_id.fetch_add(1, std::memory_order_relaxed)) {}

const FusionStats& ThisThreadStats() { return t_stats; }

// ---------------------------------------------------------------------------
// Trace: the SSA value graph one recorded body produces.

namespace {

struct TVal {
  Shape shape;
  enum Kind : uint8_t { kInput, kConst, kOp } kind = kOp;
  int index = -1;  // input slot / defining op index (consts resolve by hold)
  ImplPtr hold;    // kConst: keeps the parameter impl alive in the program
};

struct TOp {
  OpKind kind = OpKind::kUnsupported;
  int a = -1, b = -1, c = -1, d = -1;  // operand value ids
  int out = -1;                        // produced value id
  float f0 = 0.0f, f1 = 0.0f;          // immediates (Scale/AddScalar/Axpby)
  int i0 = 0, i1 = 0;                  // SliceCols start/len; GateAct h/nslices
  uint8_t acts[8] = {0};               // GateAct per-slice activation codes
};

struct Trace {
  std::vector<TVal> vals;
  std::vector<TOp> ops;
  std::vector<int> outputs;    // value ids the body returned, in order
  std::vector<float> scalars;  // declared per-step floats at record time
  bool invalid = false;
};

// ---------------------------------------------------------------------------
// Recorder: receives the ops-layer hooks while a body runs.

struct Recorder {
  Trace trace;
  std::unordered_map<ti::TensorImpl*, int> val_of;

  void DeclareInput(const Tensor& t, int slot) {
    trace.vals.push_back({t.shape(), TVal::kInput, slot, nullptr});
    val_of[t.impl().get()] = static_cast<int>(trace.vals.size()) - 1;
  }

  // SSA id of an operand. Unknown impls must be non-pooled (parameters /
  // long-lived user tensors — bound as live-read constants); a pooled
  // unknown was produced by an op the recorder never saw, so the trace
  // cannot be replayed.
  int ValueOf(const ImplPtr& impl) {
    auto it = val_of.find(impl.get());
    if (it != val_of.end()) return it->second;
    if (impl->pooled) {
      trace.invalid = true;
      return -1;
    }
    trace.vals.push_back({impl->shape, TVal::kConst, -1, impl});
    const int id = static_cast<int>(trace.vals.size()) - 1;
    val_of[impl.get()] = id;
    return id;
  }

  // Registers an op result. In-place ops pass out == some operand; the new
  // id simply shadows the old one in the map (SSA).
  int Out(const ImplPtr& impl) {
    trace.vals.push_back(
        {impl->shape, TVal::kOp, static_cast<int>(trace.ops.size()), nullptr});
    const int id = static_cast<int>(trace.vals.size()) - 1;
    val_of[impl.get()] = id;
    return id;
  }
};

thread_local Recorder* t_rec = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// Ops-layer hooks.

namespace internal {

thread_local bool t_recording = false;

void RecordBinary(OpKind kind, const ImplPtr& a, const ImplPtr& b,
                  const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  if (!(a->shape == b->shape)) {  // replayer models no broadcasting
    r->trace.invalid = true;
    return;
  }
  TOp op;
  op.kind = kind;
  op.a = r->ValueOf(a);
  op.b = r->ValueOf(b);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordUnary(OpKind kind, const ImplPtr& a, const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  if (kind == OpKind::kUnsupported) {
    r->trace.invalid = true;
    return;
  }
  TOp op;
  op.kind = kind;
  op.a = r->ValueOf(a);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordScalarOp(OpKind kind, const ImplPtr& a, float c,
                    const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  TOp op;
  op.kind = kind;
  op.f0 = c;
  op.a = r->ValueOf(a);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordMatMul(const ImplPtr& a, const ImplPtr& b, const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  TOp op;
  op.kind = OpKind::kMatMul;
  op.a = r->ValueOf(a);
  op.b = r->ValueOf(b);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordSlice(const ImplPtr& a, int start, int len, const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  TOp op;
  op.kind = OpKind::kSliceCols;
  op.i0 = start;
  op.i1 = len;
  op.a = r->ValueOf(a);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordLerp(const ImplPtr& mask, const ImplPtr& a, const ImplPtr& b,
                const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  TOp op;
  op.kind = OpKind::kLerp;
  op.a = r->ValueOf(a);
  op.b = r->ValueOf(b);
  op.c = r->ValueOf(mask);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordAxpby(const ImplPtr& a, float alpha, const ImplPtr& b, float beta,
                 const ImplPtr& out) {
  Recorder* r = t_rec;
  if (r == nullptr || r->trace.invalid) return;
  TOp op;
  op.kind = OpKind::kAxpby;
  op.f0 = alpha;
  op.f1 = beta;
  op.a = r->ValueOf(a);
  op.b = r->ValueOf(b);
  if (r->trace.invalid) return;
  op.out = r->Out(out);
  r->trace.ops.push_back(op);
}

void RecordUnsupported() {
  Recorder* r = t_rec;
  if (r != nullptr) r->trace.invalid = true;
}

void NoteFreshResult(ti::TensorImpl* node) {
  Recorder* r = t_rec;
  if (r != nullptr) r->val_of.erase(node);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Program: the compiled, replayable form of a trace.

namespace {

struct BufRef {
  enum Kind : uint8_t { kNone, kInput, kConst, kFolded, kArena, kOutput };
  Kind kind = kNone;
  int idx = 0;
  int64_t off = 0;
};

struct Instr {
  OpKind kind = OpKind::kUnsupported;
  BufRef a, b, c, d, out;
  int64_t n = 0;            // elementwise element count
  int mm_k = 0, mm_n = 0;   // MatMul inner/output dims (m is always 1)
  float f0 = 0.0f, f1 = 0.0f;
  uint8_t acts[8] = {0};
  int h = 0, nslices = 0;
};

struct ProgBind {
  int instr = 0;
  int field = 0;  // 0 -> f0, 1 -> f1
  int scalar = 0;
};

struct Program {
  std::vector<Instr> instrs;
  std::vector<ImplPtr> consts;             // live-read parameter bindings
  std::vector<std::vector<float>> folded;  // compile-time folded constants
  std::vector<std::vector<float>> arena;   // persistent interior temporaries
  std::vector<Shape> out_shapes;
  std::vector<ProgBind> binds;
};

// ---------------------------------------------------------------------------
// Structural comparison + scalar discrimination between the two recorded
// traces. Immediates are excluded from the structural check; they are
// classified afterwards as genuine constants (equal in both traces) or
// per-step scalars (tracking exactly one declared scalar in both).

bool SameStructure(const Trace& x, const Trace& y) {
  if (x.vals.size() != y.vals.size() || x.ops.size() != y.ops.size() ||
      x.outputs != y.outputs || x.scalars.size() != y.scalars.size()) {
    return false;
  }
  for (size_t i = 0; i < x.vals.size(); ++i) {
    const TVal& a = x.vals[i];
    const TVal& b = y.vals[i];
    if (!(a.shape == b.shape) || a.kind != b.kind || a.index != b.index ||
        a.hold.get() != b.hold.get()) {
      return false;
    }
  }
  for (size_t i = 0; i < x.ops.size(); ++i) {
    const TOp& a = x.ops[i];
    const TOp& b = y.ops[i];
    if (a.kind != b.kind || a.a != b.a || a.b != b.b || a.c != b.c ||
        a.d != b.d || a.out != b.out || a.i0 != b.i0 || a.i1 != b.i1) {
      return false;
    }
  }
  return true;
}

struct ScalarBind {
  int op = 0;
  int field = 0;
  int scalar = 0;
};

enum class BindStatus { kOk, kRetry, kFail };

// Classifies every float immediate. Requires every declared scalar to have
// changed between the traces (else a constant that coincidentally equals a
// scalar value is indistinguishable -> retry with a later step).
BindStatus BindScalars(const Trace& t1, const Trace& t2,
                       std::vector<ScalarBind>* binds) {
  for (size_t k = 0; k < t1.scalars.size(); ++k) {
    if (t1.scalars[k] == t2.scalars[k]) return BindStatus::kRetry;
  }
  for (size_t i = 0; i < t1.ops.size(); ++i) {
    const float v1[2] = {t1.ops[i].f0, t1.ops[i].f1};
    const float v2[2] = {t2.ops[i].f0, t2.ops[i].f1};
    for (int f = 0; f < 2; ++f) {
      if (v1[f] == v2[f]) continue;  // unchanged -> genuine constant
      int match = -1;
      for (size_t k = 0; k < t1.scalars.size(); ++k) {
        if (t1.scalars[k] == v1[f] && t2.scalars[k] == v2[f]) {
          if (match >= 0) return BindStatus::kFail;  // ambiguous
          match = static_cast<int>(k);
        }
      }
      if (match < 0) return BindStatus::kFail;  // untracked variation
      binds->push_back({static_cast<int>(i), f, match});
    }
  }
  return BindStatus::kOk;
}

// ---------------------------------------------------------------------------
// Pattern rewrites. All passes operate on a working copy of the trace:
// ops are replaced in place or marked dead (indices stay stable so the
// scalar binds keep resolving), and slice results become views — (base
// value, column offset) aliases that lower to pointer arithmetic.

struct Rewriter {
  std::vector<TVal> vals;
  std::vector<TOp> ops;
  std::vector<char> dead;
  std::vector<int> outputs;
  std::vector<ScalarBind> binds;

  // Per-value: defining op (kOp vals), view alias, folded-constant slot.
  std::vector<int> def;
  struct View {
    int base = -1;
    int64_t off = 0;
  };
  std::vector<View> view;
  std::vector<int> folded;  // -1 or slot in folded_data
  std::vector<std::vector<float>> folded_data;

  std::vector<int> uses;      // operand references from alive ops + outputs
  std::vector<char> is_out;

  explicit Rewriter(const Trace& t)
      : vals(t.vals),
        ops(t.ops),
        dead(t.ops.size(), 0),
        outputs(t.outputs) {
    def.assign(vals.size(), -1);
    for (size_t v = 0; v < vals.size(); ++v) {
      if (vals[v].kind == TVal::kOp) def[v] = vals[v].index;
    }
    view.assign(vals.size(), View{});
    folded.assign(vals.size(), -1);
    is_out.assign(vals.size(), 0);
    for (int v : outputs) is_out[v] = 1;
  }

  void RecountUses() {
    uses.assign(vals.size(), 0);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (dead[i]) continue;
      for (int v : {ops[i].a, ops[i].b, ops[i].c, ops[i].d}) {
        if (v >= 0) ++uses[v];
      }
    }
    for (int v : outputs) ++uses[v];
  }

  bool IsViewBase(int v) const {
    for (size_t u = 0; u < vals.size(); ++u) {
      if (view[u].base == v) return true;
    }
    return false;
  }

  // True when `v` is produced by alive op `kind` that nothing else reads.
  bool SoleUseProducer(int v, OpKind kind, int* op_idx) const {
    if (v < 0 || vals[v].kind != TVal::kOp || is_out[v]) return false;
    if (view[v].base >= 0) return false;
    const int d = def[v];
    if (d < 0 || dead[d] || ops[d].kind != kind || ops[d].out != v)
      return false;
    if (uses[v] != 1) return false;
    *op_idx = d;
    return true;
  }

  bool FieldBound(int op, int field) const {
    for (const ScalarBind& b : binds) {
      if (b.op == op && b.field == field) return true;
    }
    return false;
  }

  // --- Pass: column slices of single-row values become views.
  void SlicesToViews() {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (dead[i] || ops[i].kind != OpKind::kSliceCols) continue;
      const int src = ops[i].a;
      if (vals[src].shape.rows != 1) continue;
      int base = src;
      int64_t off = ops[i].i0;
      if (view[src].base >= 0) {
        off += view[src].off;
        base = view[src].base;
      }
      if (folded[base] >= 0) continue;  // folded below instead
      view[ops[i].out] = {base, off};
      dead[i] = 1;
    }
    RecountUses();
  }

  // --- Pass: slices whose source is a bound constant fold at compile time
  // (e.g. GRU's strided weight-column slice becomes one dense buffer).
  void FoldConstSlices() {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (dead[i] || ops[i].kind != OpKind::kSliceCols) continue;
      const int src = ops[i].a;
      const float* sdata = nullptr;
      if (vals[src].kind == TVal::kConst) {
        sdata = vals[src].hold->data.data();
      } else if (folded[src] >= 0) {
        sdata = folded_data[folded[src]].data();
      } else {
        continue;
      }
      const int m = vals[src].shape.rows, n = vals[src].shape.cols;
      const int start = ops[i].i0, len = ops[i].i1;
      std::vector<float> out(static_cast<size_t>(m) * len);
      for (int r = 0; r < m; ++r) {
        const float* srow = sdata + static_cast<int64_t>(r) * n + start;
        std::copy(srow, srow + len, out.begin() + static_cast<int64_t>(r) * len);
      }
      folded_data.push_back(std::move(out));
      folded[ops[i].out] = static_cast<int>(folded_data.size()) - 1;
      dead[i] = 1;
    }
    RecountUses();
  }

  // --- Pass: Add(Add(a, b), c) -> Add3 when the inner sum dies here.
  void FuseAdd3() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t j = 0; j < ops.size(); ++j) {
        if (dead[j] || ops[j].kind != OpKind::kAdd) continue;
        int inner;
        if (!SoleUseProducer(ops[j].a, OpKind::kAdd, &inner)) continue;
        TOp fused;
        fused.kind = OpKind::kAdd3;
        fused.a = ops[inner].a;
        fused.b = ops[inner].b;
        fused.c = ops[j].b;
        fused.out = ops[j].out;
        ops[j] = fused;
        dead[inner] = 1;
        changed = true;
        RecountUses();
      }
    }
  }

  // --- Pass: sigmoid/tanh over views that exactly tile one gates value
  // collapse into a single in-place GateAct.
  void FuseGateAct() {
    for (size_t s = 0; s < vals.size(); ++s) {
      if (vals[s].kind != TVal::kOp || vals[s].shape.rows != 1) continue;
      if (dead.size() <= static_cast<size_t>(def[s]) || def[s] < 0 ||
          dead[def[s]]) {
        continue;
      }
      if (uses[s] != 0 || is_out[s]) continue;  // only read through views
      // Collect the activation ops reading views of s.
      struct Piece {
        int64_t off;
        int len;
        int act_op;
      };
      std::vector<Piece> pieces;
      bool ok = true;
      for (size_t v = 0; v < vals.size() && ok; ++v) {
        if (view[v].base != static_cast<int>(s)) continue;
        if (uses[v] != 1 || is_out[v]) {
          ok = false;
          break;
        }
        int consumer = -1;
        for (size_t i = 0; i < ops.size(); ++i) {
          if (dead[i]) continue;
          for (int o : {ops[i].a, ops[i].b, ops[i].c, ops[i].d}) {
            if (o == static_cast<int>(v)) {
              consumer = static_cast<int>(i);
              break;
            }
          }
          if (consumer >= 0) break;
        }
        if (consumer < 0 || (ops[consumer].kind != OpKind::kSigmoid &&
                             ops[consumer].kind != OpKind::kTanh) ||
            ops[consumer].a != static_cast<int>(v) ||
            IsViewBase(ops[consumer].out)) {
          ok = false;
          break;
        }
        pieces.push_back({view[v].off, vals[v].shape.cols, consumer});
      }
      if (!ok || pieces.size() < 2 || pieces.size() > 8) continue;
      std::sort(pieces.begin(), pieces.end(),
                [](const Piece& a, const Piece& b) { return a.off < b.off; });
      const int h = pieces[0].len;
      const int nslices = static_cast<int>(pieces.size());
      if (h <= 0 || static_cast<int64_t>(h) * nslices != vals[s].shape.cols) {
        continue;
      }
      bool tiles = true;
      for (int p = 0; p < nslices; ++p) {
        if (pieces[p].len != h ||
            pieces[p].off != static_cast<int64_t>(p) * h) {
          tiles = false;
          break;
        }
      }
      if (!tiles) continue;
      // Lowest activation index hosts the fused op; the rest die and their
      // outputs become views of the fused result.
      int host = pieces[0].act_op;
      for (const Piece& p : pieces) host = std::min(host, p.act_op);
      vals.push_back({vals[s].shape, TVal::kOp, host, nullptr});
      const int g = static_cast<int>(vals.size()) - 1;
      def.push_back(host);
      view.push_back(View{});
      folded.push_back(-1);
      is_out.push_back(0);
      TOp fused;
      fused.kind = OpKind::kGateAct;
      fused.a = static_cast<int>(s);
      fused.out = g;
      fused.i0 = h;
      fused.i1 = nslices;
      for (int p = 0; p < nslices; ++p) {
        fused.acts[p] =
            ops[pieces[p].act_op].kind == OpKind::kTanh ? uint8_t{1}
                                                        : uint8_t{0};
      }
      for (const Piece& p : pieces) {
        view[ops[p.act_op].out] = {g, p.off};
        if (p.act_op != host) dead[p.act_op] = 1;
      }
      ops[host] = fused;
      RecountUses();
    }
  }

  // --- Pass: Add(Mul(OneMinus(m), b), Mul(m, a)) -> Lerp(m, a, b).
  // OneMinus is the AddScalar(Scale(m, -1), 1) idiom; every fused element
  // reproduces the unfused bits because negation is exact and FP add/mul
  // commute bitwise.
  void FuseLerp() {
    for (size_t j = 0; j < ops.size(); ++j) {
      if (dead[j] || ops[j].kind != OpKind::kAdd) continue;
      for (int swap = 0; swap < 2; ++swap) {
        const int x = swap == 0 ? ops[j].a : ops[j].b;  // OneMinus side
        const int y = swap == 0 ? ops[j].b : ops[j].a;  // mask side
        int mx, my;
        if (!SoleUseProducer(x, OpKind::kMul, &mx) ||
            !SoleUseProducer(y, OpKind::kMul, &my)) {
          continue;
        }
        int mask = -1, bb = -1;
        for (int side = 0; side < 2 && mask < 0; ++side) {
          const int om = side == 0 ? ops[mx].a : ops[mx].b;
          const int other = side == 0 ? ops[mx].b : ops[mx].a;
          int c1;
          if (!SoleUseProducer(om, OpKind::kAddScalar, &c1)) continue;
          if (ops[c1].f0 != 1.0f || FieldBound(c1, 0)) continue;
          int c2;
          if (!SoleUseProducer(ops[c1].a, OpKind::kScale, &c2)) continue;
          if (ops[c2].f0 != -1.0f || FieldBound(c2, 0)) continue;
          mask = ops[c2].a;
          bb = other;
          if (ops[my].a != mask && ops[my].b != mask) {
            mask = -1;  // the other Mul does not read the same mask
            continue;
          }
          const int aa = ops[my].a == mask ? ops[my].b : ops[my].a;
          TOp fused;
          fused.kind = OpKind::kLerp;
          fused.a = aa;
          fused.b = bb;
          fused.c = mask;
          fused.out = ops[j].out;
          dead[mx] = 1;
          dead[my] = 1;
          dead[c1] = 1;
          dead[c2] = 1;
          ops[j] = fused;
          RecountUses();
        }
        if (ops[j].kind == OpKind::kLerp) break;
      }
    }
  }

  // --- Pass: Add(Mul(f, cp), Mul(i, g)) -> CellUpdate (after FuseLerp so
  // the coupled-gate form gets the tighter rewrite first).
  void FuseCellUpdate() {
    for (size_t j = 0; j < ops.size(); ++j) {
      if (dead[j] || ops[j].kind != OpKind::kAdd) continue;
      int mx, my;
      if (!SoleUseProducer(ops[j].a, OpKind::kMul, &mx) ||
          !SoleUseProducer(ops[j].b, OpKind::kMul, &my)) {
        continue;
      }
      TOp fused;
      fused.kind = OpKind::kCellUpdate;
      fused.a = ops[mx].a;
      fused.b = ops[mx].b;
      fused.c = ops[my].a;
      fused.d = ops[my].b;
      fused.out = ops[j].out;
      dead[mx] = 1;
      dead[my] = 1;
      ops[j] = fused;
      RecountUses();
    }
  }

  // --- Pass: Add(Scale(a, alpha), Scale(b, beta)) -> Axpby; scalar binds
  // on the dying Scale immediates move to the fused op's f0/f1.
  void FuseAxpby() {
    for (size_t j = 0; j < ops.size(); ++j) {
      if (dead[j] || ops[j].kind != OpKind::kAdd) continue;
      int sx, sy;
      if (!SoleUseProducer(ops[j].a, OpKind::kScale, &sx) ||
          !SoleUseProducer(ops[j].b, OpKind::kScale, &sy)) {
        continue;
      }
      TOp fused;
      fused.kind = OpKind::kAxpby;
      fused.a = ops[sx].a;
      fused.b = ops[sy].a;
      fused.f0 = ops[sx].f0;
      fused.f1 = ops[sy].f0;
      fused.out = ops[j].out;
      for (ScalarBind& bind : binds) {
        if (bind.op == sx && bind.field == 0) {
          bind.op = static_cast<int>(j);
          bind.field = 0;
        } else if (bind.op == sy && bind.field == 0) {
          bind.op = static_cast<int>(j);
          bind.field = 1;
        }
      }
      dead[sx] = 1;
      dead[sy] = 1;
      ops[j] = fused;
      RecountUses();
    }
  }

  // --- Pass: Mul(o, Tanh(c)) -> TanhMul (either operand order; FP mul
  // commutes bitwise).
  void FuseTanhMul() {
    for (size_t j = 0; j < ops.size(); ++j) {
      if (dead[j] || ops[j].kind != OpKind::kMul) continue;
      for (int swap = 0; swap < 2; ++swap) {
        const int t = swap == 0 ? ops[j].b : ops[j].a;
        const int o = swap == 0 ? ops[j].a : ops[j].b;
        int th;
        if (!SoleUseProducer(t, OpKind::kTanh, &th)) continue;
        TOp fused;
        fused.kind = OpKind::kTanhMul;
        fused.a = o;
        fused.b = ops[th].a;
        fused.out = ops[j].out;
        dead[th] = 1;
        ops[j] = fused;
        RecountUses();
        break;
      }
    }
  }

  // --- Pass: drop alive ops whose result nothing reads. `uses` only counts
  // direct operand references, so a value read exclusively through views
  // (the GateAct result, whose activation outputs alias into it) is kept
  // alive by checking the view chains of every live value.
  void Dce() {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<char> viewed(vals.size(), 0);
      for (size_t v = 0; v < vals.size(); ++v) {
        if (uses[v] == 0 && !is_out[v]) continue;
        for (int b = view[v].base; b >= 0; b = view[b].base) viewed[b] = 1;
      }
      for (size_t i = ops.size(); i-- > 0;) {
        if (dead[i]) continue;
        const int out = ops[i].out;
        if (uses[out] == 0 && !is_out[out] && !viewed[out]) {
          dead[i] = 1;
          changed = true;
        }
      }
      if (changed) RecountUses();
    }
  }

  void Run() {
    RecountUses();
    SlicesToViews();
    FoldConstSlices();
    FuseAdd3();
    FuseGateAct();
    FuseLerp();
    FuseCellUpdate();
    FuseAxpby();
    FuseTanhMul();
    Dce();
  }
};

// ---------------------------------------------------------------------------
// Lowering: assign every value a buffer (input / live constant / folded
// constant / arena slot / output) and emit the instruction list. The
// in-placing pass generalizes the eager rvalue rule: an elementwise
// instruction whose first operand is a whole arena slot at its last
// effective use writes over that slot instead of taking a new one.

bool ElementwiseKind(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kScale:
    case OpKind::kAddScalar:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kLerp:
    case OpKind::kAxpby:
    case OpKind::kAdd3:
    case OpKind::kCellUpdate:
    case OpKind::kTanhMul:
      return true;
    default:
      return false;
  }
}

bool Lower(Rewriter& rw, Program* prog, std::vector<int>* op_to_instr) {
  const size_t nvals = rw.vals.size();

  // Ultimate (non-view) base of each value.
  std::vector<int> base(nvals);
  std::vector<int64_t> base_off(nvals, 0);
  for (size_t v = 0; v < nvals; ++v) {
    int b = static_cast<int>(v);
    int64_t off = 0;
    while (rw.view[b].base >= 0) {
      off += rw.view[b].off;
      b = rw.view[b].base;
    }
    base[v] = b;
    base_off[v] = off;
  }

  // Effective last use per base value (views charge their base); outputs
  // are pinned alive.
  std::vector<int> last_use(nvals, -1);
  for (size_t i = 0; i < rw.ops.size(); ++i) {
    if (rw.dead[i]) continue;
    for (int v : {rw.ops[i].a, rw.ops[i].b, rw.ops[i].c, rw.ops[i].d}) {
      if (v >= 0) last_use[base[v]] = static_cast<int>(i);
    }
  }
  for (int v : rw.outputs) {
    last_use[base[v]] = std::numeric_limits<int>::max();
  }

  // Duplicate outputs cannot share one fresh buffer; bail out.
  {
    std::vector<int> sorted = rw.outputs;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      PA_FUSION_LOG("lower: duplicate output values");
      return false;
    }
  }

  std::vector<BufRef> loc(nvals);
  std::unordered_map<ti::TensorImpl*, int> const_slot;
  std::vector<int> out_slot(nvals, -1);
  for (size_t i = 0; i < rw.outputs.size(); ++i) {
    out_slot[rw.outputs[i]] = static_cast<int>(i);
    prog->out_shapes.push_back(rw.vals[rw.outputs[i]].shape);
  }

  auto resolve_source = [&](int v) -> bool {
    const int b = base[v];
    BufRef r;
    if (rw.folded[b] >= 0) {
      r = {BufRef::kFolded, rw.folded[b], base_off[v]};
    } else if (rw.vals[b].kind == TVal::kInput) {
      r = {BufRef::kInput, rw.vals[b].index, base_off[v]};
    } else if (rw.vals[b].kind == TVal::kConst) {
      auto it = const_slot.find(rw.vals[b].hold.get());
      int slot;
      if (it != const_slot.end()) {
        slot = it->second;
      } else {
        slot = static_cast<int>(prog->consts.size());
        prog->consts.push_back(rw.vals[b].hold);
        const_slot[rw.vals[b].hold.get()] = slot;
      }
      r = {BufRef::kConst, slot, base_off[v]};
    } else if (loc[b].kind != BufRef::kNone) {
      r = loc[b];
      r.off += base_off[v];
    } else {
      PA_FUSION_LOG("lower: val %d read before definition", v);
      return false;  // read before definition — trace is inconsistent
    }
    loc[v] = r;
    return true;
  };

  std::vector<int64_t> arena_numel;
  op_to_instr->assign(rw.ops.size(), -1);

  for (size_t i = 0; i < rw.ops.size(); ++i) {
    if (rw.dead[i]) continue;
    const TOp& op = rw.ops[i];
    const TVal& ov = rw.vals[op.out];

    // Validate and resolve operands.
    for (int v : {op.a, op.b, op.c, op.d}) {
      if (v >= 0 && !resolve_source(v)) return false;
    }
    if (op.kind == OpKind::kMatMul) {
      const Shape& as = rw.vals[op.a].shape;
      const Shape& bs = rw.vals[op.b].shape;
      if (as.rows != 1 || as.cols != bs.rows ||
          !(ov.shape == Shape{1, bs.cols})) {
        PA_FUSION_LOG("lower: matmul op %zu shape mismatch", i);
        return false;
      }
    } else if (ElementwiseKind(op.kind) || op.kind == OpKind::kGateAct) {
      if (ov.shape.rows != 1) {
        PA_FUSION_LOG("lower: elementwise op %zu has %d rows", i,
                      ov.shape.rows);
        return false;
      }
      for (int v : {op.a, op.b, op.c, op.d}) {
        if (v >= 0 && !(rw.vals[v].shape == ov.shape)) {
          PA_FUSION_LOG("lower: op %zu operand %d shape mismatch", i, v);
          return false;
        }
      }
    } else {
      PA_FUSION_LOG("lower: op %zu kind %d not lowerable", i,
                    static_cast<int>(op.kind));
      return false;  // surviving SliceCols / unknown kind
    }

    // Output placement.
    BufRef outref;
    if (out_slot[op.out] >= 0) {
      outref = {BufRef::kOutput, out_slot[op.out], 0};
    } else {
      outref.kind = BufRef::kNone;
      if (ElementwiseKind(op.kind) || op.kind == OpKind::kGateAct) {
        // In-placing: overwrite the first operand's whole arena slot when
        // this is its last effective read anywhere (views included).
        const int av = op.a;
        const BufRef& ar = loc[av];
        if (ar.kind == BufRef::kArena && ar.off == 0 &&
            arena_numel[ar.idx] == ov.shape.numel() &&
            base[av] == av && last_use[av] == static_cast<int>(i)) {
          outref = ar;
        }
      }
      if (outref.kind == BufRef::kNone) {
        arena_numel.push_back(ov.shape.numel());
        outref = {BufRef::kArena,
                  static_cast<int>(arena_numel.size()) - 1, 0};
      }
    }
    loc[op.out] = outref;

    Instr ins;
    ins.kind = op.kind;
    ins.a = op.a >= 0 ? loc[op.a] : BufRef{};
    ins.b = op.b >= 0 ? loc[op.b] : BufRef{};
    ins.c = op.c >= 0 ? loc[op.c] : BufRef{};
    ins.d = op.d >= 0 ? loc[op.d] : BufRef{};
    ins.out = outref;
    ins.n = ov.shape.numel();
    ins.f0 = op.f0;
    ins.f1 = op.f1;
    if (op.kind == OpKind::kMatMul) {
      ins.mm_k = rw.vals[op.a].shape.cols;
      ins.mm_n = rw.vals[op.b].shape.cols;
    }
    if (op.kind == OpKind::kGateAct) {
      ins.h = op.i0;
      ins.nslices = op.i1;
      std::copy(std::begin(op.acts), std::end(op.acts), std::begin(ins.acts));
    }
    (*op_to_instr)[i] = static_cast<int>(prog->instrs.size());
    prog->instrs.push_back(ins);
  }

  // Every output must have been produced by an emitted instruction.
  for (int v : rw.outputs) {
    if (loc[v].kind != BufRef::kOutput) {
      PA_FUSION_LOG("lower: output val %d not produced into output slot", v);
      return false;
    }
  }

  prog->folded = std::move(rw.folded_data);
  prog->arena.reserve(arena_numel.size());
  for (int64_t n : arena_numel) {
    prog->arena.emplace_back(static_cast<size_t>(n));
  }
  return true;
}

enum class CompileStatus { kOk, kRetry, kFail };

struct CompileOutcome {
  CompileStatus status = CompileStatus::kFail;
  std::unique_ptr<Program> program;
};

CompileOutcome Compile(const Trace& t1, const Trace& t2) {
  CompileOutcome out;
  if (!SameStructure(t1, t2)) {
    PA_FUSION_LOG("compile: traces differ structurally");
    out.status = CompileStatus::kFail;
    return out;
  }
  std::vector<ScalarBind> binds;
  switch (BindScalars(t1, t2, &binds)) {
    case BindStatus::kRetry:
      out.status = CompileStatus::kRetry;
      return out;
    case BindStatus::kFail:
      PA_FUSION_LOG("compile: scalar binding ambiguous or untracked");
      out.status = CompileStatus::kFail;
      return out;
    case BindStatus::kOk:
      break;
  }
  Rewriter rw(t1);
  rw.binds = std::move(binds);
  rw.Run();
  auto prog = std::make_unique<Program>();
  std::vector<int> op_to_instr;
  if (!Lower(rw, prog.get(), &op_to_instr)) {
    out.status = CompileStatus::kFail;
    return out;
  }
  for (const ScalarBind& b : rw.binds) {
    if (b.op < 0 || op_to_instr[b.op] < 0) {  // bound immediate died
      PA_FUSION_LOG("compile: bound scalar's op was rewritten away");
      out.status = CompileStatus::kFail;
      return out;
    }
    prog->binds.push_back({op_to_instr[b.op], b.field, b.scalar});
  }
  out.status = CompileStatus::kOk;
  out.program = std::move(prog);
  return out;
}

// ---------------------------------------------------------------------------
// Replay.

std::vector<Tensor> Replay(Program& p, std::initializer_list<Tensor> inputs,
                           std::initializer_list<float> scalars) {
  for (const ProgBind& b : p.binds) {
    Instr& ins = p.instrs[b.instr];
    (b.field == 0 ? ins.f0 : ins.f1) = scalars.begin()[b.scalar];
  }
  std::vector<std::vector<float>> outs;
  outs.reserve(p.out_shapes.size());
  for (const Shape& s : p.out_shapes) {
    outs.push_back(
        ti::ThisThreadPool().Acquire(static_cast<size_t>(s.numel())));
  }
  auto ptr = [&](const BufRef& r) -> float* {
    switch (r.kind) {
      case BufRef::kInput:
        return const_cast<float*>(inputs.begin()[r.idx].data()) + r.off;
      case BufRef::kConst:
        return p.consts[r.idx]->data.data() + r.off;
      case BufRef::kFolded:
        return p.folded[r.idx].data() + r.off;
      case BufRef::kArena:
        return p.arena[r.idx].data() + r.off;
      case BufRef::kOutput:
        return outs[r.idx].data() + r.off;
      case BufRef::kNone:
        break;
    }
    return nullptr;
  };
  const kernels::KernelTable& kt = kernels::Active();
  for (const Instr& ins : p.instrs) {
    float* out = ptr(ins.out);
    const float* a = ptr(ins.a);
    const float* b = ptr(ins.b);
    const float* c = ptr(ins.c);
    const float* d = ptr(ins.d);
    switch (ins.kind) {
      case OpKind::kAdd:
        kt.add(a, b, out, ins.n);
        break;
      case OpKind::kSub:
        kt.sub(a, b, out, ins.n);
        break;
      case OpKind::kMul:
        kt.mul(a, b, out, ins.n);
        break;
      case OpKind::kScale:
        kt.mulc(a, ins.f0, out, ins.n);
        break;
      case OpKind::kAddScalar:
        kt.addc(a, ins.f0, out, ins.n);
        break;
      case OpKind::kSigmoid:
        kt.sigmoid(a, out, ins.n);
        break;
      case OpKind::kTanh:
        kt.tanh(a, out, ins.n);
        break;
      case OpKind::kMatMul:
        std::memset(out, 0, sizeof(float) * ins.mm_n);
        detail::MatMulForward(a, b, out, 1, ins.mm_k, ins.mm_n);
        break;
      case OpKind::kLerp:
        kt.lerp(c, a, b, out, ins.n);
        break;
      case OpKind::kAxpby:
        kt.axpby(a, ins.f0, b, ins.f1, out, ins.n);
        break;
      case OpKind::kAdd3:
        kt.add3(a, b, c, out, ins.n);
        break;
      case OpKind::kCellUpdate:
        kt.cell_update(a, b, c, d, out, ins.n);
        break;
      case OpKind::kTanhMul:
        kt.tanh_mul(a, b, out, ins.n);
        break;
      case OpKind::kGateAct:
        kt.gate_act(a, out, 1, ins.h, ins.acts, ins.nslices);
        break;
      default:
        break;  // unreachable: Lower rejects everything else
    }
  }
  std::vector<Tensor> result;
  result.reserve(outs.size());
  for (size_t i = 0; i < outs.size(); ++i) {
    result.push_back(
        detail::MakeInferencePooled(p.out_shapes[i], std::move(outs[i])));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Per-thread site cache.

struct SiteState {
  int attempts = 0;
  bool failed = false;
  std::unique_ptr<Trace> pending;
  std::unique_ptr<Program> program;
};

constexpr int kMaxRecordAttempts = 16;
constexpr size_t kMaxCacheEntries = 256;

using SiteCache = std::unordered_map<std::string, SiteState>;

SiteCache& Cache() {
  static thread_local SiteCache cache;
  return cache;
}

void AppendRaw(std::string* key, const void* p, size_t n) {
  key->append(reinterpret_cast<const char*>(p), n);
}

std::string MakeKey(uint64_t site, uint32_t variant,
                    std::initializer_list<Tensor> inputs, size_t nscalars) {
  std::string key;
  key.reserve(16 + inputs.size() * 8);
  AppendRaw(&key, &site, sizeof(site));
  AppendRaw(&key, &variant, sizeof(variant));
  const uint32_t ns = static_cast<uint32_t>(nscalars);
  AppendRaw(&key, &ns, sizeof(ns));
  for (const Tensor& t : inputs) {
    const int32_t dims[2] = {t.rows(), t.cols()};
    AppendRaw(&key, dims, sizeof(dims));
  }
  return key;
}

}  // namespace

std::vector<Tensor> RunStep(const StepSite& site, uint32_t variant,
                            std::initializer_list<Tensor> inputs,
                            std::initializer_list<float> scalars,
                            const std::function<std::vector<Tensor>()>& body) {
  if (!ti::InferenceModeActive() || !Enabled() || internal::t_recording) {
    ++t_stats.fallback;
    return body();
  }
  for (const Tensor& t : inputs) {
    if (!t.defined() || t.rows() != 1) {
      ++t_stats.fallback;
      return body();
    }
  }
  SiteCache& cache = Cache();
  std::string key = MakeKey(site.id, variant, inputs, scalars.size());
  auto it = cache.find(key);
  if (it == cache.end()) {
    // Bounded cache: a full reset on overflow keeps eviction trivial and
    // thread-local; sites that survive a model hot-swap just recompile.
    if (cache.size() >= kMaxCacheEntries) cache.clear();
    it = cache.emplace(std::move(key), SiteState{}).first;
  }
  SiteState& ss = it->second;
  if (ss.program != nullptr) {
    ++t_stats.replayed;
    return Replay(*ss.program, inputs, scalars);
  }
  if (ss.failed || ss.attempts >= kMaxRecordAttempts) {
    ++t_stats.fallback;
    return body();
  }
  ++ss.attempts;

  Recorder rec;
  {
    int slot = 0;
    for (const Tensor& t : inputs) rec.DeclareInput(t, slot++);
  }
  rec.trace.scalars.assign(scalars.begin(), scalars.end());
  t_rec = &rec;
  internal::t_recording = true;
  std::vector<Tensor> result = body();
  internal::t_recording = false;
  t_rec = nullptr;
  ++t_stats.recorded;

  for (const Tensor& t : result) {
    if (!t.defined()) {
      rec.trace.invalid = true;
      break;
    }
    auto vit = rec.val_of.find(t.impl().get());
    if (vit == rec.val_of.end() ||
        rec.trace.vals[vit->second].kind != TVal::kOp) {
      rec.trace.invalid = true;
      break;
    }
    rec.trace.outputs.push_back(vit->second);
  }

  if (rec.trace.invalid) {
    PA_FUSION_LOG("record: site %llu trace invalid (unsupported op, pooled "
                  "foreign value, or non-op output)",
                  static_cast<unsigned long long>(site.id));
    ss.failed = true;
    ss.pending.reset();
    return result;
  }
  if (ss.pending == nullptr) {
    ss.pending = std::make_unique<Trace>(std::move(rec.trace));
    return result;
  }
  CompileOutcome oc = Compile(*ss.pending, rec.trace);
  switch (oc.status) {
    case CompileStatus::kOk:
      ss.program = std::move(oc.program);
      ss.pending.reset();
      ++t_stats.compiled;
      break;
    case CompileStatus::kRetry:
      break;  // scalars not yet discriminated; the attempts cap bounds this
    case CompileStatus::kFail:
      ss.failed = true;
      ss.pending.reset();
      break;
  }
  return result;
}

}  // namespace pa::tensor::fusion
