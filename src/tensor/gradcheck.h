#ifndef PA_TENSOR_GRADCHECK_H_
#define PA_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pa::tensor {

/// Result of comparing analytic and numerical gradients.
struct GradCheckResult {
  bool ok = true;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string worst_location;
};

/// Verifies the autograd engine against central finite differences.
///
/// `loss_fn` must rebuild the computation each call (the graph is dynamic)
/// and return a `[1, 1]` scalar computed from `inputs`. Each input is
/// perturbed elementwise by ±`epsilon`, the numerical derivative compared to
/// the analytic gradient produced by one `Backward()` pass.
///
/// This is the workhorse behind the property-style test sweeps in
/// `tests/tensor_gradcheck_test.cc`: if the ops compose correctly, *any*
/// expression built from them passes.
GradCheckResult CheckGradients(
    const std::function<Tensor()>& loss_fn, std::vector<Tensor> inputs,
    float epsilon = 1e-3f, float tolerance = 2e-2f);

}  // namespace pa::tensor

#endif  // PA_TENSOR_GRADCHECK_H_
