#include "tensor/gradcheck.h"

#include <cmath>
#include <sstream>

namespace pa::tensor {

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               std::vector<Tensor> inputs, float epsilon,
                               float tolerance) {
  GradCheckResult result;

  // One analytic pass. Gradients accumulate, so clear them first.
  for (Tensor& in : inputs) in.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& in : inputs) analytic.push_back(in.grad_vector());

  for (size_t k = 0; k < inputs.size(); ++k) {
    Tensor& in = inputs[k];
    for (int64_t i = 0; i < in.numel(); ++i) {
      const float saved = in.data()[i];
      in.data()[i] = saved + epsilon;
      const float plus = loss_fn().item();
      in.data()[i] = saved - epsilon;
      const float minus = loss_fn().item();
      in.data()[i] = saved;

      const float numeric = (plus - minus) / (2.0f * epsilon);
      const float exact = analytic[k][i];
      const float abs_err = std::fabs(numeric - exact);
      const float denom =
          std::max(1.0f, std::max(std::fabs(numeric), std::fabs(exact)));
      const float rel_err = abs_err / denom;

      if (abs_err > result.max_abs_error) result.max_abs_error = abs_err;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
        std::ostringstream os;
        os << "input " << k << " element " << i << ": analytic=" << exact
           << " numeric=" << numeric;
        result.worst_location = os.str();
      }
      if (rel_err > tolerance) result.ok = false;
    }
  }
  return result;
}

}  // namespace pa::tensor
