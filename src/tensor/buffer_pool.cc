#include "tensor/buffer_pool.h"

#include "obs/metrics.h"

namespace pa::tensor::internal {

// The live-pool pointers are nulled by the owners' destructors. TensorImpl
// destructors may run during (or after) thread_local teardown on this
// thread; checking the pointer instead of re-entering a function-local
// static avoids resurrecting a half-destroyed pool.
thread_local BufferPool* t_buffer_pool = nullptr;
thread_local NodeBlockPool* t_node_pool = nullptr;

namespace {

struct PoolOwner {
  BufferPool pool;
  PoolOwner() { t_buffer_pool = &pool; }
  ~PoolOwner() {
    t_buffer_pool = nullptr;
    // Publish whatever the thread accumulated since its last flush; pool
    // threads that never hit an explicit flush point still show up in the
    // registry. The registry itself is immortal (leaked singleton), so
    // flushing from thread_local teardown is safe.
    pool.FlushStatsToRegistry();
  }
};

struct NodePoolOwner {
  NodeBlockPool pool;
  NodePoolOwner() { t_node_pool = &pool; }
  ~NodePoolOwner() { t_node_pool = nullptr; }
};

}  // namespace

BufferPool& BufferPool::ThisThread() {
  thread_local PoolOwner owner;
  return owner.pool;
}

void BufferPool::FlushStatsToRegistry() {
  // Function-local statics: one registry lookup per process, then every
  // flush is four relaxed adds and a CAS max against stable instruments.
  static obs::Counter& hits =
      obs::MetricRegistry::Global().GetCounter("tensor.pool.hits");
  static obs::Counter& misses =
      obs::MetricRegistry::Global().GetCounter("tensor.pool.misses");
  static obs::Counter& releases =
      obs::MetricRegistry::Global().GetCounter("tensor.pool.releases");
  static obs::Counter& discards =
      obs::MetricRegistry::Global().GetCounter("tensor.pool.discards");
  static obs::Gauge& high_water =
      obs::MetricRegistry::Global().GetGauge("tensor.pool.high_water_bytes");
  hits.Add(stats_.reuses - flushed_.reuses);
  misses.Add((stats_.acquires - stats_.reuses) -
             (flushed_.acquires - flushed_.reuses));
  releases.Add(stats_.releases - flushed_.releases);
  discards.Add(stats_.discards - flushed_.discards);
  high_water.UpdateMax(static_cast<double>(high_water_bytes_));
  flushed_ = stats_;
}

void* AcquireNodeBlockSlow(size_t bytes) {
  thread_local NodePoolOwner owner;
  NodeBlockPool& pool = owner.pool;
  if (pool.block_bytes == 0) pool.block_bytes = bytes;
  if (bytes == pool.block_bytes && !pool.free.empty()) {
    void* p = pool.free.back();
    pool.free.pop_back();
    return p;
  }
  return ::operator new(bytes);
}

}  // namespace pa::tensor::internal
