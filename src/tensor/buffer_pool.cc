#include "tensor/buffer_pool.h"

namespace pa::tensor::internal {

// The live-pool pointers are nulled by the owners' destructors. TensorImpl
// destructors may run during (or after) thread_local teardown on this
// thread; checking the pointer instead of re-entering a function-local
// static avoids resurrecting a half-destroyed pool.
thread_local BufferPool* t_buffer_pool = nullptr;
thread_local NodeBlockPool* t_node_pool = nullptr;

namespace {

struct PoolOwner {
  BufferPool pool;
  PoolOwner() { t_buffer_pool = &pool; }
  ~PoolOwner() { t_buffer_pool = nullptr; }
};

struct NodePoolOwner {
  NodeBlockPool pool;
  NodePoolOwner() { t_node_pool = &pool; }
  ~NodePoolOwner() { t_node_pool = nullptr; }
};

}  // namespace

BufferPool& BufferPool::ThisThread() {
  thread_local PoolOwner owner;
  return owner.pool;
}

void* AcquireNodeBlockSlow(size_t bytes) {
  thread_local NodePoolOwner owner;
  NodeBlockPool& pool = owner.pool;
  if (pool.block_bytes == 0) pool.block_bytes = bytes;
  if (bytes == pool.block_bytes && !pool.free.empty()) {
    void* p = pool.free.back();
    pool.free.pop_back();
    return p;
  }
  return ::operator new(bytes);
}

}  // namespace pa::tensor::internal
