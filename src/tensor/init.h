#ifndef PA_TENSOR_INIT_H_
#define PA_TENSOR_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace pa::tensor {

/// Parameter initializers. All return leaf tensors with `requires_grad` set.

/// Uniform in [-scale, scale].
Tensor UniformInit(Shape shape, float scale, util::Rng& rng);

/// Xavier/Glorot uniform: scale = sqrt(6 / (fan_in + fan_out)) with
/// fan_in = rows, fan_out = cols. The standard choice for the gate weight
/// matrices of the LSTM stacks used throughout the library.
Tensor XavierInit(Shape shape, util::Rng& rng);

/// Normal with the given standard deviation.
Tensor NormalInit(Shape shape, float stddev, util::Rng& rng);

}  // namespace pa::tensor

#endif  // PA_TENSOR_INIT_H_
