#include "tensor/init.h"

#include <cmath>

namespace pa::tensor {

Tensor UniformInit(Shape shape, float scale, util::Rng& rng) {
  Tensor t = Tensor::Zeros(shape, /*requires_grad=*/true);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return t;
}

Tensor XavierInit(Shape shape, util::Rng& rng) {
  const float scale =
      std::sqrt(6.0f / static_cast<float>(shape.rows + shape.cols));
  return UniformInit(shape, scale, rng);
}

Tensor NormalInit(Shape shape, float stddev, util::Rng& rng) {
  Tensor t = Tensor::Zeros(shape, /*requires_grad=*/true);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

}  // namespace pa::tensor
