#ifndef PA_EVAL_HR_METRIC_H_
#define PA_EVAL_HR_METRIC_H_

#include <string>
#include <vector>

#include "poi/dataset.h"
#include "rec/recommender.h"

namespace pa::eval {

/// Hit-ratio results at the paper's three cutoffs (Eq. 5):
/// HR@k = #hits@k / |test|.
struct HrResult {
  int num_cases = 0;
  double hr1 = 0.0;
  double hr5 = 0.0;
  double hr10 = 0.0;
  /// Mean reciprocal rank, truncated at rank 10 (0 when the truth is not
  /// in the top 10). Not reported in the paper's tables; provided as a
  /// tie-breaking diagnostic.
  double mrr10 = 0.0;

  std::string ToString() const;
};

/// Accumulates hits incrementally; used by the evaluation loop and directly
/// testable against hand-built rankings.
class HrAccumulator {
 public:
  /// Records one test case: the rank list (best first) and the truth.
  ///
  /// Defensive against malformed recommender output: duplicate POI ids are
  /// ignored after their first occurrence (a duplicated id must not be
  /// credited twice or push later ids past a cutoff twice), and only the
  /// first 10 *distinct* entries are considered even if the list is longer.
  void Add(const std::vector<int32_t>& ranked, int32_t truth);

  /// Folds another accumulator's counts into this one. Order-insensitive for
  /// the integer hit counts; the reciprocal-rank sum is a double, so callers
  /// that need bit-identical MRR across thread counts must merge partial
  /// accumulators in a fixed (user) order — `EvaluateHr` does.
  void Merge(const HrAccumulator& other);

  HrResult Result() const;

 private:
  int num_cases_ = 0;
  int hits1_ = 0;
  int hits5_ = 0;
  int hits10_ = 0;
  double reciprocal_sum_ = 0.0;
};

/// Evaluates a *fitted* recommender with the paper's protocol (§IV-E): per
/// user, the session replays the warm-up history (training + validation
/// check-ins), then each test check-in is predicted given everything before
/// it and subsequently observed.
///
/// Users are independent, so they are evaluated in parallel on the global
/// thread pool (`PA_THREADS`), each into a private `HrAccumulator`; the
/// per-user accumulators are merged in ascending user order, so the result
/// is bit-identical at any thread count. The recommender's `NewSession` /
/// session methods must therefore be safe to call concurrently from
/// different sessions — all in-tree recommenders are.
HrResult EvaluateHr(const rec::Recommender& recommender,
                    const std::vector<poi::CheckinSequence>& warmup,
                    const std::vector<poi::CheckinSequence>& test);

}  // namespace pa::eval

#endif  // PA_EVAL_HR_METRIC_H_
