#ifndef PA_EVAL_HR_METRIC_H_
#define PA_EVAL_HR_METRIC_H_

#include <string>
#include <vector>

#include "poi/dataset.h"
#include "rec/recommender.h"

namespace pa::eval {

/// Hit-ratio results at the paper's three cutoffs (Eq. 5):
/// HR@k = #hits@k / |test|.
struct HrResult {
  int num_cases = 0;
  double hr1 = 0.0;
  double hr5 = 0.0;
  double hr10 = 0.0;
  /// Mean reciprocal rank, truncated at rank 10 (0 when the truth is not
  /// in the top 10). Not reported in the paper's tables; provided as a
  /// tie-breaking diagnostic.
  double mrr10 = 0.0;

  std::string ToString() const;
};

/// Accumulates hits incrementally; used by the evaluation loop and directly
/// testable against hand-built rankings.
class HrAccumulator {
 public:
  /// Records one test case: the rank list (best first) and the truth.
  void Add(const std::vector<int32_t>& ranked, int32_t truth);

  HrResult Result() const;

 private:
  int num_cases_ = 0;
  int hits1_ = 0;
  int hits5_ = 0;
  int hits10_ = 0;
  double reciprocal_sum_ = 0.0;
};

/// Evaluates a *fitted* recommender with the paper's protocol (§IV-E): per
/// user, the session replays the warm-up history (training + validation
/// check-ins), then each test check-in is predicted given everything before
/// it and subsequently observed.
HrResult EvaluateHr(const rec::Recommender& recommender,
                    const std::vector<poi::CheckinSequence>& warmup,
                    const std::vector<poi::CheckinSequence>& test);

}  // namespace pa::eval

#endif  // PA_EVAL_HR_METRIC_H_
