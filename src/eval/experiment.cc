#include "eval/experiment.h"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "augment/linear_interpolation.h"
#include "obs/trace.h"
#include "rec/registry.h"

namespace pa::eval {

std::string TableResult::ToString() const {
  std::ostringstream os;
  os << "Dataset: " << dataset_name << "\n";
  os << std::left << std::setw(10) << "Method";
  for (const std::string& ts : training_sets) {
    os << "| " << std::setw(26) << ts;
  }
  os << "\n" << std::setw(10) << "";
  for (size_t i = 0; i < training_sets.size(); ++i) {
    os << "| " << std::setw(8) << "HR@1" << std::setw(9) << "HR@5"
       << std::setw(9) << "HR@10";
  }
  os << "\n";
  for (size_t r = 0; r < methods.size(); ++r) {
    os << std::setw(10) << methods[r];
    for (size_t c = 0; c < training_sets.size(); ++c) {
      const HrResult& h = cells[r][c];
      os << "| " << std::fixed << std::setprecision(3) << std::setw(8)
         << h.hr1 << std::setw(9) << h.hr5 << std::setw(9) << h.hr10;
    }
    os << "\n";
  }
  return os.str();
}

std::string TableResult::ToCsv() const {
  std::ostringstream os;
  os << "dataset,method,training_set,hr1,hr5,hr10,num_cases\n";
  for (size_t r = 0; r < methods.size(); ++r) {
    for (size_t c = 0; c < training_sets.size(); ++c) {
      const HrResult& h = cells[r][c];
      os << dataset_name << ',' << methods[r] << ',' << training_sets[c]
         << ',' << h.hr1 << ',' << h.hr5 << ',' << h.hr10 << ','
         << h.num_cases << "\n";
    }
  }
  return os.str();
}

TableResult RunAugmentationExperiment(const poi::Dataset& dataset,
                                      const std::string& dataset_name,
                                      const ExperimentConfig& config) {
  TableResult table;
  table.dataset_name = dataset_name;
  table.methods =
      config.methods.empty() ? rec::StandardRecommenderNames() : config.methods;
  table.training_sets = {"Original", "LinearInterpolation(POP)",
                         "LinearInterpolation(NN)", "PA-Seq2Seq"};

  const poi::Split split = ChronologicalSplit(dataset);

  // Warm-up history per user = train + validation (chronological).
  std::vector<poi::CheckinSequence> warmup(split.train);
  for (size_t u = 0; u < warmup.size(); ++u) {
    warmup[u].insert(warmup[u].end(), split.validation[u].begin(),
                     split.validation[u].end());
  }

  // POI popularity for the POP baseline must come from training data only.
  poi::Dataset train_view = poi::WithSequences(dataset, split.train);

  // The four training sets of the table.
  std::vector<std::vector<poi::CheckinSequence>> training_sets;
  training_sets.push_back(split.train);  // Original.

  {
    PA_TRACE_SPAN("experiment.augment");
    augment::LinearInterpolationAugmenter li_pop(
        train_view.pois,
        augment::LinearInterpolationAugmenter::Mode::kMostPopular,
        config.pop_radius_km);
    training_sets.push_back(augment::AugmentSequences(
        li_pop, split.train, config.interval_seconds,
        config.max_missing_per_gap));

    augment::LinearInterpolationAugmenter li_nn(
        train_view.pois,
        augment::LinearInterpolationAugmenter::Mode::kNearestNeighbor);
    training_sets.push_back(augment::AugmentSequences(
        li_nn, split.train, config.interval_seconds,
        config.max_missing_per_gap));

    augment::PaSeq2SeqConfig s2s_config = config.seq2seq;
    s2s_config.seed = config.seed;
    augment::PaSeq2Seq pa(train_view.pois, s2s_config);
    if (config.verbose) {
      std::fprintf(stderr, "[experiment] fitting PA-Seq2Seq\n");
    }
    pa.Fit(split.train);
    training_sets.push_back(augment::AugmentSequences(
        pa, split.train, config.interval_seconds, config.max_missing_per_gap));
  }

  table.cells.assign(table.methods.size(),
                     std::vector<HrResult>(table.training_sets.size()));
  for (size_t r = 0; r < table.methods.size(); ++r) {
    for (size_t c = 0; c < table.training_sets.size(); ++c) {
      PA_TRACE_SPAN("experiment.cell");
      auto recommender = rec::MakeRecommender(
          table.methods[r], config.seed, config.epochs_scale);
      if (!recommender) {
        throw std::invalid_argument(
            "unknown recommender \"" + table.methods[r] +
            "\" (known: " + rec::KnownRecommenderNamesString() + ")");
      }
      if (config.verbose) {
        std::fprintf(stderr, "[experiment] %s on %s\n",
                     table.methods[r].c_str(),
                     table.training_sets[c].c_str());
      }
      recommender->Fit(training_sets[c], train_view.pois);
      table.cells[r][c] = EvaluateHr(*recommender, warmup, split.test);
    }
  }
  return table;
}

}  // namespace pa::eval
