#include "eval/hr_metric.h"

#include <sstream>

namespace pa::eval {

std::string HrResult::ToString() const {
  std::ostringstream os;
  os << "HR@1=" << hr1 << " HR@5=" << hr5 << " HR@10=" << hr10 << " (n="
     << num_cases << ")";
  return os.str();
}

void HrAccumulator::Add(const std::vector<int32_t>& ranked, int32_t truth) {
  ++num_cases_;
  for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
    if (ranked[i] == truth) {
      if (i < 1) ++hits1_;
      if (i < 5) ++hits5_;
      ++hits10_;
      reciprocal_sum_ += 1.0 / static_cast<double>(i + 1);
      break;
    }
  }
}

HrResult HrAccumulator::Result() const {
  HrResult r;
  r.num_cases = num_cases_;
  if (num_cases_ > 0) {
    r.hr1 = static_cast<double>(hits1_) / num_cases_;
    r.hr5 = static_cast<double>(hits5_) / num_cases_;
    r.hr10 = static_cast<double>(hits10_) / num_cases_;
    r.mrr10 = reciprocal_sum_ / num_cases_;
  }
  return r;
}

HrResult EvaluateHr(const rec::Recommender& recommender,
                    const std::vector<poi::CheckinSequence>& warmup,
                    const std::vector<poi::CheckinSequence>& test) {
  HrAccumulator acc;
  const size_t num_users = std::max(warmup.size(), test.size());
  for (size_t u = 0; u < num_users; ++u) {
    const bool has_test = u < test.size() && !test[u].empty();
    if (!has_test) continue;
    auto session = recommender.NewSession(static_cast<int32_t>(u));
    if (u < warmup.size()) {
      for (const poi::Checkin& c : warmup[u]) session->Observe(c);
    }
    for (const poi::Checkin& c : test[u]) {
      acc.Add(session->TopK(10, c.timestamp), c.poi);
      session->Observe(c);
    }
  }
  return acc.Result();
}

}  // namespace pa::eval
