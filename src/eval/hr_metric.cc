#include "eval/hr_metric.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace pa::eval {

std::string HrResult::ToString() const {
  std::ostringstream os;
  os << "HR@1=" << hr1 << " HR@5=" << hr5 << " HR@10=" << hr10 << " (n="
     << num_cases << ")";
  return os.str();
}

void HrAccumulator::Add(const std::vector<int32_t>& ranked, int32_t truth) {
  ++num_cases_;
  // Rank positions are assigned over *distinct* ids: a recommender that
  // emits [a, a, truth] has truth at effective rank 2, not 3, and a
  // duplicated truth cannot be counted twice.
  int32_t seen[10];
  int num_seen = 0;
  for (int32_t id : ranked) {
    if (std::find(seen, seen + num_seen, id) != seen + num_seen) continue;
    if (id == truth) {
      const int rank = num_seen;  // 0-based rank among distinct ids.
      if (rank < 1) ++hits1_;
      if (rank < 5) ++hits5_;
      ++hits10_;
      reciprocal_sum_ += 1.0 / static_cast<double>(rank + 1);
      return;
    }
    seen[num_seen++] = id;
    if (num_seen >= 10) return;  // Clamp: ignore entries past 10 distinct.
  }
}

void HrAccumulator::Merge(const HrAccumulator& other) {
  num_cases_ += other.num_cases_;
  hits1_ += other.hits1_;
  hits5_ += other.hits5_;
  hits10_ += other.hits10_;
  reciprocal_sum_ += other.reciprocal_sum_;
}

HrResult HrAccumulator::Result() const {
  HrResult r;
  r.num_cases = num_cases_;
  if (num_cases_ > 0) {
    r.hr1 = static_cast<double>(hits1_) / num_cases_;
    r.hr5 = static_cast<double>(hits5_) / num_cases_;
    r.hr10 = static_cast<double>(hits10_) / num_cases_;
    r.mrr10 = reciprocal_sum_ / num_cases_;
  }
  return r;
}

HrResult EvaluateHr(const rec::Recommender& recommender,
                    const std::vector<poi::CheckinSequence>& warmup,
                    const std::vector<poi::CheckinSequence>& test) {
  PA_TRACE_SPAN("eval.hr");
  static obs::Counter& cases =
      obs::MetricRegistry::Global().GetCounter("eval.cases");
  static obs::Histogram& user_us =
      obs::MetricRegistry::Global().GetHistogram("eval.user_us");
  const size_t num_users = std::max(warmup.size(), test.size());
  // Each user evaluates into a private accumulator on the pool;
  // ParallelMap returns them indexed by user, independent of which thread
  // ran which user.
  std::vector<HrAccumulator> per_user = util::GlobalPool().ParallelMap(
      int64_t{0}, static_cast<int64_t>(num_users), /*grain=*/1,
      [&](int64_t u) {
        PA_TRACE_SPAN("eval.user");
        // Evaluation never backpropagates: run every session forward on the
        // graph-free fast path. The scope is per worker thread, entered here
        // because pool workers do not inherit the caller's scope.
        const tensor::InferenceModeScope inference;
        HrAccumulator acc;
        const size_t us = static_cast<size_t>(u);
        const bool has_test = us < test.size() && !test[us].empty();
        if (!has_test) return acc;
        const auto start = std::chrono::steady_clock::now();
        auto session = recommender.NewSession(static_cast<int32_t>(u));
        if (us < warmup.size()) {
          for (const poi::Checkin& c : warmup[us]) session->Observe(c);
        }
        for (const poi::Checkin& c : test[us]) {
          acc.Add(session->TopK(10, c.timestamp), c.poi);
          session->Observe(c);
        }
        // Per-worker throughput: one wall-time sample and one cases bump per
        // evaluated user, then the thread's pool tallies flush as deltas.
        user_us.Record(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        cases.Add(static_cast<uint64_t>(test[us].size()));
        tensor::internal::ThisThreadPool().FlushStatsToRegistry();
        return acc;
      });
  // Ascending user order: the mrr10 double sum has a fixed reduction order,
  // so HR@{1,5,10} *and* MRR are bit-identical at any thread count.
  HrAccumulator total;
  for (const HrAccumulator& acc : per_user) total.Merge(acc);
  return total.Result();
}

}  // namespace pa::eval
