#ifndef PA_EVAL_EXPERIMENT_H_
#define PA_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "augment/pa_seq2seq.h"
#include "eval/hr_metric.h"
#include "poi/dataset.h"

namespace pa::eval {

/// Configuration of a full Table I / Table II run.
struct ExperimentConfig {
  /// Even-spacing interval for augmentation (3 hours, paper Fig. 1).
  int64_t interval_seconds = 3 * 3600;
  /// Cap on imputed check-ins per observed gap (guards month-long gaps).
  int max_missing_per_gap = 3;
  /// Search radius of the POP interpolation baseline.
  double pop_radius_km = 2.0;

  uint64_t seed = 7;
  /// Scales every recommender's training epochs (quick tests use < 1).
  double epochs_scale = 1.0;
  /// PA-Seq2Seq hyper-parameters.
  augment::PaSeq2SeqConfig seq2seq;

  /// Subset of method names to run (empty = all five of the paper).
  std::vector<std::string> methods;

  bool verbose = false;
};

/// One table of the paper: methods × training sets × HR@{1,5,10}.
struct TableResult {
  std::string dataset_name;
  std::vector<std::string> methods;        // Row labels.
  std::vector<std::string> training_sets;  // Column-group labels.
  /// cells[row][col] — row follows `methods`, col follows `training_sets`.
  std::vector<std::vector<HrResult>> cells;

  /// Paper-style table rendering.
  std::string ToString() const;
  /// Machine-readable CSV (method,training_set,hr1,hr5,hr10,n).
  std::string ToCsv() const;
};

/// Runs the complete augmentation-effectiveness experiment on a dataset:
/// chronological split, the four training sets (Original, Linear
/// Interpolation POP, Linear Interpolation NN, PA-Seq2Seq), each of the
/// five recommenders trained per set and evaluated by HR@{1,5,10} on the
/// untouched test tail — the procedure behind Tables I and II.
TableResult RunAugmentationExperiment(const poi::Dataset& dataset,
                                      const std::string& dataset_name,
                                      const ExperimentConfig& config);

}  // namespace pa::eval

#endif  // PA_EVAL_EXPERIMENT_H_
