#include "serve/session_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace pa::serve {

SessionStore::SessionStore(std::shared_ptr<const LoadedModel> model,
                           SessionStoreConfig config)
    : model_(std::move(model)), config_(config) {
  capacity_ = std::max<size_t>(
      1, config_.memory_cap_bytes / std::max<size_t>(1, config_.approx_session_bytes));
}

std::shared_ptr<SessionStore::Entry> SessionStore::GetOrCreate(
    int32_t user, bool count_traffic) {
  std::vector<std::shared_ptr<Entry>> evicted;  // Freed outside the lock.
  std::shared_ptr<Entry> entry;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(user);
    if (it != sessions_.end()) {
      if (count_traffic) ++stats_.hits;
      // Move to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->entry;
    }

    if (count_traffic) ++stats_.misses;
    entry = std::make_shared<Entry>();
    entry->model = model_;
    lru_.push_front(LruNode{user, entry});
    sessions_[user] = lru_.begin();

    while (lru_.size() > capacity_) {
      LruNode& victim = lru_.back();
      sessions_.erase(victim.user);
      evicted.push_back(std::move(victim.entry));
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  // The entry is published with a null session; every access path calls
  // EnsureSessionLocked under entry->mu before touching it, so whichever
  // request reaches the entry first performs the build/rebuild and any
  // concurrent request for the same user waits on entry->mu.
  return entry;
}

void SessionStore::EnsureSessionLocked(Entry& entry, int32_t user) {
  if (entry.session) return;
  // Rebuilds are the expensive tail of serving (full history replay through
  // the model); count and trace them so eviction pressure shows up in
  // `pa_serve stats` and traces rather than only as a latency mystery.
  PA_TRACE_SPAN("serve.session.rebuild");
  static obs::Counter& rebuilds =
      obs::MetricRegistry::Global().GetCounter("serve.session.rebuilds");
  rebuilds.Increment();
  // Session rebuild replays the stored history through model forwards;
  // nothing here ever backpropagates, so run graph-free. (Callers that
  // already hold a scope nest harmlessly.)
  const tensor::InferenceModeScope inference;
  // Copy the replay history under the global lock; replay it outside (model
  // inference can be slow and must not serialise the whole store). Lock
  // order is always entry.mu -> mu_; GetOrCreate never holds mu_ while
  // acquiring an entry mutex.
  std::deque<poi::Checkin> replay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto h = history_.find(user);
    if (h != history_.end()) replay = h->second;
  }
  entry.session = entry.model->model->NewSession(user);
  for (const poi::Checkin& c : replay) entry.session->Observe(c);
}

void SessionStore::Observe(const poi::Checkin& checkin) {
  std::shared_ptr<Entry> entry = GetOrCreate(checkin.user, true);
  // entry->mu is held across both the history append and the session
  // update, so concurrent Observes apply to the live session in the same
  // order they land in the stored history (a rebuild after eviction then
  // replays the exact sequence the evicted session saw).
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  const tensor::InferenceModeScope inference;
  EnsureSessionLocked(*entry, checkin.user);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<poi::Checkin>& h = history_[checkin.user];
    h.push_back(checkin);
    while (static_cast<int>(h.size()) > config_.max_history) h.pop_front();
  }
  entry->session->Observe(checkin);
}

void SessionStore::SeedHistory(int32_t user,
                               const std::vector<poi::Checkin>& checkins) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<poi::Checkin>& h = history_[user];
  for (const poi::Checkin& c : checkins) {
    h.push_back(c);
    while (static_cast<int>(h.size()) > config_.max_history) h.pop_front();
  }
  // Any live session predates the new history; drop it so the next request
  // rebuilds from the seeded state.
  auto it = sessions_.find(user);
  if (it != sessions_.end()) {
    lru_.erase(it->second);
    sessions_.erase(it);
  }
}

std::vector<int32_t> SessionStore::TopK(int32_t user, int k,
                                        int64_t next_timestamp) {
  std::shared_ptr<Entry> entry = GetOrCreate(user, true);
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  const tensor::InferenceModeScope inference;
  EnsureSessionLocked(*entry, user);
  return entry->session->TopK(k, next_timestamp);
}

bool SessionStore::HasHistory(int32_t user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_.find(user);
  return it != history_.end() && !it->second.empty();
}

void SessionStore::Clear() {
  std::list<LruNode> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(lru_);  // Destroy entries outside the lock.
    sessions_.clear();
    history_.clear();
  }
}

SessionStoreStats SessionStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStoreStats stats = stats_;
  stats.live_sessions = lru_.size();
  return stats;
}

}  // namespace pa::serve
