#include "serve/engine.h"

#include "obs/trace.h"
#include "serve/json.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace pa::serve {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::kInvalidArgument: return "invalid_argument";
    case RequestStatus::kOverloaded: return "overloaded";
    case RequestStatus::kUnknownUser: return "unknown_user";
  }
  return "unknown";
}

const char* RequestStatusCode(RequestStatus status) {
  if (status == RequestStatus::kInvalidArgument) return "bad_request";
  return RequestStatusName(status);
}

std::string EngineStats::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Field("requests", requests)
      .Field("timeouts", timeouts)
      .Field("session_hits", session_hits)
      .Field("session_misses", session_misses)
      .Field("session_evictions", session_evictions)
      .Field("live_sessions", live_sessions)
      .Field("p50_micros", p50_micros)
      .Field("p95_micros", p95_micros)
      .Field("p99_micros", p99_micros)
      .EndObject();
  return w.str();
}

Engine::Engine(std::shared_ptr<const LoadedModel> model, EngineConfig config)
    : model_(std::move(model)),
      config_(config),
      sessions_(std::make_shared<SessionStore>(model_, config_.sessions)) {
  // Expose this engine's instruments process-wide. The session gauges read
  // through the current store (callbacks run at snapshot time, so they
  // follow model swaps automatically).
  auto& registry = obs::MetricRegistry::Global();
  const std::string& prefix = config_.metric_prefix;
  registry.RegisterCounter(prefix + "requests", &requests_);
  registry.RegisterCounter(prefix + "timeouts", &timeouts_);
  registry.RegisterHistogram(prefix + "latency_us", &latency_);
  auto session_stat = [this](uint64_t SessionStoreStats::*field) {
    std::shared_ptr<SessionStore> sessions;
    {
      std::lock_guard<std::mutex> lock(swap_mu_);
      sessions = sessions_;
    }
    return static_cast<double>(sessions->Stats().*field);
  };
  registry.RegisterCallbackGauge(
      prefix + "sessions.live", this,
      [session_stat] { return session_stat(&SessionStoreStats::live_sessions); });
  registry.RegisterCallbackGauge(
      prefix + "sessions.hits", this,
      [session_stat] { return session_stat(&SessionStoreStats::hits); });
  registry.RegisterCallbackGauge(
      prefix + "sessions.misses", this,
      [session_stat] { return session_stat(&SessionStoreStats::misses); });
  registry.RegisterCallbackGauge(
      prefix + "sessions.evictions", this,
      [session_stat] { return session_stat(&SessionStoreStats::evictions); });
}

Engine::~Engine() {
  auto& registry = obs::MetricRegistry::Global();
  const std::string& prefix = config_.metric_prefix;
  registry.Unregister(prefix + "requests", &requests_);
  registry.Unregister(prefix + "timeouts", &timeouts_);
  registry.Unregister(prefix + "latency_us", &latency_);
  registry.Unregister(prefix + "sessions.live", this);
  registry.Unregister(prefix + "sessions.hits", this);
  registry.Unregister(prefix + "sessions.misses", this);
  registry.Unregister(prefix + "sessions.evictions", this);
}

std::string Engine::model_name() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return model_->name;
}

void Engine::Observe(const poi::Checkin& checkin) {
  PA_TRACE_SPAN("serve.observe");
  // Serving never backpropagates: model forwards under this request run on
  // the tensor engine's graph-free fast path.
  const tensor::InferenceModeScope inference;
  std::shared_ptr<SessionStore> sessions;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    sessions = sessions_;
  }
  sessions->Observe(checkin);
}

TopKResponse Engine::Run(const TopKRequest& request,
                         Clock::time_point enqueue) {
  // Named span (not PA_TRACE_SPAN): its id feeds the latency histogram as
  // an exemplar, so a p99 in `pa_serve stats` or /metrics links back to
  // this request's span in the PA_OBS_TRACE dump. id() is 0 when tracing
  // is off, which degrades to a plain Record.
  const obs::TraceSpan span("serve.request");
  // Run executes on whatever thread carries the request (caller, pool
  // worker via TopKBatch/TopKAsync); the scope is per-thread, so it is
  // entered here rather than at the batch fan-out.
  const tensor::InferenceModeScope inference;
  const auto deadline =
      enqueue + std::chrono::milliseconds(config_.deadline_ms);
  TopKResponse response;
  requests_.Increment();

  auto finish = [&](Clock::time_point now) {
    response.latency_micros =
        std::chrono::duration<double, std::micro>(now - enqueue).count();
    latency_.RecordWithExemplar(response.latency_micros, span.id());
  };

  if (request.k <= 0) {
    response.status = RequestStatus::kInvalidArgument;
    finish(Clock::now());
    return response;
  }
  // Skip check: still queued past the deadline → fail fast, don't occupy
  // the session (the expensive part) at all.
  if (Clock::now() >= deadline) {
    response.status = RequestStatus::kDeadlineExceeded;
    timeouts_.Increment();
    finish(Clock::now());
    return response;
  }

  std::shared_ptr<SessionStore> sessions;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    sessions = sessions_;
  }
  if (request.strict && !sessions->HasHistory(request.user)) {
    response.status = RequestStatus::kUnknownUser;
    finish(Clock::now());
    return response;
  }
  std::vector<int32_t> pois =
      sessions->TopK(request.user, request.k, request.next_timestamp);

  const auto now = Clock::now();
  if (now > deadline) {
    // Finished late: the work ran to completion (deadlines are checked,
    // never interrupt), but the caller contract is "answer by the deadline
    // or admit you didn't".
    response.status = RequestStatus::kDeadlineExceeded;
    timeouts_.Increment();
  } else {
    response.status = RequestStatus::kOk;
    response.pois = std::move(pois);
  }
  finish(now);
  // The model forward above drew from this thread's buffer pool; publish
  // the per-thread tallies (a handful of relaxed adds against cached
  // registry handles — see BufferPool::FlushStatsToRegistry).
  tensor::internal::ThisThreadPool().FlushStatsToRegistry();
  return response;
}

TopKResponse Engine::TopK(const TopKRequest& request) {
  return Run(request, Clock::now());
}

TopKResponse Engine::TopKAt(const TopKRequest& request,
                            Clock::time_point enqueue) {
  return Run(request, enqueue);
}

std::vector<TopKResponse> Engine::TopKBatch(
    const std::vector<TopKRequest>& requests) {
  const auto enqueue = Clock::now();
  std::vector<TopKResponse> responses(requests.size());
  util::GlobalPool().ParallelFor(
      0, static_cast<int64_t>(requests.size()), 1, [&](int64_t i) {
        responses[static_cast<size_t>(i)] =
            Run(requests[static_cast<size_t>(i)], enqueue);
      });
  return responses;
}

std::future<TopKResponse> Engine::TopKAsync(const TopKRequest& request) {
  const auto enqueue = Clock::now();
  auto task = std::make_shared<std::packaged_task<TopKResponse()>>(
      [this, request, enqueue] { return Run(request, enqueue); });
  std::future<TopKResponse> future = task->get_future();
  util::GlobalPool().Submit([task] { (*task)(); });
  return future;
}

void Engine::SwapModel(std::shared_ptr<const LoadedModel> model) {
  auto sessions =
      std::make_shared<SessionStore>(model, config_.sessions);
  std::lock_guard<std::mutex> lock(swap_mu_);
  model_ = std::move(model);
  sessions_ = std::move(sessions);
  // The old SessionStore dies when its last in-flight request releases it;
  // each live entry pins the old LoadedModel until then.
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  stats.requests = requests_.value();
  stats.timeouts = timeouts_.value();
  std::shared_ptr<SessionStore> sessions;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    sessions = sessions_;
  }
  const SessionStoreStats s = sessions->Stats();
  stats.session_hits = s.hits;
  stats.session_misses = s.misses;
  stats.session_evictions = s.evictions;
  stats.live_sessions = s.live_sessions;
  // One consistent digest: count and percentiles from the same bucket
  // snapshot (the old two-counter design could be observed torn mid-Reset).
  const obs::HistogramStats latency = latency_.Stats();
  stats.p50_micros = latency.p50;
  stats.p95_micros = latency.p95;
  stats.p99_micros = latency.p99;
  return stats;
}

}  // namespace pa::serve
