#ifndef PA_SERVE_MODEL_STORE_H_
#define PA_SERVE_MODEL_STORE_H_

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "serve/artifact.h"

namespace pa::serve {

/// On-disk registry of versioned serving artifacts.
///
/// Layout under the store root:
///
///   <root>/<model-name>/v1.pam
///   <root>/<model-name>/v2.pam
///   <root>/<model-name>/ACTIVE        — text file holding a version number
///
/// `Publish` assigns the next version, writes the artifact to a temp file in
/// the same directory and `rename`s it into place — readers never observe a
/// half-written artifact — then points ACTIVE at it. ACTIVE updates go
/// through the same temp+rename dance, so a crash leaves either the old or
/// the new active version, never an empty file.
///
/// All methods are safe to call from multiple threads of one process; the
/// store does not arbitrate between processes.
class ModelStore {
 public:
  explicit ModelStore(std::filesystem::path root);

  const std::filesystem::path& root() const { return root_; }

  /// Saves `model` (+ its POI table) as the next version of
  /// `model.name()` and marks that version active. Returns the published
  /// version, or -1 with `error` set.
  int Publish(const rec::Recommender& model, const poi::PoiTable& pois,
              std::string* error = nullptr);

  /// Model names with at least one published version, sorted.
  std::vector<std::string> ListModels() const;

  /// Published versions of `name`, ascending; empty if unknown.
  std::vector<int> ListVersions(const std::string& name) const;

  /// The active version of `name`, or -1 if none.
  int ActiveVersion(const std::string& name) const;

  /// Repoints ACTIVE at an existing version (rollback / roll-forward).
  bool SetActive(const std::string& name, int version,
                 std::string* error = nullptr);

  /// Loads a specific version.
  bool Load(const std::string& name, int version, LoadedModel* out,
            std::string* error = nullptr) const;

  /// Loads the active version.
  bool LoadActive(const std::string& name, LoadedModel* out,
                  std::string* error = nullptr) const;

  /// Path of a version's artifact file (exists or not).
  std::filesystem::path ArtifactPath(const std::string& name,
                                     int version) const;

 private:
  std::filesystem::path ModelDir(const std::string& name) const;
  // Directory scan behind ListVersions; takes no lock (callers may hold mu_).
  std::vector<int> ListVersionsLocked(const std::string& name) const;

  std::filesystem::path root_;
  mutable std::mutex mu_;  // Serializes publish / SetActive bookkeeping.
};

}  // namespace pa::serve

#endif  // PA_SERVE_MODEL_STORE_H_
