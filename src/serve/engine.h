#ifndef PA_SERVE_ENGINE_H_
#define PA_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/session_store.h"

namespace pa::serve {

/// Typed request outcome. Errors are values, not exceptions: a timed-out
/// request returns `kDeadlineExceeded` with an empty ranking and the caller
/// decides what to degrade to.
enum class RequestStatus {
  kOk = 0,
  kDeadlineExceeded,
  kInvalidArgument,
  /// Shed by admission control before reaching a worker (bounded shard
  /// queue full, or the predicted queue wait already exceeds the deadline).
  kOverloaded,
  /// A strict request named a user with no observed history.
  kUnknownUser,
};

const char* RequestStatusName(RequestStatus status);

/// The wire error code for the NDJSON response envelope (DESIGN.md
/// "Networked serving"): identical to RequestStatusName except that
/// kInvalidArgument maps to "bad_request" — the protocol does not
/// distinguish a malformed field from a malformed request line.
const char* RequestStatusCode(RequestStatus status);

struct TopKRequest {
  int32_t user = 0;
  int k = 10;
  int64_t next_timestamp = 0;
  /// Strict requests fail with kUnknownUser instead of answering a cold
  /// user from the model prior (and never instantiate a session for them).
  bool strict = false;
};

struct TopKResponse {
  RequestStatus status = RequestStatus::kOk;
  std::vector<int32_t> pois;  // Best first; empty unless kOk.
  double latency_micros = 0.0;
};

struct EngineConfig {
  /// Budget per request, measured from enqueue. A request that is still
  /// queued past its deadline is skipped (fails fast without occupying a
  /// worker); one that finishes late is reported as timed out. 0 fails
  /// everything — useful for drain tests.
  int64_t deadline_ms = 250;
  SessionStoreConfig sessions;
  /// Prefix for this engine's registered instrument names ("serve." →
  /// serve.requests, serve.latency_us, ...). A sharded deployment gives
  /// every shard engine its own prefix ("serve.shard0.", ...), so per-shard
  /// counters and latency histograms coexist in one registry.
  std::string metric_prefix = "serve.";
};

struct EngineStats {
  uint64_t requests = 0;
  uint64_t timeouts = 0;
  uint64_t session_hits = 0;
  uint64_t session_misses = 0;
  uint64_t session_evictions = 0;
  uint64_t live_sessions = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;

  std::string ToJson() const;
};

/// The serving engine: request-level API over one active model.
///
/// Synchronous `Observe`/`TopK` run on the calling thread. `TopKBatch` fans
/// a batch across the global `util::ThreadPool` (grain 1 — requests are
/// coarse units); `TopKAsync` enqueues one request and returns a future.
/// Deadlines never block the pool: expiry is *checked*, at dequeue and at
/// completion, not enforced by interruption — a slow model call runs to
/// completion and is then reported as timed out.
class Engine {
 public:
  Engine(std::shared_ptr<const LoadedModel> model, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Name of the currently active model (by value: hot-swap may replace the
  /// model concurrently).
  std::string model_name() const;

  /// Feeds a check-in into the user's session (and serving history).
  void Observe(const poi::Checkin& checkin);

  /// Answers one request synchronously.
  TopKResponse TopK(const TopKRequest& request);

  /// Like TopK, but the deadline is measured from `enqueue` rather than
  /// from the call — the entry point for external queues (shard workers)
  /// whose requests spent time waiting before reaching the engine. A
  /// request dequeued past its deadline fails fast without touching the
  /// session.
  TopKResponse TopKAt(const TopKRequest& request,
                      std::chrono::steady_clock::time_point enqueue);

  /// Answers a batch; response i corresponds to request i. All requests
  /// share one enqueue instant, so the whole batch races one deadline —
  /// matching how a frontend flushes a batch of user queries at once.
  std::vector<TopKResponse> TopKBatch(const std::vector<TopKRequest>& requests);

  /// Enqueues one request on the pool.
  std::future<TopKResponse> TopKAsync(const TopKRequest& request);

  /// Hot-swaps the active model. Sessions and histories are cleared: state
  /// built against the old parameters is meaningless against the new ones.
  /// In-flight requests finish against the model they started with (entries
  /// pin it via shared_ptr).
  void SwapModel(std::shared_ptr<const LoadedModel> model);

  EngineStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  TopKResponse Run(const TopKRequest& request, Clock::time_point enqueue);

  std::shared_ptr<const LoadedModel> model_;
  EngineConfig config_;
  std::shared_ptr<SessionStore> sessions_;
  mutable std::mutex swap_mu_;  // Guards model_ / sessions_ swap.

  // Per-engine instruments (tests rely on a fresh engine starting at zero),
  // registered with the process-wide obs::MetricRegistry under the
  // "serve.*" names so `pa_serve stats` and bench snapshots see them.
  // Last-constructed engine wins the names; the destructor unregisters.
  obs::Counter requests_;
  obs::Counter timeouts_;
  obs::Histogram latency_;
};

}  // namespace pa::serve

#endif  // PA_SERVE_ENGINE_H_
