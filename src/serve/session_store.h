#ifndef PA_SERVE_SESSION_STORE_H_
#define PA_SERVE_SESSION_STORE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "poi/checkin.h"
#include "serve/artifact.h"

namespace pa::serve {

struct SessionStoreConfig {
  /// Soft cap on resident session memory. Capacity (in sessions) is
  /// memory_cap_bytes / approx_session_bytes, at least 1.
  size_t memory_cap_bytes = size_t{8} << 20;
  /// Budgeted footprint of one live session (model session state + history
  /// deque + map/list overhead). Deliberately a config knob, not a measured
  /// value: `RecSession` state is method-dependent and opaque.
  size_t approx_session_bytes = size_t{32} << 10;
  /// Check-ins of history retained per user; the rebuild source after an
  /// eviction. Sequence models only look this far back anyway (cf.
  /// NeuralRecConfig::max_seq_len).
  int max_history = 64;
};

struct SessionStoreStats {
  uint64_t hits = 0;        // Lookup found a live session.
  uint64_t misses = 0;      // Lookup created (or rebuilt) a session.
  uint64_t evictions = 0;   // Sessions dropped by the LRU cap.
  uint64_t live_sessions = 0;
};

/// Per-user serving sessions with LRU eviction and rebuild-on-miss.
///
/// The store keeps two things per user:
///  * a *history* — the last `max_history` observed check-ins. Histories are
///    small, bounded, and never evicted; they are the source of truth.
///  * a *session* — the model's `RecSession`, rebuilt from the history when
///    a request arrives for a user whose session was evicted. Because the
///    history is capped, a rebuilt session can differ from the evicted one
///    for users whose total history exceeded the cap; sequence models
///    truncate context the same way, so this is by design (documented in
///    DESIGN.md "Serving").
///
/// Thread safety: a global mutex guards the maps and LRU list; each entry
/// carries its own mutex serialising Observe/TopK on that user's session.
/// A newly created entry is published into the map with a null session;
/// every access path lazily builds it under the entry mutex
/// (EnsureSessionLocked), so no path ever dereferences a session another
/// thread is still constructing. Lock order is entry mutex, then global
/// mutex — never the reverse. Entries are `shared_ptr`s, so an eviction
/// racing a request on the same user frees the entry only after the
/// request finishes with it.
class SessionStore {
 public:
  SessionStore(std::shared_ptr<const LoadedModel> model,
               SessionStoreConfig config = {});

  /// Appends to the user's history and advances their session.
  void Observe(const poi::Checkin& checkin);

  /// Pre-loads history (e.g. from a dataset's training tail) without
  /// counting the lookups as cache traffic.
  void SeedHistory(int32_t user, const std::vector<poi::Checkin>& checkins);

  /// Top-k POI ids for the user's next check-in, best first.
  std::vector<int32_t> TopK(int32_t user, int k, int64_t next_timestamp);

  /// True iff the user has at least one observed (or seeded) check-in.
  /// Does not touch the LRU or the traffic counters.
  bool HasHistory(int32_t user) const;

  /// Drops every session AND every history (model swap: old state is
  /// meaningless against new parameters).
  void Clear();

  SessionStoreStats Stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::mutex mu;
    std::unique_ptr<rec::RecSession> session;
    // Pins the model: a swap may drop the store's reference while a request
    // still runs on this entry.
    std::shared_ptr<const LoadedModel> model;
  };

  /// Returns the user's entry, creating one (with a null session) on miss.
  /// Evicts LRU entries over capacity. Caller must NOT hold mu_.
  std::shared_ptr<Entry> GetOrCreate(int32_t user, bool count_traffic);

  /// Builds the entry's session from the stored history if it is still
  /// null. Caller must hold entry.mu and must NOT hold mu_ (this method
  /// takes mu_ briefly to copy the replay history).
  void EnsureSessionLocked(Entry& entry, int32_t user);

  std::shared_ptr<const LoadedModel> model_;
  SessionStoreConfig config_;
  size_t capacity_;

  mutable std::mutex mu_;
  // LRU list: most-recent at front; map values point into it.
  struct LruNode {
    int32_t user;
    std::shared_ptr<Entry> entry;
  };
  std::list<LruNode> lru_;
  std::unordered_map<int32_t, std::list<LruNode>::iterator> sessions_;
  std::unordered_map<int32_t, std::deque<poi::Checkin>> history_;
  SessionStoreStats stats_;
};

}  // namespace pa::serve

#endif  // PA_SERVE_SESSION_STORE_H_
