#include "serve/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pa::serve {

namespace {

struct Cursor {
  const char* p;
  const char* end;

  bool done() const { return p >= end; }
  char peek() const { return *p; }
  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
};

bool Fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

// Parses a JSON string literal (cursor on the opening quote).
bool ParseString(Cursor& c, std::string* out, std::string* error) {
  ++c.p;  // opening quote
  out->clear();
  while (!c.done()) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c.done()) break;
    const char esc = *c.p++;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (c.end - c.p < 4) return Fail(error, "truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = *c.p++;
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return Fail(error, "bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are passed
        // through as two 3-byte sequences; good enough for ids and names).
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return Fail(error, "bad escape character");
    }
  }
  return Fail(error, "unterminated string");
}

bool ParseNumber(Cursor& c, double* out, std::string* error) {
  const char* start = c.p;
  if (!c.done() && (*c.p == '-' || *c.p == '+')) ++c.p;
  while (!c.done() && (std::isdigit(static_cast<unsigned char>(*c.p)) ||
                       *c.p == '.' || *c.p == 'e' || *c.p == 'E' ||
                       *c.p == '-' || *c.p == '+')) {
    ++c.p;
  }
  const auto [ptr, ec] = std::from_chars(start, c.p, *out);
  if (ec != std::errc() || ptr != c.p) return Fail(error, "bad number");
  return true;
}

bool ParseLiteral(Cursor& c, const char* word, std::string* error) {
  for (const char* w = word; *w; ++w) {
    if (c.done() || *c.p++ != *w) return Fail(error, "bad literal");
  }
  return true;
}

}  // namespace

bool ParseFlatObject(const std::string& text,
                     std::map<std::string, JsonValue>* out,
                     std::string* error) {
  out->clear();
  Cursor c{text.data(), text.data() + text.size()};
  c.SkipWs();
  if (c.done() || c.peek() != '{') return Fail(error, "expected '{'");
  ++c.p;
  c.SkipWs();
  if (!c.done() && c.peek() == '}') {
    ++c.p;
  } else {
    for (;;) {
      c.SkipWs();
      if (c.done() || c.peek() != '"') return Fail(error, "expected key");
      std::string key;
      if (!ParseString(c, &key, error)) return false;
      c.SkipWs();
      if (c.done() || c.peek() != ':') return Fail(error, "expected ':'");
      ++c.p;
      c.SkipWs();
      if (c.done()) return Fail(error, "truncated object");

      JsonValue value;
      const char ch = c.peek();
      if (ch == '"') {
        value.type = JsonValue::Type::kString;
        if (!ParseString(c, &value.string, error)) return false;
      } else if (ch == 't') {
        if (!ParseLiteral(c, "true", error)) return false;
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
      } else if (ch == 'f') {
        if (!ParseLiteral(c, "false", error)) return false;
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
      } else if (ch == 'n') {
        if (!ParseLiteral(c, "null", error)) return false;
        value.type = JsonValue::Type::kNull;
      } else if (ch == '{' || ch == '[') {
        return Fail(error, "nested containers are not supported");
      } else {
        value.type = JsonValue::Type::kNumber;
        if (!ParseNumber(c, &value.number, error)) return false;
      }
      (*out)[key] = std::move(value);

      c.SkipWs();
      if (c.done()) return Fail(error, "truncated object");
      if (c.peek() == ',') {
        ++c.p;
        continue;
      }
      if (c.peek() == '}') {
        ++c.p;
        break;
      }
      return Fail(error, "expected ',' or '}'");
    }
  }
  c.SkipWs();
  if (!c.done()) return Fail(error, "trailing characters after object");
  return true;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

namespace {

std::string FormatNumber(double value) {
  // Integral values print without a fractional part ("3", not "3.000000");
  // everything else gets enough digits to round-trip.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const std::string& key) {
  Comma();
  if (!key.empty()) {
    out_ += '"';
    out_ += EscapeJson(key);
    out_ += "\":";
  }
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

void JsonWriter::Comma() {
  if (need_comma_) out_ += ',';
}

void JsonWriter::Key(const std::string& key) {
  Comma();
  out_ += '"';
  out_ += EscapeJson(key);
  out_ += "\":";
}

JsonWriter& JsonWriter::Field(const std::string& key,
                              const std::string& value) {
  Key(key);
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, const char* value) {
  return Field(key, std::string(value));
}

JsonWriter& JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  out_ += FormatNumber(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, int value) {
  return Field(key, static_cast<int64_t>(value));
}

JsonWriter& JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::RawField(const std::string& key,
                                 const std::string& json) {
  Key(key);
  out_ += json;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Element(int64_t value) {
  Comma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Element(double value) {
  Comma();
  out_ += FormatNumber(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::RawElement(const std::string& json) {
  Comma();
  out_ += json;
  need_comma_ = true;
  return *this;
}

}  // namespace pa::serve
