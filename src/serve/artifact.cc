#include "serve/artifact.h"

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "geo/latlng.h"
#include "nn/serialize.h"
#include "rec/registry.h"

namespace pa::serve {

namespace {

// "PASV" — Poi Augmentation SerVing artifact.
constexpr uint32_t kMagic = 0x50415356;
// v2 added the optional trailing quantized section; v1 files still load.
constexpr uint32_t kContainerVersion = 2;
constexpr uint32_t kMinContainerVersion = 1;
// Artifacts above this size are assumed corrupt rather than real (the
// largest model in this library is a few MB). The loader enforces this as
// a running cap while reading, so a corrupt or hostile file is rejected
// after at most this much allocation, not after slurping the whole stream.
constexpr uint64_t kMaxBodyBytes = uint64_t{1} << 28;

bool Fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

template <typename T>
void AppendPod(std::string& buf, const T& value) {
  buf.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(const char*& p, const char* end, T* out) {
  if (end - p < static_cast<ptrdiff_t>(sizeof(T))) return false;
  std::memcpy(out, p, sizeof(T));
  p += sizeof(T);
  return true;
}

}  // namespace

bool SaveArtifact(std::ostream& os, const rec::Recommender& model,
                  const poi::PoiTable& pois, std::string* error) {
  // Serialize the model payload first; an unfitted model fails here before
  // anything is written.
  std::ostringstream payload_stream(std::ios::binary);
  if (!model.Save(payload_stream, error)) return false;
  const std::string payload = payload_stream.str();

  // Assemble the checksummed body in memory (name + POI block + payload).
  // Models in this library are a few MB at most, so buffering is cheap and
  // lets the checksum live in the header where a reader finds it first.
  std::string body;
  const std::string name = model.name();
  body.reserve(64 + static_cast<size_t>(pois.size()) * 24 + payload.size());
  AppendPod(body, static_cast<uint64_t>(name.size()));
  body += name;
  AppendPod(body, static_cast<int32_t>(pois.size()));
  for (int32_t i = 0; i < pois.size(); ++i) {
    const geo::LatLng& c = pois.coord(i);
    AppendPod(body, c.lat);
    AppendPod(body, c.lng);
    AppendPod(body, pois.popularity(i));
  }
  AppendPod(body, static_cast<uint64_t>(payload.size()));
  body += payload;

  // v2 trailer: the optional quantized-serving section.
  if (model.has_quantized_serving()) {
    std::ostringstream section_stream(std::ios::binary);
    if (!model.SaveQuantizedSection(section_stream, error)) return false;
    const std::string section = section_stream.str();
    AppendPod(body, static_cast<uint8_t>(1));
    AppendPod(body, static_cast<uint64_t>(section.size()));
    body += section;
  } else {
    AppendPod(body, static_cast<uint8_t>(0));
  }

  const uint64_t checksum = nn::Checksum64(body.data(), body.size());
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&kContainerVersion),
           sizeof(kContainerVersion));
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!os.good()) return Fail(error, "write failed while saving artifact");
  return true;
}

bool LoadArtifact(std::istream& is, LoadedModel* out, std::string* error) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t checksum = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  is.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!is.good()) return Fail(error, "truncated artifact (header)");
  if (magic != kMagic) return Fail(error, "not a serving artifact (bad magic)");
  if (version < kMinContainerVersion || version > kContainerVersion) {
    return Fail(error, "unsupported artifact version " +
                           std::to_string(version) + " (this build reads v" +
                           std::to_string(kMinContainerVersion) + "-v" +
                           std::to_string(kContainerVersion) + ")");
  }

  // Read the body in chunks with a running size cap, verify the checksum,
  // then parse from memory — the parse below can trust every length field
  // it reads, and an implausibly large file is rejected without first
  // buffering all of it.
  std::string body;
  char chunk[64 * 1024];
  while (true) {
    is.read(chunk, sizeof(chunk));
    body.append(chunk, static_cast<size_t>(is.gcount()));
    if (body.size() > kMaxBodyBytes) {
      return Fail(error, "artifact body implausibly large");
    }
    if (!is.good()) break;
  }
  if (is.bad()) return Fail(error, "read failed while loading artifact");
  if (nn::Checksum64(body.data(), body.size()) != checksum) {
    return Fail(error, "checksum mismatch (corrupt artifact)");
  }

  const char* p = body.data();
  const char* end = p + body.size();

  uint64_t name_len = 0;
  if (!ReadPod(p, end, &name_len) ||
      name_len > static_cast<uint64_t>(end - p)) {
    return Fail(error, "truncated artifact (name)");
  }
  std::string name(p, static_cast<size_t>(name_len));
  p += name_len;

  int32_t num_pois = 0;
  if (!ReadPod(p, end, &num_pois) || num_pois < 0) {
    return Fail(error, "truncated artifact (POI count)");
  }
  std::vector<geo::LatLng> coords;
  std::vector<int64_t> popularity;
  coords.reserve(static_cast<size_t>(num_pois));
  popularity.reserve(static_cast<size_t>(num_pois));
  for (int32_t i = 0; i < num_pois; ++i) {
    geo::LatLng c;
    int64_t pop = 0;
    if (!ReadPod(p, end, &c.lat) || !ReadPod(p, end, &c.lng) ||
        !ReadPod(p, end, &pop)) {
      return Fail(error, "truncated artifact (POI block)");
    }
    coords.push_back(c);
    popularity.push_back(pop);
  }

  uint64_t payload_len = 0;
  if (!ReadPod(p, end, &payload_len)) {
    return Fail(error, "truncated artifact (model payload)");
  }
  // v1 ends exactly at the payload; v2 may carry the quantized trailer.
  if (version == 1 ? payload_len != static_cast<uint64_t>(end - p)
                   : payload_len > static_cast<uint64_t>(end - p)) {
    return Fail(error, "truncated artifact (model payload)");
  }
  const char* payload_begin = p;
  p += payload_len;

  uint8_t quant_flag = 0;
  uint64_t quant_len = 0;
  const char* quant_begin = nullptr;
  if (version >= 2) {
    if (!ReadPod(p, end, &quant_flag) || quant_flag > 1) {
      return Fail(error, "truncated artifact (quantized flag)");
    }
    if (quant_flag == 1) {
      if (!ReadPod(p, end, &quant_len) ||
          quant_len != static_cast<uint64_t>(end - p)) {
        return Fail(error, "truncated artifact (quantized section)");
      }
      quant_begin = p;
    } else if (p != end) {
      return Fail(error, "trailing bytes after artifact payload");
    }
  }

  auto pois = std::make_shared<poi::PoiTable>(std::move(coords));
  for (int32_t i = 0; i < num_pois; ++i) {
    pois->AddPopularity(i, popularity[static_cast<size_t>(i)]);
  }

  std::istringstream payload(
      std::string(payload_begin, static_cast<size_t>(payload_len)),
      std::ios::binary);
  std::unique_ptr<rec::Recommender> model =
      rec::LoadRecommender(name, payload, *pois, error);
  if (!model) return false;

  if (quant_begin != nullptr) {
    std::istringstream section(
        std::string(quant_begin, static_cast<size_t>(quant_len)),
        std::ios::binary);
    if (!model->LoadQuantizedSection(section, error)) return false;
  }

  out->name = std::move(name);
  out->pois = std::move(pois);
  out->model = std::move(model);
  return true;
}

}  // namespace pa::serve
