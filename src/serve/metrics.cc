#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace pa::serve {

namespace {

// log(1.5) — bucket index is floor(log(micros) / log(ratio)).
const double kLogRatio = std::log(LatencyHistogram::kRatio);

int BucketIndex(double micros) {
  if (micros <= LatencyHistogram::kFirstBucketMicros) return 0;
  const int idx = static_cast<int>(
      std::log(micros / LatencyHistogram::kFirstBucketMicros) / kLogRatio);
  return std::clamp(idx, 0, LatencyHistogram::kBuckets - 1);
}

double BucketLowerMicros(int i) {
  return LatencyHistogram::kFirstBucketMicros *
         std::pow(LatencyHistogram::kRatio, i);
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  counts_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::PercentileMicros(double q) const {
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (seen + c >= rank) {
      // Interpolate inside the bucket by the rank's position in it.
      const double frac = c == 0 ? 0.0 : double(rank - seen) / double(c);
      const double lo = BucketLowerMicros(i);
      const double hi = lo * kRatio;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return BucketLowerMicros(kBuckets - 1) * kRatio;
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace pa::serve
