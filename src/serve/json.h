#ifndef PA_SERVE_JSON_H_
#define PA_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <string>

namespace pa::serve {

/// Minimal JSON support for the serving frontends.
///
/// The `pa_serve` wire protocol is newline-delimited *flat* JSON objects —
/// scalar values only, no nesting — which keeps the hand-rolled parser
/// small enough to audit while staying interoperable with `jq`, Python,
/// shell pipelines, etc. Responses are emitted through `JsonWriter`, which
/// can produce nested objects and arrays (one-way generation is easy; only
/// parsing is restricted).

/// One scalar value of a flat JSON object.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  int64_t AsInt() const { return static_cast<int64_t>(number); }
};

/// Parses `{"key": scalar, ...}`. Returns false (with a reason in `error`)
/// on malformed input or nested containers. Duplicate keys keep the last
/// value. An empty object `{}` is valid.
bool ParseFlatObject(const std::string& text,
                     std::map<std::string, JsonValue>* out,
                     std::string* error = nullptr);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string EscapeJson(const std::string& s);

/// Tiny append-style JSON builder:
///
///   JsonWriter w;
///   w.BeginObject().Field("ok", true).Field("n", 3).EndObject();
///   w.str()  // {"ok":true,"n":3}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const std::string& key = "");
  JsonWriter& EndArray();
  JsonWriter& Field(const std::string& key, const std::string& value);
  JsonWriter& Field(const std::string& key, const char* value);
  JsonWriter& Field(const std::string& key, double value);
  JsonWriter& Field(const std::string& key, int64_t value);
  JsonWriter& Field(const std::string& key, int value);
  JsonWriter& Field(const std::string& key, uint64_t value);
  JsonWriter& Field(const std::string& key, bool value);
  /// Raw (pre-serialized) value, e.g. a nested object built separately.
  JsonWriter& RawField(const std::string& key, const std::string& json);
  JsonWriter& Element(int64_t value);
  JsonWriter& Element(double value);
  /// Raw (pre-serialized) array element, e.g. a nested object per entry.
  JsonWriter& RawElement(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void Comma();
  void Key(const std::string& key);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace pa::serve

#endif  // PA_SERVE_JSON_H_
