#ifndef PA_SERVE_METRICS_H_
#define PA_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace pa::serve {

/// Lock-free latency histogram with geometric buckets.
///
/// Bucket i covers latencies in [1µs * 1.5^i, 1µs * 1.5^(i+1)); 64 buckets
/// span ~1µs to ~2.4e11µs, far beyond any request this engine serves, so
/// the last bucket acts as a catch-all. Percentiles interpolate linearly
/// inside the winning bucket, which bounds relative error by the bucket
/// ratio (50%) in the worst case and far less in practice — plenty for the
/// p50/p95/p99 the serving bench reports.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kFirstBucketMicros = 1.0;
  static constexpr double kRatio = 1.5;

  void Record(double micros);

  /// Latency (µs) at quantile `q` in [0, 1]; 0 when empty.
  double PercentileMicros(double q) const;

  uint64_t count() const { return total_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> total_{0};
};

}  // namespace pa::serve

#endif  // PA_SERVE_METRICS_H_
