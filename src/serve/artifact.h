#ifndef PA_SERVE_ARTIFACT_H_
#define PA_SERVE_ARTIFACT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "poi/poi_table.h"
#include "rec/recommender.h"

namespace pa::serve {

/// A model as loaded for serving: the recommender plus the POI universe it
/// was fitted on. Artifacts are *self-contained* — the POI table is embedded
/// in the file — so a serving process needs nothing but the artifact.
struct LoadedModel {
  std::string name;  // Registry name, e.g. "LSTM" (also the store name).
  // `pois` is declared before `model` so it is destroyed last: the
  // recommender holds a raw pointer into the table.
  std::shared_ptr<poi::PoiTable> pois;
  std::shared_ptr<rec::Recommender> model;
};

/// Serving artifact container, format v2 (v1 still loads):
///
///   [u32 magic "PASV"] [u32 container version]
///   [u64 FNV-1a checksum of every byte that follows]
///   [u64 name length][name bytes]            — registry name for reload
///   [i32 POI count] {f64 lat, f64 lng, i64 popularity} * count
///   [u64 payload length][payload bytes]      — Recommender::Save stream
///   [u8 quantized flag]                      — v2 only; if 1:
///   [u64 section length][section bytes]      —   SaveQuantizedSection bytes
///
/// v2 appends an *optional* quantized-serving section after the float
/// payload: written when the model `has_quantized_serving()` (i.e. the
/// publisher ran `QuantizeForServing`, e.g. `pa_serve publish --quantize`),
/// flag 0 otherwise. v1 files are the same bytes minus the trailing
/// section, and this loader accepts them unchanged; a v1 reader cannot see
/// a v2 file's section but also cannot misparse it, because the version
/// field precedes everything.
///
/// The checksum covers the name, POI block, model payload and quantized
/// section, so any truncation or bit-flip after the header is caught before
/// the payload parser runs. (The payload itself carries a second, nn-level
/// checksum — redundant by design: the container check localises corruption
/// to "the artifact file", the inner check to "the parameter blob".)
bool SaveArtifact(std::ostream& os, const rec::Recommender& model,
                  const poi::PoiTable& pois, std::string* error = nullptr);

/// Restores an artifact written by `SaveArtifact`. On success `out` owns a
/// fresh POI table and a recommender wired to it. Returns false (with a
/// reason in `error`) on bad magic, unsupported version, checksum mismatch,
/// truncation, or a payload `rec::LoadRecommender` rejects.
bool LoadArtifact(std::istream& is, LoadedModel* out,
                  std::string* error = nullptr);

}  // namespace pa::serve

#endif  // PA_SERVE_ARTIFACT_H_
