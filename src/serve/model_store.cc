#include "serve/model_store.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>

namespace pa::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kArtifactExt = ".pam";
constexpr const char* kActiveFile = "ACTIVE";

bool Fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

/// Parses "v<N>.pam" → N; -1 for anything else.
int VersionFromFilename(const std::string& filename) {
  if (filename.size() < 6 || filename[0] != 'v') return -1;
  if (!filename.ends_with(kArtifactExt)) return -1;
  const char* first = filename.data() + 1;
  const char* last = filename.data() + filename.size() - 4;
  int v = 0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || v <= 0) return -1;
  return v;
}

/// Writes `content` to `path` atomically: temp file in the same directory
/// (same filesystem, so rename is atomic), fsync-less but crash-consistent
/// at the rename boundary.
bool AtomicWrite(const fs::path& path, const std::string& content,
                 std::string* error) {
  const fs::path tmp = path.parent_path() / (path.filename().string() + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Fail(error, "cannot open " + tmp.string());
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out.good()) {
      return Fail(error, "write failed for " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Fail(error, "rename failed for " + path.string());
  }
  return true;
}

}  // namespace

ModelStore::ModelStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

fs::path ModelStore::ModelDir(const std::string& name) const {
  return root_ / name;
}

fs::path ModelStore::ArtifactPath(const std::string& name, int version) const {
  return ModelDir(name) / ("v" + std::to_string(version) + kArtifactExt);
}

int ModelStore::Publish(const rec::Recommender& model,
                        const poi::PoiTable& pois, std::string* error) {
  // Serialize outside the lock — only directory bookkeeping needs it.
  std::ostringstream artifact(std::ios::binary);
  if (!SaveArtifact(artifact, model, pois, error)) return -1;

  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = model.name();
  const fs::path dir = ModelDir(name);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    Fail(error, "cannot create " + dir.string());
    return -1;
  }

  int version = 1;
  for (const int v : ListVersionsLocked(name)) version = std::max(version, v + 1);

  if (!AtomicWrite(ArtifactPath(name, version), artifact.str(), error)) {
    return -1;
  }
  if (!AtomicWrite(dir / kActiveFile, std::to_string(version) + "\n", error)) {
    return -1;
  }
  return version;
}

std::vector<std::string> ModelStore::ListModels() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    if (!ListVersions(entry.path().filename().string()).empty()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<int> ModelStore::ListVersionsLocked(const std::string& name) const {
  std::vector<int> versions;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(ModelDir(name), ec)) {
    if (!entry.is_regular_file()) continue;
    const int v = VersionFromFilename(entry.path().filename().string());
    if (v > 0) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

std::vector<int> ModelStore::ListVersions(const std::string& name) const {
  return ListVersionsLocked(name);
}

int ModelStore::ActiveVersion(const std::string& name) const {
  std::ifstream in(ModelDir(name) / kActiveFile);
  int v = -1;
  if (!(in >> v) || v <= 0) return -1;
  return v;
}

bool ModelStore::SetActive(const std::string& name, int version,
                           std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  if (!fs::exists(ArtifactPath(name, version), ec)) {
    return Fail(error, "no version " + std::to_string(version) + " of \"" +
                           name + "\"");
  }
  return AtomicWrite(ModelDir(name) / kActiveFile,
                     std::to_string(version) + "\n", error);
}

bool ModelStore::Load(const std::string& name, int version, LoadedModel* out,
                      std::string* error) const {
  const fs::path path = ArtifactPath(name, version);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path.string());
  return LoadArtifact(in, out, error);
}

bool ModelStore::LoadActive(const std::string& name, LoadedModel* out,
                            std::string* error) const {
  const int version = ActiveVersion(name);
  if (version < 0) {
    return Fail(error, "no active version for \"" + name + "\"");
  }
  return Load(name, version, out, error);
}

}  // namespace pa::serve
