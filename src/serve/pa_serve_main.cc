// pa_serve — offline-first serving frontend for trained POI recommenders.
//
// Subcommands:
//
//   pa_serve publish --store DIR --method LSTM [--csv FILE] [--seed N]
//                    [--epochs-scale X] [--users N] [--pois N]
//                    [--profile gowalla|brightkite] [--quantize 1]
//     Trains `--method` (on a CSV dataset, or on a synthetic snapshot when
//     no CSV is given) and publishes it to the model store as the next
//     version, marking it active. `--quantize 1` additionally builds the
//     int8 serving tables and embeds them in the artifact (container v2
//     optional section); serving then scores TopK through the fused int8
//     GEMV instead of the float output projection.
//
//   pa_serve list --store DIR
//     Prints models, versions and the active version as JSON.
//
//   pa_serve activate --store DIR --model LSTM --version N
//     Repoints ACTIVE (rollback / roll-forward).
//
//   pa_serve serve --store DIR --model LSTM [--version N] [--deadline-ms N]
//                  [--shards K] [--queue-capacity N] [--metrics-port N]
//     Loads the model and answers newline-delimited JSON requests on stdin,
//     one response line per request on stdout:
//
//       {"op":"observe","user":3,"poi":17,"timestamp":7200}
//       {"op":"topk","user":3,"k":5,"timestamp":10800}
//       {"op":"topk","user":3,"k":5,"timestamp":10800,"strict":true}
//       {"op":"stats"}
//       {"op":"activate","version":2}
//       {"op":"quit"}
//
//     Responses are a structured envelope (DESIGN.md "Networked serving"):
//     {"ok":true,"status":"ok",...} on success, {"ok":false,"code":
//     "bad_request|overloaded|deadline_exceeded|unknown_user","error":...}
//     on failure; an "id" field in the request is echoed back. The stats
//     reply carries the aggregate + per-shard digests and a full
//     obs::MetricRegistry snapshot.
//
//     Request traffic stays on stdin/stdout; `--metrics-port N` (0 = an
//     ephemeral port, printed to stderr) additionally starts the loopback
//     HTTP exposition server with GET /metrics (Prometheus text), /varz
//     (registry JSON), /healthz (component health, 503 on FAILED) and
//     /slowz (the K worst-latency request traces) so a scraper can watch a
//     long-lived loop. The bound port is also surfaced as the stats op's
//     "metrics_port" field and the obs.exposition.port gauge.
//
//   pa_serve listen --store DIR --model LSTM [--version N] [--port N]
//                   [--shards K] [--deadline-ms N] [--queue-capacity N]
//                   [--idle-timeout-ms N] [--metrics-port N]
//     The networked front-end: a poll-driven loopback TCP server speaking
//     the same NDJSON protocol as `serve` (one request line in, one
//     response line out, pipelining allowed — responses come back in
//     request order per connection), dispatching into K shard workers that
//     each own a consistent-hash partition of the user space. --port 0
//     binds an ephemeral port; the bound port is announced on stderr as
//     "listening on 127.0.0.1:PORT". Overload is shed per shard with a
//     typed "overloaded" envelope. {"op":"activate","version":N} flips all
//     shards to a new model version with zero dropped requests; {"op":
//     "quit"}, SIGINT or SIGTERM drain gracefully (responses for admitted
//     requests are flushed before exit).
//
//   pa_serve slowz --port N
//     Fetches GET /slowz from a running server's metrics exposition port
//     and prints the JSON body: the K worst-latency request traces
//     captured so far, each with its full span tree (net.parse,
//     net.queue_wait, serve.compute, net.serialize, net.write_wait and
//     everything that ran under them). Pair with the "trace":"<hex>" id
//     echoed in every NDJSON response envelope to look up a specific slow
//     request, and scripts/trace_summary.py --trace <hex> for the
//     critical-path view.
//
//   pa_serve stats --store DIR [--model LSTM] [--version N] [--probe N]
//     Loads the model, drives a small probe workload (N users each observe
//     a couple of check-ins, then one top-k batch) through a fresh engine,
//     and prints one NDJSON line with the full metric-registry snapshot —
//     a self-contained health check covering serving, session-store,
//     thread-pool and tensor-pool metrics. "probe_delta" carries only what
//     the probe itself contributed (snapshot-before/after delta), so the
//     probe is separable from whatever the process counted before it.
//
// All long-lived subcommands honor PA_OBS_TIMESERIES=<path> (+ optional
// PA_OBS_SAMPLE_PERIOD_MS): a background sampler appends one NDJSON
// registry snapshot per period with delta-encoded counters.

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/ndjson_protocol.h"
#include "net/ndjson_server.h"
#include "net/sharded_engine.h"
#include "net/socket_util.h"
#include "obs/health.h"
#include "obs/http_exposition.h"
#include "obs/metrics.h"
#include "obs/slow_trace.h"
#include "obs/telemetry_sampler.h"
#include "obs/trace.h"
#include "poi/csv.h"
#include "poi/synthetic.h"
#include "rec/registry.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "serve/model_store.h"
#include "util/rng.h"

namespace {

using namespace pa;

// Exits with the same diagnostic style ParseFlags uses for malformed
// arguments; std::stol/std::stod would otherwise throw an uncaught
// exception on values like `--version abc`.
[[noreturn]] void BadFlagValue(const std::string& key,
                               const std::string& value) {
  std::fprintf(stderr, "pa_serve: bad value for --%s: \"%s\"\n", key.c_str(),
               value.c_str());
  std::exit(2);
}

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  long GetInt(const std::string& key, long def) const {
    auto it = values.find(key);
    if (it == values.end()) return def;
    try {
      size_t pos = 0;
      const long value = std::stol(it->second, &pos);
      if (pos != it->second.size()) BadFlagValue(key, it->second);
      return value;
    } catch (const std::exception&) {
      BadFlagValue(key, it->second);
    }
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values.find(key);
    if (it == values.end()) return def;
    try {
      size_t pos = 0;
      const double value = std::stod(it->second, &pos);
      if (pos != it->second.size()) BadFlagValue(key, it->second);
      return value;
    } catch (const std::exception&) {
      BadFlagValue(key, it->second);
    }
  }
};

bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "pa_serve: bad argument \"%s\"\n", arg);
      return false;
    }
    // Both --key value and --key=value.
    if (const char* eq = std::strchr(arg + 2, '=')) {
      flags->values[std::string(arg + 2, eq)] = eq + 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "pa_serve: missing value for \"%s\"\n", arg);
      return false;
    }
    flags->values[arg + 2] = argv[++i];
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pa_serve <publish|list|activate|serve|listen|stats|"
               "slowz> --store DIR [options]\n(see the header of "
               "src/serve/pa_serve_main.cc)\n");
  return 2;
}

int CmdPublish(const Flags& flags) {
  const std::string method = flags.Get("method", "LSTM");
  const std::string csv = flags.Get("csv");

  poi::Dataset dataset;
  if (!csv.empty()) {
    std::string why;
    if (!poi::LoadCheckinsCsvFile(csv, &dataset, &why)) {
      std::fprintf(stderr, "pa_serve: cannot load %s: %s\n", csv.c_str(),
                   why.c_str());
      return 1;
    }
  } else {
    poi::LbsnProfile profile = flags.Get("profile", "gowalla") == "brightkite"
                                   ? poi::BrightkiteProfile()
                                   : poi::GowallaProfile();
    profile.num_users = static_cast<int>(flags.GetInt("users", 32));
    profile.num_pois = static_cast<int>(flags.GetInt("pois", 500));
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
    dataset = poi::GenerateLbsn(profile, rng).observed;
  }

  std::unique_ptr<rec::Recommender> model = rec::MakeRecommender(
      method, static_cast<uint64_t>(flags.GetInt("seed", 7)),
      flags.GetDouble("epochs-scale", 1.0));
  if (!model) {
    std::fprintf(stderr, "pa_serve: unknown recommender \"%s\" (known: %s)\n",
                 method.c_str(), rec::KnownRecommenderNamesString().c_str());
    return 1;
  }

  std::fprintf(stderr, "pa_serve: training %s on %d users / %d POIs...\n",
               model->name().c_str(), dataset.num_users(), dataset.num_pois());
  model->Fit(dataset.sequences, dataset.pois);

  if (flags.GetInt("quantize", 0) != 0) {
    std::string qerror;
    if (!model->QuantizeForServing(&qerror)) {
      std::fprintf(stderr, "pa_serve: --quantize failed: %s\n", qerror.c_str());
      return 1;
    }
    std::fprintf(stderr, "pa_serve: built int8 serving tables\n");
  }

  serve::ModelStore store(flags.Get("store", "model_store"));
  std::string error;
  const int version = store.Publish(*model, dataset.pois, &error);
  if (version < 0) {
    std::fprintf(stderr, "pa_serve: publish failed: %s\n", error.c_str());
    return 1;
  }

  serve::JsonWriter w;
  w.BeginObject()
      .Field("model", model->name())
      .Field("version", version)
      .Field("path", store.ArtifactPath(model->name(), version).string())
      .EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

int CmdList(const Flags& flags) {
  serve::ModelStore store(flags.Get("store", "model_store"));
  serve::JsonWriter w;
  w.BeginObject().BeginArray("models");
  for (const std::string& name : store.ListModels()) {
    w.BeginObject().Field("name", name).Field("active",
                                              store.ActiveVersion(name));
    w.BeginArray("versions");
    for (const int v : store.ListVersions(name)) w.Element(int64_t{v});
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

int CmdActivate(const Flags& flags) {
  serve::ModelStore store(flags.Get("store", "model_store"));
  std::string error;
  if (!store.SetActive(flags.Get("model"),
                       static_cast<int>(flags.GetInt("version", -1)), &error)) {
    std::fprintf(stderr, "pa_serve: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

void Reply(const std::string& json) {
  std::fputs(json.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);  // A line-oriented peer must see the line now.
}

/// Loads the model named by --model/--version (active version when no
/// --version). Returns nullptr after printing a diagnostic.
std::shared_ptr<const serve::LoadedModel> LoadServingModel(
    const serve::ModelStore& store, const Flags& flags) {
  const std::string name = flags.Get("model", "LSTM");
  const int version = static_cast<int>(flags.GetInt("version", -1));
  serve::LoadedModel loaded;
  std::string error;
  const bool ok = version > 0 ? store.Load(name, version, &loaded, &error)
                              : store.LoadActive(name, &loaded, &error);
  if (!ok) {
    std::fprintf(stderr, "pa_serve: cannot load \"%s\": %s\n", name.c_str(),
                 error.c_str());
    return nullptr;
  }
  return std::make_shared<const serve::LoadedModel>(std::move(loaded));
}

net::ShardedEngineConfig ShardConfigFromFlags(const Flags& flags) {
  net::ShardedEngineConfig config;
  config.num_shards =
      static_cast<int>(std::max(1L, flags.GetInt("shards", 1)));
  config.deadline_ms = flags.GetInt("deadline-ms", 250);
  config.queue_capacity =
      static_cast<size_t>(std::max(1L, flags.GetInt("queue-capacity", 256)));
  return config;
}

/// Starts the metrics exposition server when --metrics-port is present.
/// Returns false on bind failure (diagnostic already printed).
bool MaybeStartExposition(const Flags& flags,
                          obs::ExpositionServer* exposition) {
  if (!flags.values.count("metrics-port")) return true;
  const long port = flags.GetInt("metrics-port", 0);
  if (port < 0 || port > 65535 ||
      !exposition->Start(static_cast<uint16_t>(port))) {
    std::fprintf(stderr, "pa_serve: cannot bind metrics port %ld\n", port);
    return false;
  }
  // Machine-parseable (tier1 smoke reads this line to find an ephemeral
  // port).
  std::fprintf(stderr, "pa_serve: metrics listening on http://127.0.0.1:%u\n",
               static_cast<unsigned>(exposition->port()));
  return true;
}

int CmdServe(const Flags& flags) {
  serve::ModelStore store(flags.Get("store", "model_store"));
  std::shared_ptr<const serve::LoadedModel> loaded =
      LoadServingModel(store, flags);
  if (!loaded) return 1;

  const int num_pois = loaded->pois->size();
  net::ShardedEngine engine(loaded, ShardConfigFromFlags(flags));
  std::fprintf(stderr,
               "pa_serve: serving %s (%d POIs, %d shard%s); reading NDJSON\n",
               engine.model_name().c_str(), num_pois, engine.num_shards(),
               engine.num_shards() == 1 ? "" : "s");
  obs::HealthRegistry::Global().Set("serve.model", obs::HealthStatus::kOk,
                                    engine.model_name());

  obs::ExpositionServer exposition;
  if (!MaybeStartExposition(flags, &exposition)) return 1;

  net::NdjsonDispatcher::Options options;
  options.store = &store;
  options.default_model = flags.Get("model", "LSTM");
  options.metrics_port = exposition.port();
  net::NdjsonDispatcher dispatcher(&engine, options);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    bool quit = false;
    // One trace per stdin line, mirroring the TCP front-end: minted here,
    // installed around the blocking dispatch, ended once the response is
    // in hand (write-wait is meaningless on a blocking stdout).
    const obs::TraceContext trace = obs::SlowTraceReservoir::Global().Begin();
    std::string response;
    {
      const obs::TraceContextScope scope(trace);
      response = dispatcher.HandleLine(line, &quit);
    }
    obs::SlowTraceReservoir::Global().End(trace);
    Reply(response);
    if (quit) break;
  }
  return 0;
}

// SIGINT/SIGTERM → graceful drain of the active listener. A plain pointer
// set before the handlers are installed; RequestShutdown is
// async-signal-safe by contract.
net::NdjsonServer* g_listen_server = nullptr;

void HandleListenSignal(int) {
  if (g_listen_server) g_listen_server->RequestShutdown();
}

int CmdListen(const Flags& flags) {
  serve::ModelStore store(flags.Get("store", "model_store"));
  std::shared_ptr<const serve::LoadedModel> loaded =
      LoadServingModel(store, flags);
  if (!loaded) return 1;

  const int num_pois = loaded->pois->size();
  net::ShardedEngine engine(loaded, ShardConfigFromFlags(flags));
  obs::HealthRegistry::Global().Set("serve.model", obs::HealthStatus::kOk,
                                    engine.model_name());

  obs::ExpositionServer exposition;
  if (!MaybeStartExposition(flags, &exposition)) return 1;

  net::NdjsonServer server;
  net::NdjsonDispatcher::Options options;
  options.store = &store;
  options.default_model = flags.Get("model", "LSTM");
  options.metrics_port = exposition.port();
  options.on_quit = [&server] { server.RequestShutdown(); };
  net::NdjsonDispatcher dispatcher(&engine, options);

  net::NdjsonServerConfig server_config;
  const long port = flags.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "pa_serve: bad --port %ld\n", port);
    return 1;
  }
  server_config.port = static_cast<uint16_t>(port);
  server_config.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 60'000));

  std::string error;
  if (!server.Start(server_config,
                    [&dispatcher, &server](uint64_t conn, uint64_t seq,
                                           std::string line) {
                      dispatcher.HandleLineAsync(
                          std::move(line),
                          [conn, seq, &server](std::string response) {
                            server.Reply(conn, seq, std::move(response));
                          });
                    },
                    &error)) {
    std::fprintf(stderr, "pa_serve: cannot listen: %s\n", error.c_str());
    return 1;
  }

  g_listen_server = &server;
  std::signal(SIGINT, HandleListenSignal);
  std::signal(SIGTERM, HandleListenSignal);

  // Machine-parseable (tier1 listen smoke and bench_serving read this line
  // to find the ephemeral port).
  std::fprintf(stderr, "pa_serve: listening on 127.0.0.1:%u (%s, %d POIs, %d "
               "shard%s)\n",
               static_cast<unsigned>(server.port()),
               engine.model_name().c_str(), num_pois, engine.num_shards(),
               engine.num_shards() == 1 ? "" : "s");
  std::fflush(stderr);

  server.Wait();
  g_listen_server = nullptr;
  obs::HealthRegistry::Global().Remove("serve.model");
  std::fprintf(stderr, "pa_serve: drained, shutting down\n");
  return 0;
}

int CmdSlowz(const Flags& flags) {
  const long port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr,
                 "pa_serve: slowz requires --port N (the server's "
                 "--metrics-port; with --metrics-port=0 read the bound port "
                 "from the stats op's \"metrics_port\" field)\n");
    return 2;
  }
  std::string error;
  const int fd = net::ConnectTcp(static_cast<uint16_t>(port), &error);
  if (fd < 0) {
    std::fprintf(stderr, "pa_serve: cannot connect to 127.0.0.1:%ld: %s\n",
                 port, error.c_str());
    return 1;
  }
  const std::string request =
      "GET /slowz HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (!net::SendAll(fd, request.data(), request.size())) {
    std::fprintf(stderr, "pa_serve: cannot send request to 127.0.0.1:%ld\n",
                 port);
    close(fd);
    return 1;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (Connection: close) or error; either way we have the body.
  }
  close(fd);

  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    std::fprintf(stderr, "pa_serve: malformed HTTP response from port %ld\n",
                 port);
    return 1;
  }
  const std::string status_line =
      response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    std::fprintf(stderr, "pa_serve: /slowz answered \"%s\"\n",
                 status_line.c_str());
    return 1;
  }
  std::fputs(response.c_str() + header_end + 4, stdout);
  return 0;
}

int CmdStats(const Flags& flags) {
  serve::ModelStore store(flags.Get("store", "model_store"));
  const std::string name = flags.Get("model", "LSTM");
  const int version = static_cast<int>(flags.GetInt("version", -1));

  serve::LoadedModel loaded;
  std::string error;
  const bool ok = version > 0 ? store.Load(name, version, &loaded, &error)
                              : store.LoadActive(name, &loaded, &error);
  if (!ok) {
    std::fprintf(stderr, "pa_serve: cannot load \"%s\": %s\n", name.c_str(),
                 error.c_str());
    return 1;
  }

  const int num_pois = loaded.pois->size();
  serve::Engine engine(
      std::make_shared<const serve::LoadedModel>(std::move(loaded)));

  // Drive a tiny deterministic probe workload so every serving-side
  // instrument (request counters, latency histogram, session gauges,
  // thread-pool and tensor-pool stats) reflects real traffic rather than
  // printing an all-zero snapshot. The before-snapshot separates the
  // probe's own contribution from pre-existing counts (model training in
  // this process, a warm registry, ...): "registry" is the absolute
  // after-state, "probe_delta" is just the probe.
  const obs::MetricRegistry::Snapshot before =
      obs::MetricRegistry::Global().TakeSnapshot();
  const int probe_users =
      static_cast<int>(std::max(1L, flags.GetInt("probe", 4)));
  std::vector<serve::TopKRequest> batch;
  for (int user = 0; user < probe_users; ++user) {
    for (int step = 0; step < 2; ++step) {
      poi::Checkin checkin;
      checkin.user = user;
      checkin.poi = (user * 7 + step * 3) % std::max(1, num_pois);
      checkin.timestamp = 3600 * (step + 1);
      engine.Observe(checkin);
    }
    serve::TopKRequest request;
    request.user = user;
    request.k = 5;
    request.next_timestamp = 3600 * 3;
    batch.push_back(request);
  }
  engine.TopKBatch(batch);

  const obs::MetricRegistry::Snapshot after =
      obs::MetricRegistry::Global().TakeSnapshot();
  serve::JsonWriter w;
  w.BeginObject()
      .Field("ok", true)
      .Field("model", engine.model_name())
      .Field("probe_users", int64_t{probe_users})
      .RawField("stats", engine.Stats().ToJson())
      .RawField("registry", obs::SnapshotToJson(after))
      .RawField("probe_delta", obs::SnapshotDeltaJson(before, after))
      .EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return 2;
  // PA_OBS_TIMESERIES=<path>: continuous registry sampling for any
  // subcommand (most useful under `serve`, but `publish` training runs
  // produce a time series too).
  obs::TelemetrySampler::MaybeStartFromEnv();
  if (command == "publish") return CmdPublish(flags);
  if (command == "list") return CmdList(flags);
  if (command == "activate") return CmdActivate(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "listen") return CmdListen(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "slowz") return CmdSlowz(flags);
  return Usage();
}
