#ifndef PA_UTIL_THREAD_POOL_H_
#define PA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace pa::util {

/// Fixed-size worker pool behind the library's deterministic parallel
/// helpers.
///
/// Design rules (see DESIGN.md "Threading model"):
///  * Work is always partitioned by *index*, never by arrival order: every
///    index writes only its own output slot, and callers merge partial
///    results in index order. Output is therefore bit-identical regardless
///    of the thread count — a 1-thread pool runs the exact computation the
///    N-thread pool runs, just inline.
///  * A `ParallelFor` issued from inside a worker thread runs inline on
///    that worker (no re-entry into the queue), so nested parallelism —
///    e.g. a parallel `MatMul` inside a parallel training item — cannot
///    deadlock the pool.
///  * Stochastic per-index work must draw from a per-index RNG stream
///    (seed it via `SplitMix64`), never from a shared `Rng`.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the Nth).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues one independent task and returns immediately. With a 1-thread
  /// pool (no workers) the task runs inline instead, so submitted work never
  /// sits in a queue nothing drains. Unlike `ParallelFor`, `Submit` never
  /// waits: completion signalling is the caller's job (the serving engine
  /// pairs it with `std::packaged_task` futures).
  ///
  /// The caller's request-trace context rides along: the task runs under
  /// `obs::CurrentTraceContext()` as captured at submit time, so spans it
  /// opens link into the submitting request's trace.
  void Submit(std::function<void()> task) {
    Submit(std::move(task), obs::CurrentTraceContext());
  }

  /// Context-propagating overload: runs `task` under `trace` (restored with
  /// a TraceContextScope on the executing thread) — for callers that carry
  /// a context through their own handoff instead of the thread-local slot.
  void Submit(std::function<void()> task, obs::TraceContext trace);

  /// Runs `fn(lo, hi)` over disjoint sub-ranges covering [begin, end).
  /// Ranges are contiguous, at least `grain` long (except the last), and
  /// processed by whichever thread gets there first; `fn` must only write
  /// state owned by its indices.
  void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn);

  /// Element-wise variant: runs `fn(i)` for every i in [begin, end).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  /// Ordered map: returns {fn(begin), ..., fn(end-1)} with result i stored
  /// at slot i - begin. Merging the results in vector order gives the same
  /// reduction order as a sequential loop, whatever the thread count.
  template <typename Fn>
  auto ParallelMap(int64_t begin, int64_t end, int64_t grain, Fn&& fn)
      -> std::vector<decltype(fn(int64_t{}))> {
    using R = decltype(fn(int64_t{}));
    std::vector<R> results(static_cast<size_t>(end - begin));
    ParallelFor(begin, end, grain, [&](int64_t i) {
      results[static_cast<size_t>(i - begin)] = fn(i);
    });
    return results;
  }

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool used by all parallel hot paths. Sized on first use
/// from the `PA_THREADS` environment variable (falling back to
/// `std::thread::hardware_concurrency()`); `PA_THREADS=1` forces every
/// parallel helper onto the plain sequential path.
ThreadPool& GlobalPool();

/// Thread count of the global pool.
int ThreadCount();

/// Resizes the global pool (used by tests and benches to compare thread
/// counts in-process). `n <= 0` restores the PA_THREADS / hardware default.
/// Must not be called while parallel work is in flight.
void SetThreadCount(int n);

/// SplitMix64 mixing function (Steele et al.) — derives statistically
/// independent seeds for per-index RNG streams, so stochastic parallel work
/// is reproducible and independent of the thread count.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed for the i-th stream of a family rooted at `base`.
inline uint64_t StreamSeed(uint64_t base, uint64_t i) {
  return SplitMix64(base + (i + 1) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace pa::util

#endif  // PA_UTIL_THREAD_POOL_H_
