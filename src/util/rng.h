#ifndef PA_UTIL_RNG_H_
#define PA_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pa::util {

/// Deterministic random number generator used across the library.
///
/// Every stochastic component (initializers, zoneout masks, synthetic data
/// generators, BPR negative sampling) takes an explicit `Rng&` so that
/// experiments are reproducible from a single seed. The engine is a
/// Mersenne twister; helpers below cover the draw types the library needs.
///
/// An `Rng` is NOT thread-safe. Parallel code must never share one across
/// work items: derive an independent per-item seed with
/// `util::StreamSeed` (thread_pool.h) and construct a local `Rng` from it,
/// so draws are independent of both the thread count and the execution
/// order.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw; returns true with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int RandInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative and not all zero.
  int Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(RandInt(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pa::util

#endif  // PA_UTIL_RNG_H_
