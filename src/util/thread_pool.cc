#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pa::util {

namespace {

// Registry handles resolved once per process. The instruments themselves are
// registry-owned and immortal, so workers may keep updating them during
// static teardown (the global pool's destructor joins after main).
struct PoolInstruments {
  obs::Counter& submitted;
  obs::Gauge& queue_depth;
  obs::Gauge& queue_high_water;
  obs::Histogram& task_wait_us;

  static PoolInstruments& Get() {
    static PoolInstruments instruments{
        obs::MetricRegistry::Global().GetCounter("util.pool.submitted"),
        obs::MetricRegistry::Global().GetGauge("util.pool.queue_depth"),
        obs::MetricRegistry::Global().GetGauge("util.pool.queue_high_water"),
        obs::MetricRegistry::Global().GetHistogram("util.pool.task_wait_us")};
    return instruments;
  }
};

// Set while a thread is executing pool work; nested ParallelFor calls from
// such a thread run inline instead of re-entering the queue (re-entry could
// deadlock: every worker could end up blocked waiting for queued sub-tasks
// that no thread is free to run).
thread_local bool t_in_pool_worker = false;

int DefaultThreadCount() {
  if (const char* env = std::getenv("PA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // Touch the pool instruments so every snapshot carries them (zeros beat
  // absent keys for dashboards and the bench schema check).
  PoolInstruments::Get();
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  auto& instruments = PoolInstruments::Get();
  for (;;) {
    std::function<void()> task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    instruments.queue_depth.Set(static_cast<double>(depth));
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task, obs::TraceContext trace) {
  auto& instruments = PoolInstruments::Get();
  instruments.submitted.Increment();
  if (num_threads_ == 1) {
    // Inline execution has no queueing delay by construction; record the
    // zero so a 1-thread run still shows one wait sample per Submit.
    instruments.task_wait_us.Record(0.0);
    const obs::TraceContextScope scope(trace);
    task();
    return;
  }
  const auto enqueue = std::chrono::steady_clock::now();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([task = std::move(task), enqueue, trace] {
      PoolInstruments::Get().task_wait_us.Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - enqueue)
              .count());
      const obs::TraceContextScope scope(trace);
      task();
    });
    depth = queue_.size();
  }
  instruments.queue_depth.Set(static_cast<double>(depth));
  instruments.queue_high_water.UpdateMax(static_cast<double>(depth));
  cv_.notify_one();
}

void ThreadPool::ParallelForRange(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;

  // Sequential path: a 1-thread pool, a range that fits in one grain, or a
  // call from inside a worker (nested parallelism).
  if (num_threads_ == 1 || n <= grain || t_in_pool_worker) {
    fn(begin, end);
    return;
  }

  // Only genuine fan-outs get a span: the inline paths above run per-op in
  // tight numeric loops and would drown a trace in zero-width events.
  PA_TRACE_SPAN("util.parallel_for");
  // Captured after the span opens, so queued blocks link under it.
  const obs::TraceContext trace = obs::CurrentTraceContext();

  // Split into blocks. A few blocks per thread smooths load imbalance
  // without flooding the queue.
  const int64_t max_blocks = static_cast<int64_t>(num_threads_) * 4;
  const int64_t blocks =
      std::min(max_blocks, (n + grain - 1) / grain);
  const int64_t block_len = (n + blocks - 1) / blocks;

  struct SharedState {
    std::atomic<int64_t> remaining;
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<SharedState>();
  state->remaining.store(blocks, std::memory_order_relaxed);

  auto& instruments = PoolInstruments::Get();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The calling thread runs block 0 itself; queue the rest.
    for (int64_t b = 1; b < blocks; ++b) {
      const int64_t lo = begin + b * block_len;
      const int64_t hi = std::min(end, lo + block_len);
      queue_.emplace_back([state, lo, hi, &fn, trace] {
        const obs::TraceContextScope scope(trace);
        fn(lo, hi);
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(state->mu);
          state->done.notify_all();
        }
      });
    }
    depth = queue_.size();
  }
  instruments.submitted.Add(static_cast<uint64_t>(blocks - 1));
  instruments.queue_depth.Set(static_cast<double>(depth));
  instruments.queue_high_water.UpdateMax(static_cast<double>(depth));
  cv_.notify_all();

  {
    const bool was_worker = t_in_pool_worker;
    t_in_pool_worker = true;  // Nested calls inside fn stay inline.
    fn(begin, std::min(end, begin + block_len));
    t_in_pool_worker = was_worker;
  }
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  ParallelForRange(begin, end, grain, [&fn](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) fn(i);
  });
}

namespace {

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mu;

}  // namespace

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *g_pool;
}

int ThreadCount() { return GlobalPool().num_threads(); }

void SetThreadCount(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool.reset();  // Join old workers before the new pool spins up.
  g_pool = std::make_unique<ThreadPool>(n <= 0 ? DefaultThreadCount() : n);
}

}  // namespace pa::util
