#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace pa::net {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SetCloseOnExec(int fd) {
  const int flags = fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

int ListenTcp(uint16_t port, bool loopback_only, uint16_t* bound_port,
              std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = ErrnoString("socket");
    return -1;
  }
  SetCloseOnExec(fd);
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = ErrnoString("bind");
    close(fd);
    return -1;
  }
  if (listen(fd, 64) != 0) {
    if (error) *error = ErrnoString("listen");
    close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error) *error = ErrnoString("getsockname");
    close(fd);
    return -1;
  }
  if (bound_port) *bound_port = ntohs(addr.sin_port);
  return fd;
}

int AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Without FD_CLOEXEC an accepted socket leaks into any child a
      // fork+exec elsewhere in the process spawns — the child then holds
      // the connection open after we close our copy.
      SetCloseOnExec(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

int PollRetry(pollfd* fds, size_t nfds, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  int remaining = timeout_ms;
  for (;;) {
    const int rc = poll(fds, static_cast<nfds_t>(nfds), remaining);
    if (rc >= 0 || errno != EINTR) return rc;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      remaining = static_cast<int>(std::max<int64_t>(0, left.count()));
      if (remaining == 0) return 0;  // The interruption consumed the budget.
    }
  }
}

int ConnectTcp(uint16_t port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = ErrnoString("socket");
    return -1;
  }
  SetCloseOnExec(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno == EINTR) continue;
    if (error) *error = ErrnoString("connect");
    close(fd);
    return -1;
  }
}

bool SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace pa::net
