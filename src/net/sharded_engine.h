#ifndef PA_NET_SHARDED_ENGINE_H_
#define PA_NET_SHARDED_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/engine.h"

namespace pa::net {

/// Consistent-hash ring mapping user ids onto shard indices.
///
/// Each shard owns `vnodes` points on a 64-bit ring (SplitMix64 of the
/// (shard, vnode) pair — stable across processes and runs); a user hashes
/// to the first point clockwise from its own hash. Growing K→K+1 shards
/// therefore moves only ~1/(K+1) of the users, and which shard owns a user
/// never depends on request order, arrival time, or store state.
class ShardRing {
 public:
  ShardRing(int num_shards, int vnodes_per_shard = 64);

  int ShardForUser(int32_t user) const;
  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  // (ring point, shard) sorted by point.
  std::vector<std::pair<uint64_t, int>> ring_;
};

struct ShardedEngineConfig {
  int num_shards = 1;
  int vnodes_per_shard = 64;
  /// Bounded per-shard queue: requests arriving when the owning shard
  /// already holds this many are shed with kOverloaded.
  size_t queue_capacity = 256;
  /// Forwarded to every shard engine, and used by admission control: a
  /// request whose predicted queue wait (depth × EWMA service time)
  /// already exceeds the deadline is shed instead of queued — it would
  /// only time out after wasting a worker slot.
  int64_t deadline_ms = 250;
  serve::SessionStoreConfig sessions;
};

/// Per-shard view for tests and the stats op.
struct ShardStats {
  serve::EngineStats engine;
  uint64_t dispatched = 0;
  uint64_t shed = 0;
  size_t queue_depth = 0;
  double ewma_service_us = 0.0;
};

/// The in-process horizontal layer: N shard workers, each owning a private
/// serve::Engine (its own SessionStore + LRU + instruments under
/// "serve.shard<i>."), fed by bounded queues behind a consistent-hash
/// router.
///
/// Ownership invariant: a user's session state lives on exactly one shard
/// (ShardRing::ShardForUser), and only that shard's worker thread ever
/// touches it — the global session mutex of the single-engine design
/// disappears, and shards scale across cores with zero shared write state
/// on the request path.
///
/// Admission control happens on the caller's thread at enqueue: a full
/// queue, or a predicted wait beyond the deadline, sheds the request with
/// a typed kOverloaded response instead of letting the tail collapse.
/// Callbacks run on the owning shard's worker thread (or inline on the
/// caller for shed requests) — they must be cheap and must not call back
/// into blocking ShardedEngine methods.
///
/// Model activation (`SwapModel`) is zero-downtime: the new model is
/// enqueued as a control task on every shard (never shed), each worker
/// warms the model with a throwaway forward and flips its engine between
/// two requests; traffic keeps flowing on not-yet-flipped shards against
/// the old version, and in-flight requests pin whichever store they
/// started with. SwapModel returns once every shard has flipped.
class ShardedEngine {
 public:
  using TopKCallback = std::function<void(serve::TopKResponse)>;
  using ObserveCallback = std::function<void(serve::RequestStatus)>;

  ShardedEngine(std::shared_ptr<const serve::LoadedModel> model,
                ShardedEngineConfig config = {});
  /// Drains every shard queue (running the remaining tasks) and joins the
  /// workers.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Routes to the owning shard's queue; `done` fires on the shard worker,
  /// or inline with kOverloaded when the request is shed.
  void TopKAsync(const serve::TopKRequest& request, TopKCallback done);

  /// Routes an observe; `done` (optional) fires with kOk once applied, or
  /// inline with kOverloaded when shed by the bounded queue.
  void ObserveAsync(const poi::Checkin& checkin, ObserveCallback done = {});

  /// Blocking conveniences for tests and the stdin serve loop. Must not be
  /// called from a shard worker thread (they would wait on themselves).
  serve::TopKResponse TopK(const serve::TopKRequest& request);
  serve::RequestStatus Observe(const poi::Checkin& checkin);

  /// Zero-downtime activation; see the class comment. Blocks until every
  /// shard runs on `model`. Must not be called from a shard worker.
  void SwapModel(std::shared_ptr<const serve::LoadedModel> model);

  std::string model_name() const;  // Of shard 0 (all equal outside a swap).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardForUser(int32_t user) const { return ring_.ShardForUser(user); }

  ShardStats StatsForShard(int shard) const;
  /// Aggregate across shards: sums for counters, max for percentiles (a
  /// conservative tail estimate), total queue depth.
  ShardStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Task {
    enum class Kind { kObserve, kTopK, kSwap };
    Kind kind = Kind::kTopK;
    poi::Checkin checkin{};
    serve::TopKRequest topk{};
    TopKCallback topk_done;
    ObserveCallback observe_done;
    std::shared_ptr<const serve::LoadedModel> model;
    std::function<void()> swap_done;
    Clock::time_point enqueue{};
    /// Captured from the caller at enqueue, restored around execution on
    /// the shard worker — the trace follows the request across the queue.
    obs::TraceContext trace{};
  };

  struct Shard {
    std::unique_ptr<serve::Engine> engine;
    std::string metric_prefix;  // "net.shard<i>."
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    std::thread worker;
    /// EWMA of per-request service time on this shard (µs), written only
    /// by the worker, read by admission control.
    std::atomic<double> ewma_service_us{0.0};
    obs::Counter dispatched;
    obs::Counter shed;
    obs::Gauge queue_depth;
  };

  void WorkerLoop(Shard& shard);
  /// Enqueues under admission control; returns false when shed, leaving
  /// `task` intact so the caller can still fire its callback.
  bool Admit(Shard& shard, Task&& task, bool control_plane);

  ShardedEngineConfig config_;
  ShardRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pa::net

#endif  // PA_NET_SHARDED_ENGINE_H_
