#ifndef PA_NET_NDJSON_PROTOCOL_H_
#define PA_NET_NDJSON_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>

#include "net/sharded_engine.h"
#include "serve/model_store.h"

namespace pa::net {

/// The NDJSON request protocol, factored out of the transport so the stdin
/// serve loop and the TCP listener speak byte-identical dialects.
///
/// Requests are flat JSON objects with an `op` field; every response is one
/// flat-parseable envelope:
///
///   success  {"ok":true,"status":"ok",...op fields...}
///   failure  {"ok":false,"code":"<code>","error":"<detail>"}
///
/// where `<code>` is one of the typed per-request error codes
/// (serve::RequestStatusCode): `bad_request`, `overloaded`,
/// `deadline_exceeded`, `unknown_user`. A request carrying an `id` field
/// (string or number) gets it echoed back verbatim in the envelope, so
/// clients that do not rely on the server's per-connection response
/// ordering can correlate explicitly. When request tracing is on (the
/// default) every envelope also carries `"trace":"<hex>"` — the request's
/// trace id, which can be looked up on the exposition server's /slowz
/// endpoint if the request was captured as a tail-latency outlier.
///
/// Ops: observe, topk (optional "strict":true → unknown_user on cold
/// users), stats, activate (model store required), quit.
class NdjsonDispatcher {
 public:
  struct Options {
    /// Enables {"op":"activate","version":N}: loads the version from the
    /// store and zero-downtime-flips every shard. Null disables the op
    /// (answers bad_request).
    serve::ModelStore* store = nullptr;
    /// Model name `activate` loads when the request has no "model" field.
    std::string default_model;
    /// Invoked after a quit op's response is produced (e.g. to drain the
    /// TCP listener). The stdin loop instead checks the `quit` out-param.
    std::function<void()> on_quit;
    /// Bound port of the metrics/trace HTTP exposition server, surfaced in
    /// the stats op response (0 when exposition is off) — with
    /// `--metrics-port=0` the kernel picks the port, and clients need a way
    /// to find /metrics and /slowz other than scraping stderr.
    uint16_t metrics_port = 0;
  };

  // Two overloads instead of a defaulted Options argument: default member
  // initializers of a nested class are not usable inside the enclosing
  // class definition ([class.mem] complete-class context).
  explicit NdjsonDispatcher(ShardedEngine* engine);
  NdjsonDispatcher(ShardedEngine* engine, Options options);

  /// Dispatches one request line; `done` fires exactly once with the
  /// response line (no trailing newline). It may fire inline on the caller
  /// (parse errors, sheds, stats), on a shard worker (observe/topk), or on
  /// the global thread pool (activate — artifact loading must not block
  /// the transport thread). `done` must be cheap and thread-safe.
  void HandleLineAsync(std::string line, std::function<void(std::string)> done);

  /// Blocking form for the stdin loop: returns the response line and sets
  /// `*quit` when the op was `quit`.
  std::string HandleLine(const std::string& line, bool* quit);

 private:
  ShardedEngine* engine_;
  Options options_;
};

}  // namespace pa::net

#endif  // PA_NET_NDJSON_PROTOCOL_H_
