#include "net/ndjson_protocol.h"

#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <utility>

#include "obs/trace.h"
#include "serve/json.h"
#include "util/thread_pool.h"

namespace pa::net {

namespace {

// Parse/serialize stage attribution; registry-owned so dispatchers can come
// and go (tests) while the histograms accumulate.
struct DispatchInstruments {
  obs::Histogram& parse_us;
  obs::Histogram& serialize_us;

  static DispatchInstruments& Get() {
    static DispatchInstruments instruments{
        obs::MetricRegistry::Global().GetHistogram("net.parse_us"),
        obs::MetricRegistry::Global().GetHistogram("net.serialize_us")};
    return instruments;
  }
};

// Elapsed µs against an explicit start (stage histograms record whether or
// not any tracing switch is on).
double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// The echoed correlation id, if the request carried one. Kept as the raw
// JsonValue so a string id comes back as a string and a numeric id as a
// number.
void EchoId(serve::JsonWriter& w, const serve::JsonValue& id) {
  switch (id.type) {
    case serve::JsonValue::Type::kString:
      w.Field("id", id.string);
      break;
    case serve::JsonValue::Type::kNumber:
      if (id.number == std::floor(id.number)) {
        w.Field("id", static_cast<int64_t>(id.number));
      } else {
        w.Field("id", id.number);
      }
      break;
    default:
      break;  // No id (or an unechoable bool/null): omit the field.
  }
}

// Every envelope echoes the request's trace id ("trace":"<hex>") when one
// is active on the building thread — the shard worker restores the minted
// context before completion callbacks run, so a client-observed outlier can
// be looked up directly on /slowz.
void EchoTrace(serve::JsonWriter& w) {
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.active()) w.Field("trace", obs::TraceIdHex(ctx.trace_id));
}

std::string ErrorLine(const char* code, const std::string& detail,
                      const serve::JsonValue& id) {
  serve::JsonWriter w;
  w.BeginObject().Field("ok", false).Field("code", code).Field("error",
                                                               detail);
  EchoId(w, id);
  EchoTrace(w);
  w.EndObject();
  return w.str();
}

std::string StatusErrorLine(serve::RequestStatus status,
                            const serve::JsonValue& id) {
  return ErrorLine(serve::RequestStatusCode(status),
                   serve::RequestStatusName(status), id);
}

std::string OkLine(const serve::JsonValue& id) {
  serve::JsonWriter w;
  w.BeginObject().Field("ok", true).Field("status", "ok");
  EchoId(w, id);
  EchoTrace(w);
  w.EndObject();
  return w.str();
}

std::string ShardStatsJson(const ShardStats& stats) {
  serve::JsonWriter w;
  w.BeginObject()
      .Field("dispatched", stats.dispatched)
      .Field("shed", stats.shed)
      .Field("queue_depth", static_cast<uint64_t>(stats.queue_depth))
      .Field("ewma_service_us", stats.ewma_service_us)
      .RawField("engine", stats.engine.ToJson())
      .EndObject();
  return w.str();
}

}  // namespace

NdjsonDispatcher::NdjsonDispatcher(ShardedEngine* engine)
    : NdjsonDispatcher(engine, Options()) {}

NdjsonDispatcher::NdjsonDispatcher(ShardedEngine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

void NdjsonDispatcher::HandleLineAsync(
    std::string line, std::function<void(std::string)> done) {
  std::map<std::string, serve::JsonValue> request;
  std::string parse_error;
  bool parsed;
  {
    const obs::TraceSpan parse("net.parse");
    const auto t0 = std::chrono::steady_clock::now();
    parsed = serve::ParseFlatObject(line, &request, &parse_error);
    DispatchInstruments::Get().parse_us.RecordWithExemplar(MicrosSince(t0),
                                                           parse.id());
  }
  if (!parsed) {
    done(ErrorLine("bad_request", "bad request: " + parse_error,
                   serve::JsonValue{}));
    return;
  }
  const serve::JsonValue id = request["id"];
  const std::string op = request["op"].string;

  if (op == "quit") {
    done(OkLine(id));
    if (options_.on_quit) options_.on_quit();
    return;
  }

  if (op == "observe") {
    if (!request["user"].is_number() || !request["poi"].is_number()) {
      done(ErrorLine("bad_request", "observe requires numeric user and poi",
                     id));
      return;
    }
    poi::Checkin checkin;
    checkin.user = static_cast<int32_t>(request["user"].AsInt());
    checkin.poi = static_cast<int32_t>(request["poi"].AsInt());
    checkin.timestamp = request["timestamp"].AsInt();
    engine_->ObserveAsync(
        checkin, [id, done = std::move(done)](serve::RequestStatus status) {
          done(status == serve::RequestStatus::kOk ? OkLine(id)
                                                   : StatusErrorLine(status, id));
        });
    return;
  }

  if (op == "topk") {
    if (!request["user"].is_number()) {
      done(ErrorLine("bad_request", "topk requires numeric user", id));
      return;
    }
    serve::TopKRequest topk;
    topk.user = static_cast<int32_t>(request["user"].AsInt());
    topk.k = request.count("k") ? static_cast<int>(request["k"].AsInt()) : 10;
    topk.next_timestamp = request["timestamp"].AsInt();
    topk.strict = request["strict"].boolean;
    engine_->TopKAsync(
        topk, [id, done = std::move(done)](serve::TopKResponse response) {
          if (response.status != serve::RequestStatus::kOk) {
            done(StatusErrorLine(response.status, id));
            return;
          }
          // Build the line inside the serialize span's scope and invoke the
          // completion after it closes: `done` may End() the trace, and an
          // End must never race a still-open span.
          std::string line;
          {
            const obs::TraceSpan serialize("net.serialize");
            const auto t0 = std::chrono::steady_clock::now();
            serve::JsonWriter w;
            w.BeginObject()
                .Field("ok", true)
                .Field("status", "ok")
                .Field("latency_micros", response.latency_micros);
            EchoId(w, id);
            EchoTrace(w);
            w.BeginArray("pois");
            for (const int32_t poi : response.pois) w.Element(int64_t{poi});
            w.EndArray().EndObject();
            line = w.str();
            DispatchInstruments::Get().serialize_us.RecordWithExemplar(
                MicrosSince(t0), serialize.id());
          }
          done(std::move(line));
        });
    return;
  }

  if (op == "stats") {
    serve::JsonWriter w;
    w.BeginObject()
        .Field("ok", true)
        .Field("status", "ok")
        .Field("model", engine_->model_name())
        .Field("shards", int64_t{engine_->num_shards()})
        .Field("metrics_port", int64_t{options_.metrics_port});
    EchoId(w, id);
    EchoTrace(w);
    w.RawField("stats", ShardStatsJson(engine_->Stats()));
    w.BeginArray("per_shard");
    for (int i = 0; i < engine_->num_shards(); ++i) {
      w.RawElement(ShardStatsJson(engine_->StatsForShard(i)));
    }
    w.EndArray();
    w.RawField("registry", obs::MetricRegistry::Global().SnapshotJson());
    w.EndObject();
    done(w.str());
    return;
  }

  if (op == "activate") {
    if (options_.store == nullptr) {
      done(ErrorLine("bad_request", "activate is not enabled (no model store)",
                     id));
      return;
    }
    const std::string model = request["model"].is_string()
                                  ? request["model"].string
                                  : options_.default_model;
    const int version = request["version"].is_number()
                            ? static_cast<int>(request["version"].AsInt())
                            : -1;
    // Artifact loading reads and deserializes from disk — off the transport
    // thread. (With PA_THREADS=1 Submit degrades to inline execution; the
    // listener stalls for the load but stays correct.)
    serve::ModelStore* store = options_.store;
    ShardedEngine* engine = engine_;
    util::GlobalPool().Submit([store, engine, model, version, id,
                               done = std::move(done)] {
      serve::LoadedModel loaded;
      std::string error;
      const bool ok = version > 0
                          ? store->Load(model, version, &loaded, &error)
                          : store->LoadActive(model, &loaded, &error);
      if (!ok) {
        done(ErrorLine("bad_request", "cannot load \"" + model + "\": " + error,
                       id));
        return;
      }
      const int resolved =
          version > 0 ? version : store->ActiveVersion(model);
      engine->SwapModel(
          std::make_shared<const serve::LoadedModel>(std::move(loaded)));
      serve::JsonWriter w;
      w.BeginObject()
          .Field("ok", true)
          .Field("status", "ok")
          .Field("model", model)
          .Field("version", int64_t{resolved});
      EchoId(w, id);
      EchoTrace(w);
      w.EndObject();
      done(w.str());
    });
    return;
  }

  done(ErrorLine("bad_request",
                 "unknown op \"" + op +
                     "\" (observe, topk, stats, activate, quit)",
                 id));
}

std::string NdjsonDispatcher::HandleLine(const std::string& line, bool* quit) {
  if (quit) *quit = false;
  std::map<std::string, serve::JsonValue> probe;
  // Cheap pre-parse purely to detect quit without relying on the async
  // callback ordering; malformed lines fall through to the async path's
  // error envelope.
  if (serve::ParseFlatObject(line, &probe) && probe["op"].string == "quit" &&
      quit) {
    *quit = true;
  }
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  HandleLineAsync(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

}  // namespace pa::net
