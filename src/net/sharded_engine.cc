#include "net/sharded_engine.h"

#include <algorithm>
#include <future>

#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace pa::net {

namespace {

// Ring-point hash for (shard, vnode): mixing the pair through SplitMix64
// gives points that are stable across runs and uncorrelated across shards.
uint64_t RingPoint(int shard, int vnode) {
  return util::SplitMix64((static_cast<uint64_t>(shard) << 32) |
                          static_cast<uint32_t>(vnode));
}

uint64_t UserPoint(int32_t user) {
  // Salted so the user ring and the vnode ring draw from different streams.
  return util::SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(user)) +
                          0xA5C3D2E1B4F69788ULL);
}

// Stage attribution (DESIGN.md "Request tracing"): queue wait and model
// compute per dequeued task, as registry-owned histograms (immortal — shard
// engines come and go in tests) with the stage span as exemplar.
struct StageInstruments {
  obs::Histogram& queue_wait_us;
  obs::Histogram& compute_us;

  static StageInstruments& Get() {
    static StageInstruments instruments{
        obs::MetricRegistry::Global().GetHistogram("net.queue_wait_us"),
        obs::MetricRegistry::Global().GetHistogram("serve.compute_us")};
    return instruments;
  }
};

// The queue-wait stage: synthesized from the enqueue stamp (caller thread)
// and now (worker thread) — no RAII scope can straddle that boundary.
void RecordQueueWait(const obs::TraceContext& trace,
                     std::chrono::steady_clock::time_point enqueue,
                     std::chrono::steady_clock::time_point dequeue) {
  const uint64_t span = obs::RecordStageSpan(
      "net.queue_wait", obs::ToTraceNs(enqueue), obs::ToTraceNs(dequeue),
      trace);
  StageInstruments::Get().queue_wait_us.RecordWithExemplar(
      std::chrono::duration<double, std::micro>(dequeue - enqueue).count(),
      span);
}

}  // namespace

ShardRing::ShardRing(int num_shards, int vnodes_per_shard)
    : num_shards_(std::max(1, num_shards)) {
  const int vnodes = std::max(1, vnodes_per_shard);
  ring_.reserve(static_cast<size_t>(num_shards_) * vnodes);
  for (int s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(RingPoint(s, v), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardRing::ShardForUser(int32_t user) const {
  const uint64_t h = UserPoint(user);
  // First ring point clockwise from h (wrap to the start past the end).
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, num_shards_));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

ShardedEngine::ShardedEngine(std::shared_ptr<const serve::LoadedModel> model,
                             ShardedEngineConfig config)
    : config_(config),
      ring_(std::max(1, config.num_shards), config.vnodes_per_shard) {
  const int num_shards = ring_.num_shards();
  // The session memory budget is process-wide: each shard's store gets an
  // equal slice, so K shards hold about as many live sessions in total as
  // one unsharded engine under the same config.
  serve::EngineConfig engine_config;
  engine_config.deadline_ms = config_.deadline_ms;
  engine_config.sessions = config_.sessions;
  engine_config.sessions.memory_cap_bytes = std::max<size_t>(
      config_.sessions.approx_session_bytes,
      config_.sessions.memory_cap_bytes / static_cast<size_t>(num_shards));

  auto& registry = obs::MetricRegistry::Global();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // A single-shard deployment is metrically indistinguishable from the
    // plain engine ("serve.requests", ...); only real sharding fans the
    // names out per shard. Scrape configs written against the unsharded
    // serve loop keep working when it moves behind a 1-shard router.
    engine_config.metric_prefix =
        num_shards == 1 ? "serve." : "serve.shard" + std::to_string(i) + ".";
    shard->engine = std::make_unique<serve::Engine>(model, engine_config);
    shard->metric_prefix = "net.shard" + std::to_string(i) + ".";
    registry.RegisterCounter(shard->metric_prefix + "dispatched",
                             &shard->dispatched);
    registry.RegisterCounter(shard->metric_prefix + "shed", &shard->shed);
    registry.RegisterGauge(shard->metric_prefix + "queue_depth",
                           &shard->queue_depth);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread(&ShardedEngine::WorkerLoop, this,
                                std::ref(*shard));
  }
}

ShardedEngine::~ShardedEngine() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stop = true;
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  auto& registry = obs::MetricRegistry::Global();
  for (auto& shard : shards_) {
    registry.Unregister(shard->metric_prefix + "dispatched",
                        &shard->dispatched);
    registry.Unregister(shard->metric_prefix + "shed", &shard->shed);
    registry.Unregister(shard->metric_prefix + "queue_depth",
                        &shard->queue_depth);
  }
}

bool ShardedEngine::Admit(Shard& shard, Task&& task, bool control_plane) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!control_plane) {
    if (shard.stop) return false;
    const size_t depth = shard.queue.size();
    if (depth >= config_.queue_capacity) return false;
    if (task.kind == Task::Kind::kTopK) {
      // Deadline-aware rejection: if the requests already queued are
      // predicted to eat the whole deadline, this one would only be
      // dequeued to fail — shed it now, for free, instead.
      const double predicted_wait_us =
          static_cast<double>(depth) *
          shard.ewma_service_us.load(std::memory_order_relaxed);
      if (predicted_wait_us >
          static_cast<double>(config_.deadline_ms) * 1000.0) {
        return false;
      }
    }
  }
  shard.queue.push_back(std::move(task));
  shard.queue_depth.Set(static_cast<double>(shard.queue.size()));
  shard.cv.notify_one();
  return true;
}

void ShardedEngine::WorkerLoop(Shard& shard) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock,
                    [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop && drained
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.queue_depth.Set(static_cast<double>(shard.queue.size()));
    }
    switch (task.kind) {
      case Task::Kind::kTopK: {
        // Restore the request's trace for everything this task does —
        // compute, the engine's own serve.request span, and the completion
        // callback (which serializes the response) all link under it.
        const obs::TraceContextScope trace_scope(task.trace);
        const auto t0 = Clock::now();
        RecordQueueWait(task.trace, task.enqueue, t0);
        serve::TopKResponse response;
        {
          const obs::TraceSpan compute("serve.compute");
          response = shard.engine->TopKAt(task.topk, task.enqueue);
          const double service_us =
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count();
          StageInstruments::Get().compute_us.RecordWithExemplar(service_us,
                                                               compute.id());
          // EWMA with 1/8 gain: reacts within ~a dozen requests, stays
          // stable against one slow outlier. First sample seeds it directly.
          const double prev =
              shard.ewma_service_us.load(std::memory_order_relaxed);
          shard.ewma_service_us.store(
              prev == 0.0 ? service_us : prev + (service_us - prev) / 8.0,
              std::memory_order_relaxed);
        }
        if (task.topk_done) task.topk_done(std::move(response));
        break;
      }
      case Task::Kind::kObserve: {
        const obs::TraceContextScope trace_scope(task.trace);
        RecordQueueWait(task.trace, task.enqueue, Clock::now());
        {
          const obs::TraceSpan compute("serve.compute");
          shard.engine->Observe(task.checkin);
        }
        if (task.observe_done) task.observe_done(serve::RequestStatus::kOk);
        break;
      }
      case Task::Kind::kSwap: {
        PA_TRACE_SPAN("net.shard.swap");
        {
          // Warm the incoming model on this worker before the flip: one
          // throwaway forward pays the lazy one-time costs (POI index
          // build, buffer-pool growth) outside any user request.
          const tensor::InferenceModeScope inference;
          std::unique_ptr<rec::RecSession> warm =
              task.model->model->NewSession(0);
          warm->TopK(1, 0);
        }
        shard.engine->SwapModel(task.model);
        if (task.swap_done) task.swap_done();
        break;
      }
    }
  }
}

void ShardedEngine::TopKAsync(const serve::TopKRequest& request,
                              TopKCallback done) {
  Shard& shard = *shards_[static_cast<size_t>(ring_.ShardForUser(request.user))];
  Task task;
  task.kind = Task::Kind::kTopK;
  task.topk = request;
  task.topk_done = std::move(done);
  task.enqueue = Clock::now();
  task.trace = obs::CurrentTraceContext();
  if (!Admit(shard, std::move(task), /*control_plane=*/false)) {
    // Rejected: `task` was not consumed, its callback is still ours.
    shard.shed.Increment();
    serve::TopKResponse response;
    response.status = serve::RequestStatus::kOverloaded;
    if (task.topk_done) task.topk_done(std::move(response));
    return;
  }
  shard.dispatched.Increment();
}

void ShardedEngine::ObserveAsync(const poi::Checkin& checkin,
                                 ObserveCallback done) {
  Shard& shard = *shards_[static_cast<size_t>(ring_.ShardForUser(checkin.user))];
  Task task;
  task.kind = Task::Kind::kObserve;
  task.checkin = checkin;
  task.observe_done = std::move(done);
  task.enqueue = Clock::now();
  task.trace = obs::CurrentTraceContext();
  if (!Admit(shard, std::move(task), /*control_plane=*/false)) {
    shard.shed.Increment();
    if (task.observe_done) task.observe_done(serve::RequestStatus::kOverloaded);
    return;
  }
  shard.dispatched.Increment();
}

serve::TopKResponse ShardedEngine::TopK(const serve::TopKRequest& request) {
  std::promise<serve::TopKResponse> promise;
  std::future<serve::TopKResponse> future = promise.get_future();
  TopKAsync(request, [&promise](serve::TopKResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

serve::RequestStatus ShardedEngine::Observe(const poi::Checkin& checkin) {
  std::promise<serve::RequestStatus> promise;
  std::future<serve::RequestStatus> future = promise.get_future();
  ObserveAsync(checkin, [&promise](serve::RequestStatus status) {
    promise.set_value(status);
  });
  return future.get();
}

void ShardedEngine::SwapModel(
    std::shared_ptr<const serve::LoadedModel> model) {
  PA_TRACE_SPAN("net.swap_model");
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = shards_.size();
  for (auto& shard : shards_) {
    Task task;
    task.kind = Task::Kind::kSwap;
    task.model = model;
    task.swap_done = [&done_mu, &done_cv, &remaining] {
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    };
    // Control plane: never shed — an activation must not fail because the
    // data plane is busy (it is exactly then that a rollback matters).
    Admit(*shard, std::move(task), /*control_plane=*/true);
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

std::string ShardedEngine::model_name() const {
  return shards_.front()->engine->model_name();
}

ShardStats ShardedEngine::StatsForShard(int shard_index) const {
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  ShardStats stats;
  stats.engine = shard.engine->Stats();
  stats.dispatched = shard.dispatched.value();
  stats.shed = shard.shed.value();
  stats.ewma_service_us =
      shard.ewma_service_us.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.queue_depth = shard.queue.size();
  }
  return stats;
}

ShardStats ShardedEngine::Stats() const {
  ShardStats total;
  for (int i = 0; i < num_shards(); ++i) {
    const ShardStats s = StatsForShard(i);
    total.engine.requests += s.engine.requests;
    total.engine.timeouts += s.engine.timeouts;
    total.engine.session_hits += s.engine.session_hits;
    total.engine.session_misses += s.engine.session_misses;
    total.engine.session_evictions += s.engine.session_evictions;
    total.engine.live_sessions += s.engine.live_sessions;
    total.engine.p50_micros = std::max(total.engine.p50_micros, s.engine.p50_micros);
    total.engine.p95_micros = std::max(total.engine.p95_micros, s.engine.p95_micros);
    total.engine.p99_micros = std::max(total.engine.p99_micros, s.engine.p99_micros);
    total.dispatched += s.dispatched;
    total.shed += s.shed;
    total.queue_depth += s.queue_depth;
    total.ewma_service_us = std::max(total.ewma_service_us, s.ewma_service_us);
  }
  return total;
}

}  // namespace pa::net
