#ifndef PA_NET_NDJSON_SERVER_H_
#define PA_NET_NDJSON_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pa::net {

struct NdjsonServerConfig {
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  uint16_t port = 0;
  bool loopback_only = true;
  /// A connection buffering more than this without a newline — or a single
  /// framed line longer than this — is answered with a typed `bad_request`
  /// and closed: unbounded lines are a memory DoS, not a request.
  size_t max_line_bytes = 64 * 1024;
  /// Connections with no traffic and no pending work for this long are
  /// closed (<= 0 disables). Keeps abandoned clients from pinning fds.
  int idle_timeout_ms = 60'000;
  /// Graceful-drain budget: after RequestShutdown, the loop keeps running
  /// until every admitted request has been answered and flushed, or this
  /// much time has passed — whichever comes first.
  int drain_timeout_ms = 5'000;
  size_t max_connections = 256;
  /// Write backpressure: while a connection's pending-write buffer exceeds
  /// this, the server stops *reading* from it — a slow consumer throttles
  /// its own request stream instead of growing an unbounded reply queue.
  size_t write_buffer_limit = 1 * 1024 * 1024;
  /// Poll tick; bounds shutdown/idle-check latency, not request latency.
  int poll_interval_ms = 50;
};

/// Poll-driven, single-threaded TCP front-end speaking newline-delimited
/// requests (the `pa_serve` NDJSON ops; see DESIGN.md "Networked serving").
///
/// Threading model: one poll loop owns every socket and all connection
/// state. The request handler runs on the poll thread for each complete
/// line and must be cheap — parse and dispatch (e.g. into a ShardedEngine
/// queue), never block. Completions flow back through `Reply`, which is
/// safe to call from any thread: it appends to a mutex-guarded completion
/// queue and wakes the loop through a self-pipe.
///
/// Responses are delivered **in request order per connection** whatever
/// order `Reply` is called in: each line gets a per-connection sequence
/// number at read time, and replies are held in a reorder buffer until all
/// earlier sequences have been written. Pipelined clients can therefore
/// blast N lines and read N responses without correlation ids.
///
/// Shutdown is a drain, not an axe: `RequestShutdown` (async-signal-safe)
/// stops accepting and stops reading, but admitted requests still get
/// their responses written before the loop exits (bounded by
/// drain_timeout_ms).
///
/// Request tracing: the server mints a trace context per request line
/// (obs::SlowTraceReservoir::Begin) and installs it around the handler
/// call, so downstream spans — parse, shard queue wait, compute, serialize
/// — link into one tree. The trace ends when the response flushes into the
/// connection's write buffer (in request order), which charges reorder
/// hold time to a synthesized `net.write_wait` span; traces for
/// connections that die mid-flight are aborted, not published.
class NdjsonServer {
 public:
  /// Runs on the poll thread once per complete request line (newline
  /// stripped). Must eventually cause exactly one Reply(conn_id, seq, ...)
  /// — from any thread — or the connection's later responses stay queued
  /// behind the hole forever.
  using Handler =
      std::function<void(uint64_t conn_id, uint64_t seq, std::string line)>;

  NdjsonServer() = default;
  ~NdjsonServer();
  NdjsonServer(const NdjsonServer&) = delete;
  NdjsonServer& operator=(const NdjsonServer&) = delete;

  /// Binds and spawns the poll thread. False (with `*error`) on bind
  /// failure or if already running.
  bool Start(NdjsonServerConfig config, Handler handler,
             std::string* error = nullptr);

  /// Completes request `seq` on connection `conn_id` with one response
  /// line (newline appended by the server). Thread-safe; replies for
  /// connections that died in the meantime are dropped.
  void Reply(uint64_t conn_id, uint64_t seq, std::string line);

  /// Initiates graceful drain. Async-signal-safe (atomic store + pipe
  /// write), so a SIGTERM handler may call it directly.
  void RequestShutdown();

  /// Blocks until the poll loop has exited (drain complete).
  void Wait();

  /// RequestShutdown + Wait + resource teardown (instrument unregistration,
  /// pipe close). Idempotent; also runs from the destructor. After Wait()
  /// alone the loop is gone but Stop() must still run before the server
  /// object dies — the registry holds pointers at its instruments.
  void Stop();

  bool running() const { return thread_.joinable(); }
  uint16_t port() const { return port_; }

  /// Live connection count (poll-thread-maintained gauge; approximate from
  /// other threads).
  size_t connection_count() const {
    return connections_now_.load(std::memory_order_relaxed);
  }

 private:
  /// A completed response waiting in the reorder buffer. `reply_ns` is the
  /// trace clock at Reply() time (0 for server-synthesized replies such as
  /// oversize rejections): the span between it and the in-order flush is
  /// the response's write-wait — time lost to earlier sequences still in
  /// flight plus completion-queue latency.
  struct PendingReply {
    std::string line;
    uint64_t reply_ns = 0;
  };

  struct Conn {
    int fd = -1;
    std::string read_buf;
    std::string write_buf;
    uint64_t next_seq = 0;    // Next sequence to assign to an incoming line.
    uint64_t next_reply = 0;  // Next sequence to flush into write_buf.
    std::map<uint64_t, PendingReply> ready;  // Completed, waiting for order.
    /// Trace minted per request line, keyed by seq; ended when the response
    /// flushes into write_buf, aborted if the connection dies first.
    std::map<uint64_t, obs::TraceContext> traces;
    std::chrono::steady_clock::time_point last_activity;
    bool closing = false;  // No more reads; close once fully drained.
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string line;
    uint64_t reply_ns = 0;  // obs::TraceClockNs() at Reply() time.
  };

  void Run();
  void ApplyCompletions();
  void AcceptNew();
  /// Reads, frames and dispatches; returns false if the conn must die now.
  bool ReadConn(uint64_t id, Conn& conn);
  /// Flushes write_buf; returns false if the conn must die now.
  bool WriteConn(Conn& conn);
  /// Queues `line` as the ordered response for (conn, seq) and flushes the
  /// contiguous prefix into write_buf, ending each flushed request's trace.
  void QueueReply(Conn& conn, uint64_t seq, std::string line,
                  uint64_t reply_ns);
  /// Aborts every in-flight trace on the connection (it is dying before
  /// its responses flush).
  void AbortTraces(Conn& conn);
  void CloseConn(uint64_t id);
  bool Drained() const;

  NdjsonServerConfig config_;
  Handler handler_;
  bool started_ = false;  // Start succeeded; Stop has not yet cleaned up.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<size_t> connections_now_{0};
  std::thread thread_;

  // Poll-thread-only state.
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;
  bool accepting_ = true;

  // Cross-thread completion queue.
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Front-end instruments, registered as net.* for /metrics.
  obs::Counter accepted_;
  obs::Counter lines_;
  obs::Counter oversize_;
  obs::Counter idle_closed_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
  obs::Gauge connections_gauge_;
};

}  // namespace pa::net

#endif  // PA_NET_NDJSON_SERVER_H_
