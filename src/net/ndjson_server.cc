#include "net/ndjson_server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "net/socket_util.h"
#include "obs/health.h"
#include "obs/slow_trace.h"

namespace pa::net {

namespace {

constexpr const char* kHealthComponent = "net.listener";

// Registry-owned: the write-wait stage outlives any one server instance.
obs::Histogram& WriteWaitHistogram() {
  static obs::Histogram& h =
      obs::MetricRegistry::Global().GetHistogram("net.write_wait_us");
  return h;
}

// Oversize lines get this synthesized envelope; it flows through the normal
// reorder path so pipelined responses before it still arrive in order.
std::string OversizeReply(size_t limit) {
  return "{\"ok\":false,\"code\":\"bad_request\",\"error\":\"line exceeds " +
         std::to_string(limit) + " bytes\"}";
}

}  // namespace

NdjsonServer::~NdjsonServer() { Stop(); }

bool NdjsonServer::Start(NdjsonServerConfig config, Handler handler,
                         std::string* error) {
  if (running()) {
    if (error) *error = "server already running";
    return false;
  }
  config_ = config;
  handler_ = std::move(handler);

  std::string listen_error;
  listen_fd_ = ListenTcp(config_.port, config_.loopback_only, &port_,
                         &listen_error);
  if (listen_fd_ < 0) {
    if (error) *error = listen_error;
    return false;
  }
  SetNonBlocking(listen_fd_);

  if (pipe(wake_pipe_) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  for (int fd : wake_pipe_) {
    SetNonBlocking(fd);
    SetCloseOnExec(fd);
  }

  auto& registry = obs::MetricRegistry::Global();
  registry.RegisterCounter("net.accepted", &accepted_);
  registry.RegisterCounter("net.requests", &lines_);
  registry.RegisterCounter("net.oversize", &oversize_);
  registry.RegisterCounter("net.idle_closed", &idle_closed_);
  registry.RegisterCounter("net.bytes_in", &bytes_in_);
  registry.RegisterCounter("net.bytes_out", &bytes_out_);
  registry.RegisterGauge("net.connections", &connections_gauge_);
  obs::HealthRegistry::Global().Set(kHealthComponent, obs::HealthStatus::kOk,
                                    "listening on port " +
                                        std::to_string(port_));

  shutdown_requested_.store(false, std::memory_order_relaxed);
  accepting_ = true;
  started_ = true;
  thread_ = std::thread(&NdjsonServer::Run, this);
  return true;
}

void NdjsonServer::Reply(uint64_t conn_id, uint64_t seq, std::string line) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(
        Completion{conn_id, seq, std::move(line), obs::TraceClockNs()});
  }
  // Wake the poll loop; a full pipe already guarantees a pending wake.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'r';
    [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
  }
}

void NdjsonServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
  }
}

void NdjsonServer::Wait() {
  if (thread_.joinable()) thread_.join();
}

void NdjsonServer::Stop() {
  if (!started_) return;
  RequestShutdown();
  Wait();
  started_ = false;
  auto& registry = obs::MetricRegistry::Global();
  registry.Unregister("net.accepted", &accepted_);
  registry.Unregister("net.requests", &lines_);
  registry.Unregister("net.oversize", &oversize_);
  registry.Unregister("net.idle_closed", &idle_closed_);
  registry.Unregister("net.bytes_in", &bytes_in_);
  registry.Unregister("net.bytes_out", &bytes_out_);
  registry.Unregister("net.connections", &connections_gauge_);
  obs::HealthRegistry::Global().Remove(kHealthComponent);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

bool NdjsonServer::Drained() const {
  for (const auto& [id, conn] : conns_) {
    if (conn.next_reply != conn.next_seq || !conn.write_buf.empty()) {
      return false;
    }
  }
  return true;
}

void NdjsonServer::Run() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point drain_deadline{};
  bool draining = false;

  for (;;) {
    if (!draining && shutdown_requested_.load(std::memory_order_acquire)) {
      // Graceful drain: stop accepting and stop reading, but keep the loop
      // alive until every admitted request has flushed its response.
      draining = true;
      accepting_ = false;
      obs::HealthRegistry::Global().Set(kHealthComponent,
                                        obs::HealthStatus::kDegraded,
                                        "draining");
      if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
      }
      drain_deadline = Clock::now() + std::chrono::milliseconds(
                                          std::max(0, config_.drain_timeout_ms));
    }
    if (draining && (Drained() || Clock::now() >= drain_deadline)) break;

    std::vector<pollfd> fds;
    std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 for non-conns).
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(0);
    if (accepting_ && listen_fd_ >= 0 &&
        conns_.size() < config_.max_connections) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      // Backpressure: a consumer that is not reading its replies does not
      // get to keep submitting requests.
      if (!conn.closing && !draining &&
          conn.write_buf.size() < config_.write_buffer_limit) {
        events |= POLLIN;
      }
      if (!conn.write_buf.empty()) events |= POLLOUT;
      if (events == 0) continue;  // Parked: waiting on replies only.
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    PollRetry(fds.data(), fds.size(), config_.poll_interval_ms);

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    ApplyCompletions();

    std::vector<uint64_t> dead;
    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].fd == listen_fd_ && fd_conn[i] == 0) {
        if (fds[i].revents & POLLIN) AcceptNew();
        continue;
      }
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        dead.push_back(fd_conn[i]);
        continue;
      }
      if ((fds[i].revents & POLLIN) && !ReadConn(fd_conn[i], conn)) {
        dead.push_back(fd_conn[i]);
        continue;
      }
      if ((fds[i].revents & (POLLOUT | POLLHUP)) && !WriteConn(conn)) {
        dead.push_back(fd_conn[i]);
        continue;
      }
    }
    for (uint64_t id : dead) CloseConn(id);

    // Reap connections that finished their lifecycle, and idle ones.
    const auto now = Clock::now();
    std::vector<uint64_t> done;
    for (auto& [id, conn] : conns_) {
      const bool no_pending =
          conn.next_reply == conn.next_seq && conn.write_buf.empty();
      if (conn.closing && no_pending) {
        done.push_back(id);
      } else if (config_.idle_timeout_ms > 0 && no_pending && !conn.closing &&
                 now - conn.last_activity >
                     std::chrono::milliseconds(config_.idle_timeout_ms)) {
        idle_closed_.Increment();
        done.push_back(id);
      }
    }
    for (uint64_t id : done) CloseConn(id);
  }

  // Drain over (or timed out): drop whatever is left.
  for (auto& [id, conn] : conns_) {
    AbortTraces(conn);
    close(conn.fd);
  }
  conns_.clear();
  connections_now_.store(0, std::memory_order_relaxed);
  connections_gauge_.Set(0.0);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NdjsonServer::ApplyCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // Connection died; drop the reply.
    QueueReply(it->second, c.seq, std::move(c.line), c.reply_ns);
  }
}

void NdjsonServer::AcceptNew() {
  while (conns_.size() < config_.max_connections) {
    const int fd = AcceptConnection(listen_fd_);
    if (fd < 0) break;  // EAGAIN (or fatal; either way, next poll retries).
    SetNonBlocking(fd);
    accepted_.Increment();
    Conn conn;
    conn.fd = fd;
    conn.last_activity = std::chrono::steady_clock::now();
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
  connections_now_.store(conns_.size(), std::memory_order_relaxed);
  connections_gauge_.Set(static_cast<double>(conns_.size()));
}

bool NdjsonServer::ReadConn(uint64_t id, Conn& conn) {
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      bytes_in_.Add(static_cast<uint64_t>(n));
      conn.read_buf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // EOF: no more requests, but pending replies still get delivered.
      conn.closing = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // Connection error.
  }

  // Frame complete lines and dispatch them.
  size_t start = 0;
  for (;;) {
    const size_t nl = conn.read_buf.find('\n', start);
    if (nl == std::string::npos) break;
    size_t end = nl;
    if (end > start && conn.read_buf[end - 1] == '\r') --end;
    std::string line = conn.read_buf.substr(start, end - start);
    start = nl + 1;
    if (line.empty()) continue;  // Blank lines are keep-alives, not requests.
    const uint64_t seq = conn.next_seq++;
    if (line.size() > config_.max_line_bytes) {
      oversize_.Increment();
      conn.closing = true;
      QueueReply(conn, seq, OversizeReply(config_.max_line_bytes), 0);
      break;
    }
    lines_.Increment();
    // Mint the request's trace and install it around the handler: spans the
    // handler opens (parse), and the context it captures into the shard
    // queue, all link under this trace's root. Ended at flush in QueueReply.
    const obs::TraceContext trace = obs::SlowTraceReservoir::Global().Begin();
    if (trace.active()) conn.traces.emplace(seq, trace);
    const obs::TraceContextScope scope(trace);
    handler_(id, seq, std::move(line));
  }
  if (start > 0) conn.read_buf.erase(0, start);

  // A partial line larger than the cap can never complete legally; reject
  // it before it grows into a memory sink.
  if (!conn.closing && conn.read_buf.size() > config_.max_line_bytes) {
    oversize_.Increment();
    conn.closing = true;
    conn.read_buf.clear();
    const uint64_t seq = conn.next_seq++;
    QueueReply(conn, seq, OversizeReply(config_.max_line_bytes), 0);
  }
  return true;
}

bool NdjsonServer::WriteConn(Conn& conn) {
  while (!conn.write_buf.empty()) {
    const ssize_t n = send(conn.fd, conn.write_buf.data(),
                           conn.write_buf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.Add(static_cast<uint64_t>(n));
      conn.write_buf.erase(0, static_cast<size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // Peer gone; nothing left to deliver to.
  }
  return true;
}

void NdjsonServer::QueueReply(Conn& conn, uint64_t seq, std::string line,
                              uint64_t reply_ns) {
  conn.ready.emplace(seq, PendingReply{std::move(line), reply_ns});
  // Flush the contiguous prefix: responses leave in request order no matter
  // what order the shards finished in.
  auto it = conn.ready.find(conn.next_reply);
  while (it != conn.ready.end()) {
    conn.write_buf.append(it->second.line);
    conn.write_buf.push_back('\n');
    // The flush completes the request's trace. write_wait covers Reply() →
    // here: completion-queue latency plus time held behind earlier
    // sequences in the reorder buffer.
    auto trace_it = conn.traces.find(conn.next_reply);
    if (trace_it != conn.traces.end()) {
      const uint64_t now = obs::TraceClockNs();
      if (it->second.reply_ns != 0) {
        const uint64_t span_id = obs::RecordStageSpan(
            "net.write_wait", it->second.reply_ns, now, trace_it->second);
        WriteWaitHistogram().RecordWithExemplar(
            static_cast<double>(now - std::min(now, it->second.reply_ns)) /
                1000.0,
            span_id);
      }
      obs::SlowTraceReservoir::Global().End(trace_it->second, now);
      conn.traces.erase(trace_it);
    }
    conn.ready.erase(it);
    ++conn.next_reply;
    it = conn.ready.find(conn.next_reply);
  }
  // Opportunistic flush so a reply does not wait for the next poll tick.
  WriteConn(conn);
}

void NdjsonServer::AbortTraces(Conn& conn) {
  for (auto& [seq, trace] : conn.traces) {
    obs::SlowTraceReservoir::Global().Abort(trace);
  }
  conn.traces.clear();
}

void NdjsonServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  AbortTraces(it->second);
  const int fd = it->second.fd;
  conns_.erase(it);
  // Publish the new count *before* closing: a peer observes our FIN the
  // moment close() runs, and anything it does next (a test asserting the
  // gauge, a load balancer re-polling) must already see this conn gone.
  connections_now_.store(conns_.size(), std::memory_order_relaxed);
  connections_gauge_.Set(static_cast<double>(conns_.size()));
  close(fd);
}

}  // namespace pa::net
