#ifndef PA_NET_SOCKET_UTIL_H_
#define PA_NET_SOCKET_UTIL_H_

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace pa::net {

/// Shared dependency-free socket plumbing for every network surface in the
/// repo (the obs HTTP exposition server and the NDJSON serving front-end).
/// One implementation of the listen/accept/poll dance instead of a
/// hand-rolled copy per server; all helpers are EINTR-safe and every fd they
/// create carries FD_CLOEXEC, so a fork+exec elsewhere in the process can
/// never inherit a listening or accepted socket.

/// Creates, binds and listens a TCP socket on `port` (0 = kernel-assigned
/// ephemeral port). `loopback_only` binds 127.0.0.1, otherwise 0.0.0.0.
/// On success returns the listening fd (SO_REUSEADDR and FD_CLOEXEC set)
/// and stores the bound port in `*bound_port`. On failure returns -1 with a
/// reason in `*error` (both out-params optional).
int ListenTcp(uint16_t port, bool loopback_only, uint16_t* bound_port,
              std::string* error);

/// accept() with EINTR retry; the accepted socket gets FD_CLOEXEC before it
/// is returned. Returns -1 when no connection is ready (EAGAIN/EWOULDBLOCK
/// on a non-blocking listener) or on a fatal error; errno is preserved.
int AcceptConnection(int listen_fd);

/// poll() retrying on EINTR with the remaining timeout recomputed, so a
/// signal delivery never turns into a spurious "ready"/timeout. Semantics
/// otherwise match poll(): returns the ready count, 0 on timeout, -1 on a
/// non-EINTR error. `timeout_ms < 0` waits forever.
int PollRetry(pollfd* fds, size_t nfds, int timeout_ms);

/// Marks `fd` non-blocking (O_NONBLOCK). Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// Marks `fd` close-on-exec (FD_CLOEXEC). Returns false on fcntl failure.
bool SetCloseOnExec(int fd);

/// Blocking client connect to 127.0.0.1:`port` (tests, benches, CLI smoke
/// drivers). Returns the connected fd (FD_CLOEXEC set) or -1 with `*error`.
int ConnectTcp(uint16_t port, std::string* error);

/// Sends the whole buffer, retrying on EINTR and partial writes (blocking
/// sockets). Returns false on any other error.
bool SendAll(int fd, const void* data, size_t len);

}  // namespace pa::net

#endif  // PA_NET_SOCKET_UTIL_H_
