#ifndef PA_GEO_RSTAR_TREE_H_
#define PA_GEO_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/latlng.h"

namespace pa::geo {

/// R*-tree over points (Beckmann, Kriegel, Schneider, Seeger 1990) — the
/// improved access method the paper also cites ([45]). Differences from the
/// Guttman `RTree`:
///
///  * **ChooseSubtree** minimizes *overlap enlargement* at the leaf level
///    (area enlargement above it), not just area enlargement;
///  * **Axis-sort split**: entries are sorted along each axis, the axis
///    with minimum margin sum is chosen, and the distribution minimizing
///    overlap (ties: area) is used — producing squarer, less overlapping
///    nodes than the quadratic split;
///  * **Forced reinsertion**: on first overflow at a level, the 30% of
///    entries farthest from the node centre are reinserted instead of
///    splitting, globally reorganizing the tree.
///
/// Query interface mirrors `RTree` (k-NN best-first, radius, box) so the
/// two are interchangeable; property tests assert both agree with brute
/// force, and the microbenchmarks compare their query costs.
class RStarTree {
 public:
  struct Entry {
    LatLng point;
    int32_t id = 0;
  };

  struct Neighbor {
    int32_t id = 0;
    LatLng point;
    double distance_km = 0.0;
  };

  explicit RStarTree(int max_entries = 8);
  ~RStarTree();

  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  void Insert(const LatLng& point, int32_t id);

  static RStarTree Build(const std::vector<Entry>& entries,
                         int max_entries = 8);

  /// k nearest entries by haversine distance, ascending.
  std::vector<Neighbor> Nearest(const LatLng& p, int k) const;

  /// All entries within `radius_km`, ascending by distance.
  std::vector<Neighbor> WithinRadius(const LatLng& p, double radius_km) const;

  /// All entries inside `box`, unordered.
  std::vector<Entry> InBox(const BoundingBox& box) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int Height() const;
  bool CheckInvariants(std::string* why = nullptr) const;

  /// Sum of bounding-box areas over all internal levels (deg^2) — lower
  /// means tighter packing; exposed so tests can compare against the
  /// quadratic-split R-tree.
  double TotalInternalAreaDeg2() const;

  struct Node;  // Implementation detail (see rtree.h for the rationale).

 private:
  void InsertEntry(const Entry& entry, bool allow_reinsert);

  std::unique_ptr<Node> root_;
  int max_entries_;
  size_t size_ = 0;
  bool reinserting_ = false;  // Guards against recursive forced reinsertion.
};

}  // namespace pa::geo

#endif  // PA_GEO_RSTAR_TREE_H_
