#ifndef PA_GEO_RTREE_H_
#define PA_GEO_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/latlng.h"

namespace pa::geo {

/// Dynamic R-tree over points with int32 payloads (POI ids), after Guttman
/// (1984) with the quadratic split heuristic — the spatial access method the
/// paper cites ([44]–[46]) and the index behind the linear-interpolation
/// augmentation baselines (nearest-POI and most-popular-POI-near-p queries)
/// and FPMC-LR's localized-region candidate restriction.
///
/// Supported queries:
///   * `Nearest(p, k)`  — k nearest entries by haversine distance, best-first
///     search with bounding-box lower-bound pruning.
///   * `WithinRadius(p, r)` — all entries within r kilometres.
///   * `InBox(b)`       — all entries whose point lies in the box.
///
/// The tree owns its entries; ids need not be unique.
class RTree {
 public:
  struct Entry {
    LatLng point;
    int32_t id = 0;
  };

  struct Neighbor {
    int32_t id = 0;
    LatLng point;
    double distance_km = 0.0;
  };

  /// `max_entries` is Guttman's M (node capacity); min fill is M / 2.
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void Insert(const LatLng& point, int32_t id);

  /// Builds a tree from a flat list (insert-in-order bulk load).
  static RTree Build(const std::vector<Entry>& entries, int max_entries = 8);

  /// k nearest neighbours ordered by increasing distance. Returns fewer than
  /// k when the tree has fewer entries.
  std::vector<Neighbor> Nearest(const LatLng& p, int k) const;

  /// All entries within `radius_km` of `p`, ordered by increasing distance.
  std::vector<Neighbor> WithinRadius(const LatLng& p, double radius_km) const;

  /// All entries inside `box`, in no particular order.
  std::vector<Entry> InBox(const BoundingBox& box) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Height of the tree (1 for a single leaf). Exposed for tests.
  int Height() const;
  /// Validates structural invariants (fill factors, box containment);
  /// returns false and the reason via `why` if violated. Exposed for tests.
  bool CheckInvariants(std::string* why = nullptr) const;

  /// Implementation detail, public only so the .cc file's free helper
  /// functions can name it; not part of the supported API.
  struct Node;

 private:
  std::unique_ptr<Node> root_;
  int max_entries_;
  size_t size_ = 0;
};

}  // namespace pa::geo

#endif  // PA_GEO_RTREE_H_
