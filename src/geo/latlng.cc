#include "geo/latlng.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace pa::geo {

namespace {

constexpr double kPi = 3.14159265358979323846;

double Radians(double deg) { return deg * kPi / 180.0; }
double Degrees(double rad) { return rad * 180.0 / kPi; }

}  // namespace

std::string LatLng::ToString() const {
  std::ostringstream os;
  os << "(" << lat << ", " << lng << ")";
  return os.str();
}

double HaversineKm(const LatLng& a, const LatLng& b) {
  const double lat1 = Radians(a.lat);
  const double lat2 = Radians(b.lat);
  const double dlat = Radians(b.lat - a.lat);
  const double dlng = Radians(b.lng - a.lng);
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2.0) *
                       std::sin(dlng / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

LatLng InterpolateGreatCircle(const LatLng& a, const LatLng& b, double f) {
  f = std::clamp(f, 0.0, 1.0);
  const double d = HaversineKm(a, b) / kEarthRadiusKm;  // Angular distance.
  if (d < 1e-12) return a;

  const double lat1 = Radians(a.lat), lng1 = Radians(a.lng);
  const double lat2 = Radians(b.lat), lng2 = Radians(b.lng);
  const double sin_d = std::sin(d);
  const double wa = std::sin((1.0 - f) * d) / sin_d;
  const double wb = std::sin(f * d) / sin_d;

  const double x = wa * std::cos(lat1) * std::cos(lng1) +
                   wb * std::cos(lat2) * std::cos(lng2);
  const double y = wa * std::cos(lat1) * std::sin(lng1) +
                   wb * std::cos(lat2) * std::sin(lng2);
  const double z = wa * std::sin(lat1) + wb * std::sin(lat2);

  return {Degrees(std::atan2(z, std::sqrt(x * x + y * y))),
          Degrees(std::atan2(y, x))};
}

BoundingBox BoundingBox::Empty() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {inf, inf, -inf, -inf};
}

void BoundingBox::Extend(const BoundingBox& o) {
  min_lat = std::min(min_lat, o.min_lat);
  min_lng = std::min(min_lng, o.min_lng);
  max_lat = std::max(max_lat, o.max_lat);
  max_lng = std::max(max_lng, o.max_lng);
}

double BoundingBox::EnlargementDeg2(const BoundingBox& o) const {
  BoundingBox merged = *this;
  merged.Extend(o);
  return merged.AreaDeg2() - AreaDeg2();
}

double BoundingBox::MinDistanceKm(const LatLng& p) const {
  const double lat = std::clamp(p.lat, min_lat, max_lat);
  const double lng = std::clamp(p.lng, min_lng, max_lng);
  return HaversineKm(p, {lat, lng});
}

BoundingBox BoundingBoxAround(const LatLng& center, double radius_km) {
  const double dlat = Degrees(radius_km / kEarthRadiusKm);
  const double cos_lat =
      std::max(0.01, std::cos(Radians(center.lat)));  // Pole guard.
  const double dlng = Degrees(radius_km / (kEarthRadiusKm * cos_lat));
  return {center.lat - dlat, center.lng - dlng, center.lat + dlat,
          center.lng + dlng};
}

}  // namespace pa::geo
