#ifndef PA_GEO_GRID_INDEX_H_
#define PA_GEO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/latlng.h"

namespace pa::geo {

/// Uniform lat/lng grid over point payloads — the simpler alternative to the
/// R-tree, kept both as a cross-check in property tests (the two indexes
/// must agree with brute force) and as the faster structure for the dense
/// popularity queries in the POP interpolation baseline.
///
/// Cells are `cell_deg` degrees on each side; nearest-neighbour search scans
/// expanding rings of cells until the best candidate provably beats any
/// unvisited ring.
class GridIndex {
 public:
  struct Neighbor {
    int32_t id = 0;
    LatLng point;
    double distance_km = 0.0;
  };

  explicit GridIndex(double cell_deg = 0.1);

  void Insert(const LatLng& point, int32_t id);

  /// k nearest entries by haversine distance, ascending.
  std::vector<Neighbor> Nearest(const LatLng& p, int k) const;

  /// All entries within `radius_km`, ascending by distance.
  std::vector<Neighbor> WithinRadius(const LatLng& p, double radius_km) const;

  size_t size() const { return size_; }

 private:
  struct Item {
    LatLng point;
    int32_t id;
  };

  int64_t CellKey(int cx, int cy) const {
    return (static_cast<int64_t>(cx) << 32) ^ (cy & 0xffffffffLL);
  }
  int CellX(double lng) const;
  int CellY(double lat) const;

  double cell_deg_;
  size_t size_ = 0;
  std::unordered_map<int64_t, std::vector<Item>> cells_;
};

}  // namespace pa::geo

#endif  // PA_GEO_GRID_INDEX_H_
