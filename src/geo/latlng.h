#ifndef PA_GEO_LATLNG_H_
#define PA_GEO_LATLNG_H_

#include <cmath>
#include <string>

namespace pa::geo {

/// Mean Earth radius, kilometres.
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A geographic coordinate in degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  bool operator==(const LatLng& other) const = default;
  std::string ToString() const;
};

/// Great-circle (haversine) distance in kilometres.
double HaversineKm(const LatLng& a, const LatLng& b);

/// Point at fraction `f` in [0, 1] along the great circle from `a` to `b` —
/// the "straight shortest path" the paper's linear-interpolation baselines
/// assume users travel along (§IV-C). Degenerates gracefully when a == b.
LatLng InterpolateGreatCircle(const LatLng& a, const LatLng& b, double f);

/// Axis-aligned bounding box in degree space. Longitude wrap-around is not
/// modelled; check-in datasets in this library live well inside (-180, 180).
struct BoundingBox {
  double min_lat = 0.0;
  double min_lng = 0.0;
  double max_lat = 0.0;
  double max_lng = 0.0;

  static BoundingBox FromPoint(const LatLng& p) {
    return {p.lat, p.lng, p.lat, p.lng};
  }
  static BoundingBox Empty();

  bool Contains(const LatLng& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lng >= min_lng &&
           p.lng <= max_lng;
  }
  bool Intersects(const BoundingBox& o) const {
    return min_lat <= o.max_lat && max_lat >= o.min_lat &&
           min_lng <= o.max_lng && max_lng >= o.min_lng;
  }
  /// Grows to cover `o`.
  void Extend(const BoundingBox& o);
  void Extend(const LatLng& p) { Extend(FromPoint(p)); }
  /// Area in squared degrees (the R-tree split heuristic currency).
  double AreaDeg2() const {
    return (max_lat - min_lat) * (max_lng - min_lng);
  }
  /// Area of the union with `o` minus own area (enlargement cost).
  double EnlargementDeg2(const BoundingBox& o) const;

  /// Lower bound on the distance (km) from `p` to any point in the box;
  /// zero when `p` is inside. Used to prune R-tree k-NN search.
  double MinDistanceKm(const LatLng& p) const;
};

/// Bounding box covering a circle of `radius_km` around `center` (slightly
/// conservative near the poles, which is fine for a filter step).
BoundingBox BoundingBoxAround(const LatLng& center, double radius_km);

}  // namespace pa::geo

#endif  // PA_GEO_LATLNG_H_
