#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pa::geo {

GridIndex::GridIndex(double cell_deg) : cell_deg_(std::max(1e-6, cell_deg)) {}

int GridIndex::CellX(double lng) const {
  return static_cast<int>(std::floor(lng / cell_deg_));
}

int GridIndex::CellY(double lat) const {
  return static_cast<int>(std::floor(lat / cell_deg_));
}

void GridIndex::Insert(const LatLng& point, int32_t id) {
  cells_[CellKey(CellX(point.lng), CellY(point.lat))].push_back({point, id});
  ++size_;
}

std::vector<GridIndex::Neighbor> GridIndex::Nearest(const LatLng& p,
                                                    int k) const {
  std::vector<Neighbor> best;
  if (size_ == 0 || k <= 0) return best;

  const int cx = CellX(p.lng);
  const int cy = CellY(p.lat);
  // Conservative km-per-cell: a degree of latitude is ~111 km and longitude
  // shrinks with cos(lat), so a ring at distance r cells is at least
  // (r - 1) * cell_deg * 111 * cos_margin km away in latitude alone.
  const double km_per_cell_lat = cell_deg_ * 111.0;

  auto worst = [&]() {
    return best.size() < static_cast<size_t>(k)
               ? std::numeric_limits<double>::infinity()
               : best.back().distance_km;
  };

  // The largest ring we could ever need (covers the whole earth).
  const int max_ring = static_cast<int>(std::ceil(180.0 / cell_deg_)) + 1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Lower bound on distance to any cell in this ring; once it exceeds the
    // current k-th best we can stop.
    if (ring > 0) {
      const double ring_min_km = (ring - 1) * km_per_cell_lat;
      if (ring_min_km > worst()) break;
    }
    for (int dx = -ring; dx <= ring; ++dx) {
      for (int dy = -ring; dy <= ring; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        auto it = cells_.find(CellKey(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const Item& item : it->second) {
          const double d = HaversineKm(p, item.point);
          if (d >= worst()) continue;
          best.push_back({item.id, item.point, d});
          std::sort(best.begin(), best.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance_km < b.distance_km;
                    });
          if (best.size() > static_cast<size_t>(k)) best.pop_back();
        }
      }
    }
  }
  return best;
}

std::vector<GridIndex::Neighbor> GridIndex::WithinRadius(
    const LatLng& p, double radius_km) const {
  std::vector<Neighbor> result;
  if (size_ == 0) return result;
  const BoundingBox box = BoundingBoxAround(p, radius_km);
  const int x0 = CellX(box.min_lng), x1 = CellX(box.max_lng);
  const int y0 = CellY(box.min_lat), y1 = CellY(box.max_lat);
  for (int cx = x0; cx <= x1; ++cx) {
    for (int cy = y0; cy <= y1; ++cy) {
      auto it = cells_.find(CellKey(cx, cy));
      if (it == cells_.end()) continue;
      for (const Item& item : it->second) {
        const double d = HaversineKm(p, item.point);
        if (d <= radius_km) result.push_back({item.id, item.point, d});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance_km < b.distance_km;
            });
  return result;
}

}  // namespace pa::geo
