#include "geo/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace pa::geo {

struct RStarTree::Node {
  bool leaf = true;
  BoundingBox box = BoundingBox::Empty();
  std::vector<Entry> entries;
  std::vector<std::unique_ptr<Node>> children;

  int Count() const {
    return leaf ? static_cast<int>(entries.size())
                : static_cast<int>(children.size());
  }

  void RecomputeBox() {
    box = BoundingBox::Empty();
    if (leaf) {
      for (const Entry& e : entries) box.Extend(e.point);
    } else {
      for (const auto& c : children) box.Extend(c->box);
    }
  }
};

namespace {

using Node = RStarTree::Node;

double Margin(const BoundingBox& b) {
  return (b.max_lat - b.min_lat) + (b.max_lng - b.min_lng);
}

double Overlap(const BoundingBox& a, const BoundingBox& b) {
  const double lat = std::min(a.max_lat, b.max_lat) -
                     std::max(a.min_lat, b.min_lat);
  const double lng = std::min(a.max_lng, b.max_lng) -
                     std::max(a.min_lng, b.min_lng);
  if (lat <= 0.0 || lng <= 0.0) return 0.0;
  return lat * lng;
}

// R* axis split over generic items. Returns the index (in the sorted
// order written back into `items`) where group 1 ends.
template <typename Item, typename GetBox>
int ChooseSplit(std::vector<Item>& items, const GetBox& box_of,
                int min_fill) {
  const int n = static_cast<int>(items.size());

  // Pick the split axis by minimum margin sum over all distributions.
  double best_margin = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  for (int axis = 0; axis < 2; ++axis) {
    std::sort(items.begin(), items.end(),
              [&](const Item& a, const Item& b) {
                const BoundingBox ba = box_of(a), bb = box_of(b);
                return axis == 0 ? ba.min_lat < bb.min_lat
                                 : ba.min_lng < bb.min_lng;
              });
    double margin_sum = 0.0;
    for (int k = min_fill; k <= n - min_fill; ++k) {
      BoundingBox b1 = BoundingBox::Empty(), b2 = BoundingBox::Empty();
      for (int i = 0; i < k; ++i) b1.Extend(box_of(items[i]));
      for (int i = k; i < n; ++i) b2.Extend(box_of(items[i]));
      margin_sum += Margin(b1) + Margin(b2);
    }
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      best_axis = axis;
    }
  }

  // Re-sort on the chosen axis and pick the distribution with minimum
  // overlap (ties: minimum total area).
  std::sort(items.begin(), items.end(), [&](const Item& a, const Item& b) {
    const BoundingBox ba = box_of(a), bb = box_of(b);
    return best_axis == 0 ? ba.min_lat < bb.min_lat
                          : ba.min_lng < bb.min_lng;
  });
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int best_k = min_fill;
  for (int k = min_fill; k <= n - min_fill; ++k) {
    BoundingBox b1 = BoundingBox::Empty(), b2 = BoundingBox::Empty();
    for (int i = 0; i < k; ++i) b1.Extend(box_of(items[i]));
    for (int i = k; i < n; ++i) b2.Extend(box_of(items[i]));
    const double overlap = Overlap(b1, b2);
    const double area = b1.AreaDeg2() + b2.AreaDeg2();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }
  return best_k;
}

std::unique_ptr<Node> SplitNode(Node* node, int max_entries) {
  const int min_fill =
      std::max(1, static_cast<int>(std::ceil(0.4 * (max_entries + 1))));
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  if (node->leaf) {
    const int k = ChooseSplit(
        node->entries,
        [](const RStarTree::Entry& e) {
          return BoundingBox::FromPoint(e.point);
        },
        min_fill);
    sibling->entries.assign(node->entries.begin() + k, node->entries.end());
    node->entries.resize(static_cast<size_t>(k));
  } else {
    const int k = ChooseSplit(
        node->children,
        [](const std::unique_ptr<Node>& c) { return c->box; }, min_fill);
    sibling->children.assign(
        std::make_move_iterator(node->children.begin() + k),
        std::make_move_iterator(node->children.end()));
    node->children.resize(static_cast<size_t>(k));
  }
  node->RecomputeBox();
  sibling->RecomputeBox();
  return sibling;
}

// ChooseSubtree (R*): overlap enlargement for nodes whose children are
// leaves, area enlargement otherwise.
Node* ChooseSubtree(Node* node, const BoundingBox& ebox) {
  const bool children_are_leaves = node->children.front()->leaf;
  Node* best = nullptr;
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();

  for (const auto& child : node->children) {
    BoundingBox enlarged = child->box;
    enlarged.Extend(ebox);
    double primary, secondary;
    if (children_are_leaves) {
      // Overlap enlargement of this child w.r.t. its siblings.
      double before = 0.0, after = 0.0;
      for (const auto& other : node->children) {
        if (other.get() == child.get()) continue;
        before += Overlap(child->box, other->box);
        after += Overlap(enlarged, other->box);
      }
      primary = after - before;
      secondary = enlarged.AreaDeg2() - child->box.AreaDeg2();
    } else {
      primary = enlarged.AreaDeg2() - child->box.AreaDeg2();
      secondary = child->box.AreaDeg2();
    }
    const double area = child->box.AreaDeg2();
    if (primary < best_primary ||
        (primary == best_primary &&
         (secondary < best_secondary ||
          (secondary == best_secondary && area < best_area)))) {
      best_primary = primary;
      best_secondary = secondary;
      best_area = area;
      best = child.get();
    }
  }
  return best;
}

// Recursive insert; returns a split sibling when `node` overflowed and
// splitting (not reinsertion) was chosen by the caller policy.
std::unique_ptr<Node> InsertRec(Node* node, const RStarTree::Entry& entry,
                                int max_entries,
                                std::vector<RStarTree::Entry>* reinsert) {
  const BoundingBox ebox = BoundingBox::FromPoint(entry.point);
  node->box.Extend(ebox);

  if (node->leaf) {
    node->entries.push_back(entry);
    if (node->Count() <= max_entries) return nullptr;
    if (reinsert != nullptr) {
      // Forced reinsertion: remove the ~30% of entries farthest from the
      // node centre and hand them back for reinsertion from the top.
      const double clat = (node->box.min_lat + node->box.max_lat) / 2.0;
      const double clng = (node->box.min_lng + node->box.max_lng) / 2.0;
      std::sort(node->entries.begin(), node->entries.end(),
                [&](const RStarTree::Entry& a, const RStarTree::Entry& b) {
                  auto d = [&](const RStarTree::Entry& e) {
                    const double dlat = e.point.lat - clat;
                    const double dlng = e.point.lng - clng;
                    return dlat * dlat + dlng * dlng;
                  };
                  return d(a) < d(b);
                });
      const int keep =
          node->Count() - std::max(1, static_cast<int>(0.3 * node->Count()));
      reinsert->assign(node->entries.begin() + keep, node->entries.end());
      node->entries.resize(static_cast<size_t>(keep));
      node->RecomputeBox();
      return nullptr;
    }
    return SplitNode(node, max_entries);
  }

  Node* target = ChooseSubtree(node, ebox);
  std::unique_ptr<Node> split =
      InsertRec(target, entry, max_entries, reinsert);
  node->RecomputeBox();
  node->box.Extend(ebox);
  if (split) {
    node->box.Extend(split->box);
    node->children.push_back(std::move(split));
    if (node->Count() > max_entries) return SplitNode(node, max_entries);
  }
  return nullptr;
}

}  // namespace

RStarTree::RStarTree(int max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max(4, max_entries)) {}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

void RStarTree::InsertEntry(const Entry& entry, bool allow_reinsert) {
  std::vector<Entry> reinsert;
  std::unique_ptr<Node> split = InsertRec(
      root_.get(), entry, max_entries_, allow_reinsert ? &reinsert : nullptr);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  for (const Entry& e : reinsert) {
    InsertEntry(e, /*allow_reinsert=*/false);
  }
}

void RStarTree::Insert(const LatLng& point, int32_t id) {
  InsertEntry({point, id}, /*allow_reinsert=*/true);
  ++size_;
}

RStarTree RStarTree::Build(const std::vector<Entry>& entries,
                           int max_entries) {
  RStarTree tree(max_entries);
  for (const Entry& e : entries) tree.Insert(e.point, e.id);
  return tree;
}

std::vector<RStarTree::Neighbor> RStarTree::Nearest(const LatLng& p,
                                                    int k) const {
  struct QueueItem {
    double dist;
    const Node* node;
    Entry entry;
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  if (size_ == 0 || k <= 0) return {};
  pq.push({root_->box.MinDistanceKm(p), root_.get(), {}});

  std::vector<Neighbor> result;
  while (!pq.empty() && static_cast<int>(result.size()) < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      result.push_back({item.entry.id, item.entry.point, item.dist});
      continue;
    }
    if (item.node->leaf) {
      for (const Entry& e : item.node->entries) {
        pq.push({HaversineKm(p, e.point), nullptr, e});
      }
    } else {
      for (const auto& child : item.node->children) {
        pq.push({child->box.MinDistanceKm(p), child.get(), {}});
      }
    }
  }
  return result;
}

std::vector<RStarTree::Neighbor> RStarTree::WithinRadius(
    const LatLng& p, double radius_km) const {
  std::vector<Neighbor> result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->box.MinDistanceKm(p) > radius_km) continue;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        const double d = HaversineKm(p, e.point);
        if (d <= radius_km) result.push_back({e.id, e.point, d});
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance_km < b.distance_km;
            });
  return result;
}

std::vector<RStarTree::Entry> RStarTree::InBox(const BoundingBox& box) const {
  std::vector<Entry> result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(box)) continue;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        if (box.Contains(e.point)) result.push_back(e);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return result;
}

int RStarTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

namespace {

bool CheckNode(const Node* node, bool is_root, int max_entries, int depth,
               int* leaf_depth, std::string* why) {
  if (node->Count() > max_entries) {
    if (why) *why = "node exceeds max_entries";
    return false;
  }
  if (!is_root && node->Count() < 1) {
    if (why) *why = "empty non-root node";
    return false;
  }
  if (node->leaf) {
    if (*leaf_depth == -1) *leaf_depth = depth;
    if (*leaf_depth != depth) {
      if (why) *why = "leaves at different depths";
      return false;
    }
    for (const auto& e : node->entries) {
      if (!node->box.Contains(e.point)) {
        if (why) *why = "leaf box does not contain entry";
        return false;
      }
    }
  } else {
    for (const auto& child : node->children) {
      BoundingBox merged = node->box;
      merged.Extend(child->box);
      if (merged.AreaDeg2() > node->box.AreaDeg2() + 1e-12) {
        if (why) *why = "child box escapes parent box";
        return false;
      }
      if (!CheckNode(child.get(), false, max_entries, depth + 1, leaf_depth,
                     why)) {
        return false;
      }
    }
  }
  return true;
}

double SumAreas(const Node* node) {
  if (node->leaf) return node->box.AreaDeg2();
  double total = node->box.AreaDeg2();
  for (const auto& child : node->children) total += SumAreas(child.get());
  return total;
}

}  // namespace

bool RStarTree::CheckInvariants(std::string* why) const {
  if (size_ == 0) return true;
  int leaf_depth = -1;
  return CheckNode(root_.get(), true, max_entries_, 0, &leaf_depth, why);
}

double RStarTree::TotalInternalAreaDeg2() const {
  return SumAreas(root_.get());
}

}  // namespace pa::geo
