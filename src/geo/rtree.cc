#include "geo/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

namespace pa::geo {

struct RTree::Node {
  bool leaf = true;
  BoundingBox box = BoundingBox::Empty();
  std::vector<Entry> entries;                   // Populated when leaf.
  std::vector<std::unique_ptr<Node>> children;  // Populated when internal.

  int Count() const {
    return leaf ? static_cast<int>(entries.size())
                : static_cast<int>(children.size());
  }

  void RecomputeBox() {
    box = BoundingBox::Empty();
    if (leaf) {
      for (const Entry& e : entries) box.Extend(e.point);
    } else {
      for (const auto& c : children) box.Extend(c->box);
    }
  }
};

namespace {

using Node = RTree::Node;

// Quadratic-split seed selection (Guttman): the pair whose combined box
// wastes the most area.
template <typename GetBox>
std::pair<int, int> PickSeeds(int n, const GetBox& box_of) {
  double worst = -std::numeric_limits<double>::infinity();
  std::pair<int, int> seeds{0, 1};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      BoundingBox merged = box_of(i);
      merged.Extend(box_of(j));
      const double dead =
          merged.AreaDeg2() - box_of(i).AreaDeg2() - box_of(j).AreaDeg2();
      if (dead > worst) {
        worst = dead;
        seeds = {i, j};
      }
    }
  }
  return seeds;
}

// Distributes items of an overflowing node into two groups via the
// quadratic heuristic, honouring the minimum fill `min_fill`.
template <typename Item, typename GetBox>
void QuadraticSplit(std::vector<Item>& items, const GetBox& box_of_item,
                    int min_fill, std::vector<Item>* group_a,
                    std::vector<Item>* group_b, BoundingBox* box_a,
                    BoundingBox* box_b) {
  const int n = static_cast<int>(items.size());
  auto box_of = [&](int i) { return box_of_item(items[i]); };
  auto [sa, sb] = PickSeeds(n, box_of);

  std::vector<bool> assigned(n, false);
  *box_a = box_of(sa);
  *box_b = box_of(sb);
  group_a->push_back(std::move(items[sa]));
  group_b->push_back(std::move(items[sb]));
  assigned[sa] = assigned[sb] = true;
  int remaining = n - 2;

  while (remaining > 0) {
    // Forced assignment when one group must absorb the rest to reach fill.
    const int need_a = min_fill - static_cast<int>(group_a->size());
    const int need_b = min_fill - static_cast<int>(group_b->size());
    if (need_a >= remaining || need_b >= remaining) {
      std::vector<Item>* target = need_a >= remaining ? group_a : group_b;
      BoundingBox* tbox = need_a >= remaining ? box_a : box_b;
      for (int i = 0; i < n; ++i) {
        if (!assigned[i]) {
          tbox->Extend(box_of_item(items[i]));
          target->push_back(std::move(items[i]));
          assigned[i] = true;
        }
      }
      break;
    }

    // PickNext: the unassigned item with the greatest preference difference.
    int best = -1;
    double best_diff = -1.0;
    for (int i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = box_a->EnlargementDeg2(box_of_item(items[i]));
      const double db = box_b->EnlargementDeg2(box_of_item(items[i]));
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double da = box_a->EnlargementDeg2(box_of_item(items[best]));
    const double db = box_b->EnlargementDeg2(box_of_item(items[best]));
    bool to_a = da < db;
    if (da == db) {
      to_a = box_a->AreaDeg2() < box_b->AreaDeg2() ||
             (box_a->AreaDeg2() == box_b->AreaDeg2() &&
              group_a->size() <= group_b->size());
    }
    if (to_a) {
      box_a->Extend(box_of_item(items[best]));
      group_a->push_back(std::move(items[best]));
    } else {
      box_b->Extend(box_of_item(items[best]));
      group_b->push_back(std::move(items[best]));
    }
    assigned[best] = true;
    --remaining;
  }
}

// Splits an overflowing node in place; returns the new sibling.
std::unique_ptr<Node> SplitNode(Node* node, int max_entries) {
  const int min_fill = std::max(1, max_entries / 2);
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  if (node->leaf) {
    std::vector<RTree::Entry> items = std::move(node->entries);
    node->entries.clear();
    BoundingBox box_a, box_b;
    QuadraticSplit(
        items,
        [](const RTree::Entry& e) { return BoundingBox::FromPoint(e.point); },
        min_fill, &node->entries, &sibling->entries, &box_a, &box_b);
    node->box = box_a;
    sibling->box = box_b;
  } else {
    std::vector<std::unique_ptr<Node>> items = std::move(node->children);
    node->children.clear();
    BoundingBox box_a, box_b;
    QuadraticSplit(
        items, [](const std::unique_ptr<Node>& c) { return c->box; }, min_fill,
        &node->children, &sibling->children, &box_a, &box_b);
    node->box = box_a;
    sibling->box = box_b;
  }
  return sibling;
}

// Recursive insert; returns a split sibling of `node` when it overflowed.
std::unique_ptr<Node> InsertRec(Node* node, const RTree::Entry& entry,
                                int max_entries) {
  const BoundingBox ebox = BoundingBox::FromPoint(entry.point);
  node->box.Extend(ebox);

  if (node->leaf) {
    node->entries.push_back(entry);
    if (node->Count() > max_entries) return SplitNode(node, max_entries);
    return nullptr;
  }

  // ChooseLeaf: least enlargement, ties by smallest area.
  Node* best = nullptr;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& child : node->children) {
    const double enlarge = child->box.EnlargementDeg2(ebox);
    const double area = child->box.AreaDeg2();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = child.get();
    }
  }

  std::unique_ptr<Node> split = InsertRec(best, entry, max_entries);
  if (split) {
    node->children.push_back(std::move(split));
    if (node->Count() > max_entries) return SplitNode(node, max_entries);
  }
  return nullptr;
}

}  // namespace

RTree::RTree(int max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max(4, max_entries)) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Insert(const LatLng& point, int32_t id) {
  std::unique_ptr<Node> split = InsertRec(root_.get(), {point, id},
                                          max_entries_);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  ++size_;
}

RTree RTree::Build(const std::vector<Entry>& entries, int max_entries) {
  RTree tree(max_entries);
  for (const Entry& e : entries) tree.Insert(e.point, e.id);
  return tree;
}

std::vector<RTree::Neighbor> RTree::Nearest(const LatLng& p, int k) const {
  struct QueueItem {
    double dist;
    const Node* node;    // Non-null for subtree items.
    Entry entry;         // Valid when node == nullptr.
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  if (size_ == 0 || k <= 0) return {};
  pq.push({root_->box.MinDistanceKm(p), root_.get(), {}});

  std::vector<Neighbor> result;
  while (!pq.empty() && static_cast<int>(result.size()) < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      result.push_back({item.entry.id, item.entry.point, item.dist});
      continue;
    }
    const Node* node = item.node;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        pq.push({HaversineKm(p, e.point), nullptr, e});
      }
    } else {
      for (const auto& child : node->children) {
        pq.push({child->box.MinDistanceKm(p), child.get(), {}});
      }
    }
  }
  return result;
}

std::vector<RTree::Neighbor> RTree::WithinRadius(const LatLng& p,
                                                 double radius_km) const {
  std::vector<Neighbor> result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->box.MinDistanceKm(p) > radius_km) continue;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        const double d = HaversineKm(p, e.point);
        if (d <= radius_km) result.push_back({e.id, e.point, d});
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance_km < b.distance_km;
            });
  return result;
}

std::vector<RTree::Entry> RTree::InBox(const BoundingBox& box) const {
  std::vector<Entry> result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(box)) continue;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        if (box.Contains(e.point)) result.push_back(e);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return result;
}

int RTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

namespace {

bool CheckNode(const Node* node, bool is_root, int max_entries, int depth,
               int* leaf_depth, std::string* why) {
  const int min_fill = std::max(1, max_entries / 2);
  const int count = node->Count();
  if (count > max_entries) {
    if (why) *why = "node exceeds max_entries";
    return false;
  }
  if (!is_root && count < min_fill) {
    if (why) *why = "non-root node under-filled";
    return false;
  }
  if (node->leaf) {
    if (*leaf_depth == -1) *leaf_depth = depth;
    if (*leaf_depth != depth) {
      if (why) *why = "leaves at different depths";
      return false;
    }
    for (const auto& e : node->entries) {
      if (!node->box.Contains(e.point)) {
        if (why) *why = "leaf box does not contain entry";
        return false;
      }
    }
  } else {
    for (const auto& child : node->children) {
      BoundingBox merged = node->box;
      merged.Extend(child->box);
      // Extending must not grow the parent box: child is contained.
      if (merged.AreaDeg2() > node->box.AreaDeg2() + 1e-12) {
        if (why) *why = "child box escapes parent box";
        return false;
      }
      if (!CheckNode(child.get(), false, max_entries, depth + 1, leaf_depth,
                     why)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool RTree::CheckInvariants(std::string* why) const {
  if (size_ == 0) return true;
  int leaf_depth = -1;
  return CheckNode(root_.get(), true, max_entries_, 0, &leaf_depth, why);
}

}  // namespace pa::geo
