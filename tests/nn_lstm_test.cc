#include "nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pa::nn {
namespace {

using tensor::Tensor;

TEST(LstmCellTest, StateShapes) {
  util::Rng rng(1);
  LstmCell cell(3, 4, rng);
  LstmState s = cell.InitialState(2);
  EXPECT_EQ(s.h.rows(), 2);
  EXPECT_EQ(s.h.cols(), 4);
  LstmState next = cell.Forward(Tensor::Zeros({2, 3}), s);
  EXPECT_EQ(next.h.rows(), 2);
  EXPECT_EQ(next.h.cols(), 4);
  EXPECT_EQ(next.c.cols(), 4);
}

TEST(LstmCellTest, HiddenStateBounded) {
  util::Rng rng(2);
  LstmCell cell(3, 4, rng);
  LstmState s = cell.InitialState(1);
  Tensor x = tensor::UniformInit({1, 3}, 5.0f, rng);
  for (int t = 0; t < 10; ++t) s = cell.Forward(x, s);
  for (int j = 0; j < 4; ++j) {
    EXPECT_LE(std::fabs(s.h.at(0, j)), 1.0f);  // o * tanh(c) is in [-1, 1].
  }
}

TEST(LstmCellTest, GradCheckThroughTwoSteps) {
  util::Rng rng(3);
  LstmCell cell(2, 3, rng);
  Tensor x1 = tensor::UniformInit({1, 2}, 1.0f, rng);
  Tensor x2 = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    LstmState s = cell.InitialState(1);
    s = cell.Forward(x1, s);
    s = cell.Forward(x2, s);
    return tensor::Sum(tensor::Square(s.h));
  };
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x1);
  inputs.push_back(x2);
  auto result = tensor::CheckGradients(loss, inputs);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.max_rel_error;
}

TEST(LstmCellTest, ZoneoutDisabledIsPlainForward) {
  util::Rng rng(4);
  LstmCell cell(2, 3, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  LstmState s0 = cell.InitialState(1);
  LstmState a = cell.Forward(x, s0);
  LstmState b = cell.ForwardZoneout(x, s0, ZoneoutConfig{}, true, rng);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(a.h.at(0, j), b.h.at(0, j));
}

TEST(LstmCellTest, ZoneoutEvalIsExpectedBlend) {
  util::Rng rng(5);
  LstmCell cell(2, 3, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  LstmState prev = cell.InitialState(1);
  prev.h = Tensor::Full({1, 3}, 0.5f);
  prev.c = Tensor::Full({1, 3}, 0.25f);
  LstmState plain = cell.Forward(x, prev);
  ZoneoutConfig z{0.3f, 0.2f};
  LstmState blended = cell.ForwardZoneout(x, prev, z, /*training=*/false, rng);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(blended.h.at(0, j),
                0.3f * 0.5f + 0.7f * plain.h.at(0, j), 1e-5);
    EXPECT_NEAR(blended.c.at(0, j),
                0.2f * 0.25f + 0.8f * plain.c.at(0, j), 1e-5);
  }
}

TEST(LstmCellTest, ZoneoutTrainingPreservesUnitsStatistically) {
  util::Rng rng(6);
  const int hidden = 64;
  LstmCell cell(2, hidden, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  LstmState prev = cell.InitialState(1);
  prev.h = Tensor::Full({1, hidden}, 123.0f);  // Marker value.
  ZoneoutConfig z{0.5f, 0.0f};
  int preserved = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    LstmState next = cell.ForwardZoneout(x, prev, z, /*training=*/true, rng);
    for (int j = 0; j < hidden; ++j) {
      if (next.h.at(0, j) == 123.0f) ++preserved;
    }
  }
  const double frac = static_cast<double>(preserved) / (trials * hidden);
  EXPECT_NEAR(frac, 0.5, 0.08);
}

TEST(BiLstmTest, OutputConcatenatesBothDirections) {
  util::Rng rng(7);
  BiLstm bi(2, 3, rng);
  std::vector<Tensor> xs = {Tensor::Zeros({1, 2}), Tensor::Zeros({1, 2})};
  auto out = bi.Forward(xs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].cols(), 6);
  EXPECT_EQ(bi.output_dim(), 6);
}

TEST(BiLstmTest, BackwardHalfSeesFutureTokens) {
  // The backward direction's state at position 0 must depend on the last
  // input; changing only the final input must change out[0]'s second half.
  util::Rng rng(8);
  BiLstm bi(2, 3, rng);
  std::vector<Tensor> xs1 = {tensor::Tensor::FromData({1, 2}, {1, 0}),
                             tensor::Tensor::FromData({1, 2}, {0, 0})};
  std::vector<Tensor> xs2 = {tensor::Tensor::FromData({1, 2}, {1, 0}),
                             tensor::Tensor::FromData({1, 2}, {5, -5})};
  auto out1 = bi.Forward(xs1);
  auto out2 = bi.Forward(xs2);
  // Forward half at t=0 identical...
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(out1[0].at(0, j), out2[0].at(0, j));
  }
  // ...backward half differs.
  float diff = 0.0f;
  for (int j = 3; j < 6; ++j) {
    diff += std::fabs(out1[0].at(0, j) - out2[0].at(0, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(BiLstmTest, EmptySequenceYieldsEmptyOutput) {
  util::Rng rng(9);
  BiLstm bi(2, 3, rng);
  EXPECT_TRUE(bi.Forward({}).empty());
}

TEST(ResidualStackTest, OutputDims) {
  util::Rng rng(10);
  ResidualBiLstmStack stack(5, 4, /*use_residual=*/true, rng);
  std::vector<Tensor> xs = {Tensor::Zeros({1, 5}), Tensor::Zeros({1, 5}),
                            Tensor::Zeros({1, 5})};
  LstmState final_state;
  auto out = stack.Forward(xs, &final_state);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].cols(), 8);  // 2 * hidden.
  EXPECT_EQ(final_state.h.cols(), 8);
}

TEST(ResidualStackTest, ResidualChangesOutput) {
  // With and without residual are different functions even for the same
  // seed (the residual path adds the projected input).
  util::Rng rng1(11), rng2(11);
  ResidualBiLstmStack with(3, 4, true, rng1);
  ResidualBiLstmStack without(3, 4, false, rng2);
  std::vector<Tensor> xs = {tensor::Tensor::Full({1, 3}, 0.7f)};
  auto a = with.Forward(xs);
  auto b = without.Forward(xs);
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::fabs(a[0].at(0, j) - b[0].at(0, j));
  EXPECT_GT(diff, 1e-5f);
}

TEST(ResidualStackTest, NoProjectionWhenWidthsMatch) {
  util::Rng rng(12);
  // input_dim == 2 * hidden_dim -> identity skip: the residual stack has
  // exactly the same parameters as the plain stack.
  ResidualBiLstmStack with_residual(8, 4, true, rng);
  util::Rng rng2(12);
  ResidualBiLstmStack without_residual(8, 4, false, rng2);
  EXPECT_EQ(with_residual.NumParameters(), without_residual.NumParameters());

  // Mismatched widths add a learned projection on the skip path.
  util::Rng rng3(12), rng4(12);
  ResidualBiLstmStack projected(5, 4, true, rng3);
  ResidualBiLstmStack plain(5, 4, false, rng4);
  EXPECT_EQ(projected.NumParameters(),
            plain.NumParameters() + 5 * 8 + 8);
}

TEST(ResidualStackTest, GradCheckSmall) {
  util::Rng rng(13);
  ResidualBiLstmStack stack(2, 2, true, rng);
  Tensor x0 = tensor::UniformInit({1, 2}, 1.0f, rng);
  Tensor x1 = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    auto out = stack.Forward({x0, x1});
    return tensor::Sum(tensor::Square(out[1]));
  };
  std::vector<Tensor> inputs = {x0, x1};
  auto result = tensor::CheckGradients(loss, inputs, 1e-2f, 5e-2f);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.max_rel_error;
}

TEST(LstmCellTest, ForgetBiasInitializedToOne) {
  util::Rng rng(14);
  LstmCell cell(2, 3, rng);
  const Tensor& b = cell.Parameters()[2];
  for (int j = 3; j < 6; ++j) EXPECT_FLOAT_EQ(b.at(0, j), 1.0f);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(b.at(0, j), 0.0f);
}

}  // namespace
}  // namespace pa::nn
