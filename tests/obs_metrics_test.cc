// Tests for the obs:: metrics layer: instrument semantics, the registry's
// ownership model (registry-owned Get* vs caller-owned Register* with
// owner-tagged Unregister), snapshot JSON shape, and — under TSan — that
// concurrent bumps, snapshots and resets are race-free. The histogram
// tests pin the no-torn-reset contract that replaced the old
// serve::LatencyHistogram's separate total counter.

#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pa::obs {
namespace {

TEST(Counter, IncrementAddResetAreVisible) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddUpdateMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.UpdateMax(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.UpdateMax(3.0);  // Lower value must not win.
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, PercentilesInterpolateWithinBucketError) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1000u);
  // Geometric buckets (ratio 1.5) bound relative error by the bucket width.
  EXPECT_GT(stats.p50, 500.0 / Histogram::kRatio);
  EXPECT_LT(stats.p50, 500.0 * Histogram::kRatio);
  EXPECT_GT(stats.p99, 990.0 / Histogram::kRatio);
  EXPECT_LT(stats.p99, 990.0 * Histogram::kRatio);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_GT(stats.mean, 500.5 / Histogram::kRatio);
  EXPECT_LT(stats.mean, 500.5 * Histogram::kRatio);
}

TEST(Histogram, ExtremesLandInEdgeBuckets) {
  Histogram h;
  h.Record(0.0);      // Below the first bucket: clamps, must not crash.
  h.Record(-5.0);     // Negative: same.
  h.Record(1e300);    // Far past the last bucket: clamps to the catch-all.
  EXPECT_EQ(h.count(), 3u);
  const HistogramStats stats = h.Stats();
  EXPECT_TRUE(std::isfinite(stats.p99));
  EXPECT_TRUE(std::isfinite(stats.mean));
}

// Direct edge-case coverage for the interpolated-percentile code.
TEST(Histogram, PercentileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);

  // All mass in one bucket: every quantile interpolates inside that bucket,
  // so the answers are bounded by the bucket edges containing 10.0.
  Histogram single;
  for (int i = 0; i < 1000; ++i) single.Record(10.0);
  const double lo = 10.0 / Histogram::kRatio;
  const double hi = 10.0 * Histogram::kRatio;
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    const double v = single.Percentile(q);
    EXPECT_GE(v, lo) << "q=" << q;
    EXPECT_LE(v, hi) << "q=" << q;
  }
  // q=0 targets the first sample, q=1 the last; with one bucket they agree
  // up to intra-bucket interpolation and must be ordered.
  EXPECT_LE(single.Percentile(0.0), single.Percentile(1.0));

  // Values beyond the last bucket boundary clamp into the catch-all bucket:
  // finite percentiles, no overflow past the final upper bound.
  Histogram beyond;
  beyond.Record(1e300);
  beyond.Record(1e301);
  for (const double q : {0.0, 0.5, 1.0}) {
    const double v = beyond.Percentile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_GE(v, Histogram::BucketLowerBound(Histogram::kBuckets - 1));
    EXPECT_LE(v, Histogram::BucketUpperBound(Histogram::kBuckets - 1));
  }
}

TEST(Histogram, BucketBoundsAreGeometricAndAdjacent) {
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(0), Histogram::kFirstBucket);
  for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_NEAR(Histogram::BucketUpperBound(i),
                Histogram::BucketLowerBound(i + 1),
                1e-9 * Histogram::BucketUpperBound(i));
  }
  EXPECT_GT(Histogram::BucketUpperBound(Histogram::kBuckets - 1), 1e11);
}

TEST(Histogram, ExemplarLinksP99BucketToSpan) {
  Histogram h;
  // Zero span id degrades to a plain Record: no exemplar retained.
  h.RecordWithExemplar(50.0, 0);
  EXPECT_EQ(h.Stats().p99_exemplar_span, 0u);

  // Tail value with a span: the p99 bucket (the tail) carries it.
  for (int i = 0; i < 200; ++i) h.Record(50.0);
  h.RecordWithExemplar(100000.0, 42);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 202u);
  EXPECT_EQ(stats.p99_exemplar_span, 42u);

  // Last-wins per bucket.
  h.RecordWithExemplar(100000.0, 43);
  EXPECT_EQ(h.Stats().p99_exemplar_span, 43u);

  // When the p99 bucket itself has no exemplar, the nearest recorded one
  // still surfaces (fallback search).
  Histogram fallback;
  for (int i = 0; i < 100; ++i) fallback.Record(100.0);
  fallback.RecordWithExemplar(10.0, 7);  // Below the p99 bucket.
  EXPECT_EQ(fallback.Stats().p99_exemplar_span, 7u);

  // Reset clears exemplars along with counts.
  h.Reset();
  EXPECT_EQ(h.Stats().p99_exemplar_span, 0u);

  // ExportBuckets surfaces the per-bucket exemplar for exposition.
  Histogram exported;
  exported.RecordWithExemplar(1.2, 9);
  const Histogram::Export exp = exported.ExportBuckets();
  uint64_t total = 0;
  bool found = false;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    total += exp.counts[i];
    if (exp.exemplar_span[i] == 9) {
      found = true;
      EXPECT_EQ(exp.counts[i], 1u);
    }
  }
  EXPECT_EQ(total, 1u);
  EXPECT_TRUE(found);
}

TEST(Histogram, ResetClearsEverythingConsistently) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(50.0);
  EXPECT_EQ(h.count(), 100u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 0.0);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
}

// The torn-reset regression: with the old separate-total design a reader
// racing a Reset could observe total > 0 against zeroed buckets (or the
// reverse) and report wild percentiles. Count and percentiles now derive
// from one bucket snapshot, so every digest a reader sees — even mid-Reset,
// mid-Record — must be internally consistent. TSan also proves the data-race
// freedom of the three-way concurrency.
TEST(Histogram, ConcurrentRecordResetReadersSeeConsistentDigests) {
  Histogram h;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h.Record(static_cast<double>(1 + (i++ % 2048)));
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      h.Reset();
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 3000; ++i) {
    const HistogramStats stats = h.Stats();
    ASSERT_TRUE(std::isfinite(stats.p50));
    ASSERT_TRUE(std::isfinite(stats.p99));
    ASSERT_LE(stats.p50, stats.p95);
    ASSERT_LE(stats.p95, stats.p99);
    if (stats.count == 0) {
      ASSERT_DOUBLE_EQ(stats.p50, 0.0);
      ASSERT_DOUBLE_EQ(stats.p99, 0.0);
    } else {
      // All recorded values are in [1, 2048]; a consistent digest can never
      // interpolate past the bucket containing the max by more than the
      // bucket ratio.
      ASSERT_GT(stats.p99, 0.0);
      ASSERT_LT(stats.p99, 2048.0 * Histogram::kRatio);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  resetter.join();
}

TEST(MetricRegistry, GetReturnsStableAddresses) {
  auto& registry = MetricRegistry::Global();
  Counter& a = registry.GetCounter("test.registry.stable");
  Counter& b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.registry.stable"), 1u);
  registry.Unregister("test.registry.stable", nullptr);
}

TEST(MetricRegistry, GetWithKindMismatchRebindsTheName) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.registry.kind").Add(7);
  Gauge& g = registry.GetGauge("test.registry.kind");
  g.Set(1.25);
  const auto snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.count("test.registry.kind"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.registry.kind"), 1.25);
  registry.Unregister("test.registry.kind", nullptr);
}

TEST(MetricRegistry, RegisteredInstrumentsLastWinsAndOwnerTaggedUnregister) {
  auto& registry = MetricRegistry::Global();
  Counter first;
  first.Add(5);
  registry.RegisterCounter("test.registry.owned", &first);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.registry.owned"), 5u);

  Counter second;
  second.Add(7);
  registry.RegisterCounter("test.registry.owned", &second);  // Last wins.
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.registry.owned"), 7u);

  // The replaced owner's teardown must not evict its replacement.
  registry.Unregister("test.registry.owned", &first);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.registry.owned"), 7u);

  registry.Unregister("test.registry.owned", &second);
  EXPECT_EQ(registry.TakeSnapshot().counters.count("test.registry.owned"), 0u);
}

TEST(MetricRegistry, CallbackGaugeComputedAtSnapshotTime) {
  auto& registry = MetricRegistry::Global();
  double live = 3.0;
  const int owner_tag = 0;
  registry.RegisterCallbackGauge("test.registry.callback", &owner_tag,
                                 [&live] { return live; });
  EXPECT_DOUBLE_EQ(registry.TakeSnapshot().gauges.at("test.registry.callback"),
                   3.0);
  live = 9.0;
  EXPECT_DOUBLE_EQ(registry.TakeSnapshot().gauges.at("test.registry.callback"),
                   9.0);
  registry.Unregister("test.registry.callback", &owner_tag);
  EXPECT_EQ(registry.TakeSnapshot().gauges.count("test.registry.callback"),
            0u);
}

TEST(MetricRegistry, SnapshotJsonShapeAndEscaping) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.json.count\"er\\x").Add(3);
  registry.GetGauge("test.json.gauge").Set(2.5);
  registry.GetHistogram("test.json.hist").Record(100.0);
  const std::string json = registry.SnapshotJson();

  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  // The quote and backslash in the counter name must be escaped.
  EXPECT_NE(json.find("\"test.json.count\\\"er\\\\x\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);

  // Structurally balanced (quotes toggled off, every close matches an open).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : json) {
    if (escaped) {
      escaped = false;
    } else if (ch == '\\') {
      escaped = true;
    } else if (ch == '"') {
      in_string = !in_string;
    } else if (!in_string && ch == '{') {
      ++depth;
    } else if (!in_string && ch == '}') {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  registry.Unregister("test.json.count\"er\\x", nullptr);
  registry.Unregister("test.json.gauge", nullptr);
  registry.Unregister("test.json.hist", nullptr);
}

TEST(MetricRegistry, SnapshotDeltaJsonReportsOnlyTheChange) {
  auto& registry = MetricRegistry::Global();
  Counter& c = registry.GetCounter("test.delta.counter");
  Gauge& g = registry.GetGauge("test.delta.gauge");
  Histogram& h = registry.GetHistogram("test.delta.hist");
  c.Add(10);
  g.Set(1.0);
  h.Record(5.0);
  const auto before = registry.TakeSnapshot();

  c.Add(32);
  g.Set(9.5);
  h.Record(5.0);
  h.Record(5.0);
  registry.GetCounter("test.delta.new").Add(4);  // Absent from `before`.
  const auto after = registry.TakeSnapshot();

  const std::string json = SnapshotDeltaJson(before, after);
  // Counters: after - before; new counters report their absolute value.
  EXPECT_NE(json.find("\"test.delta.counter\":32"), std::string::npos);
  EXPECT_NE(json.find("\"test.delta.new\":4"), std::string::npos);
  // Gauges are point-in-time: after's value, unchanged.
  EXPECT_NE(json.find("\"test.delta.gauge\":9.5"), std::string::npos);
  // Histograms: count delta.
  const size_t hist = json.find("\"test.delta.hist\"");
  ASSERT_NE(hist, std::string::npos);
  EXPECT_NE(json.find("\"count\":2", hist), std::string::npos);

  registry.Unregister("test.delta.counter", nullptr);
  registry.Unregister("test.delta.gauge", nullptr);
  registry.Unregister("test.delta.hist", nullptr);
  registry.Unregister("test.delta.new", nullptr);
}

TEST(MetricRegistry, PrometheusTextSanitizesNamesAndTypesEveryInstrument) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.prom.counter").Add(3);
  registry.GetGauge("test.prom.gauge").Set(0.5);
  Histogram& h = registry.GetHistogram("test.prom.hist");
  h.Record(2.0);
  h.RecordWithExemplar(3.0, 21);
  const std::string text = registry.PrometheusText();

  EXPECT_NE(text.find("# TYPE test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram\n"),
            std::string::npos);
  // Cumulative buckets terminate in +Inf agreeing with _count.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum "), std::string::npos);
  // The 3.0 bucket carries its exemplar in OpenMetrics syntax.
  EXPECT_NE(text.find(" # {span_id=\"21\"} "), std::string::npos);
  // No unsanitized dot survives in any metric name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("test_prom", 0) == 0 || line.rfind("# TYPE test_prom", 0) == 0) {
      EXPECT_EQ(line.find("test.prom"), std::string::npos) << line;
    }
  }

  registry.Unregister("test.prom.counter", nullptr);
  registry.Unregister("test.prom.gauge", nullptr);
  registry.Unregister("test.prom.hist", nullptr);
}

// Concurrent Get + bump + snapshot across threads: the registry mutex only
// guards the name table, instrument updates are lock-free, and TakeSnapshot
// may run at any time. TSan gates this path in tier-1.
TEST(MetricRegistry, ConcurrentGetBumpAndSnapshot) {
  auto& registry = MetricRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Shared instrument: all threads contend on one counter; private
      // instrument: each thread owns a name. Both resolved inside the loop
      // on first iteration only (function-local cache pattern).
      Counter& shared = registry.GetCounter("test.concurrent.shared");
      Counter& mine = registry.GetCounter("test.concurrent.t" +
                                          std::to_string(t));
      Histogram& latency = registry.GetHistogram("test.concurrent.latency");
      for (int i = 0; i < kIters; ++i) {
        shared.Increment();
        mine.Increment();
        latency.Record(static_cast<double>(1 + i % 100));
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = registry.TakeSnapshot();
      auto it = snap.counters.find("test.concurrent.shared");
      if (it != snap.counters.end()) {
        ASSERT_LE(it->second, uint64_t{kThreads} * kIters);
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  const auto snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.concurrent.shared"),
            uint64_t{kThreads} * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("test.concurrent.t" + std::to_string(t)),
              static_cast<uint64_t>(kIters));
  }
  EXPECT_EQ(snap.histograms.at("test.concurrent.latency").count,
            uint64_t{kThreads} * kIters);

  registry.Unregister("test.concurrent.shared", nullptr);
  registry.Unregister("test.concurrent.latency", nullptr);
  for (int t = 0; t < kThreads; ++t) {
    registry.Unregister("test.concurrent.t" + std::to_string(t), nullptr);
  }
}

}  // namespace
}  // namespace pa::obs
