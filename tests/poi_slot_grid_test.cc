#include "poi/slot_grid.h"

#include <gtest/gtest.h>

namespace pa::poi {
namespace {

constexpr int64_t kHour = 3600;

CheckinSequence SequenceAtHours(std::initializer_list<int> hours) {
  CheckinSequence seq;
  int poi = 0;
  for (int h : hours) seq.push_back({0, poi++, h * kHour, false});
  return seq;
}

// The paper's Fig. 1: check-ins at 8 a.m., 10 a.m., 7 p.m.; with a 3-hour
// interval the missing check-ins are at 1 p.m. and 4 p.m.
TEST(SlotGridTest, PaperFigureOneExample) {
  CheckinSequence seq = SequenceAtHours({8, 10, 19});
  auto timeline = BuildSlotTimeline(seq, 3 * kHour);
  ASSERT_EQ(timeline.size(), 5u);
  EXPECT_EQ(timeline[0].observed_index, 0);  // 8 a.m.
  EXPECT_EQ(timeline[1].observed_index, 1);  // 10 a.m. (2h gap: no slot).
  EXPECT_TRUE(timeline[2].missing());        // 1 p.m.
  EXPECT_EQ(timeline[2].timestamp, 13 * kHour);
  EXPECT_TRUE(timeline[3].missing());        // 4 p.m.
  EXPECT_EQ(timeline[3].timestamp, 16 * kHour);
  EXPECT_EQ(timeline[4].observed_index, 2);  // 7 p.m.
  EXPECT_EQ(CountMissing(timeline), 2);
}

TEST(SlotGridTest, NoMissingForDenseSequence) {
  CheckinSequence seq = SequenceAtHours({0, 3, 6, 9});
  auto timeline = BuildSlotTimeline(seq, 3 * kHour);
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(CountMissing(timeline), 0);
}

TEST(SlotGridTest, GapShorterThanIntervalGetsNoSlot) {
  CheckinSequence seq = SequenceAtHours({0, 2});
  auto timeline = BuildSlotTimeline(seq, 3 * kHour);
  EXPECT_EQ(timeline.size(), 2u);
}

TEST(SlotGridTest, RoundingSplitsGapEvenly) {
  // 10-hour gap with 3-hour interval: round(10/3)-1 = 2 missing slots at
  // one-third fractions.
  CheckinSequence seq = SequenceAtHours({0, 10});
  auto timeline = BuildSlotTimeline(seq, 3 * kHour);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[1].timestamp, 10 * kHour / 3);
  EXPECT_EQ(timeline[2].timestamp, 2 * 10 * kHour / 3);
}

TEST(SlotGridTest, CapLimitsLongGaps) {
  CheckinSequence seq = SequenceAtHours({0, 300});  // 100 slots uncapped.
  auto uncapped = BuildSlotTimeline(seq, 3 * kHour);
  EXPECT_EQ(CountMissing(uncapped), 99);
  auto capped = BuildSlotTimeline(seq, 3 * kHour, 4);
  EXPECT_EQ(CountMissing(capped), 4);
  // Capped slots still evenly spread across the gap.
  EXPECT_EQ(capped[1].timestamp, 60 * kHour);
}

TEST(SlotGridTest, EmptyAndSingleInputs) {
  EXPECT_TRUE(BuildSlotTimeline({}, 3 * kHour).empty());
  CheckinSequence one = SequenceAtHours({5});
  auto timeline = BuildSlotTimeline(one, 3 * kHour);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].observed_index, 0);
}

TEST(SlotGridTest, NonPositiveIntervalYieldsEmpty) {
  CheckinSequence seq = SequenceAtHours({0, 10});
  EXPECT_TRUE(BuildSlotTimeline(seq, 0).empty());
}

TEST(SlotGridTest, TimelineIsChronologicalAndPreservesObserved) {
  CheckinSequence seq = SequenceAtHours({1, 9, 12, 30});
  auto timeline = BuildSlotTimeline(seq, 3 * kHour);
  int observed_count = 0;
  for (size_t i = 0; i < timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(timeline[i].timestamp, timeline[i - 1].timestamp);
    }
    if (!timeline[i].missing()) {
      EXPECT_EQ(timeline[i].timestamp,
                seq[static_cast<size_t>(timeline[i].observed_index)]
                    .timestamp);
      ++observed_count;
    }
  }
  EXPECT_EQ(observed_count, 4);
}

TEST(SlotGridTest, MidGapRoundsToNearestSlotCount) {
  // 4.4-hour gap: round(4.4/3) - 1 = 0 missing.
  CheckinSequence seq;
  seq.push_back({0, 0, 0, false});
  seq.push_back({0, 1, static_cast<int64_t>(4.4 * kHour), false});
  EXPECT_EQ(CountMissing(BuildSlotTimeline(seq, 3 * kHour)), 0);
  // 4.6-hour gap: round(4.6/3) - 1 = 1 missing.
  seq[1].timestamp = static_cast<int64_t>(4.6 * kHour);
  EXPECT_EQ(CountMissing(BuildSlotTimeline(seq, 3 * kHour)), 1);
}

}  // namespace
}  // namespace pa::poi
