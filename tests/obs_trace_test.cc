// Tests for the obs:: tracing layer: RAII span capture, per-thread ring
// buffers with drop accounting, and the two exporters. The exporter tests
// are golden-validity checks: every Trace Event object and NDJSON line must
// round-trip through the repo's own strict flat-JSON parser
// (serve::ParseFlatObject), so a malformed trace fails here before it ever
// reaches chrome://tracing or trace_summary.py.

#include "obs/trace.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/json.h"

namespace pa::obs {
namespace {

// Spans from other tests (and instrumented library code) share the global
// ring buffers, so every test starts from a drained state and filters by
// its own span names.
std::vector<TraceEvent> DrainNamed(const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : DrainTraceEvents()) {
    if (e.name != nullptr && name == e.name) out.push_back(e);
  }
  return out;
}

// Splits the "traceEvents" array of a Chrome trace into the raw text of its
// element objects. Event objects are flat, so scanning for braces outside
// strings is exact.
std::vector<std::string> SplitTraceEventObjects(const std::string& json) {
  std::vector<std::string> objects;
  const size_t open = json.find('[');
  const size_t close = json.rfind(']');
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  bool in_string = false;
  bool escaped = false;
  size_t start = std::string::npos;
  for (size_t i = open + 1; i < close; ++i) {
    const char ch = json[i];
    if (escaped) {
      escaped = false;
    } else if (ch == '\\') {
      escaped = true;
    } else if (ch == '"') {
      in_string = !in_string;
    } else if (!in_string && ch == '{') {
      start = i;
    } else if (!in_string && ch == '}') {
      EXPECT_NE(start, std::string::npos);
      objects.push_back(json.substr(start, i - start + 1));
      start = std::string::npos;
    }
  }
  return objects;
}

TEST(TraceSpan, DisabledTracingRecordsNothing) {
  SetTracingEnabled(false);
  DrainTraceEvents();
  { PA_TRACE_SPAN("test.trace.off"); }
  EXPECT_TRUE(DrainNamed("test.trace.off").empty());
}

TEST(TraceSpan, NestedSpansAreContainedInTheirParent) {
  DrainTraceEvents();
  SetTracingEnabled(true);
  {
    PA_TRACE_SPAN("test.trace.outer");
    { PA_TRACE_SPAN("test.trace.inner"); }
    { PA_TRACE_SPAN("test.trace.inner"); }
  }
  SetTracingEnabled(false);

  const std::vector<TraceEvent> events = DrainTraceEvents();
  std::vector<TraceEvent> outer;
  std::vector<TraceEvent> inner;
  for (const TraceEvent& e : events) {
    if (std::string("test.trace.outer") == e.name) outer.push_back(e);
    if (std::string("test.trace.inner") == e.name) inner.push_back(e);
  }
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 2u);
  const uint64_t outer_end = outer[0].start_ns + outer[0].dur_ns;
  for (const TraceEvent& e : inner) {
    EXPECT_EQ(e.tid, outer[0].tid);  // Same scope, same thread.
    EXPECT_GE(e.start_ns, outer[0].start_ns);
    EXPECT_LE(e.start_ns + e.dur_ns, outer_end);
  }
  // DrainTraceEvents sorts by start with longer spans first on ties, so the
  // parent always precedes its children.
  EXPECT_LE(outer[0].start_ns, inner[0].start_ns);
}

TEST(TraceSpan, SpansGetUniqueNonzeroIdsWhenTracingIsOn) {
  DrainTraceEvents();
  SetTracingEnabled(true);
  uint64_t id1 = 0;
  uint64_t id2 = 0;
  {
    TraceSpan a("test.trace.ids");
    id1 = a.id();
    TraceSpan b("test.trace.ids");
    id2 = b.id();
  }
  SetTracingEnabled(false);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, 0u);
  EXPECT_NE(id1, id2);
  // The recorded events carry the same ids, so an exemplar referencing
  // span.id() resolves against the dumped trace.
  const std::vector<TraceEvent> events = DrainNamed("test.trace.ids");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE((events[0].id == id1 && events[1].id == id2) ||
              (events[0].id == id2 && events[1].id == id1));

  // Tracing off: id() is 0 — the "no exemplar" sentinel.
  TraceSpan off("test.trace.ids.off");
  EXPECT_EQ(off.id(), 0u);
}

TEST(TraceSpan, SpansFromSeparateThreadsGetDistinctTids) {
  DrainTraceEvents();
  SetTracingEnabled(true);
  { PA_TRACE_SPAN("test.trace.tids"); }
  std::thread other([] { PA_TRACE_SPAN("test.trace.tids"); });
  other.join();
  SetTracingEnabled(false);

  const std::vector<TraceEvent> events = DrainNamed("test.trace.tids");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceSpan, RingOverflowKeepsNewestAndCountsDropped) {
  DrainTraceEvents();
  const uint64_t dropped_before = TraceEventsDropped();
  constexpr int kSpans = 70000;  // Past the 64Ki per-thread ring capacity.
  SetTracingEnabled(true);
  for (int i = 0; i < kSpans; ++i) {
    PA_TRACE_SPAN("test.trace.ring");
  }
  SetTracingEnabled(false);

  const std::vector<TraceEvent> events = DrainNamed("test.trace.ring");
  EXPECT_EQ(events.size(), size_t{1} << 16);
  EXPECT_EQ(TraceEventsDropped() - dropped_before,
            static_cast<uint64_t>(kSpans) - (uint64_t{1} << 16));
  // Ring keeps the most recent spans: the survivors must be a contiguous
  // suffix, i.e. monotonically increasing start times after the sort.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceContext, SpansLinkUnderTheActiveContextWithoutGlobalTracing) {
  SetTracingEnabled(false);
  // A request trace alone (no ring tracing) still assigns ids and links
  // parents; the events go to the reservoir, not the ring — so the ring
  // stays empty but the span ids are real.
  const TraceContext ctx{0x1234, 77};
  uint64_t outer_id = 0;
  uint64_t inner_parent = 0;
  uint64_t inner_id = 0;
  {
    const TraceContextScope scope(ctx);
    TraceSpan outer("test.ctx.outer");
    outer_id = outer.id();
    {
      TraceSpan inner("test.ctx.inner");
      inner_id = inner.id();
      inner_parent = CurrentTraceContext().parent_span;
    }
    // Inner restored the parent chain on close.
    EXPECT_EQ(CurrentTraceContext().parent_span, outer_id);
  }
  EXPECT_NE(outer_id, 0u);
  EXPECT_NE(inner_id, 0u);
  EXPECT_EQ(inner_parent, inner_id);  // Inner installed itself for children.
  // Scope exit restored the inactive ambient context.
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(TraceContext, ScopeRestoresThePreviousContext) {
  const TraceContext a{11, 1};
  const TraceContext b{22, 2};
  const TraceContextScope outer(a);
  {
    const TraceContextScope inner(b);
    EXPECT_EQ(CurrentTraceContext().trace_id, 22u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 11u);
  EXPECT_EQ(CurrentTraceContext().parent_span, 1u);
}

TEST(TraceContext, InactiveScopeIsolatesFromAmbientTrace) {
  const TraceContextScope outer(TraceContext{5, 1});
  {
    const TraceContextScope isolated(TraceContext{});
    EXPECT_FALSE(CurrentTraceContext().active());
  }
  EXPECT_TRUE(CurrentTraceContext().active());
}

TEST(TraceContext, RecordedEventsCarryTraceAndParentIds) {
  DrainTraceEvents();
  SetTracingEnabled(true);
  {
    const TraceContextScope scope(TraceContext{0xabcd, 900});
    PA_TRACE_SPAN("test.ctx.recorded");
  }
  SetTracingEnabled(false);
  const std::vector<TraceEvent> events = DrainNamed("test.ctx.recorded");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0xabcdu);
  EXPECT_EQ(events[0].parent_id, 900u);
}

TEST(TraceContext, RecordStageSpanSynthesizesALinkedSpan) {
  DrainTraceEvents();
  SetTracingEnabled(true);
  const TraceContext ctx{0x77, 3};
  const uint64_t id = RecordStageSpan("test.ctx.stage", 1000, 4500, ctx);
  SetTracingEnabled(false);
  EXPECT_NE(id, 0u);
  const std::vector<TraceEvent> events = DrainNamed("test.ctx.stage");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, id);
  EXPECT_EQ(events[0].start_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 3500u);
  EXPECT_EQ(events[0].trace_id, 0x77u);
  EXPECT_EQ(events[0].parent_id, 3u);

  // Both switches off: nothing recorded, id 0 (the no-exemplar sentinel).
  DrainTraceEvents();
  EXPECT_EQ(RecordStageSpan("test.ctx.stage", 1, 2, TraceContext{}), 0u);
  EXPECT_TRUE(DrainNamed("test.ctx.stage").empty());
}

TEST(TraceContext, TraceIdHexIsLowercaseHexWithoutPrefix) {
  EXPECT_EQ(TraceIdHex(0x1a2b3c), "1a2b3c");
  EXPECT_EQ(TraceIdHex(1), "1");
}

TEST(TraceExport, NdjsonEmitsTraceAndParentOnlyForLinkedSpans) {
  std::vector<TraceEvent> events;
  events.push_back({"linked", 1000, 500, 0, 7, 0xbeef, 6});
  events.push_back({"unlinked", 2000, 500, 0, 8, 0, 0});
  const std::string ndjson = TraceNdjson(events);
  EXPECT_NE(ndjson.find("\"trace\":\"beef\",\"parent\":6"), std::string::npos);
  std::istringstream lines(ndjson);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);
  std::map<std::string, serve::JsonValue> fields;
  std::string error;
  EXPECT_TRUE(serve::ParseFlatObject(line, &fields, &error)) << error;
}

TEST(TraceExport, ChromeTraceJsonEventsRoundTripThroughStrictParser) {
  std::vector<TraceEvent> events;
  events.push_back({"alpha", 1500, 2750, 0});
  events.push_back({"needs \"escaping\"\\here", 4250, 10, 3});
  const std::string json = ChromeTraceJson(events);

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  const std::vector<std::string> objects = SplitTraceEventObjects(json);
  ASSERT_EQ(objects.size(), 2u);

  std::map<std::string, serve::JsonValue> fields;
  std::string error;
  ASSERT_TRUE(serve::ParseFlatObject(objects[0], &fields, &error)) << error;
  EXPECT_EQ(fields.at("name").string, "alpha");
  EXPECT_EQ(fields.at("ph").string, "X");
  EXPECT_EQ(fields.at("cat").string, "pa");
  // Timestamps are microseconds with nanosecond decimals: 1500ns -> 1.5us.
  EXPECT_DOUBLE_EQ(fields.at("ts").number, 1.5);
  EXPECT_DOUBLE_EQ(fields.at("dur").number, 2.75);
  EXPECT_EQ(fields.at("pid").AsInt(), 1);
  EXPECT_EQ(fields.at("tid").AsInt(), 0);

  ASSERT_TRUE(serve::ParseFlatObject(objects[1], &fields, &error)) << error;
  EXPECT_EQ(fields.at("name").string, "needs \"escaping\"\\here");
  EXPECT_DOUBLE_EQ(fields.at("ts").number, 4.25);
  EXPECT_EQ(fields.at("tid").AsInt(), 3);
}

TEST(TraceExport, NdjsonLinesRoundTripThroughStrictParser) {
  std::vector<TraceEvent> events;
  events.push_back({"one", 1000, 500, 0, 11});
  events.push_back({"two", 2000, 42, 1, 12});
  const std::string ndjson = TraceNdjson(events);

  std::istringstream lines(ndjson);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    std::map<std::string, serve::JsonValue> fields;
    std::string error;
    ASSERT_TRUE(serve::ParseFlatObject(line, &fields, &error)) << error;
    ASSERT_TRUE(fields.at("name").is_string());
    ASSERT_TRUE(fields.at("ts_us").is_number());
    ASSERT_TRUE(fields.at("dur_us").is_number());
    ASSERT_TRUE(fields.at("tid").is_number());
    // Span id rides along so exemplars can be looked up in the dump.
    ASSERT_TRUE(fields.at("id").is_number());
    EXPECT_GT(fields.at("id").AsInt(), 10);
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
  EXPECT_NE(ndjson.find("\"name\":\"one\",\"ts_us\":1.000,\"dur_us\":0.500"),
            std::string::npos);
}

TEST(TraceExport, WriteTraceFilePicksFormatBySuffix) {
  const std::string dir = ::testing::TempDir();

  DrainTraceEvents();
  SetTracingEnabled(true);
  { PA_TRACE_SPAN("test.trace.file"); }
  SetTracingEnabled(false);
  const std::string chrome_path = dir + "/obs_trace_test.json";
  ASSERT_TRUE(WriteTraceFile(chrome_path));
  {
    std::FILE* f = std::fopen(chrome_path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string body(buf, n);
    EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(body.find("test.trace.file"), std::string::npos);
  }

  SetTracingEnabled(true);
  { PA_TRACE_SPAN("test.trace.file"); }
  SetTracingEnabled(false);
  const std::string ndjson_path = dir + "/obs_trace_test.ndjson";
  ASSERT_TRUE(WriteTraceFile(ndjson_path));
  {
    std::FILE* f = std::fopen(ndjson_path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string body(buf, n);
    EXPECT_EQ(body.rfind("{\"name\":", 0), 0u);  // Flat line, no wrapper.
    EXPECT_NE(body.find("\"ts_us\":"), std::string::npos);
  }

  std::remove(chrome_path.c_str());
  std::remove(ndjson_path.c_str());

  EXPECT_FALSE(WriteTraceFile("/nonexistent-dir-for-obs-test/trace.json"));
}

}  // namespace
}  // namespace pa::obs
