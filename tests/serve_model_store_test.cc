#include "serve/model_store.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rec/registry.h"

namespace pa::serve {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kHour = 3600;

poi::PoiTable SmallPois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 8; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  return poi::PoiTable(std::move(coords));
}

std::vector<poi::CheckinSequence> CycleData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 4, i * 3 * kHour, false});
    }
  }
  return train;
}

class ModelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("pa_model_store_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ModelStoreTest, PublishAssignsIncreasingVersionsAndTracksActive) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("FPMC-LR", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);

  ModelStore store(root_);
  std::string error;
  EXPECT_EQ(store.Publish(*model, pois, &error), 1) << error;
  EXPECT_EQ(store.Publish(*model, pois, &error), 2) << error;

  EXPECT_EQ(store.ListModels(), std::vector<std::string>{"FPMC-LR"});
  EXPECT_EQ(store.ListVersions("FPMC-LR"), (std::vector<int>{1, 2}));
  EXPECT_EQ(store.ActiveVersion("FPMC-LR"), 2);

  LoadedModel loaded;
  ASSERT_TRUE(store.LoadActive("FPMC-LR", &loaded, &error)) << error;
  EXPECT_EQ(loaded.name, "FPMC-LR");
  EXPECT_EQ(loaded.pois->size(), pois.size());
}

TEST_F(ModelStoreTest, SetActiveRollsBack) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("FPMC-LR", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);

  ModelStore store(root_);
  ASSERT_EQ(store.Publish(*model, pois), 1);
  ASSERT_EQ(store.Publish(*model, pois), 2);

  std::string error;
  ASSERT_TRUE(store.SetActive("FPMC-LR", 1, &error)) << error;
  EXPECT_EQ(store.ActiveVersion("FPMC-LR"), 1);

  // A version that does not exist is refused and leaves ACTIVE untouched.
  EXPECT_FALSE(store.SetActive("FPMC-LR", 9, &error));
  EXPECT_NE(error.find("no version 9"), std::string::npos) << error;
  EXPECT_EQ(store.ActiveVersion("FPMC-LR"), 1);
}

TEST_F(ModelStoreTest, LoadRejectsCorruptArtifactFile) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("FPMC-LR", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);

  ModelStore store(root_);
  ASSERT_EQ(store.Publish(*model, pois), 1);

  // Flip a byte in the middle of the published artifact.
  const fs::path path = store.ArtifactPath("FPMC-LR", 1);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x20);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  LoadedModel loaded;
  std::string error;
  EXPECT_FALSE(store.Load("FPMC-LR", 1, &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(ModelStoreTest, PublishLeavesNoTempFiles) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("FPMC-LR", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);

  ModelStore store(root_);
  ASSERT_EQ(store.Publish(*model, pois), 1);
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    EXPECT_TRUE(entry.path().string().find(".tmp") == std::string::npos)
        << "stray temp file: " << entry.path();
  }
}

TEST_F(ModelStoreTest, MissingModelFailsCleanly) {
  ModelStore store(root_);
  EXPECT_EQ(store.ActiveVersion("ghost"), -1);
  EXPECT_TRUE(store.ListVersions("ghost").empty());
  LoadedModel loaded;
  std::string error;
  EXPECT_FALSE(store.LoadActive("ghost", &loaded, &error));
  EXPECT_NE(error.find("no active version"), std::string::npos) << error;
}

}  // namespace
}  // namespace pa::serve
