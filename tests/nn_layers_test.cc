#include "nn/layers.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pa::nn {
namespace {

using tensor::Tensor;

TEST(LinearTest, OutputShape) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Zeros({2, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
}

TEST(LinearTest, ZeroInputYieldsBias) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor y = layer.Forward(Tensor::Zeros({1, 4}));
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(y.at(0, j), layer.bias().at(0, j));
  }
}

TEST(LinearTest, ParameterCount) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, GradCheck) {
  util::Rng rng(5);
  Linear layer(3, 2, rng);
  Tensor x = tensor::UniformInit({2, 3}, 1.0f, rng);
  auto loss = [&] { return tensor::Sum(tensor::Square(layer.Forward(x))); };
  std::vector<Tensor> inputs = layer.Parameters();
  inputs.push_back(x);
  auto result = tensor::CheckGradients(loss, inputs);
  EXPECT_TRUE(result.ok) << result.worst_location;
}

TEST(EmbeddingTest, LooksUpRows) {
  util::Rng rng(1);
  Embedding emb(5, 3, rng);
  Tensor y = emb.Forward({4, 0});
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(y.at(0, j), emb.table().at(4, j));
    EXPECT_FLOAT_EQ(y.at(1, j), emb.table().at(0, j));
  }
}

TEST(EmbeddingTest, GradientOnlyTouchesLookedUpRows) {
  util::Rng rng(1);
  Embedding emb(5, 2, rng);
  tensor::Tensor table = emb.table();
  table.ZeroGrad();
  tensor::Sum(emb.Forward({1})).Backward();
  EXPECT_FLOAT_EQ(table.grad_at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(table.grad_at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(table.grad_at(2, 0), 0.0f);
}

TEST(ModuleTest, ConcatParametersMergesInOrder) {
  util::Rng rng(1);
  Linear a(2, 2, rng);
  Embedding b(3, 2, rng);
  auto params = ConcatParameters({&a, &b});
  EXPECT_EQ(params.size(), 3u);  // Weight, bias, table.
}

}  // namespace
}  // namespace pa::nn
