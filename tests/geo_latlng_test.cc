#include "geo/latlng.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pa::geo {
namespace {

TEST(HaversineTest, ZeroDistanceForSamePoint) {
  LatLng p{48.8566, 2.3522};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(HaversineTest, KnownCityPairs) {
  // Paris <-> London: roughly 344 km.
  EXPECT_NEAR(HaversineKm({48.8566, 2.3522}, {51.5074, -0.1278}), 344.0, 5.0);
  // New York <-> Los Angeles: roughly 3936 km.
  EXPECT_NEAR(HaversineKm({40.7128, -74.0060}, {34.0522, -118.2437}), 3936.0,
              30.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  EXPECT_NEAR(HaversineKm({0.0, 0.0}, {1.0, 0.0}), 111.19, 0.5);
}

TEST(HaversineTest, SymmetryProperty) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    LatLng a{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    LatLng b{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
  }
}

TEST(HaversineTest, TriangleInequalityProperty) {
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    LatLng a{rng.Uniform(-60, 60), rng.Uniform(-120, 120)};
    LatLng b{rng.Uniform(-60, 60), rng.Uniform(-120, 120)};
    LatLng c{rng.Uniform(-60, 60), rng.Uniform(-120, 120)};
    EXPECT_LE(HaversineKm(a, c),
              HaversineKm(a, b) + HaversineKm(b, c) + 1e-6);
  }
}

TEST(InterpolateTest, EndpointsExact) {
  LatLng a{10.0, 20.0}, b{-5.0, 40.0};
  LatLng p0 = InterpolateGreatCircle(a, b, 0.0);
  LatLng p1 = InterpolateGreatCircle(a, b, 1.0);
  EXPECT_NEAR(p0.lat, a.lat, 1e-9);
  EXPECT_NEAR(p0.lng, a.lng, 1e-9);
  EXPECT_NEAR(p1.lat, b.lat, 1e-9);
  EXPECT_NEAR(p1.lng, b.lng, 1e-9);
}

TEST(InterpolateTest, MidpointOnEquator) {
  LatLng a{0.0, 0.0}, b{0.0, 10.0};
  LatLng mid = InterpolateGreatCircle(a, b, 0.5);
  EXPECT_NEAR(mid.lat, 0.0, 1e-9);
  EXPECT_NEAR(mid.lng, 5.0, 1e-9);
}

TEST(InterpolateTest, MidpointEquidistantProperty) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    LatLng a{rng.Uniform(-60, 60), rng.Uniform(-120, 120)};
    LatLng b{rng.Uniform(-60, 60), rng.Uniform(-120, 120)};
    LatLng mid = InterpolateGreatCircle(a, b, 0.5);
    EXPECT_NEAR(HaversineKm(a, mid), HaversineKm(mid, b),
                1e-6 * (1.0 + HaversineKm(a, b)));
  }
}

TEST(InterpolateTest, FractionSplitsDistanceProportionally) {
  LatLng a{10.0, -3.0}, b{12.0, 4.0};
  const double total = HaversineKm(a, b);
  LatLng q = InterpolateGreatCircle(a, b, 0.25);
  EXPECT_NEAR(HaversineKm(a, q), 0.25 * total, 1e-6 * total);
}

TEST(InterpolateTest, DegenerateIdenticalPoints) {
  LatLng a{42.0, 13.0};
  LatLng p = InterpolateGreatCircle(a, a, 0.7);
  EXPECT_DOUBLE_EQ(p.lat, a.lat);
  EXPECT_DOUBLE_EQ(p.lng, a.lng);
}

TEST(InterpolateTest, ClampsFraction) {
  LatLng a{0.0, 0.0}, b{0.0, 10.0};
  LatLng p = InterpolateGreatCircle(a, b, 1.5);
  EXPECT_NEAR(p.lng, 10.0, 1e-9);
}

TEST(BoundingBoxTest, ContainsAndIntersects) {
  BoundingBox box{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(box.Contains({5.0, 5.0}));
  EXPECT_TRUE(box.Contains({0.0, 10.0}));  // Boundary inclusive.
  EXPECT_FALSE(box.Contains({-0.1, 5.0}));
  BoundingBox other{9.0, 9.0, 12.0, 12.0};
  EXPECT_TRUE(box.Intersects(other));
  BoundingBox disjoint{11.0, 11.0, 12.0, 12.0};
  EXPECT_FALSE(box.Intersects(disjoint));
}

TEST(BoundingBoxTest, EmptyExtendsToPoint) {
  BoundingBox box = BoundingBox::Empty();
  box.Extend(LatLng{3.0, 4.0});
  EXPECT_TRUE(box.Contains({3.0, 4.0}));
  EXPECT_DOUBLE_EQ(box.AreaDeg2(), 0.0);
}

TEST(BoundingBoxTest, EnlargementIsZeroForContainedBox) {
  BoundingBox box{0.0, 0.0, 10.0, 10.0};
  BoundingBox inner{2.0, 2.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(box.EnlargementDeg2(inner), 0.0);
  EXPECT_GT(inner.EnlargementDeg2(box), 0.0);
}

TEST(BoundingBoxTest, MinDistanceZeroInside) {
  BoundingBox box{0.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(box.MinDistanceKm({5.0, 5.0}), 0.0);
}

TEST(BoundingBoxTest, MinDistanceIsLowerBound) {
  util::Rng rng(4);
  BoundingBox box{10.0, 10.0, 20.0, 20.0};
  for (int i = 0; i < 100; ++i) {
    LatLng outside{rng.Uniform(-50, 5), rng.Uniform(-50, 5)};
    LatLng inside{rng.Uniform(10, 20), rng.Uniform(10, 20)};
    EXPECT_LE(box.MinDistanceKm(outside),
              HaversineKm(outside, inside) + 1e-6);
  }
}

TEST(BoundingBoxTest, BoundingBoxAroundCoversCircle) {
  const LatLng center{45.0, 7.0};
  const double radius = 25.0;
  BoundingBox box = BoundingBoxAround(center, radius);
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double angle = rng.Uniform(0, 2 * 3.14159265358979);
    // Points just inside the radius must be inside the box.
    const double r = radius * 0.99;
    const double dlat = (r / kEarthRadiusKm) * 180.0 / 3.14159265358979;
    LatLng p{center.lat + dlat * std::sin(angle),
             center.lng + dlat * std::cos(angle) /
                              std::cos(45.0 * 3.14159265358979 / 180.0)};
    if (HaversineKm(center, p) <= radius) {
      EXPECT_TRUE(box.Contains(p)) << p.ToString();
    }
  }
}

}  // namespace
}  // namespace pa::geo
