#include "poi/synthetic.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "poi/slot_grid.h"
#include "util/rng.h"

namespace pa::poi {
namespace {

LbsnProfile SmallProfile() {
  LbsnProfile p = GowallaProfile();
  p.num_users = 10;
  p.num_pois = 150;
  p.min_visits = 40;
  p.max_visits = 60;
  return p;
}

TEST(SyntheticTest, CountsMatchProfile) {
  util::Rng rng(1);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  EXPECT_EQ(lbsn.observed.num_users(), 10);
  EXPECT_EQ(lbsn.observed.num_pois(), 150);
  EXPECT_EQ(lbsn.true_visits.size(), 10u);
  for (int u = 0; u < 10; ++u) {
    EXPECT_GE(lbsn.true_visits[u].size(), 40u);
    EXPECT_LE(lbsn.true_visits[u].size(), 60u);
  }
}

TEST(SyntheticTest, DatasetValidates) {
  util::Rng rng(2);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  std::string why;
  EXPECT_TRUE(lbsn.observed.Validate(&why)) << why;
}

TEST(SyntheticTest, ObservedIsMaskedSubsetOfTruth) {
  util::Rng rng(3);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  for (int u = 0; u < lbsn.observed.num_users(); ++u) {
    const auto& visits = lbsn.true_visits[u];
    const auto& mask = lbsn.observed_mask[u];
    ASSERT_EQ(mask.size(), visits.size());
    size_t next = 0;
    for (size_t i = 0; i < visits.size(); ++i) {
      if (mask[i]) {
        ASSERT_LT(next, lbsn.observed.sequences[u].size());
        EXPECT_EQ(lbsn.observed.sequences[u][next], visits[i]);
        ++next;
      }
    }
    EXPECT_EQ(next, lbsn.observed.sequences[u].size());
  }
}

TEST(SyntheticTest, FirstAndLastVisitsAlwaysObserved) {
  util::Rng rng(4);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  for (const auto& mask : lbsn.observed_mask) {
    ASSERT_FALSE(mask.empty());
    EXPECT_TRUE(mask.front());
    EXPECT_TRUE(mask.back());
  }
}

TEST(SyntheticTest, TrueVisitsEvenlySpacedWithinJitter) {
  LbsnProfile p = SmallProfile();
  p.interval_jitter = 0.05;
  util::Rng rng(5);
  SyntheticLbsn lbsn = GenerateLbsn(p, rng);
  for (const auto& visits : lbsn.true_visits) {
    for (size_t i = 1; i < visits.size(); ++i) {
      const double gap =
          static_cast<double>(visits[i].timestamp - visits[i - 1].timestamp);
      EXPECT_GE(gap, p.visit_interval_seconds * 0.94);
      EXPECT_LE(gap, p.visit_interval_seconds * 1.06);
    }
  }
}

TEST(SyntheticTest, UsersAreSpatiallyCompact) {
  // Most consecutive hops should be within a few km (routine radius).
  util::Rng rng(6);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  DatasetStats stats = ComputeStats(lbsn.observed);
  EXPECT_LT(stats.mean_hop_km, 10.0);
}

TEST(SyntheticTest, ImputationTasksAreExactlyTheHiddenInteriorVisits) {
  util::Rng rng(7);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  auto tasks = MakeImputationTasks(lbsn);
  int expected = 0;
  for (size_t u = 0; u < lbsn.observed_mask.size(); ++u) {
    for (size_t i = 1; i + 1 < lbsn.observed_mask[u].size(); ++i) {
      if (!lbsn.observed_mask[u][i]) ++expected;
    }
  }
  EXPECT_EQ(static_cast<int>(tasks.size()), expected);
  for (const auto& t : tasks) {
    EXPECT_FALSE(lbsn.observed_mask[t.user][t.true_index]);
    EXPECT_EQ(lbsn.true_visits[t.user][t.true_index].poi, t.true_poi);
    EXPECT_EQ(lbsn.true_visits[t.user][t.true_index].timestamp, t.timestamp);
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  util::Rng rng1(42), rng2(42);
  SyntheticLbsn a = GenerateLbsn(SmallProfile(), rng1);
  SyntheticLbsn b = GenerateLbsn(SmallProfile(), rng2);
  ASSERT_EQ(a.observed.num_checkins(), b.observed.num_checkins());
  for (int u = 0; u < a.observed.num_users(); ++u) {
    ASSERT_EQ(a.observed.sequences[u].size(), b.observed.sequences[u].size());
    for (size_t i = 0; i < a.observed.sequences[u].size(); ++i) {
      EXPECT_EQ(a.observed.sequences[u][i], b.observed.sequences[u][i]);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  util::Rng rng1(1), rng2(2);
  SyntheticLbsn a = GenerateLbsn(SmallProfile(), rng1);
  SyntheticLbsn b = GenerateLbsn(SmallProfile(), rng2);
  EXPECT_NE(a.observed.num_checkins(), b.observed.num_checkins());
}

TEST(SyntheticTest, BrightkiteDenserThanGowalla) {
  // The Brightkite profile must reproduce the paper's density contrast: a
  // higher observation rate -> more check-ins per user.
  util::Rng rng1(8), rng2(8);
  LbsnProfile g = GowallaProfile();
  LbsnProfile b = BrightkiteProfile();
  g.num_users = b.num_users = 12;
  g.min_visits = b.min_visits = 60;
  g.max_visits = b.max_visits = 80;
  SyntheticLbsn gow = GenerateLbsn(g, rng1);
  SyntheticLbsn bri = GenerateLbsn(b, rng2);
  const double g_rate = static_cast<double>(gow.observed.num_checkins()) /
                        (12 * 70.0);
  const double b_rate = static_cast<double>(bri.observed.num_checkins()) /
                        (12 * 70.0);
  EXPECT_GT(b_rate, g_rate);
}

TEST(SyntheticTest, ObservationRateDrivesDensity) {
  // The mechanism behind the paper's density contrast, tested as a
  // *controlled* comparison: the same mobility profile with Brightkite's
  // denser observation process must produce a denser user-POI matrix. The
  // profiles share every mobility/world parameter, and per-user RNG streams
  // draw the trajectory before the mask, so both datasets contain the same
  // true visits — only the observation masks differ. (Comparing the full
  // Gowalla vs Brightkite profiles here would be flaky: Brightkite's
  // stronger home anchor shrinks its distinct-POI reach by about as much as
  // the denser observation grows it.)
  util::Rng rng1(8), rng2(8);
  LbsnProfile sparse = GowallaProfile();
  sparse.num_users = 12;
  sparse.min_visits = 60;
  sparse.max_visits = 80;
  LbsnProfile dense = sparse;
  const LbsnProfile b = BrightkiteProfile();
  dense.observe_active = b.observe_active;
  dense.observe_silent = b.observe_silent;
  dense.mean_burst_visits = b.mean_burst_visits;
  dense.mean_silence_visits = b.mean_silence_visits;
  SyntheticLbsn lo = GenerateLbsn(sparse, rng1);
  SyntheticLbsn hi = GenerateLbsn(dense, rng2);
  EXPECT_GT(hi.observed.Density(), lo.observed.Density());
  EXPECT_GT(hi.observed.num_checkins(), lo.observed.num_checkins());
}

TEST(SyntheticTest, BrightkiteHomeDominanceStronger) {
  // Fraction of check-ins at the user's single most-visited POI.
  auto top_share = [](const SyntheticLbsn& lbsn) {
    double total_share = 0.0;
    int users = 0;
    for (const auto& seq : lbsn.observed.sequences) {
      if (seq.size() < 10) continue;
      std::map<int32_t, int> counts;
      for (const auto& c : seq) ++counts[c.poi];
      int top = 0;
      for (const auto& [poi, n] : counts) top = std::max(top, n);
      total_share += static_cast<double>(top) / seq.size();
      ++users;
    }
    return total_share / users;
  };
  util::Rng rng1(9), rng2(9);
  LbsnProfile g = GowallaProfile(), b = BrightkiteProfile();
  g.num_users = b.num_users = 15;
  SyntheticLbsn gow = GenerateLbsn(g, rng1);
  SyntheticLbsn bri = GenerateLbsn(b, rng2);
  EXPECT_GT(top_share(bri), top_share(gow));
}

TEST(SyntheticTest, ObservedSequencesProduceMissingSlots) {
  // The observation process must actually create imputation work at the
  // profile's own interval.
  util::Rng rng(10);
  SyntheticLbsn lbsn = GenerateLbsn(SmallProfile(), rng);
  int missing = 0;
  for (const auto& seq : lbsn.observed.sequences) {
    missing += CountMissing(
        BuildSlotTimeline(seq, GowallaProfile().visit_interval_seconds));
  }
  EXPECT_GT(missing, 50);
}

}  // namespace
}  // namespace pa::poi
