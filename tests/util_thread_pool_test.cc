#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace pa::util {
namespace {

// Restores the global pool size after each test so the suite order does not
// matter.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override { SetThreadCount(0); }
};

TEST_F(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    SetThreadCount(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    GlobalPool().ParallelFor(0, kN, /*grain=*/7,
                             [&](int64_t i) { hits[i].fetch_add(1); });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST_F(ThreadPoolTest, ParallelForRangeCoversDisjointRanges) {
  SetThreadCount(4);
  constexpr int64_t kN = 257;  // Not a multiple of any grain.
  std::vector<std::atomic<int>> hits(kN);
  GlobalPool().ParallelForRange(0, kN, /*grain=*/16,
                               [&](int64_t lo, int64_t hi) {
                                 ASSERT_LT(lo, hi);
                                 for (int64_t i = lo; i < hi; ++i) {
                                   hits[i].fetch_add(1);
                                 }
                               });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_F(ThreadPoolTest, EmptyRangeRunsNothing) {
  SetThreadCount(2);
  std::atomic<int> calls{0};
  GlobalPool().ParallelFor(5, 5, 1, [&](int64_t) { calls.fetch_add(1); });
  GlobalPool().ParallelFor(7, 3, 1, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  for (int threads : {1, 3}) {
    SetThreadCount(threads);
    std::vector<int64_t> squares = GlobalPool().ParallelMap(
        int64_t{2}, int64_t{50}, /*grain=*/3, [](int64_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 48u);
    for (int64_t i = 0; i < 48; ++i) EXPECT_EQ(squares[i], (i + 2) * (i + 2));
  }
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a worker must not deadlock; the inner
  // loop runs inline on the worker. Covers the parallel-MatMul-inside-
  // parallel-training-item case.
  SetThreadCount(4);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  GlobalPool().ParallelFor(0, kOuter, 1, [&](int64_t i) {
    GlobalPool().ParallelFor(0, kInner, 1, [&](int64_t j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, OrderedReductionIsThreadCountInvariant) {
  // The pattern every parallel hot path uses: per-index partial results
  // merged in index order must be bit-identical at any thread count.
  std::vector<double> reference;
  for (int threads : {1, 2, 4}) {
    SetThreadCount(threads);
    std::vector<double> parts = GlobalPool().ParallelMap(
        int64_t{0}, int64_t{500}, /*grain=*/11, [](int64_t i) {
          return 1.0 / static_cast<double>(3 * i + 1);
        });
    double sum = 0.0;
    for (double p : parts) sum += p;
    if (reference.empty()) {
      reference.push_back(sum);
    } else {
      // Exact equality on purpose: same reduction order, same bits.
      EXPECT_EQ(sum, reference[0]) << "at " << threads << " threads";
    }
  }
}

TEST_F(ThreadPoolTest, SetThreadCountResizesPool) {
  SetThreadCount(3);
  EXPECT_EQ(GlobalPool().num_threads(), 3);
  EXPECT_EQ(ThreadCount(), 3);
  SetThreadCount(1);
  EXPECT_EQ(GlobalPool().num_threads(), 1);
}

TEST_F(ThreadPoolTest, SubmitPropagatesTheCallersTraceContext) {
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    // The caller's ambient request context must be observed inside the
    // task, whether it runs inline (1 thread) or on a pool worker.
    const obs::TraceContext ctx{0xfeed, 42};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    obs::TraceContext seen;
    {
      const obs::TraceContextScope scope(ctx);
      GlobalPool().Submit([&] {
        std::lock_guard<std::mutex> lock(mu);
        seen = obs::CurrentTraceContext();
        done = true;
        cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&done] { return done; });
    EXPECT_EQ(seen.trace_id, 0xfeedu) << threads << " threads";
    EXPECT_EQ(seen.parent_span, 42u);
  }
  // The worker's slot is restored: later tasks see no stale context.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  obs::TraceContext seen{1, 1};
  GlobalPool().Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    seen = obs::CurrentTraceContext();
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&done] { return done; });
  EXPECT_FALSE(seen.active());
}

TEST_F(ThreadPoolTest, ParallelForPropagatesContextToEveryBlock) {
  SetThreadCount(4);
  const obs::TraceContext ctx{0xabc, 7};
  constexpr int64_t kN = 64;
  std::vector<std::atomic<uint64_t>> observed(kN);
  {
    const obs::TraceContextScope scope(ctx);
    GlobalPool().ParallelFor(0, kN, /*grain=*/1, [&](int64_t i) {
      observed[static_cast<size_t>(i)].store(
          obs::CurrentTraceContext().trace_id);
    });
  }
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(observed[static_cast<size_t>(i)].load(), 0xabcu)
        << "index " << i;
  }
}

TEST_F(ThreadPoolTest, SplitMixStreamsAreDistinct) {
  // Sanity: per-index stream seeds must not collide for nearby indices or
  // bases (a collision would correlate two users' trajectories).
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (uint64_t i = 0; i < 512; ++i) seeds.insert(StreamSeed(base, i));
  }
  EXPECT_EQ(seeds.size(), 4u * 512u);
}

TEST_F(ThreadPoolTest, SplitMix64MatchesReferenceVector) {
  // Reference values from the public-domain splitmix64 implementation
  // (Vigna): state 0 yields these first outputs.
  EXPECT_EQ(SplitMix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(SplitMix64(0x9E3779B97F4A7C15ull), 0x6E789E6AA1B965F4ull);
}

}  // namespace
}  // namespace pa::util
