#include "augment/markov_baseline.h"

#include <gtest/gtest.h>

#include "augment/imputation_eval.h"
#include "poi/synthetic.h"
#include "util/rng.h"

namespace pa::augment {
namespace {

constexpr int64_t kHour = 3600;

poi::PoiTable SixPois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 6; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  return poi::PoiTable(std::move(coords));
}

std::vector<poi::CheckinSequence> CycleData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 3, i * 3 * kHour, false});
    }
  }
  return train;
}

TEST(MarkovBridgeTest, CountsTransitions) {
  poi::PoiTable pois = SixPois();
  MarkovBridgeAugmenter model(pois);
  model.Fit(CycleData(2, 31));  // 0,1,2 repeated: 10 of each transition x2.
  EXPECT_EQ(model.TransitionCount(0, 1), 20);
  EXPECT_EQ(model.TransitionCount(1, 2), 20);
  EXPECT_EQ(model.TransitionCount(0, 2), 0);
}

TEST(MarkovBridgeTest, BridgesDeterministicCyclePerfectly) {
  poi::PoiTable pois = SixPois();
  MarkovBridgeAugmenter model(pois);
  model.Fit(CycleData(3, 40));

  // Observed 0 at t=0 and 2 at t=6h: the bridge must be 1.
  poi::CheckinSequence observed = {{0, 0, 0, false},
                                   {0, 2, 6 * kHour, false}};
  auto imputed = model.Impute(MakeMaskedSequence(observed, 3 * kHour));
  ASSERT_EQ(imputed.size(), 1u);
  EXPECT_EQ(imputed[0], 1);
}

TEST(MarkovBridgeTest, ChainsAcrossConsecutiveMissingSlots) {
  poi::PoiTable pois = SixPois();
  MarkovBridgeAugmenter model(pois);
  model.Fit(CycleData(3, 40));
  // 0 ... 0 over 9h: two missing slots; the cycle dictates 1 then 2.
  poi::CheckinSequence observed = {{0, 0, 0, false},
                                   {0, 0, 9 * kHour, false}};
  auto imputed = model.Impute(MakeMaskedSequence(observed, 3 * kHour));
  ASSERT_EQ(imputed.size(), 2u);
  EXPECT_EQ(imputed[0], 1);
  EXPECT_EQ(imputed[1], 2);
}

TEST(MarkovBridgeTest, UserWeightPersonalizes) {
  // Two users with disjoint alternations sharing no transitions: the
  // user-frequency term must keep each user's bridge inside their own POIs.
  poi::PoiTable pois = SixPois();
  std::vector<poi::CheckinSequence> train(2);
  for (int i = 0; i < 40; ++i) {
    train[0].push_back({0, i % 2, i * 3 * kHour, false});        // 0 <-> 1.
    train[1].push_back({1, 3 + i % 2, i * 3 * kHour, false});    // 3 <-> 4.
  }
  MarkovBridgeAugmenter model(pois);
  model.Fit(train);
  poi::CheckinSequence observed = {{1, 3, 0, false},
                                   {1, 3, 6 * kHour, false}};
  MaskedSequence masked = MakeMaskedSequence(observed, 3 * kHour);
  masked.user = 1;
  auto imputed = model.Impute(masked);
  ASSERT_EQ(imputed.size(), 1u);
  EXPECT_EQ(imputed[0], 4);
}

TEST(MarkovBridgeTest, UnseenContextFallsBackGracefully) {
  poi::PoiTable pois = SixPois();
  MarkovBridgeAugmenter model(pois);
  model.Fit(CycleData(2, 20));
  // POI 5 never appears in training.
  poi::CheckinSequence observed = {{0, 5, 0, false},
                                   {0, 5, 6 * kHour, false}};
  auto imputed = model.Impute(MakeMaskedSequence(observed, 3 * kHour));
  ASSERT_EQ(imputed.size(), 1u);
  EXPECT_GE(imputed[0], 0);
  EXPECT_LT(imputed[0], 6);
}

TEST(MarkovBridgeTest, BeatsLinearInterpolationlessBaselineOnSynthetic) {
  // Sanity: on the routine-world generator the behavioural bridge should
  // beat random guessing by a wide margin.
  util::Rng rng(17);
  poi::LbsnProfile profile = poi::GowallaProfile();
  profile.num_users = 10;
  profile.num_pois = 200;
  profile.min_visits = 80;
  profile.max_visits = 100;
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(profile, rng);
  MarkovBridgeAugmenter model(lbsn.observed.pois);
  model.Fit(lbsn.observed.sequences);
  ImputationMetrics metrics = EvaluateImputation(model, lbsn);
  EXPECT_GT(metrics.num_tasks, 100);
  EXPECT_GT(metrics.accuracy, 10.0 / 200.0);  // Far above chance.
}

}  // namespace
}  // namespace pa::augment
