#include "augment/pa_seq2seq.h"

#include <gtest/gtest.h>

#include "augment/imputation_eval.h"
#include "poi/synthetic.h"
#include "util/rng.h"

namespace pa::augment {
namespace {

constexpr int64_t kHour = 3600;

// A tiny world: 6 POIs around a point; every user deterministically cycles
// 0 -> 1 -> 2 -> 0 -> ... every 3 hours.
poi::PoiTable CyclePois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 6; ++i) {
    coords.push_back({40.0 + 0.01 * i, -100.0 + 0.005 * i});
  }
  return poi::PoiTable(std::move(coords));
}

std::vector<poi::CheckinSequence> CycleTrainingData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 3, i * 3 * kHour, false});
    }
  }
  return train;
}

PaSeq2SeqConfig FastConfig() {
  PaSeq2SeqConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 6;
  config.candidate_radius_km = 0.0;  // Tiny vocab; no restriction needed.
  config.seed = 5;
  return config;
}

TEST(PaSeq2SeqTest, MissingTokenIsVocabEnd) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  EXPECT_EQ(model.missing_token(), 6);
}

TEST(PaSeq2SeqTest, ParameterCountPositiveAndStable) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  EXPECT_GT(model.NumParameters(), 1000);
  EXPECT_EQ(static_cast<int64_t>(model.Parameters().size() > 0), 1);
}

TEST(PaSeq2SeqTest, TrainingLossDecreasesWithinStages) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  config.stage3_epochs = 8;
  PaSeq2Seq model(pois, config);
  model.Fit(CycleTrainingData(4, 60));
  const auto& stats = model.train_stats();
  ASSERT_EQ(stats.stage1.size(), 1u);
  ASSERT_EQ(stats.stage2.size(), 1u);
  ASSERT_EQ(stats.stage3.size(), 8u);
  // Mask training must make clear progress on a deterministic pattern.
  EXPECT_LT(stats.stage3.back(), stats.stage3.front());
  EXPECT_LT(stats.stage3.back(), 1.0f);  // Far below ln(6) ≈ 1.79 uniform.
}

TEST(PaSeq2SeqTest, ImputesDeterministicCycleAccurately) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  config.stage3_epochs = 10;
  PaSeq2Seq model(pois, config);
  model.Fit(CycleTrainingData(4, 60));

  // Observed: cycle with every third check-in dropped (a 6-hour gap).
  poi::CheckinSequence observed;
  std::vector<int32_t> truth_missing;
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 2 && i + 1 < 30) {
      truth_missing.push_back(i % 3 == 2 ? 2 : i % 3);
      continue;  // Dropped.
    }
    observed.push_back({0, i % 3, i * 3 * kHour, false});
  }
  MaskedSequence masked = MakeMaskedSequence(observed, 3 * kHour);
  ASSERT_EQ(static_cast<size_t>(poi::CountMissing(masked.timeline)),
            truth_missing.size());
  auto imputed = model.Impute(masked);
  int correct = 0;
  for (size_t i = 0; i < imputed.size(); ++i) {
    if (imputed[i] == truth_missing[i]) ++correct;
  }
  // The pattern is fully determined; a trained model should recover most.
  EXPECT_GT(static_cast<double>(correct) / imputed.size(), 0.7);
}

TEST(PaSeq2SeqTest, ImputeReturnsOneValuePerMissingSlot) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());  // Untrained is fine for the contract.
  poi::CheckinSequence observed = {{0, 0, 0, false},
                                   {0, 1, 9 * kHour, false},
                                   {0, 2, 12 * kHour, false},
                                   {0, 0, 24 * kHour, false}};
  MaskedSequence masked = MakeMaskedSequence(observed, 3 * kHour);
  auto imputed = model.Impute(masked);
  EXPECT_EQ(static_cast<int>(imputed.size()),
            poi::CountMissing(masked.timeline));
  for (int32_t poi_id : imputed) {
    EXPECT_GE(poi_id, 0);
    EXPECT_LT(poi_id, pois.size());  // Never the missing token.
  }
}

TEST(PaSeq2SeqTest, CandidateRestrictionKeepsImputationsLocal) {
  // Two far-apart clusters; all observations in cluster A. With the
  // localized-candidate radius on, imputations must stay in cluster A.
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 5; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  for (int i = 0; i < 5; ++i) coords.push_back({45.0 + 0.01 * i, -90.0});
  poi::PoiTable pois{std::move(coords)};
  PaSeq2SeqConfig config = FastConfig();
  config.candidate_radius_km = 20.0;
  config.stage3_epochs = 2;
  PaSeq2Seq model(pois, config);
  std::vector<poi::CheckinSequence> train(2);
  for (int i = 0; i < 40; ++i) {
    train[0].push_back({0, i % 5, i * 3 * kHour, false});
    train[1].push_back({1, 5 + i % 5, i * 3 * kHour, false});
  }
  model.Fit(train);
  poi::CheckinSequence observed = {{0, 0, 0, false},
                                   {0, 1, 9 * kHour, false}};
  auto imputed = model.Impute(MakeMaskedSequence(observed, 3 * kHour));
  ASSERT_EQ(imputed.size(), 2u);  // round(9h / 3h) - 1 missing slots.
  for (int32_t p_id : imputed) EXPECT_LT(p_id, 5);  // Cluster A only.
}

TEST(PaSeq2SeqTest, EmptyTimelineImputesNothing) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  poi::CheckinSequence dense = {{0, 0, 0, false}, {0, 1, 3 * kHour, false}};
  auto imputed = model.Impute(MakeMaskedSequence(dense, 3 * kHour));
  EXPECT_TRUE(imputed.empty());
}

TEST(PaSeq2SeqTest, AblationConfigsStillTrain) {
  poi::PoiTable pois = CyclePois();
  for (const auto& [residual, attention] :
       std::vector<std::pair<bool, bool>>{{false, true}, {true, false},
                                          {false, false}}) {
    PaSeq2SeqConfig config = FastConfig();
    config.use_residual = residual;
    config.use_attention = attention;
    config.stage3_epochs = 3;
    PaSeq2Seq model(pois, config);
    model.Fit(CycleTrainingData(2, 40));
    EXPECT_EQ(model.train_stats().stage3.size(), 3u);
    EXPECT_GT(model.train_stats().stage3.back(), 0.0f);
  }
}

TEST(PaSeq2SeqTest, FitOnEmptyDataIsNoOp) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  model.Fit({});
  EXPECT_TRUE(model.train_stats().stage1.empty());
}

TEST(ImputationEvalTest, OracleScoresPerfect) {
  // An augmenter that reads the ground truth must get accuracy 1.0.
  util::Rng rng(3);
  poi::LbsnProfile profile = poi::GowallaProfile();
  profile.num_users = 4;
  profile.num_pois = 60;
  profile.min_visits = 30;
  profile.max_visits = 40;
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(profile, rng);

  class Oracle : public Augmenter {
   public:
    explicit Oracle(const poi::SyntheticLbsn& lbsn) : lbsn_(lbsn) {}
    std::string name() const override { return "Oracle"; }
    std::vector<int32_t> Impute(const MaskedSequence& masked) const override {
      std::vector<int32_t> out;
      const auto& visits = lbsn_.true_visits[masked.user];
      for (size_t i = 0; i < masked.timeline.size(); ++i) {
        if (masked.timeline[i].missing()) out.push_back(visits[i].poi);
      }
      return out;
    }

   private:
    const poi::SyntheticLbsn& lbsn_;
  };

  Oracle oracle(lbsn);
  ImputationMetrics metrics = EvaluateImputation(oracle, lbsn);
  EXPECT_GT(metrics.num_tasks, 0);
  EXPECT_DOUBLE_EQ(metrics.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_error_km, 0.0);
}

TEST(ImputationEvalTest, ConstantWrongAugmenterScoresPoorly) {
  util::Rng rng(4);
  poi::LbsnProfile profile = poi::GowallaProfile();
  profile.num_users = 4;
  profile.num_pois = 60;
  profile.min_visits = 30;
  profile.max_visits = 40;
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(profile, rng);

  class Constant : public Augmenter {
   public:
    std::string name() const override { return "Constant"; }
    std::vector<int32_t> Impute(const MaskedSequence& masked) const override {
      return std::vector<int32_t>(
          static_cast<size_t>(poi::CountMissing(masked.timeline)), 0);
    }
  };
  Constant constant;
  ImputationMetrics metrics = EvaluateImputation(constant, lbsn);
  EXPECT_LT(metrics.accuracy, 0.2);
  EXPECT_FALSE(metrics.ToString().empty());
}

}  // namespace
}  // namespace pa::augment
