#include "geo/grid_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "geo/rtree.h"
#include "util/rng.h"

namespace pa::geo {
namespace {

TEST(GridIndexTest, EmptyQueries) {
  GridIndex grid;
  EXPECT_TRUE(grid.Nearest({0, 0}, 3).empty());
  EXPECT_TRUE(grid.WithinRadius({0, 0}, 10).empty());
}

TEST(GridIndexTest, NearestSingle) {
  GridIndex grid(0.05);
  grid.Insert({40.0, -100.0}, 1);
  grid.Insert({40.5, -100.0}, 2);
  auto nn = grid.Nearest({40.1, -100.0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 1);
}

TEST(GridIndexTest, AgreesWithRTree) {
  util::Rng rng(1);
  GridIndex grid(0.1);
  RTree tree;
  for (int i = 0; i < 400; ++i) {
    LatLng p{40.0 + rng.Uniform(0, 1.5), -100.0 + rng.Uniform(0, 1.5)};
    grid.Insert(p, i);
    tree.Insert(p, i);
  }
  for (int q = 0; q < 30; ++q) {
    LatLng p{40.0 + rng.Uniform(0, 1.5), -100.0 + rng.Uniform(0, 1.5)};
    auto a = grid.Nearest(p, 4);
    auto b = tree.Nearest(p, 4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].distance_km, b[i].distance_km, 1e-9);
    }

    auto ra = grid.WithinRadius(p, 15.0);
    auto rb = tree.WithinRadius(p, 15.0);
    std::vector<int32_t> ia, ib;
    for (const auto& n : ra) ia.push_back(n.id);
    for (const auto& n : rb) ib.push_back(n.id);
    std::sort(ia.begin(), ia.end());
    std::sort(ib.begin(), ib.end());
    EXPECT_EQ(ia, ib);
  }
}

TEST(GridIndexTest, NearestAcrossCellBoundary) {
  // The nearest point may sit in an adjacent cell even when the query cell
  // is non-empty; the ring search must not stop too early.
  GridIndex grid(0.1);
  grid.Insert({40.09, -100.0}, 1);   // Same cell as query, ~8.9 km away.
  grid.Insert({40.101, -100.0}, 2);  // Next cell, ~0.1 km away.
  auto nn = grid.Nearest({40.10, -100.0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 2);
}

TEST(GridIndexTest, SizeCounts) {
  GridIndex grid;
  for (int i = 0; i < 5; ++i) grid.Insert({1.0 * i, 0.0}, i);
  EXPECT_EQ(grid.size(), 5u);
}

}  // namespace
}  // namespace pa::geo
