#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace pa::tensor {
namespace {

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {10, 20, 30, 40});
  Tensor y = Add(a, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 44.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromData({1, 3}, {10, 20, 30});
  Tensor y = Add(a, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 2), 36.0f);
}

TEST(OpsTest, AddRowBroadcastBackwardSumsRows) {
  Tensor a = Tensor::Zeros({3, 2}, /*requires_grad=*/true);
  Tensor bias = Tensor::Zeros({1, 2}, /*requires_grad=*/true);
  Sum(Add(a, bias)).Backward();
  EXPECT_FLOAT_EQ(bias.grad_at(0, 0), 3.0f);  // One per row.
  EXPECT_FLOAT_EQ(bias.grad_at(0, 1), 3.0f);
}

TEST(OpsTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(5.0f);
  Tensor y = Add(a, s);
  EXPECT_FLOAT_EQ(y.at(1, 0), 8.0f);
}

TEST(OpsTest, SubAndMul) {
  Tensor a = Tensor::FromData({1, 3}, {4, 6, 8});
  Tensor b = Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor d = Sub(a, b);
  Tensor m = Mul(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 12.0f);
}

TEST(OpsTest, MatMulKnownResult) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor y = MatMul(a, b);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 154.0f);
}

TEST(OpsTest, TransposeRoundTrip) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
  Tensor tt = Transpose(t);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(tt.at(i, j), a.at(i, j));
  }
}

TEST(OpsTest, SigmoidTanhReluValues) {
  Tensor x = Tensor::FromData({1, 3}, {-1.0f, 0.0f, 2.0f});
  Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.at(0, 0), 0.26894f, 1e-4);
  EXPECT_NEAR(s.at(0, 1), 0.5f, 1e-6);
  Tensor t = Tanh(x);
  EXPECT_NEAR(t.at(0, 2), std::tanh(2.0f), 1e-6);
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(0, 2), 2.0f);
}

TEST(OpsTest, ExpLogSquare) {
  Tensor x = Tensor::FromData({1, 2}, {1.0f, 2.0f});
  EXPECT_NEAR(Exp(x).at(0, 1), std::exp(2.0f), 1e-4);
  EXPECT_NEAR(Log(x).at(0, 1), std::log(2.0f), 1e-6);
  EXPECT_FLOAT_EQ(Square(x).at(0, 1), 4.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor y = Softmax(x);
  for (int i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 3; ++j) {
      sum += y.at(i, j);
      EXPECT_GT(y.at(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Monotone in the logits.
  EXPECT_LT(y.at(0, 0), y.at(0, 2));
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Tensor x = Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor x_shifted = Tensor::FromData({1, 3}, {1001, 1002, 1003});
  Tensor a = Softmax(x);
  Tensor b = Softmax(x_shifted);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(a.at(0, j), b.at(0, j), 1e-5);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x = Tensor::FromData({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  Tensor ls = LogSoftmax(x);
  Tensor s = Softmax(x);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(ls.at(0, j), std::log(s.at(0, j)), 1e-5);
  }
}

TEST(OpsTest, NllLossPicksTargets) {
  Tensor logp = Tensor::FromData({2, 2}, {std::log(0.25f), std::log(0.75f),
                                          std::log(0.5f), std::log(0.5f)});
  Tensor loss = NllLoss(logp, {1, 0});
  EXPECT_NEAR(loss.item(), -(std::log(0.75f) + std::log(0.5f)) / 2.0f, 1e-5);
}

TEST(OpsTest, CrossEntropyOfUniformLogitsIsLogN) {
  Tensor logits = Tensor::Zeros({3, 8});
  Tensor loss = CrossEntropyLoss(logits, {0, 3, 7});
  EXPECT_NEAR(loss.item(), std::log(8.0f), 1e-5);
}

TEST(OpsTest, CrossEntropyGradientIsSoftmaxMinusOneHot) {
  Tensor logits = Tensor::FromData({1, 3}, {1, 2, 3}, /*requires_grad=*/true);
  CrossEntropyLoss(logits, {2}).Backward();
  Tensor p = Softmax(Tensor::FromData({1, 3}, {1, 2, 3}));
  EXPECT_NEAR(logits.grad_at(0, 0), p.at(0, 0), 1e-5);
  EXPECT_NEAR(logits.grad_at(0, 1), p.at(0, 1), 1e-5);
  EXPECT_NEAR(logits.grad_at(0, 2), p.at(0, 2) - 1.0f, 1e-5);
}

TEST(OpsTest, ConcatColsLayout) {
  Tensor a = Tensor::FromData({2, 1}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor y = ConcatCols({a, b});
  EXPECT_EQ(y.cols(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 2), 6.0f);
}

TEST(OpsTest, ConcatRowsLayout) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor y = ConcatRows({a, b});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(2, 0), 5.0f);
}

TEST(OpsTest, SliceColsAndBackwardScatter) {
  Tensor a = Tensor::FromData({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8},
                              /*requires_grad=*/true);
  Tensor y = SliceCols(a, 1, 2);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_FLOAT_EQ(y.at(1, 0), 6.0f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(a.grad_at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a.grad_at(1, 2), 1.0f);
  EXPECT_FLOAT_EQ(a.grad_at(1, 3), 0.0f);
}

TEST(OpsTest, SliceRows) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = SliceRows(a, 1, 2);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 6.0f);
}

TEST(OpsTest, RowsGatherAndScatterAdd) {
  Tensor table = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6},
                                  /*requires_grad=*/true);
  Tensor y = Rows(table, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 2.0f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(table.grad_at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(table.grad_at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(table.grad_at(2, 0), 2.0f);  // Gathered twice.
}

TEST(OpsTest, SumMeanSumRows) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
  Tensor r = SumRows(a);
  EXPECT_EQ(r.cols(), 1);
  EXPECT_FLOAT_EQ(r.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(r.at(1, 0), 7.0f);
}

TEST(OpsTest, ScaleAndAddScalar) {
  Tensor a = Tensor::FromData({1, 2}, {2, 4});
  EXPECT_FLOAT_EQ(Scale(a, 0.5f).at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f).at(0, 0), 3.0f);
}

}  // namespace
}  // namespace pa::tensor
