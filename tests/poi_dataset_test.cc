#include "poi/dataset.h"

#include <gtest/gtest.h>

namespace pa::poi {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.pois = PoiTable({{40.0, -100.0}, {40.1, -100.0}, {40.2, -100.0}});
  d.sequences.resize(2);
  for (int i = 0; i < 10; ++i) {
    d.sequences[0].push_back({0, i % 3, 1000 + i * 100, false});
  }
  for (int i = 0; i < 5; ++i) {
    d.sequences[1].push_back({1, i % 2, 2000 + i * 100, false});
  }
  d.RecountPopularity();
  return d;
}

TEST(CheckinTest, ChronologicalHelpers) {
  CheckinSequence seq = {{0, 1, 300}, {0, 2, 100}, {0, 3, 200}};
  EXPECT_FALSE(IsChronological(seq));
  SortChronological(seq);
  EXPECT_TRUE(IsChronological(seq));
  EXPECT_EQ(seq[0].poi, 2);
}

TEST(DatasetTest, Counts) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.num_users(), 2);
  EXPECT_EQ(d.num_pois(), 3);
  EXPECT_EQ(d.num_checkins(), 15);
}

TEST(DatasetTest, DensityCountsDistinctPairs) {
  Dataset d = TinyDataset();
  // User 0 visits POIs {0,1,2}, user 1 visits {0,1} -> 5 pairs of 6.
  EXPECT_NEAR(d.Density(), 5.0 / 6.0, 1e-9);
}

TEST(DatasetTest, PopularityRecount) {
  Dataset d = TinyDataset();
  // User 0: POI 0 appears 4 times (i=0,3,6,9); user 1: 3 times (i=0,2,4).
  EXPECT_EQ(d.pois.popularity(0), 7);
  EXPECT_EQ(d.pois.popularity(2), 3);
}

TEST(DatasetTest, ValidateDetectsOutOfOrder) {
  Dataset d = TinyDataset();
  std::swap(d.sequences[0][0], d.sequences[0][5]);
  std::string why;
  EXPECT_FALSE(d.Validate(&why));
  EXPECT_NE(why.find("chronological"), std::string::npos);
}

TEST(DatasetTest, ValidateDetectsBadPoi) {
  Dataset d = TinyDataset();
  d.sequences[1][0].poi = 99;
  EXPECT_FALSE(d.Validate());
}

TEST(DatasetTest, ValidateDetectsUserMismatch) {
  Dataset d = TinyDataset();
  d.sequences[1][0].user = 0;
  EXPECT_FALSE(d.Validate());
}

TEST(DatasetTest, ValidatePassesOnClean) {
  EXPECT_TRUE(TinyDataset().Validate());
}

TEST(DatasetTest, StatsComputation) {
  Dataset d = TinyDataset();
  DatasetStats s = ComputeStats(d);
  EXPECT_EQ(s.num_checkins, 15);
  EXPECT_DOUBLE_EQ(s.mean_seq_len, 7.5);
  // All gaps are 100 s.
  EXPECT_NEAR(s.mean_interval_hours, 100.0 / 3600.0, 1e-9);
  EXPECT_NEAR(s.median_interval_hours, 100.0 / 3600.0, 1e-9);
  EXPECT_GT(s.mean_hop_km, 0.0);
  EXPECT_FALSE(FormatStats(s).empty());
}

TEST(SplitTest, FractionsPerUser) {
  Dataset d;
  d.pois = PoiTable({{0, 0}});
  d.sequences.resize(1);
  for (int i = 0; i < 100; ++i) d.sequences[0].push_back({0, 0, i, false});
  Split split = ChronologicalSplit(d);
  // 80 train total, of which the last 8 are validation.
  EXPECT_EQ(split.train[0].size(), 72u);
  EXPECT_EQ(split.validation[0].size(), 8u);
  EXPECT_EQ(split.test[0].size(), 20u);
}

TEST(SplitTest, ChronologicalOrderPreserved) {
  Dataset d;
  d.pois = PoiTable({{0, 0}});
  d.sequences.resize(1);
  for (int i = 0; i < 50; ++i) d.sequences[0].push_back({0, 0, i * 10, false});
  Split split = ChronologicalSplit(d);
  // Validation strictly after train, test strictly after validation.
  EXPECT_LT(split.train[0].back().timestamp,
            split.validation[0].front().timestamp);
  EXPECT_LT(split.validation[0].back().timestamp,
            split.test[0].front().timestamp);
}

TEST(SplitTest, ShortSequencesDoNotCrash) {
  Dataset d;
  d.pois = PoiTable({{0, 0}});
  d.sequences.resize(2);
  d.sequences[0] = {{0, 0, 1, false}};
  // sequences[1] empty.
  Split split = ChronologicalSplit(d);
  EXPECT_EQ(split.train[0].size() + split.validation[0].size() +
                split.test[0].size(),
            1u);
  EXPECT_TRUE(split.train[1].empty());
}

TEST(SplitTest, PartitionIsComplete) {
  Dataset d = TinyDataset();
  Split split = ChronologicalSplit(d);
  for (int u = 0; u < d.num_users(); ++u) {
    EXPECT_EQ(split.train[u].size() + split.validation[u].size() +
                  split.test[u].size(),
              d.sequences[u].size());
  }
}

TEST(WithSequencesTest, SwapsSequencesAndRecounts) {
  Dataset d = TinyDataset();
  std::vector<CheckinSequence> only_poi2(2);
  only_poi2[0] = {{0, 2, 100, false}, {0, 2, 200, false}};
  Dataset swapped = WithSequences(d, only_poi2);
  EXPECT_EQ(swapped.num_checkins(), 2);
  EXPECT_EQ(swapped.pois.popularity(2), 2);
  EXPECT_EQ(swapped.pois.popularity(0), 0);
  // Original untouched.
  EXPECT_EQ(d.pois.popularity(0), 7);
}

TEST(PoiTableTest, NearestAndRegionQueries) {
  PoiTable pois({{40.0, -100.0}, {40.05, -100.0}, {41.0, -100.0}});
  EXPECT_EQ(pois.NearestPoi({40.01, -100.0}), 0);
  auto region = pois.PoisWithin(0, 10.0);
  ASSERT_EQ(region.size(), 1u);  // Only POI 1 within 10 km; excludes self.
  EXPECT_EQ(region[0], 1);
}

TEST(PoiTableTest, MostPopularWithinRadius) {
  PoiTable pois({{40.0, -100.0}, {40.01, -100.0}, {41.0, -100.0}});
  pois.AddPopularity(0, 1);
  pois.AddPopularity(1, 10);
  pois.AddPopularity(2, 100);
  // Within 5 km of (40.005,-100): POIs 0 and 1 -> POI 1 wins.
  EXPECT_EQ(pois.MostPopularWithin({40.005, -100.0}, 5.0), 1);
  // Empty radius falls back to nearest.
  EXPECT_EQ(pois.MostPopularWithin({45.0, -100.0}, 0.1), 2);
}

TEST(PoiTableTest, CopyRebuildsIndexLazily) {
  PoiTable pois({{40.0, -100.0}, {41.0, -100.0}});
  (void)pois.SpatialIndex();  // Build.
  PoiTable copy = pois;       // Index not copied.
  EXPECT_EQ(copy.NearestPoi({40.9, -100.0}), 1);  // Rebuilds lazily.
  // Copy is independent: adding to the copy doesn't affect the original.
  copy.Add({42.0, -100.0});
  EXPECT_EQ(copy.size(), 3);
  EXPECT_EQ(pois.size(), 2);
}

}  // namespace
}  // namespace pa::poi
