#include "poi/features.h"

#include <gtest/gtest.h>

namespace pa::poi {
namespace {

PoiTable TwoPois() {
  // ~11.1 km apart (0.1 degrees of latitude).
  return PoiTable({{40.0, -100.0}, {40.1, -100.0}});
}

TEST(FeaturesTest, FirstPositionIsZero) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 0, 0}, {0, 1, 3600}};
  StepFeatures f = ComputeStepFeatures(seq, 0, pois);
  EXPECT_FLOAT_EQ(f.delta_t, 0.0f);
  EXPECT_FLOAT_EQ(f.delta_d, 0.0f);
}

TEST(FeaturesTest, NormalizedDeltas) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 0, 0}, {0, 1, 6 * 3600}};
  FeatureScale scale;  // 6 h, 10 km.
  StepFeatures f = ComputeStepFeatures(seq, 1, pois, scale);
  EXPECT_NEAR(f.delta_t, 1.0f, 1e-6);        // 6 h / 6 h.
  EXPECT_NEAR(f.delta_d, 1.112f, 2e-3);      // 11.12 km / 10 km.
}

TEST(FeaturesTest, ClampsPathologicalGaps) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 0, 0}, {0, 1, 365LL * 24 * 3600}};
  StepFeatures f = ComputeStepFeatures(seq, 1, pois);
  EXPECT_FLOAT_EQ(f.delta_t, 10.0f);  // Clamped.
}

TEST(FeaturesTest, SameLocationZeroDistance) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 1, 0}, {0, 1, 3600}};
  StepFeatures f = ComputeStepFeatures(seq, 1, pois);
  EXPECT_FLOAT_EQ(f.delta_d, 0.0f);
  EXPECT_GT(f.delta_t, 0.0f);
}

TEST(FeaturesTest, SequenceFeaturesAlignWithPerStep) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 0, 0}, {0, 1, 3600}, {0, 0, 7200}};
  auto all = ComputeSequenceFeatures(seq, pois);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < seq.size(); ++i) {
    StepFeatures f = ComputeStepFeatures(seq, i, pois);
    EXPECT_FLOAT_EQ(all[i].delta_t, f.delta_t);
    EXPECT_FLOAT_EQ(all[i].delta_d, f.delta_d);
  }
}

TEST(FeaturesTest, OutOfRangeIndexIsZero) {
  PoiTable pois = TwoPois();
  CheckinSequence seq = {{0, 0, 0}};
  StepFeatures f = ComputeStepFeatures(seq, 5, pois);
  EXPECT_FLOAT_EQ(f.delta_t, 0.0f);
}

}  // namespace
}  // namespace pa::poi
