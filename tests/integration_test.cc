// End-to-end integration tests: synthetic data -> split -> augmenters ->
// recommenders -> HR tables; plus the headline reproduction property on a
// small scale.

#include <gtest/gtest.h>

#include "augment/imputation_eval.h"
#include "augment/linear_interpolation.h"
#include "augment/pa_seq2seq.h"
#include "eval/experiment.h"
#include "poi/synthetic.h"
#include "util/rng.h"

namespace pa {
namespace {

poi::LbsnProfile TinyProfile() {
  poi::LbsnProfile p = poi::GowallaProfile();
  p.num_users = 10;
  p.num_pois = 200;
  p.min_visits = 70;
  p.max_visits = 90;
  return p;
}

TEST(IntegrationTest, ExperimentTableIsWellFormed) {
  util::Rng rng(11);
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(TinyProfile(), rng);

  eval::ExperimentConfig config;
  config.epochs_scale = 0.3;
  config.seq2seq.stage1_epochs = 1;
  config.seq2seq.stage2_epochs = 1;
  config.seq2seq.stage3_epochs = 2;
  config.seq2seq.hidden_dim = 8;
  config.seq2seq.embedding_dim = 8;
  config.methods = {"FPMC-LR", "LSTM"};  // Keep the test fast.

  eval::TableResult table =
      eval::RunAugmentationExperiment(lbsn.observed, "tiny", config);
  ASSERT_EQ(table.methods.size(), 2u);
  ASSERT_EQ(table.training_sets.size(), 4u);
  ASSERT_EQ(table.cells.size(), 2u);
  for (const auto& row : table.cells) {
    ASSERT_EQ(row.size(), 4u);
    for (const auto& cell : row) {
      EXPECT_GT(cell.num_cases, 0);
      EXPECT_GE(cell.hr1, 0.0);
      EXPECT_LE(cell.hr1, cell.hr5 + 1e-12);
      EXPECT_LE(cell.hr5, cell.hr10 + 1e-12);
      EXPECT_LE(cell.hr10, 1.0);
    }
  }
  // Renderings do not crash and mention every method.
  const std::string text = table.ToString();
  const std::string csv = table.ToCsv();
  for (const auto& m : table.methods) {
    EXPECT_NE(text.find(m), std::string::npos);
    EXPECT_NE(csv.find(m), std::string::npos);
  }
}

TEST(IntegrationTest, TrainedPaSeq2SeqBeatsUntrained) {
  util::Rng rng(12);
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(TinyProfile(), rng);

  augment::PaSeq2SeqConfig config;
  config.embedding_dim = 12;
  config.hidden_dim = 12;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 0;
  augment::PaSeq2Seq untrained(lbsn.observed.pois, config);
  // No Fit at all: random weights (candidate restriction still applies).
  auto untrained_metrics = augment::EvaluateImputation(untrained, lbsn);

  config.stage3_epochs = 8;
  augment::PaSeq2Seq trained(lbsn.observed.pois, config);
  trained.Fit(lbsn.observed.sequences);
  auto trained_metrics = augment::EvaluateImputation(trained, lbsn);

  EXPECT_GT(trained_metrics.accuracy, untrained_metrics.accuracy);
}

TEST(IntegrationTest, HeadlineClaimPaBeatsLinearInterpolationAccuracy) {
  // The paper's contribution claim at test scale: PA-Seq2Seq imputes the
  // hidden check-ins more accurately than the nearest-neighbour linear
  // interpolation baseline.
  util::Rng rng(13);
  poi::LbsnProfile profile = TinyProfile();
  profile.num_users = 14;
  util::Rng rng2(13);
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(profile, rng2);

  augment::LinearInterpolationAugmenter li_nn(
      lbsn.observed.pois,
      augment::LinearInterpolationAugmenter::Mode::kNearestNeighbor);
  auto li_metrics = augment::EvaluateImputation(li_nn, lbsn);

  augment::PaSeq2SeqConfig config;
  config.stage3_epochs = 12;
  augment::PaSeq2Seq pa(lbsn.observed.pois, config);
  pa.Fit(lbsn.observed.sequences);
  auto pa_metrics = augment::EvaluateImputation(pa, lbsn);

  EXPECT_GT(pa_metrics.accuracy, li_metrics.accuracy);
}

TEST(IntegrationTest, AugmentedSequencesAreEvenlySpacedEnough) {
  // After augmentation no remaining gap should require further slots.
  util::Rng rng(14);
  poi::SyntheticLbsn lbsn = poi::GenerateLbsn(TinyProfile(), rng);
  augment::LinearInterpolationAugmenter li(
      lbsn.observed.pois,
      augment::LinearInterpolationAugmenter::Mode::kNearestNeighbor);
  const int64_t interval = 3 * 3600;
  auto augmented = augment::AugmentSequences(
      li, lbsn.observed.sequences, interval, /*max_missing_per_gap=*/0);
  for (const auto& seq : augmented) {
    auto timeline = poi::BuildSlotTimeline(seq, interval);
    EXPECT_EQ(poi::CountMissing(timeline), 0);
  }
}

}  // namespace
}  // namespace pa
