#include "serve/artifact.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/serialize.h"
#include "rec/registry.h"

namespace pa::serve {
namespace {

constexpr int64_t kHour = 3600;

poi::PoiTable SmallPois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 8; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  return poi::PoiTable(std::move(coords));
}

// Users share a deterministic cycle 0 -> 1 -> 2 -> 3 -> 0 ...
std::vector<poi::CheckinSequence> CycleData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 4, i * 3 * kHour, false});
    }
  }
  return train;
}

/// Walks a probe sequence and collects the TopK(10) list before each step —
/// the signature the round-trip tests compare bit-for-bit.
std::vector<std::vector<int32_t>> TopKTrace(const rec::Recommender& model,
                                            int32_t user, int steps) {
  std::vector<std::vector<int32_t>> trace;
  auto session = model.NewSession(user);
  for (int i = 0; i < steps; ++i) {
    const poi::Checkin c{user, i % 4, i * 3 * kHour, false};
    trace.push_back(session->TopK(10, c.timestamp));
    session->Observe(c);
  }
  return trace;
}

class ArtifactRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ArtifactRoundTripTest, TopKIsBitIdenticalAfterSaveLoad) {
  const std::string method = GetParam();
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender(method, /*seed=*/7, /*epochs_scale=*/0.2);
  ASSERT_NE(model, nullptr);
  model->Fit(CycleData(3, 40), pois);

  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;

  LoadedModel loaded;
  ASSERT_TRUE(LoadArtifact(artifact, &loaded, &error)) << error;
  EXPECT_EQ(loaded.name, model->name());
  ASSERT_EQ(loaded.pois->size(), pois.size());
  for (int i = 0; i < pois.size(); ++i) {
    EXPECT_EQ(loaded.pois->coord(i), pois.coord(i));
    EXPECT_EQ(loaded.pois->popularity(i), pois.popularity(i));
  }

  const auto before = TopKTrace(*model, /*user=*/1, /*steps=*/12);
  const auto after = TopKTrace(*loaded.model, /*user=*/1, /*steps=*/12);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << method << " diverged at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ArtifactRoundTripTest,
                         ::testing::Values("FPMC-LR", "PRME-G", "RNN", "LSTM",
                                           "ST-CLSTM"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ArtifactTest, RecommenderStreamRoundTripViaRegistry) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("LSTM", 7, 0.2);
  model->Fit(CycleData(2, 40), pois);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(model->Save(buf, &error)) << error;
  auto loaded = rec::LoadRecommender("LSTM", buf, pois, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(TopKTrace(*model, 0, 8), TopKTrace(*loaded, 0, 8));
}

TEST(ArtifactTest, SaveRequiresFittedModel) {
  auto model = rec::MakeRecommender("FPMC-LR");
  std::stringstream buf;
  std::string error;
  EXPECT_FALSE(model->Save(buf, &error));
  EXPECT_NE(error.find("before Fit"), std::string::npos) << error;
}

TEST(ArtifactTest, LoadRejectsCorruptedBytes) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("PRME-G", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);
  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;

  std::string bytes = artifact.str();
  bytes[bytes.size() / 2] ^= 0x10;
  std::stringstream corrupt(bytes,
                            std::ios::in | std::ios::out | std::ios::binary);
  LoadedModel loaded;
  EXPECT_FALSE(LoadArtifact(corrupt, &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(ArtifactTest, LoadRejectsTruncation) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("FPMC-LR", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);
  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois));

  const std::string bytes = artifact.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 9),
                        std::ios::in | std::ios::out | std::ios::binary);
  LoadedModel loaded;
  std::string error;
  EXPECT_FALSE(LoadArtifact(cut, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ArtifactTest, LoadRejectsBadMagic) {
  std::stringstream junk("this is not an artifact at all, not even close",
                         std::ios::in | std::ios::out | std::ios::binary);
  LoadedModel loaded;
  std::string error;
  EXPECT_FALSE(LoadArtifact(junk, &loaded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

// --- Container v2: the optional quantized-serving section. ------------------

// Rewrites an artifact byte string with a mutated body, fixing up the header
// checksum so only the intended difference reaches the parser.
std::string RepackArtifact(const std::string& bytes, uint32_t version,
                           std::string body) {
  const uint64_t checksum = nn::Checksum64(body.data(), body.size());
  std::string out = bytes.substr(0, 16);
  std::memcpy(out.data() + 4, &version, sizeof(version));
  std::memcpy(out.data() + 8, &checksum, sizeof(checksum));
  out += body;
  return out;
}

TEST(ArtifactQuantizedTest, QuantizedSectionRoundTrips) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("LSTM", 7, 0.2);
  model->Fit(CycleData(3, 40), pois);
  std::string error;
  ASSERT_TRUE(model->QuantizeForServing(&error)) << error;
  ASSERT_TRUE(model->has_quantized_serving());

  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;
  LoadedModel loaded;
  ASSERT_TRUE(LoadArtifact(artifact, &loaded, &error)) << error;
  // The quantized tables came back, and the int8 TopK path reproduces the
  // publisher's rankings exactly (same tables, exact-int32 kernel).
  EXPECT_TRUE(loaded.model->has_quantized_serving());
  EXPECT_EQ(TopKTrace(*model, 1, 12), TopKTrace(*loaded.model, 1, 12));
}

TEST(ArtifactQuantizedTest, UnquantizedModelsWriteFlagZero) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("LSTM", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);
  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;
  const std::string bytes = artifact.str();
  ASSERT_EQ(bytes.back(), '\0');  // v2 trailer: quantized flag 0.
  LoadedModel loaded;
  ASSERT_TRUE(LoadArtifact(artifact, &loaded, &error)) << error;
  EXPECT_FALSE(loaded.model->has_quantized_serving());
}

TEST(ArtifactQuantizedTest, V1ArtifactsStillLoad) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("LSTM", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);
  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;

  // A v1 file is the same bytes minus the trailing quantized flag: strip
  // it, stamp version 1, re-checksum. This is exactly what a pre-v2 writer
  // produced.
  const std::string bytes = artifact.str();
  std::string body = bytes.substr(16);
  ASSERT_EQ(body.back(), '\0');
  body.pop_back();
  std::stringstream v1(RepackArtifact(bytes, 1, std::move(body)),
                       std::ios::in | std::ios::out | std::ios::binary);
  LoadedModel loaded;
  ASSERT_TRUE(LoadArtifact(v1, &loaded, &error)) << error;
  EXPECT_FALSE(loaded.model->has_quantized_serving());
  EXPECT_EQ(TopKTrace(*model, 0, 8), TopKTrace(*loaded.model, 0, 8));
}

TEST(ArtifactQuantizedTest, RejectsBadQuantizedFlagAndFutureVersion) {
  poi::PoiTable pois = SmallPois();
  auto model = rec::MakeRecommender("LSTM", 7, 0.2);
  model->Fit(CycleData(2, 30), pois);
  std::stringstream artifact(std::ios::in | std::ios::out | std::ios::binary);
  std::string error;
  ASSERT_TRUE(SaveArtifact(artifact, *model, pois, &error)) << error;
  const std::string bytes = artifact.str();

  // Flag byte outside {0, 1} — checksum fixed up so the flag check itself
  // must reject it.
  std::string body = bytes.substr(16);
  body.back() = 2;
  std::stringstream bad_flag(RepackArtifact(bytes, 2, body),
                             std::ios::in | std::ios::out | std::ios::binary);
  LoadedModel loaded;
  EXPECT_FALSE(LoadArtifact(bad_flag, &loaded, &error));
  EXPECT_NE(error.find("quantized flag"), std::string::npos) << error;

  // A version this build has never heard of must be refused outright.
  std::stringstream future(RepackArtifact(bytes, 3, bytes.substr(16)),
                           std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_FALSE(LoadArtifact(future, &loaded, &error));
  EXPECT_NE(error.find("unsupported artifact version"), std::string::npos)
      << error;
}

// --- Registry satellite behaviours. ----------------------------------------

TEST(RegistryTest, MakeRecommenderIsCaseInsensitive) {
  for (const char* name : {"lstm", "Lstm", "LSTM", "fpmc-lr", "st-clstm"}) {
    EXPECT_NE(rec::MakeRecommender(name), nullptr) << name;
  }
  EXPECT_EQ(rec::MakeRecommender("definitely-not-a-model"), nullptr);
}

TEST(RegistryTest, KnownNamesStringListsEveryName) {
  const std::string joined = rec::KnownRecommenderNamesString();
  for (const std::string& name : rec::KnownRecommenderNames()) {
    EXPECT_NE(joined.find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, LoadRecommenderReportsUnknownNameWithKnownList) {
  poi::PoiTable pois = SmallPois();
  std::stringstream empty;
  std::string error;
  EXPECT_EQ(rec::LoadRecommender("nope", empty, pois, &error), nullptr);
  EXPECT_NE(error.find("unknown recommender"), std::string::npos) << error;
  EXPECT_NE(error.find("FPMC-LR"), std::string::npos) << error;
  EXPECT_NE(error.find("ST-CLSTM"), std::string::npos) << error;
}

}  // namespace
}  // namespace pa::serve
