// Tests for the vanilla RNN cell and the spatio-temporal coupled LSTM cell.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/gru_cell.h"
#include "nn/rnn_cell.h"
#include "nn/st_clstm.h"
#include "nn/st_rnn_cell.h"
#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pa::nn {
namespace {

using tensor::Tensor;

TEST(RnnCellTest, ShapeAndBound) {
  util::Rng rng(1);
  RnnCell cell(3, 4, rng);
  Tensor h = cell.InitialState(2);
  EXPECT_EQ(h.cols(), 4);
  Tensor next = cell.Forward(tensor::UniformInit({2, 3}, 3.0f, rng), h);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_LE(std::fabs(next.at(i, j)), 1.0f);  // tanh output.
    }
  }
}

TEST(RnnCellTest, GradCheck) {
  util::Rng rng(2);
  RnnCell cell(2, 3, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    Tensor h = cell.InitialState(1);
    h = cell.Forward(x, h);
    h = cell.Forward(x, h);
    return tensor::Sum(tensor::Square(h));
  };
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x);
  auto result = tensor::CheckGradients(loss, inputs);
  EXPECT_TRUE(result.ok) << result.worst_location;
}

TEST(GruCellTest, ShapeAndConvexBlendProperty) {
  util::Rng rng(11);
  GruCell cell(3, 4, rng);
  Tensor h = cell.InitialState(1);
  EXPECT_EQ(h.cols(), 4);
  // From h = 0, h' = (1-z) * n with |n| < 1, so |h'| < 1; iterating keeps
  // the state a convex blend of bounded candidates.
  Tensor x = tensor::UniformInit({1, 3}, 3.0f, rng).Detach();
  for (int t = 0; t < 30; ++t) h = cell.Forward(x, h);
  for (int j = 0; j < 4; ++j) EXPECT_LT(std::fabs(h.at(0, j)), 1.0f + 1e-5);
}

TEST(GruCellTest, GradCheck) {
  util::Rng rng(12);
  GruCell cell(2, 3, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    Tensor h = cell.InitialState(1);
    h = cell.Forward(x, h);
    h = cell.Forward(x, h);
    return tensor::Sum(tensor::Square(h));
  };
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x);
  auto result = tensor::CheckGradients(loss, inputs, 1e-2f, 5e-2f);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.max_rel_error;
}

TEST(GruCellTest, ParameterCount) {
  util::Rng rng(13);
  GruCell cell(3, 4, rng);
  EXPECT_EQ(cell.NumParameters(), 3 * 12 + 4 * 12 + 12);
}

TEST(StClstmTest, StateShapes) {
  util::Rng rng(3);
  StClstmCell cell(3, 4, rng);
  LstmState s = cell.InitialState(1);
  LstmState next = cell.Forward(Tensor::Zeros({1, 3}), s, 0.5f, 0.2f);
  EXPECT_EQ(next.h.cols(), 4);
  EXPECT_EQ(next.c.cols(), 4);
}

TEST(StClstmTest, CoupledGateKeepsCellBounded) {
  // c = (1 - i~) c_prev + i~ g is a convex blend, so |c| <= max(|c_prev|, 1).
  util::Rng rng(4);
  StClstmCell cell(2, 3, rng);
  LstmState s = cell.InitialState(1);
  Tensor x = tensor::UniformInit({1, 2}, 4.0f, rng);
  for (int t = 0; t < 50; ++t) s = cell.Forward(x, s, 1.0f, 1.0f);
  for (int j = 0; j < 3; ++j) {
    EXPECT_LE(std::fabs(s.c.at(0, j)), 1.0f + 1e-5);
  }
}

TEST(StClstmTest, IntervalsChangeTheOutput) {
  // The time/distance gates must make Δt and Δd matter.
  util::Rng rng(5);
  StClstmCell cell(2, 3, rng);
  LstmState s = cell.InitialState(1);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng).Detach();
  LstmState near = cell.Forward(x, s, 0.0f, 0.0f);
  LstmState far = cell.Forward(x, s, 8.0f, 8.0f);
  float diff = 0.0f;
  for (int j = 0; j < 3; ++j) {
    diff += std::fabs(near.h.at(0, j) - far.h.at(0, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(StClstmTest, GradCheckWithIntervals) {
  util::Rng rng(6);
  StClstmCell cell(2, 2, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    LstmState s = cell.InitialState(1);
    s = cell.Forward(x, s, 0.7f, 0.3f);
    s = cell.Forward(x, s, 1.5f, 0.1f);
    return tensor::Sum(tensor::Square(s.h));
  };
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x);
  auto result = tensor::CheckGradients(loss, inputs, 1e-2f, 5e-2f);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.max_rel_error;
}

TEST(StClstmTest, ParameterList) {
  util::Rng rng(7);
  StClstmCell cell(3, 4, rng);
  EXPECT_EQ(cell.Parameters().size(), 9u);
  // 3 fused (i,g,o) matrices + 2 gates x (input weights, interval weights,
  // bias).
  EXPECT_EQ(cell.NumParameters(), 3 * 12 + 4 * 12 + 12 +  // w_x, w_h, b
                                      (3 * 4 + 4 + 4) * 2);
}

TEST(StRnnCellTest, BucketAssignment) {
  util::Rng rng(20);
  StRnnCell cell(3, 4, rng, /*time_buckets=*/4, /*distance_buckets=*/4,
                 /*max_interval=*/4.0f);
  EXPECT_EQ(cell.TimeBucket(-1.0f), 0);
  EXPECT_EQ(cell.TimeBucket(0.0f), 0);
  EXPECT_EQ(cell.TimeBucket(0.5f), 0);
  EXPECT_EQ(cell.TimeBucket(1.5f), 1);
  EXPECT_EQ(cell.TimeBucket(3.9f), 3);
  EXPECT_EQ(cell.TimeBucket(100.0f), 3);
  EXPECT_EQ(cell.DistanceBucket(2.5f), 2);
}

TEST(StRnnCellTest, DifferentBucketsDifferentDynamics) {
  util::Rng rng(21);
  StRnnCell cell(2, 3, rng);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng).Detach();
  Tensor h = tensor::UniformInit({1, 3}, 0.5f, rng).Detach();
  Tensor near = cell.Forward(x, h, 0.1f, 0.1f);
  Tensor far = cell.Forward(x, h, 3.9f, 3.9f);
  float diff = 0.0f;
  for (int j = 0; j < 3; ++j) diff += std::fabs(near.at(0, j) - far.at(0, j));
  EXPECT_GT(diff, 1e-4f);
  // Same bucket -> identical transition.
  Tensor near2 = cell.Forward(x, h, 0.2f, 0.3f);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(near.at(0, j), near2.at(0, j));
}

TEST(StRnnCellTest, GradCheckPerBucket) {
  util::Rng rng(22);
  StRnnCell cell(2, 2, rng, 2, 2, 2.0f);
  Tensor x = tensor::UniformInit({1, 2}, 1.0f, rng);
  auto loss = [&] {
    Tensor h = cell.InitialState(1);
    h = cell.Forward(x, h, 0.5f, 1.5f);   // Buckets (0, 1).
    h = cell.Forward(x, h, 1.5f, 0.5f);   // Buckets (1, 0).
    return tensor::Sum(tensor::Square(h));
  };
  std::vector<Tensor> inputs = cell.Parameters();
  inputs.push_back(x);
  auto result = tensor::CheckGradients(loss, inputs, 1e-2f, 5e-2f);
  EXPECT_TRUE(result.ok) << result.worst_location;
}

TEST(StRnnCellTest, ParameterCount) {
  util::Rng rng(23);
  StRnnCell cell(3, 4, rng, 4, 4);
  // 4 input matrices [3x4] + 4 recurrent [4x4] + bias [4].
  EXPECT_EQ(cell.NumParameters(), 4 * 12 + 4 * 16 + 4);
}

}  // namespace
}  // namespace pa::nn
