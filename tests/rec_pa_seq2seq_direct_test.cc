// Tests for PA-Seq2Seq used directly as a next-POI recommender (paper §VI)
// and its supporting RankNext / ImputeTrip model APIs.

#include <set>

#include <gtest/gtest.h>

#include "rec/pa_seq2seq_recommender.h"

namespace pa::rec {
namespace {

constexpr int64_t kHour = 3600;

poi::PoiTable SmallPois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 8; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  return poi::PoiTable(std::move(coords));
}

std::vector<poi::CheckinSequence> CycleData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 4, i * 3 * kHour, false});
    }
  }
  return train;
}

augment::PaSeq2SeqConfig FastConfig() {
  augment::PaSeq2SeqConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.stage1_epochs = 2;
  config.stage2_epochs = 2;
  config.stage3_epochs = 16;
  config.candidate_radius_km = 0.0;
  return config;
}

TEST(PaSeq2SeqDirectTest, PredictsDeterministicCycle) {
  PaSeq2SeqRecommender rec(FastConfig());
  poi::PoiTable pois = SmallPois();
  rec.Fit(CycleData(3, 60), pois);

  auto session = rec.NewSession(0);
  int hits = 0, cases = 0;
  for (int i = 0; i < 16; ++i) {
    poi::Checkin c{0, i % 4, i * 3 * kHour, false};
    if (i >= 4) {
      auto top = session->TopK(1, c.timestamp);
      ASSERT_FALSE(top.empty());
      if (top[0] == c.poi) ++hits;
      ++cases;
    }
    session->Observe(c);
  }
  EXPECT_GT(static_cast<double>(hits) / cases, 0.7);
}

TEST(PaSeq2SeqDirectTest, EmptyHistoryReturnsEmpty) {
  PaSeq2SeqRecommender rec(FastConfig());
  poi::PoiTable pois = SmallPois();
  rec.Fit(CycleData(2, 30), pois);
  auto session = rec.NewSession(0);
  EXPECT_TRUE(session->TopK(5, 0).empty());
}

TEST(PaSeq2SeqDirectTest, RankNextReturnsKDistinctPois) {
  augment::PaSeq2Seq model(SmallPois(), FastConfig());
  // Untrained is fine for the ranking contract.
  poi::CheckinSequence history = {{0, 0, 0, false}, {0, 1, 3 * kHour, false}};
  auto static_pois = SmallPois();
  augment::PaSeq2Seq trained(static_pois, FastConfig());
  auto ranked = trained.RankNext(history, 6 * kHour, 5);
  ASSERT_EQ(ranked.size(), 5u);
  std::set<int32_t> unique(ranked.begin(), ranked.end());
  EXPECT_EQ(unique.size(), ranked.size());
  for (int32_t id : ranked) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 8);
  }
}

TEST(PaSeq2SeqDirectTest, RankNextPadsShortCandidateSets) {
  // With a candidate radius covering only ~2 POIs, a request for 5 must be
  // padded from the unrestricted ranking.
  augment::PaSeq2SeqConfig config = FastConfig();
  config.candidate_radius_km = 1.2;  // ~1 neighbour at 0.01 deg spacing.
  poi::PoiTable pois = SmallPois();
  augment::PaSeq2Seq model(pois, config);
  poi::CheckinSequence history = {{0, 0, 0, false}};
  auto ranked = model.RankNext(history, 3 * kHour, 5);
  EXPECT_EQ(ranked.size(), 5u);
}

TEST(PaSeq2SeqDirectTest, ImputeTripFillsTimeBudget) {
  poi::PoiTable pois = SmallPois();
  augment::PaSeq2SeqConfig config = FastConfig();
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 6;
  augment::PaSeq2Seq model(pois, config);
  model.Fit(CycleData(3, 60));

  poi::Checkin start{0, 0, 0, false};
  poi::Checkin end{0, 3, 9 * kHour, false};
  poi::CheckinSequence trip = model.ImputeTrip(start, end, 3 * kHour);
  // 9h budget at 3h slots: start + 2 imputed + end.
  ASSERT_EQ(trip.size(), 4u);
  EXPECT_EQ(trip.front().poi, 0);
  EXPECT_FALSE(trip.front().imputed);
  EXPECT_TRUE(trip[1].imputed);
  EXPECT_TRUE(trip[2].imputed);
  EXPECT_EQ(trip.back().poi, 3);
  EXPECT_TRUE(poi::IsChronological(trip));
}

TEST(PaSeq2SeqDirectTest, ImputeTripLearnsCycleWaypoints) {
  poi::PoiTable pois = SmallPois();
  augment::PaSeq2SeqConfig config = FastConfig();
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 10;
  augment::PaSeq2Seq model(pois, config);
  model.Fit(CycleData(4, 60));
  poi::Checkin start{0, 0, 0, false};
  poi::Checkin end{0, 3, 9 * kHour, false};
  poi::CheckinSequence trip = model.ImputeTrip(start, end, 3 * kHour);
  ASSERT_EQ(trip.size(), 4u);
  // The global cycle 0 -> 1 -> 2 -> 3 dictates the waypoints.
  EXPECT_EQ(trip[1].poi, 1);
  EXPECT_EQ(trip[2].poi, 2);
}

TEST(PaSeq2SeqDirectTest, NameAndModelAccessor) {
  augment::PaSeq2SeqConfig config = FastConfig();
  config.stage3_epochs = 1;
  PaSeq2SeqRecommender rec(config);
  EXPECT_EQ(rec.name(), "PA-Seq2Seq(direct)");
  EXPECT_EQ(rec.model(), nullptr);
  poi::PoiTable pois = SmallPois();
  rec.Fit(CycleData(2, 20), pois);
  EXPECT_NE(rec.model(), nullptr);
}

}  // namespace
}  // namespace pa::rec
