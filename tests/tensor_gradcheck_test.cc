// Property-style sweep: every differentiable op (and several compositions)
// is verified against central finite differences. If these pass, arbitrary
// expressions built from the op set are trustworthy.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pa::tensor {
namespace {

struct GradCase {
  std::string name;
  // Builds (loss_fn, inputs) from an rng.
  std::function<std::pair<std::function<Tensor()>, std::vector<Tensor>>(
      util::Rng&)>
      build;
};

Tensor RandomInput(Shape shape, util::Rng& rng, float scale = 1.0f) {
  return UniformInit(shape, scale, rng);
}

const std::vector<GradCase>& AllCases() {
  static const std::vector<GradCase>& cases = *new std::vector<GradCase>([] {
  std::vector<GradCase> cases;
  auto add = [&cases](std::string name, auto fn) {
    cases.push_back({std::move(name), fn});
  };

  add("add", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng), b = RandomInput({2, 3}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Add(a, b)); }),
        std::vector<Tensor>{a, b});
  });
  add("add_row_broadcast", [](util::Rng& rng) {
    Tensor a = RandomInput({3, 4}, rng), b = RandomInput({1, 4}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Mul(Add(a, b), a)); }),
        std::vector<Tensor>{a, b});
  });
  add("sub_mul", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 2}, rng), b = RandomInput({2, 2}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Mul(Sub(a, b), b)); }),
        std::vector<Tensor>{a, b});
  });
  add("mul_scalar_broadcast", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng), s = RandomInput({1, 1}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Mul(a, s)); }),
        std::vector<Tensor>{a, s});
  });
  add("matmul", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng), b = RandomInput({3, 4}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(MatMul(a, b)); }),
        std::vector<Tensor>{a, b});
  });
  add("matmul_chain", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng, 0.5f);
    Tensor b = RandomInput({3, 3}, rng, 0.5f);
    Tensor c = RandomInput({3, 2}, rng, 0.5f);
    return std::make_pair(std::function<Tensor()>([=] {
                            return Sum(MatMul(MatMul(a, b), c));
                          }),
                          std::vector<Tensor>{a, b, c});
  });
  add("transpose", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            return Sum(MatMul(Transpose(a), a));
                          }),
                          std::vector<Tensor>{a});
  });
  add("sigmoid", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Sigmoid(a)); }),
        std::vector<Tensor>{a});
  });
  add("tanh", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 3}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Tanh(a)); }),
        std::vector<Tensor>{a});
  });
  add("exp", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 2}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Exp(a)); }),
        std::vector<Tensor>{a});
  });
  add("log", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 2}, rng);
    // Keep inputs positive and away from zero.
    for (int64_t i = 0; i < a.numel(); ++i) {
      a.data()[i] = 1.0f + std::fabs(a.data()[i]);
    }
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Log(a)); }),
        std::vector<Tensor>{a});
  });
  add("square", [](util::Rng& rng) {
    Tensor a = RandomInput({1, 4}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Square(a)); }),
        std::vector<Tensor>{a});
  });
  add("softmax_weighted", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 4}, rng);
    Tensor w = RandomInput({2, 4}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] { return Sum(Mul(Softmax(a), w)); }),
        std::vector<Tensor>{a, w});
  });
  add("log_softmax_nll", [](util::Rng& rng) {
    Tensor a = RandomInput({3, 5}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            return NllLoss(LogSoftmax(a), {1, 4, 0});
                          }),
                          std::vector<Tensor>{a});
  });
  add("cross_entropy", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 6}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            return CrossEntropyLoss(a, {5, 2});
                          }),
                          std::vector<Tensor>{a});
  });
  add("concat_cols_slice", [](util::Rng& rng) {
    Tensor a = RandomInput({2, 2}, rng), b = RandomInput({2, 3}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            Tensor y = ConcatCols({a, b});
                            return Sum(Square(SliceCols(y, 1, 3)));
                          }),
                          std::vector<Tensor>{a, b});
  });
  add("concat_rows_slice", [](util::Rng& rng) {
    Tensor a = RandomInput({1, 3}, rng), b = RandomInput({2, 3}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            Tensor y = ConcatRows({a, b});
                            return Sum(Square(SliceRows(y, 1, 2)));
                          }),
                          std::vector<Tensor>{a, b});
  });
  add("rows_gather", [](util::Rng& rng) {
    Tensor table = RandomInput({4, 3}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            return Sum(Square(Rows(table, {3, 1, 3})));
                          }),
                          std::vector<Tensor>{table});
  });
  add("mean_sumrows", [](util::Rng& rng) {
    Tensor a = RandomInput({3, 3}, rng);
    return std::make_pair(std::function<Tensor()>([=] {
                            return Mean(Square(SumRows(a)));
                          }),
                          std::vector<Tensor>{a});
  });
  add("lstm_like_gate_expression", [](util::Rng& rng) {
    // A miniature LSTM step, end to end.
    Tensor x = RandomInput({1, 3}, rng);
    Tensor wx = RandomInput({3, 8}, rng, 0.5f);
    Tensor h = RandomInput({1, 2}, rng);
    Tensor wh = RandomInput({2, 8}, rng, 0.5f);
    Tensor c_prev = RandomInput({1, 2}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] {
          Tensor gates = Add(MatMul(x, wx), MatMul(h, wh));
          Tensor i = Sigmoid(SliceCols(gates, 0, 2));
          Tensor f = Sigmoid(SliceCols(gates, 2, 2));
          Tensor g = Tanh(SliceCols(gates, 4, 2));
          Tensor o = Sigmoid(SliceCols(gates, 6, 2));
          Tensor c = Add(Mul(f, c_prev), Mul(i, g));
          return Sum(Square(Mul(o, Tanh(c))));
        }),
        std::vector<Tensor>{x, wx, h, wh, c_prev});
  });
  add("attention_like_expression", [](util::Rng& rng) {
    Tensor q = RandomInput({1, 3}, rng);
    Tensor wa = RandomInput({3, 3}, rng, 0.5f);
    Tensor keys = RandomInput({4, 3}, rng);
    return std::make_pair(
        std::function<Tensor()>([=] {
          Tensor scores = MatMul(MatMul(q, wa), Transpose(keys));
          Tensor weights = Softmax(scores);
          Tensor context = MatMul(weights, keys);
          return Sum(Square(context));
        }),
        std::vector<Tensor>{q, wa, keys});
  });
  return cases;
}());
  return cases;
}

class GradCheckSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GradCheckSweep, AnalyticMatchesNumeric) {
  const GradCase& c = AllCases()[GetParam()];
  // Three random restarts per case.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    auto [loss_fn, inputs] = c.build(rng);
    for (Tensor& in : inputs) {
      // Mark everything trainable so gradients are produced.
      // (UniformInit already sets requires_grad.)
      ASSERT_TRUE(in.requires_grad());
    }
    GradCheckResult result = CheckGradients(loss_fn, inputs);
    EXPECT_TRUE(result.ok) << c.name << " seed=" << seed
                           << " worst: " << result.worst_location
                           << " rel_err=" << result.max_rel_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckSweep, ::testing::Range<size_t>(0, AllCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return AllCases()[info.param].name;
    });

}  // namespace
}  // namespace pa::tensor
