#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace pa::tensor {
namespace {

TEST(TensorTest, ZerosHasShapeAndValue) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({3, 2}, 1.5f);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 1.5f);
}

TEST(TensorTest, FromDataRowMajorLayout) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor t = Tensor::Scalar(2.75f);
  EXPECT_FLOAT_EQ(t.item(), 2.75f);
}

TEST(TensorTest, SetUpdatesValue) {
  Tensor t = Tensor::Zeros({2, 2});
  t.set(1, 0, 7.0f);
  EXPECT_EQ(t.at(1, 0), 7.0f);
}

TEST(TensorTest, CopiesAliasStorage) {
  Tensor a = Tensor::Zeros({1, 2});
  Tensor b = a;
  b.set(0, 0, 3.0f);
  EXPECT_EQ(a.at(0, 0), 3.0f);
}

TEST(TensorTest, DetachCopiesData) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.set(0, 0, 9.0f);
  EXPECT_EQ(a.at(0, 0), 1.0f);  // Detach is a copy, not a view.
}

TEST(TensorTest, BackwardThroughSingleOp) {
  Tensor a = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Scalar(4.0f, /*requires_grad=*/true);
  Tensor y = Mul(a, b);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(b.grad_at(0, 0), 3.0f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor y1 = Scale(a, 3.0f);
  y1.Backward();
  Tensor y2 = Scale(a, 5.0f);
  y2.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 8.0f);  // 3 + 5.
}

TEST(TensorTest, ZeroGradClears) {
  Tensor a = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Scale(a, 3.0f).Backward();
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 0.0f);
}

// Diamond-shaped graph: y = (a*b) + (a*c). dy/da must combine both paths.
TEST(TensorTest, BackwardDiamondGraph) {
  Tensor a = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor c = Tensor::Scalar(5.0f, /*requires_grad=*/true);
  Tensor y = Add(Mul(a, b), Mul(a, c));
  EXPECT_FLOAT_EQ(y.item(), 16.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 8.0f);  // b + c.
  EXPECT_FLOAT_EQ(b.grad_at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.grad_at(0, 0), 2.0f);
}

// Reusing the same tensor twice in one op (y = a * a).
TEST(TensorTest, BackwardSelfProduct) {
  Tensor a = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor y = Mul(a, a);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 6.0f);  // 2a.
}

// A long chain exercises the iterative (non-recursive) topological sort.
TEST(TensorTest, BackwardDeepChainDoesNotOverflow) {
  Tensor a = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor y = a;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 1.0f);
}

TEST(TensorTest, NoGradInputsProduceNoGraph) {
  Tensor a = Tensor::Scalar(1.0f);
  Tensor b = Tensor::Scalar(2.0f);
  Tensor y = Add(a, b);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, GradFlowsThroughInteriorNodes) {
  Tensor a = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor interior = Scale(a, 2.0f);   // Interior node, not a leaf.
  Tensor y = Mul(interior, interior);  // y = 4a^2, dy/da = 8a = 16.
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad_at(0, 0), 16.0f);
}

TEST(TensorDeathTest, AccessorsOnUndefinedTensorAbortWithMessage) {
  // A default-constructed Tensor has no impl; the accessors must die with a
  // diagnostic rather than dereference null (raw UB).
  Tensor t;
  ASSERT_FALSE(t.defined());
  EXPECT_DEATH(t.shape(), "default-constructed");
  EXPECT_DEATH(t.rows(), "default-constructed");
  EXPECT_DEATH(t.cols(), "default-constructed");
  EXPECT_DEATH(t.numel(), "default-constructed");
  EXPECT_DEATH(t.requires_grad(), "default-constructed");
  EXPECT_DEATH(t.data(), "default-constructed");
}

TEST(ShapeTest, EqualityAndToString) {
  Shape a{2, 3}, b{2, 3}, c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "[2, 3]");
}

}  // namespace
}  // namespace pa::tensor
