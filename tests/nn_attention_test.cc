#include "nn/attention.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pa::nn {
namespace {

using tensor::Tensor;

std::vector<Tensor> MakeStates(int n, int dim, util::Rng& rng) {
  std::vector<Tensor> states;
  for (int i = 0; i < n; ++i) {
    states.push_back(tensor::UniformInit({1, dim}, 1.0f, rng).Detach());
  }
  return states;
}

TEST(LocalAttentionTest, OutputShapes) {
  util::Rng rng(1);
  LocalAttention attn(4, 6, /*window=*/2, rng);
  auto states = MakeStates(9, 6, rng);
  Tensor h = Tensor::Zeros({1, 4});
  auto out = attn.Forward(h, states, 4);
  EXPECT_EQ(out.context.cols(), 6);
  EXPECT_EQ(out.attentional_hidden.cols(), 4);
  EXPECT_EQ(out.weights.cols(), 5);  // [p-2, p+2].
  EXPECT_EQ(out.window_begin, 2);
}

TEST(LocalAttentionTest, WindowClampedAtBoundaries) {
  util::Rng rng(2);
  LocalAttention attn(4, 6, 3, rng);
  auto states = MakeStates(5, 6, rng);
  Tensor h = Tensor::Zeros({1, 4});
  auto at_start = attn.Forward(h, states, 0);
  EXPECT_EQ(at_start.window_begin, 0);
  EXPECT_EQ(at_start.weights.cols(), 4);  // [0, 3].
  auto at_end = attn.Forward(h, states, 4);
  EXPECT_EQ(at_end.window_begin, 1);
  EXPECT_EQ(at_end.weights.cols(), 4);  // [1, 4].
  auto beyond = attn.Forward(h, states, 99);  // Clamped to last index.
  EXPECT_EQ(beyond.window_begin, 1);
}

TEST(LocalAttentionTest, WeightsAreGaussianDampedSoftmax) {
  // Weights must be positive and bounded by the pure softmax (the Gaussian
  // factor is <= 1, equal to 1 only at the centre).
  util::Rng rng(3);
  LocalAttention attn(4, 4, 5, rng);
  auto states = MakeStates(11, 4, rng);
  Tensor h = tensor::UniformInit({1, 4}, 1.0f, rng).Detach();
  auto out = attn.Forward(h, states, 5);
  float sum = 0.0f;
  for (int j = 0; j < out.weights.cols(); ++j) {
    EXPECT_GT(out.weights.at(0, j), 0.0f);
    sum += out.weights.at(0, j);
  }
  EXPECT_LE(sum, 1.0f + 1e-5);  // Damped below softmax's exact 1.
}

TEST(LocalAttentionTest, FarPositionsGetDampedMoreThanCentre) {
  // With identical encoder states, scores are uniform, so the weight
  // profile is exactly the Gaussian: centre heaviest, edges lightest.
  util::Rng rng(4);
  LocalAttention attn(4, 4, 4, rng);
  Tensor state = tensor::UniformInit({1, 4}, 1.0f, rng).Detach();
  std::vector<Tensor> states(9, state);
  Tensor h = tensor::UniformInit({1, 4}, 1.0f, rng).Detach();
  auto out = attn.Forward(h, states, 4);
  const int centre = 4 - out.window_begin;
  for (int j = 0; j < out.weights.cols(); ++j) {
    if (j != centre) {
      EXPECT_LT(out.weights.at(0, j), out.weights.at(0, centre) + 1e-7);
    }
  }
  // Symmetric around the centre for identical states.
  EXPECT_NEAR(out.weights.at(0, centre - 1), out.weights.at(0, centre + 1),
              1e-5);
}

TEST(LocalAttentionTest, ContextIsConvexCombinationForIdenticalStates) {
  util::Rng rng(5);
  LocalAttention attn(3, 2, 2, rng);
  Tensor state = Tensor::FromData({1, 2}, {0.5f, -0.25f});
  std::vector<Tensor> states(7, state);
  Tensor h = tensor::UniformInit({1, 3}, 1.0f, rng).Detach();
  auto out = attn.Forward(h, states, 3);
  // Context = (sum of weights) * state, elementwise.
  float wsum = 0.0f;
  for (int j = 0; j < out.weights.cols(); ++j) wsum += out.weights.at(0, j);
  EXPECT_NEAR(out.context.at(0, 0), wsum * 0.5f, 1e-5);
  EXPECT_NEAR(out.context.at(0, 1), wsum * -0.25f, 1e-5);
}

TEST(LocalAttentionTest, AttentionalHiddenIsBounded) {
  util::Rng rng(6);
  LocalAttention attn(4, 4, 2, rng);
  auto states = MakeStates(5, 4, rng);
  Tensor h = tensor::UniformInit({1, 4}, 10.0f, rng).Detach();
  auto out = attn.Forward(h, states, 2);
  for (int j = 0; j < 4; ++j) {
    EXPECT_LE(std::fabs(out.attentional_hidden.at(0, j)), 1.0f);  // tanh.
  }
}

TEST(LocalAttentionTest, GradCheck) {
  util::Rng rng(7);
  LocalAttention attn(3, 3, 2, rng);
  Tensor h = tensor::UniformInit({1, 3}, 1.0f, rng);
  Tensor s0 = tensor::UniformInit({1, 3}, 1.0f, rng);
  Tensor s1 = tensor::UniformInit({1, 3}, 1.0f, rng);
  Tensor s2 = tensor::UniformInit({1, 3}, 1.0f, rng);
  auto loss = [&] {
    auto out = attn.Forward(h, {s0, s1, s2}, 1);
    return tensor::Sum(tensor::Square(out.attentional_hidden));
  };
  std::vector<Tensor> inputs = attn.Parameters();
  inputs.insert(inputs.end(), {h, s0, s1, s2});
  auto result = tensor::CheckGradients(loss, inputs, 1e-2f, 5e-2f);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.max_rel_error;
}

TEST(LocalAttentionTest, ParameterCount) {
  util::Rng rng(8);
  LocalAttention attn(4, 6, 2, rng);
  // W_a [4x6] + combine W [(4+6)x4] + combine b [4].
  EXPECT_EQ(attn.NumParameters(), 4 * 6 + 10 * 4 + 4);
}

}  // namespace
}  // namespace pa::nn
