// Tests for the exposition server: routing logic (sockets-free via
// internal::Route), Prometheus text shape — every registry instrument must
// appear and every line must parse — and a real-socket round trip against
// a server on an ephemeral port, including the /healthz 503 contract.

#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace pa::obs {
namespace {

// Sends one request to 127.0.0.1:`port` and returns the raw response.
std::string HttpGet(uint16_t port, const std::string& request_line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  const std::string wire = request_line + "\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// Minimal Prometheus text-format check: every line is either a comment or
// `name[{labels}] value[ # exemplar]` with a sanitized name and a numeric
// value. Returns the metric names seen.
std::vector<std::string> ParsePrometheusText(const std::string& text) {
  std::vector<std::string> names;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "unexpected comment: " << line;
      continue;
    }
    size_t i = 0;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_' || line[0] == ':')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) {
      ADD_FAILURE() << "no metric name: " << line;
      continue;
    }
    names.push_back(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unterminated labels: " << line;
        continue;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      ADD_FAILURE() << "no value separator: " << line;
      continue;
    }
    // The value must parse as a number (NaN/±Inf allowed by the format).
    const std::string rest = line.substr(i + 1);
    const size_t exemplar = rest.find(" # ");
    const std::string value =
        exemplar == std::string::npos ? rest : rest.substr(0, exemplar);
    EXPECT_FALSE(value.empty()) << line;
    size_t parsed = 0;
    (void)std::stod(value, &parsed);  // Throws → test aborts with a clue.
    EXPECT_EQ(parsed, value.size()) << line;
  }
  return names;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& needle) {
  for (const std::string& n : names) {
    if (n == needle || n.rfind(needle + "_", 0) == 0) return true;
  }
  return false;
}

TEST(Route, MethodAndPathDispatch) {
  HealthRegistry::Global().Clear();
  const auto post = internal::Route("POST", "/metrics");
  EXPECT_EQ(post.status, 405);
  const auto missing = internal::Route("GET", "/nope");
  EXPECT_EQ(missing.status, 404);

  const auto varz = internal::Route("GET", "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_NE(varz.body.find("\"counters\""), std::string::npos);

  const auto healthz = internal::Route("GET", "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(Route, HealthzAnswers503OnlyWhenFailed) {
  HealthRegistry::Global().Clear();
  HealthRegistry::Global().Set("x", HealthStatus::kDegraded, "meh");
  EXPECT_EQ(internal::Route("GET", "/healthz").status, 200);
  HealthRegistry::Global().Set("x", HealthStatus::kFailed, "dead");
  const auto r = internal::Route("GET", "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\":\"failed\""), std::string::npos);
  HealthRegistry::Global().Clear();
}

TEST(Route, MetricsCoversEveryRegistryInstrument) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.expo.counter").Add(5);
  registry.GetGauge("test.expo.gauge").Set(-2.5);
  Histogram& h = registry.GetHistogram("test.expo.hist");
  for (int i = 0; i < 100; ++i) h.Record(100.0);
  h.RecordWithExemplar(5000.0, 77);
  HealthRegistry::Global().Clear();
  HealthRegistry::Global().Set("comp", HealthStatus::kOk);

  const auto r = internal::Route("GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type.rfind("text/plain", 0), 0u);
  const std::vector<std::string> names = ParsePrometheusText(r.body);

  // Every instrument in the registry snapshot must be exposed (modulo name
  // sanitization) — the acceptance contract for /metrics.
  const auto snap = registry.TakeSnapshot();
  auto sanitized = [](std::string name) {
    for (char& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        c = '_';
      }
    }
    return name;
  };
  for (const auto& [name, v] : snap.counters) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  for (const auto& [name, v] : snap.gauges) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  for (const auto& [name, v] : snap.histograms) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  // Health rides along as a gauge, and the exemplar links the tail bucket
  // to span 77 in OpenMetrics syntax.
  EXPECT_TRUE(Contains(names, "pa_health_status"));
  EXPECT_NE(r.body.find("# {span_id=\"77\"}"), std::string::npos);
  // Histogram samples: cumulative buckets, +Inf terminal, sum and count.
  EXPECT_NE(r.body.find("test_expo_hist_bucket{le=\"+Inf\"} 101"),
            std::string::npos);
  EXPECT_NE(r.body.find("test_expo_hist_count 101"), std::string::npos);

  registry.Unregister("test.expo.counter", nullptr);
  registry.Unregister("test.expo.gauge", nullptr);
  registry.Unregister("test.expo.hist", nullptr);
  HealthRegistry::Global().Clear();
}

TEST(RenderHttpResponse, StatusLineHeadersAndBody) {
  internal::HttpResponse r;
  r.status = 404;
  r.content_type = "text/plain";
  r.body = "nope\n";
  const std::string wire = internal::RenderHttpResponse(r);
  EXPECT_EQ(wire.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nnope\n"), std::string::npos);
}

TEST(ExpositionServer, ServesOverARealSocket) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.expo.live").Add(3);
  HealthRegistry::Global().Clear();

  ExpositionServer server;
  ASSERT_TRUE(server.Start(0));  // Ephemeral port.
  ASSERT_NE(server.port(), 0);
  EXPECT_FALSE(server.Start(0));  // Already running.

  const std::string metrics = HttpGet(server.port(), "GET /metrics HTTP/1.1");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("test_expo_live 3"), std::string::npos);

  const std::string healthz = HttpGet(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);

  HealthRegistry::Global().Set("broken", HealthStatus::kFailed, "boom");
  const std::string sick = HttpGet(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(sick.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(sick.find("boom"), std::string::npos);
  HealthRegistry::Global().Clear();

  // Query strings are stripped; bad request lines answer 400.
  const std::string q = HttpGet(server.port(), "GET /varz?pretty=1 HTTP/1.1");
  EXPECT_EQ(q.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const std::string bad = HttpGet(server.port(), "GARBAGE");
  EXPECT_EQ(bad.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
  registry.Unregister("test.expo.live", nullptr);
}

}  // namespace
}  // namespace pa::obs
