// Tests for the exposition server: routing logic (sockets-free via
// internal::Route), Prometheus text shape — every registry instrument must
// appear and every line must parse — and a real-socket round trip against
// a server on an ephemeral port, including the /healthz 503 contract.

#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slow_trace.h"
#include "obs/telemetry_sampler.h"

namespace pa::obs {
namespace {

// Sends one request to 127.0.0.1:`port` and returns the raw response.
std::string HttpGet(uint16_t port, const std::string& request_line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  const std::string wire = request_line + "\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// Minimal Prometheus text-format check: every line is either a comment or
// `name[{labels}] value[ # exemplar]` with a sanitized name and a numeric
// value. Returns the metric names seen.
std::vector<std::string> ParsePrometheusText(const std::string& text) {
  std::vector<std::string> names;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "unexpected comment: " << line;
      continue;
    }
    size_t i = 0;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_' || line[0] == ':')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) {
      ADD_FAILURE() << "no metric name: " << line;
      continue;
    }
    names.push_back(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unterminated labels: " << line;
        continue;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      ADD_FAILURE() << "no value separator: " << line;
      continue;
    }
    // The value must parse as a number (NaN/±Inf allowed by the format).
    const std::string rest = line.substr(i + 1);
    const size_t exemplar = rest.find(" # ");
    const std::string value =
        exemplar == std::string::npos ? rest : rest.substr(0, exemplar);
    EXPECT_FALSE(value.empty()) << line;
    size_t parsed = 0;
    (void)std::stod(value, &parsed);  // Throws → test aborts with a clue.
    EXPECT_EQ(parsed, value.size()) << line;
  }
  return names;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& needle) {
  for (const std::string& n : names) {
    if (n == needle || n.rfind(needle + "_", 0) == 0) return true;
  }
  return false;
}

TEST(Route, MethodAndPathDispatch) {
  HealthRegistry::Global().Clear();
  const auto post = internal::Route("POST", "/metrics");
  EXPECT_EQ(post.status, 405);
  const auto missing = internal::Route("GET", "/nope");
  EXPECT_EQ(missing.status, 404);

  const auto varz = internal::Route("GET", "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_NE(varz.body.find("\"counters\""), std::string::npos);

  const auto healthz = internal::Route("GET", "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(Route, HealthzAnswers503OnlyWhenFailed) {
  HealthRegistry::Global().Clear();
  HealthRegistry::Global().Set("x", HealthStatus::kDegraded, "meh");
  EXPECT_EQ(internal::Route("GET", "/healthz").status, 200);
  HealthRegistry::Global().Set("x", HealthStatus::kFailed, "dead");
  const auto r = internal::Route("GET", "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\":\"failed\""), std::string::npos);
  HealthRegistry::Global().Clear();
}

TEST(Route, MetricsCoversEveryRegistryInstrument) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.expo.counter").Add(5);
  registry.GetGauge("test.expo.gauge").Set(-2.5);
  Histogram& h = registry.GetHistogram("test.expo.hist");
  for (int i = 0; i < 100; ++i) h.Record(100.0);
  h.RecordWithExemplar(5000.0, 77);
  HealthRegistry::Global().Clear();
  HealthRegistry::Global().Set("comp", HealthStatus::kOk);

  const auto r = internal::Route("GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type.rfind("text/plain", 0), 0u);
  const std::vector<std::string> names = ParsePrometheusText(r.body);

  // Every instrument in the registry snapshot must be exposed (modulo name
  // sanitization) — the acceptance contract for /metrics.
  const auto snap = registry.TakeSnapshot();
  auto sanitized = [](std::string name) {
    for (char& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        c = '_';
      }
    }
    return name;
  };
  for (const auto& [name, v] : snap.counters) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  for (const auto& [name, v] : snap.gauges) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  for (const auto& [name, v] : snap.histograms) {
    EXPECT_TRUE(Contains(names, sanitized(name))) << name;
  }
  // Health rides along as a gauge, and the exemplar links the tail bucket
  // to span 77 in OpenMetrics syntax.
  EXPECT_TRUE(Contains(names, "pa_health_status"));
  EXPECT_NE(r.body.find("# {span_id=\"77\"}"), std::string::npos);
  // Histogram samples: cumulative buckets, +Inf terminal, sum and count.
  EXPECT_NE(r.body.find("test_expo_hist_bucket{le=\"+Inf\"} 101"),
            std::string::npos);
  EXPECT_NE(r.body.find("test_expo_hist_count 101"), std::string::npos);

  registry.Unregister("test.expo.counter", nullptr);
  registry.Unregister("test.expo.gauge", nullptr);
  registry.Unregister("test.expo.hist", nullptr);
  HealthRegistry::Global().Clear();
}

TEST(RenderHttpResponse, StatusLineHeadersAndBody) {
  internal::HttpResponse r;
  r.status = 404;
  r.content_type = "text/plain";
  r.body = "nope\n";
  const std::string wire = internal::RenderHttpResponse(r);
  EXPECT_EQ(wire.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nnope\n"), std::string::npos);
}

TEST(ExpositionServer, ServesOverARealSocket) {
  auto& registry = MetricRegistry::Global();
  registry.GetCounter("test.expo.live").Add(3);
  HealthRegistry::Global().Clear();

  ExpositionServer server;
  ASSERT_TRUE(server.Start(0));  // Ephemeral port.
  ASSERT_NE(server.port(), 0);
  EXPECT_FALSE(server.Start(0));  // Already running.

  const std::string metrics = HttpGet(server.port(), "GET /metrics HTTP/1.1");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("test_expo_live 3"), std::string::npos);

  const std::string healthz = HttpGet(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);

  HealthRegistry::Global().Set("broken", HealthStatus::kFailed, "boom");
  const std::string sick = HttpGet(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(sick.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(sick.find("boom"), std::string::npos);
  HealthRegistry::Global().Clear();

  // Query strings are stripped; bad request lines answer 400.
  const std::string q = HttpGet(server.port(), "GET /varz?pretty=1 HTTP/1.1");
  EXPECT_EQ(q.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const std::string bad = HttpGet(server.port(), "GARBAGE");
  EXPECT_EQ(bad.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
  registry.Unregister("test.expo.live", nullptr);
}

TEST(Route, SlowzServesTheReservoirJson) {
  SlowTraceReservoir::Global().Clear();
  const auto empty = internal::Route("GET", "/slowz");
  EXPECT_EQ(empty.status, 200);
  EXPECT_EQ(empty.content_type, "application/json");
  EXPECT_NE(empty.body.find("\"traces\":[]"), std::string::npos);

  SetRequestTracingEnabled(true);
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin("test.expo.request");
  ASSERT_TRUE(ctx.active());
  reservoir.End(ctx, TraceClockNs() + 2'000'000);
  const auto r = internal::Route("GET", "/slowz");
  EXPECT_NE(r.body.find("\"trace\":\"" + TraceIdHex(ctx.trace_id) + "\""),
            std::string::npos)
      << r.body;
  SlowTraceReservoir::Global().Clear();
}

TEST(ExpositionServer, PublishesItsBoundPortAsAGauge) {
  ExpositionServer server;
  ASSERT_TRUE(server.Start(0));
  const auto snap = MetricRegistry::Global().TakeSnapshot();
  const auto it = snap.gauges.find("obs.exposition.port");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(static_cast<uint16_t>(it->second), server.port());
  // /varz (a registry snapshot) therefore carries the port too.
  const std::string varz = HttpGet(server.port(), "GET /varz HTTP/1.1");
  EXPECT_NE(varz.find("\"obs.exposition.port\""), std::string::npos);
  server.Stop();
  // Unregistered on Stop: a dead server must not advertise a port.
  const auto after = MetricRegistry::Global().TakeSnapshot();
  EXPECT_EQ(after.gauges.count("obs.exposition.port"), 0u);
}

// --- Adversarial clients -------------------------------------------------
//
// The exposition server is one thread handling one connection at a time, so
// a hostile or broken scraper must never wedge it: a stalled partial
// request times out, an oversized request line is rejected at the byte cap,
// and in both cases the *next* well-formed scrape succeeds.

// Connects and sends `partial` without ever finishing the request.
int ConnectAndStall(uint16_t port, const std::string& partial) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  if (!partial.empty()) {
    (void)send(fd, partial.data(), partial.size(), 0);
  }
  return fd;
}

TEST(ExpositionServerAdversarial, SlowLorisTimesOutAndServerRecovers) {
  ExpositionServerConfig config;
  config.recv_timeout_ms = 200;  // Fast timeout so the test stays quick.
  ExpositionServer server;
  ASSERT_TRUE(server.Start(config));

  const auto t0 = std::chrono::steady_clock::now();
  // Half a request line, then silence: the read times out, the connection
  // is answered 400 and closed instead of holding the listener hostage.
  const int loris = ConnectAndStall(server.port(), "GET /met");
  ASSERT_GE(loris, 0);
  char buf[512];
  std::string answer;
  ssize_t n;
  while ((n = recv(loris, buf, sizeof(buf), 0)) > 0) {
    answer.append(buf, static_cast<size_t>(n));
  }
  close(loris);
  const auto held = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(answer.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << answer;
  // Cut off by the recv timeout, not by the peer finishing: well under the
  // default 5s but at least the configured 200ms.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(held)
                .count(),
            3000);

  // The listener thread survived and serves the next scrape.
  const std::string metrics = HttpGet(server.port(), "GET /metrics HTTP/1.1");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  server.Stop();
}

TEST(ExpositionServerAdversarial, OversizedRequestLineIsRejectedAtTheCap) {
  ExpositionServerConfig config;
  config.max_request_bytes = 1024;
  config.recv_timeout_ms = 5000;  // Rejection must come from the cap.
  ExpositionServer server;
  ASSERT_TRUE(server.Start(config));

  const auto t0 = std::chrono::steady_clock::now();
  // 4 KiB of request-line with no terminator: the server stops reading at
  // the cap and answers 400 immediately instead of buffering forever.
  const std::string flood = "GET /" + std::string(4096, 'a');
  const int fd = ConnectAndStall(server.port(), flood);
  ASSERT_GE(fd, 0);
  char buf[512];
  std::string answer;
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    answer.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const auto held = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(answer.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << answer;
  // Rejected on receipt (cap), not after the 5s recv timeout.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(held)
                .count(),
            3000);

  const std::string healthz = HttpGet(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(healthz.rfind("HTTP/1.1", 0), 0u);
  server.Stop();
}

TEST(ExpositionServerAdversarial, ConcurrentScrapesDuringSamplerFlush) {
  // Scrapes race the TelemetrySampler's registry snapshots and live metric
  // updates; under TSan (tier1.sh runs this binary with it) any unguarded
  // shared state in the snapshot/exposition path gets flagged.
  auto& registry = MetricRegistry::Global();
  Counter& churn = registry.GetCounter("test.expo.churn");

  const std::string sink =
      ::testing::TempDir() + "/expo_concurrent_timeseries.ndjson";
  TelemetrySampler sampler(registry);
  TelemetrySampler::Options options;
  options.period_ms = 1;  // Flush as fast as possible.
  options.sink_path = sink;
  ASSERT_TRUE(sampler.Start(options));

  ExpositionServer server;
  ASSERT_TRUE(server.Start(0));

  std::atomic<bool> stop{false};
  std::thread writer([&churn, &stop] {
    while (!stop.load(std::memory_order_relaxed)) churn.Increment();
  });

  constexpr int kScrapers = 3;
  constexpr int kScrapesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  const char* kPaths[] = {"GET /metrics HTTP/1.1", "GET /varz HTTP/1.1",
                          "GET /slowz HTTP/1.1"};
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&failures, &server, &kPaths, t] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const std::string response =
            HttpGet(server.port(), kPaths[(t + i) % 3]);
        if (response.rfind("HTTP/1.1 200 OK\r\n", 0) != 0) ++failures;
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  sampler.Stop();
  server.Stop();
  registry.Unregister("test.expo.churn", nullptr);
  std::remove(sink.c_str());
}

}  // namespace
}  // namespace pa::obs
