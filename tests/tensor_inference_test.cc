// The graph-free inference fast path: InferenceModeScope semantics,
// bit-identity of every op against the graph-building path (including the
// packed MatMul and the exact-zero skip), buffer-pool recycling and
// full-overwrite discipline (NaN poison), eager graph release after
// Backward(), and thread-safety of the thread-local pool under the shared
// worker pool.

#include <array>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/lstm.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pa::tensor {
namespace {

Tensor RandomTensor(Shape shape, util::Rng& rng, bool requires_grad = false,
                    bool with_zeros = false) {
  std::vector<float> data(static_cast<size_t>(shape.numel()));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    // Exact zeros exercise the MatMul zero-skip on both paths.
    if (with_zeros && i % 5 == 0) data[i] = 0.0f;
  }
  return Tensor::FromData(shape, std::move(data), requires_grad);
}

Tensor PositiveTensor(Shape shape, util::Rng& rng) {
  std::vector<float> data(static_cast<size_t>(shape.numel()));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.Uniform() + 0.1);
  }
  return Tensor::FromData(shape, std::move(data));
}

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    return ::testing::AssertionFailure()
           << "shape mismatch " << a.shape().ToString() << " vs "
           << b.shape().ToString();
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<size_t>(a.numel()) * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "data bits differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(InferenceModeScopeTest, ActivationNestingAndOverride) {
  EXPECT_FALSE(InferenceModeScope::Active());
  {
    InferenceModeScope outer;
    EXPECT_TRUE(InferenceModeScope::Active());
    {
      InferenceModeScope inner;  // Nested scope is a no-op, not a crash.
      EXPECT_TRUE(InferenceModeScope::Active());
    }
    EXPECT_TRUE(InferenceModeScope::Active());
    {
      internal::ScopedInferenceDisable disable;
      EXPECT_FALSE(InferenceModeScope::Active());
    }
    EXPECT_TRUE(InferenceModeScope::Active());
  }
  EXPECT_FALSE(InferenceModeScope::Active());
}

TEST(InferenceModeScopeTest, ScopeIsPerThread) {
  InferenceModeScope scope;
  ASSERT_TRUE(InferenceModeScope::Active());
  bool active_on_worker = true;
  std::thread probe([&] { active_on_worker = InferenceModeScope::Active(); });
  probe.join();
  EXPECT_FALSE(active_on_worker);
}

TEST(InferenceModeScopeTest, ResultsCarryNoGraph) {
  util::Rng rng(1);
  Tensor a = RandomTensor({3, 4}, rng, /*requires_grad=*/true);
  Tensor b = RandomTensor({3, 4}, rng, /*requires_grad=*/true);
  InferenceModeScope scope;
  Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty());
  EXPECT_EQ(c.impl()->backward_fn, nullptr);
  EXPECT_TRUE(c.impl()->pooled);
  // Backward through an inference-mode scalar is a no-op, not a crash.
  Tensor s = Sum(c);
  s.Backward();
  EXPECT_EQ(a.grad_vector(), std::vector<float>(12, 0.0f));
}

// Every op, graph path vs inference path, bit for bit. The inference pass
// runs with NaN poison on acquired buffers and is repeated so the second
// round consumes recycled (previously dirtied) capacity: any element an op
// failed to overwrite would surface as a NaN mismatch.
TEST(InferenceOpsTest, AllOpsBitIdenticalToGraphPath) {
  util::Rng rng(7);
  Tensor a = RandomTensor({4, 6}, rng, /*requires_grad=*/true,
                          /*with_zeros=*/true);
  Tensor b = RandomTensor({4, 6}, rng, false, true);
  Tensor row = RandomTensor({1, 6}, rng);
  Tensor scalar = RandomTensor({1, 1}, rng);
  Tensor pos = PositiveTensor({4, 6}, rng);
  Tensor m1 = RandomTensor({1, 5}, rng, false, true);
  Tensor m4 = RandomTensor({4, 5}, rng, false, true);
  Tensor k5 = RandomTensor({5, 7}, rng, false, true);
  const std::vector<int> targets = {1, 0, 5, 2};
  const std::vector<int> indices = {3, 0, 3, 1};

  auto run_all = [&]() {
    std::vector<Tensor> outs;
    outs.push_back(Add(a, b));
    outs.push_back(Add(a, row));
    outs.push_back(Add(a, scalar));
    outs.push_back(Sub(a, b));
    outs.push_back(Mul(a, row));
    outs.push_back(Scale(a, 1.7f));
    outs.push_back(AddScalar(a, -0.3f));
    outs.push_back(MatMul(m1, k5));  // m == 1: zeroed-buffer tile path.
    outs.push_back(MatMul(m4, k5));  // m >= 2: packed fast path.
    outs.push_back(Transpose(a));
    outs.push_back(Sigmoid(a));
    outs.push_back(Tanh(a));
    outs.push_back(Relu(a));
    outs.push_back(Exp(a));
    outs.push_back(Log(pos));
    outs.push_back(Square(a));
    outs.push_back(Softmax(a));
    outs.push_back(LogSoftmax(a));
    outs.push_back(NllLoss(LogSoftmax(a), targets));
    outs.push_back(CrossEntropyLoss(a, targets));
    outs.push_back(ConcatCols({a, b}));
    outs.push_back(ConcatRows({a, b}));
    outs.push_back(SliceCols(a, 1, 3));
    outs.push_back(SliceRows(a, 1, 2));
    outs.push_back(Rows(a, indices));
    outs.push_back(Sum(a));
    outs.push_back(Mean(a));
    outs.push_back(SumRows(a));
    return outs;
  };

  const std::vector<Tensor> reference = run_all();
  internal::BufferPool::ThisThread().set_debug_poison(true);
  for (int round = 0; round < 2; ++round) {
    std::vector<Tensor> fast;
    {
      InferenceModeScope scope;
      fast = run_all();
    }
    ASSERT_EQ(reference.size(), fast.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(BitIdentical(reference[i], fast[i]))
          << "op #" << i << " round " << round;
      EXPECT_FALSE(fast[i].requires_grad()) << "op #" << i;
      EXPECT_TRUE(fast[i].impl()->parents.empty()) << "op #" << i;
    }
    // `fast` dies here: its pooled buffers go back to the freelist so round
    // 1 re-acquires dirtied capacity.
  }
  internal::BufferPool::ThisThread().set_debug_poison(false);
}

TEST(InferenceOpsTest, PackedMatMulMatchesAcrossShapes) {
  util::Rng rng(11);
  internal::BufferPool::ThisThread().set_debug_poison(true);
  // k values straddle the 8-float pack stride; zeros exercise the skip.
  for (const auto& [m, k, n] : std::vector<std::array<int, 3>>{
           {2, 3, 4}, {3, 8, 5}, {4, 13, 9}, {8, 16, 24}, {5, 1, 7}}) {
    Tensor a = RandomTensor({m, k}, rng, false, /*with_zeros=*/true);
    Tensor b = RandomTensor({k, n}, rng, false, true);
    Tensor reference = MatMul(a, b);
    Tensor fast;
    {
      InferenceModeScope scope;
      fast = MatMul(a, b);
    }
    EXPECT_TRUE(BitIdentical(reference, fast))
        << "m=" << m << " k=" << k << " n=" << n;
  }
  internal::BufferPool::ThisThread().set_debug_poison(false);
}

TEST(InferenceOpsTest, FactoriesPoolUnderScope) {
  InferenceModeScope scope;
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_TRUE(z.impl()->pooled);
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data()[i], 0.0f);
  Tensor f = Tensor::Full({2, 3}, 2.5f);
  EXPECT_TRUE(f.impl()->pooled);
  for (int64_t i = 0; i < f.numel(); ++i) EXPECT_EQ(f.data()[i], 2.5f);
  // Trainable leaves are never pooled, even inside a scope.
  Tensor w = Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  EXPECT_FALSE(w.impl()->pooled);
}

TEST(BufferPoolTest, RecyclesCapacityAcrossForwardPasses) {
  util::Rng rng(3);
  Tensor a = RandomTensor({8, 8}, rng);
  Tensor b = RandomTensor({8, 8}, rng);
  internal::BufferPool& pool = internal::BufferPool::ThisThread();
  pool.Trim();
  const uint64_t reuses_before = pool.stats().reuses;
  const uint64_t acquires_before = pool.stats().acquires;
  {
    InferenceModeScope scope;
    for (int i = 0; i < 10; ++i) {
      // Add acquires one pooled buffer; Tanh binds the rvalue overload and
      // overwrites the Add temporary in place (no acquire of its own).
      Tensor c = Tanh(Add(a, b));
    }
  }
  EXPECT_EQ(pool.stats().acquires - acquires_before, 10u);
  // After the first iteration every acquire is served from the freelist.
  EXPECT_GE(pool.stats().reuses - reuses_before, 9u);
  EXPECT_GT(pool.cached_buffers(), 0u);
  pool.Trim();
  EXPECT_EQ(pool.cached_buffers(), 0u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

// FlushStatsToRegistry publishes deltas-since-last-flush: recycling done
// between two flushes must show up in the process-wide counters exactly
// once, and a flush with no intervening pool activity must add nothing.
TEST(BufferPoolTest, FlushStatsPublishesDeltasToRegistry) {
  auto& registry = obs::MetricRegistry::Global();
  internal::BufferPool& pool = internal::BufferPool::ThisThread();
  pool.FlushStatsToRegistry();  // Drain tallies from earlier tests.

  auto counter_at = [&registry](const char* name) -> uint64_t {
    const auto snap = registry.TakeSnapshot();
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const uint64_t hits0 = counter_at("tensor.pool.hits");
  const uint64_t misses0 = counter_at("tensor.pool.misses");
  const uint64_t releases0 = counter_at("tensor.pool.releases");

  util::Rng rng(5);
  Tensor a = RandomTensor({8, 8}, rng);
  Tensor b = RandomTensor({8, 8}, rng);
  pool.Trim();  // Next acquire must miss; the following nine recycle.
  {
    InferenceModeScope scope;
    for (int i = 0; i < 10; ++i) {
      Tensor c = Tanh(Add(a, b));
    }
  }

  // The tallies stay thread-local until flushed.
  EXPECT_EQ(counter_at("tensor.pool.hits"), hits0);
  pool.FlushStatsToRegistry();
  EXPECT_GE(counter_at("tensor.pool.hits") - hits0, 9u);
  EXPECT_GE(counter_at("tensor.pool.misses") - misses0, 1u);
  EXPECT_GE(counter_at("tensor.pool.releases") - releases0, 10u);
  const auto snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.gauges.count("tensor.pool.high_water_bytes"), 1u);
  EXPECT_GT(snap.gauges.at("tensor.pool.high_water_bytes"), 0.0);

  // Idempotent when nothing happened in between.
  const uint64_t hits1 = counter_at("tensor.pool.hits");
  const uint64_t misses1 = counter_at("tensor.pool.misses");
  pool.FlushStatsToRegistry();
  EXPECT_EQ(counter_at("tensor.pool.hits"), hits1);
  EXPECT_EQ(counter_at("tensor.pool.misses"), misses1);
}

TEST(InferenceOpsTest, RvalueOverloadRecyclesDyingTempInPlace) {
  util::Rng rng(11);
  Tensor a = RandomTensor({3, 5}, rng);
  Tensor b = RandomTensor({3, 5}, rng);
  InferenceModeScope scope;

  // Reference values through the allocating (const&) path.
  Tensor sum = Add(a, b);
  Tensor ref = Tanh(sum);  // sum is a named lvalue: no reuse.
  EXPECT_NE(ref.impl(), sum.impl());

  // The temporary chain must produce bit-identical values.
  Tensor chained = Tanh(Add(a, b));
  EXPECT_EQ(chained.impl()->data, ref.impl()->data);

  // A named tensor bound by const& is never clobbered...
  const std::vector<float> sum_snapshot = sum.impl()->data;
  (void)Sigmoid(sum);
  EXPECT_EQ(sum.impl()->data, sum_snapshot);

  // ...and an explicit move of a *shared* tensor falls back to allocating:
  // the surviving owner keeps its values.
  Tensor shared = Add(a, b);
  Tensor keep = shared;
  Tensor moved = Sigmoid(std::move(shared));
  EXPECT_NE(moved.impl(), keep.impl());
  EXPECT_EQ(keep.impl()->data, sum_snapshot);
}

TEST(InferenceOpsTest, RvalueOverloadStillBuildsGraphWhenTraining) {
  util::Rng rng(12);
  Tensor w = RandomTensor({2, 2}, rng, /*requires_grad=*/true);
  Tensor x = RandomTensor({2, 2}, rng);
  // Rvalue chain outside any scope: autograd must be fully wired.
  Tensor y = Tanh(Add(Mul(x, w), x));
  ASSERT_NE(y.impl()->backward_fn, nullptr);
  Tensor loss = Sum(Square(y));
  loss.Backward();
  float gnorm = 0.0f;
  for (float g : w.grad_vector()) gnorm += g * g;
  EXPECT_GT(gnorm, 0.0f);
  // No in-place aliasing happened: the chain's intermediate results are
  // distinct nodes (Mul's parent buffer must survive for its backward).
  EXPECT_NE(y.impl(), x.impl());
}

TEST(BufferPoolTest, OversizedReleaseIsDiscarded) {
  internal::BufferPool& pool = internal::BufferPool::ThisThread();
  pool.Trim();
  const uint64_t discards_before = pool.stats().discards;
  // 5M floats = 20 MiB > the 16 MiB per-thread cap.
  std::vector<float> huge = pool.Acquire(size_t{5} << 20);
  pool.Release(std::move(huge));
  EXPECT_EQ(pool.stats().discards, discards_before + 1);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(EagerReleaseTest, InteriorNodeExpiresAfterBackward) {
  Tensor w = Tensor::FromData({1, 1}, {2.0f}, /*requires_grad=*/true);
  Tensor interior = Square(w);
  Tensor loss = Sum(interior);
  std::weak_ptr<internal::TensorImpl> watch = interior.impl();
  loss.Backward();
  EXPECT_FLOAT_EQ(w.grad_at(0, 0), 4.0f);
  EXPECT_EQ(loss.impl()->backward_fn, nullptr);
  EXPECT_TRUE(loss.impl()->parents.empty());
  // The root is still alive; only our direct handle keeps `interior` now,
  // because Backward() dropped the loss -> interior edge.
  interior = Tensor();
  EXPECT_TRUE(watch.expired());
}

TEST(EagerReleaseTest, DeepChainTeardownAfterBackwardIsIterative) {
  Tensor x = Tensor::FromData({1, 1}, {0.5f}, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 50000; ++i) y = AddScalar(y, 1.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_at(0, 0), 1.0f);
  // With edges already dropped, releasing the root must not recurse down a
  // 50000-deep parent chain (it has none left).
  y = Tensor();
}

TEST(EagerReleaseTest, GradientsStillAccumulateAcrossRebuiltGraphs) {
  Tensor w = Tensor::FromData({1, 1}, {3.0f}, /*requires_grad=*/true);
  for (int i = 0; i < 2; ++i) {
    Tensor loss = Square(w);
    loss.Backward();
  }
  EXPECT_FLOAT_EQ(w.grad_at(0, 0), 12.0f);  // 2 * (2 * w).
}

// Thread-local pools + per-worker scopes under the shared util::ThreadPool:
// every worker runs an LSTM-shaped forward over shared read-only weights and
// must reproduce the serial inference result bit for bit. Run under TSan in
// scripts/tier1.sh.
TEST(InferenceConcurrencyTest, PerWorkerScopesAreRaceFreeAndDeterministic) {
  util::Rng rng(17);
  nn::LstmCell cell(12, 16, rng);
  nn::Linear head(16, 30, rng);
  const int kItems = 24;
  std::vector<std::vector<int>> inputs(kItems);
  for (int i = 0; i < kItems; ++i) {
    for (int t = 0; t < 6; ++t) inputs[i].push_back((i * 7 + t * 3) % 30);
  }
  util::Rng emb_rng(23);
  nn::Embedding embedding(30, 12, emb_rng);

  auto forward_item = [&](int i) {
    nn::LstmState state = cell.InitialState(1);
    for (int id : inputs[i]) {
      state = cell.Forward(embedding.Forward({id}), state);
    }
    Tensor logits = head.Forward(state.h);
    return std::vector<float>(logits.data(), logits.data() + logits.numel());
  };

  std::vector<std::vector<float>> expected(kItems);
  {
    InferenceModeScope scope;
    for (int i = 0; i < kItems; ++i) expected[i] = forward_item(i);
  }

  util::SetThreadCount(4);
  std::vector<std::vector<float>> parallel = util::GlobalPool().ParallelMap(
      int64_t{0}, int64_t{kItems}, /*grain=*/1, [&](int64_t i) {
        // Scopes are thread-local: each worker enters its own.
        InferenceModeScope scope;
        return forward_item(static_cast<int>(i));
      });
  util::SetThreadCount(0);

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(expected[i], parallel[i]) << "item " << i;
  }
}

// Pooled tensors created on workers may be destroyed on the main thread (and
// vice versa); the storage must simply migrate between thread-local pools.
TEST(InferenceConcurrencyTest, PooledTensorsMigrateBetweenThreads) {
  util::Rng rng(29);
  Tensor a = RandomTensor({6, 6}, rng);
  util::SetThreadCount(3);
  std::vector<Tensor> results = util::GlobalPool().ParallelMap(
      int64_t{0}, int64_t{32}, /*grain=*/1, [&](int64_t i) {
        InferenceModeScope scope;
        return Scale(Tanh(a), static_cast<float>(i));
      });
  util::SetThreadCount(0);
  for (auto& t : results) EXPECT_TRUE(t.impl()->pooled);
  results.clear();  // Worker-created buffers released into this thread's pool.
  EXPECT_GE(internal::BufferPool::ThisThread().stats().releases, 1u);
}

}  // namespace
}  // namespace pa::tensor
