// The in-process sharded serving layer: consistent-hash ring stability and
// minimal K→K+1 redistribution, per-shard session isolation, typed shed
// responses under overload, and zero-downtime cross-shard model flips.

#include "net/sharded_engine.h"

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rec/registry.h"

namespace pa::net {
namespace {

constexpr int64_t kHour = 3600;

std::vector<poi::CheckinSequence> CycleData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 4, i * 3 * kHour, false});
    }
  }
  return train;
}

std::shared_ptr<const serve::LoadedModel> FittedModel(
    const std::string& method, uint64_t seed = 7) {
  auto loaded = std::make_shared<serve::LoadedModel>();
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 8; ++i) coords.push_back({40.0 + 0.01 * i, -100.0});
  loaded->pois = std::make_shared<poi::PoiTable>(std::move(coords));
  auto model = rec::MakeRecommender(method, seed, 0.2);
  model->Fit(CycleData(3, 40), *loaded->pois);
  loaded->name = model->name();
  loaded->model = std::move(model);
  return loaded;
}

TEST(ShardRingTest, AssignmentIsStableAndCoversAllShards) {
  const ShardRing a(4), b(4);
  std::set<int> seen;
  for (int32_t user = 0; user < 5000; ++user) {
    const int shard = a.ShardForUser(user);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    // Two independently built rings with the same parameters agree: the
    // mapping is a pure function of (num_shards, vnodes), never of
    // construction order or process state.
    EXPECT_EQ(shard, b.ShardForUser(user));
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardRingTest, ShardAssignmentIsRoughlyBalanced) {
  const ShardRing ring(4);
  std::vector<int> counts(4, 0);
  const int users = 20000;
  for (int32_t user = 0; user < users; ++user) {
    ++counts[static_cast<size_t>(ring.ShardForUser(user))];
  }
  for (int shard = 0; shard < 4; ++shard) {
    // 64 vnodes/shard keeps every shard within a loose 2x band of fair
    // share — enough that no shard's SessionStore sees pathological load.
    EXPECT_GT(counts[shard], users / 8) << "shard " << shard;
    EXPECT_LT(counts[shard], users / 2) << "shard " << shard;
  }
}

TEST(ShardRingTest, GrowingTheRingMovesFewUsers) {
  const ShardRing before(4), after(5);
  const int users = 20000;
  int moved = 0;
  for (int32_t user = 0; user < users; ++user) {
    if (before.ShardForUser(user) != after.ShardForUser(user)) ++moved;
  }
  // Consistent hashing: growing 4→5 shards should move ~1/5 of the users;
  // modulo hashing would move ~4/5. The bound splits the difference with
  // slack for vnode variance.
  EXPECT_LT(moved, users * 2 / 5);
  EXPECT_GT(moved, 0);
}

TEST(ShardedEngineTest, TopKMatchesDirectSession) {
  auto model = FittedModel("LSTM");
  ShardedEngineConfig config;
  config.num_shards = 2;
  ShardedEngine engine(model, config);

  auto direct = model->model->NewSession(0);
  for (int i = 0; i < 6; ++i) {
    const poi::Checkin c{0, i % 4, i * 3 * kHour, false};
    ASSERT_EQ(engine.Observe(c), serve::RequestStatus::kOk);
    direct->Observe(c);
  }
  const int64_t next = 6 * 3 * kHour;
  const serve::TopKResponse response = engine.TopK({0, 10, next});
  ASSERT_EQ(response.status, serve::RequestStatus::kOk);
  EXPECT_EQ(response.pois, direct->TopK(10, next));
}

TEST(ShardedEngineTest, SessionsLiveOnlyOnTheOwningShard) {
  auto model = FittedModel("FPMC-LR");
  ShardedEngineConfig config;
  config.num_shards = 4;
  ShardedEngine engine(model, config);

  const int users = 32;
  std::vector<int> expected(4, 0);
  for (int32_t user = 0; user < users; ++user) {
    ++expected[static_cast<size_t>(engine.ShardForUser(user))];
    engine.Observe({user, 1, kHour, false});
  }
  uint64_t total = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const ShardStats stats = engine.StatsForShard(shard);
    // Every user's session sits on exactly the ring-assigned shard: the
    // per-shard stores are fully isolated partitions, not caches of a
    // shared pool.
    EXPECT_EQ(stats.engine.live_sessions,
              static_cast<uint64_t>(expected[shard]))
        << "shard " << shard;
    total += stats.engine.live_sessions;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(users));
}

TEST(ShardedEngineTest, StrictTopKOnColdUserReturnsUnknownUser) {
  auto model = FittedModel("FPMC-LR");
  ShardedEngineConfig config;
  config.num_shards = 2;
  ShardedEngine engine(model, config);

  serve::TopKRequest request;
  request.user = 77;
  request.k = 5;
  request.strict = true;
  const serve::TopKResponse response = engine.TopK(request);
  EXPECT_EQ(response.status, serve::RequestStatus::kUnknownUser);
  EXPECT_TRUE(response.pois.empty());
  // A strict miss must not have instantiated a session for the cold user.
  EXPECT_EQ(engine.Stats().engine.live_sessions, 0u);

  // The same request without strict answers from the model prior.
  request.strict = false;
  EXPECT_EQ(engine.TopK(request).status, serve::RequestStatus::kOk);
}

TEST(ShardedEngineTest, OverloadShedsWithTypedStatusAndNothingIsLost) {
  auto model = FittedModel("LSTM");
  ShardedEngineConfig config;
  config.num_shards = 1;
  config.queue_capacity = 2;  // Tiny on purpose: force the shed path.
  ShardedEngine engine(model, config);
  engine.Observe({0, 1, kHour, false});

  // Blast requests far faster than one worker can drain a 2-deep queue:
  // a model forward costs 100s of microseconds, the enqueue costs ~1.
  const int total = 200;
  std::atomic<int> ok{0}, overloaded{0}, other{0}, done{0};
  for (int i = 0; i < total; ++i) {
    serve::TopKRequest request;
    request.user = 0;
    request.k = 5;
    request.next_timestamp = 2 * kHour;
    engine.TopKAsync(request, [&](serve::TopKResponse response) {
      switch (response.status) {
        case serve::RequestStatus::kOk: ok.fetch_add(1); break;
        case serve::RequestStatus::kOverloaded: overloaded.fetch_add(1); break;
        default: other.fetch_add(1); break;
      }
      done.fetch_add(1);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Exactly one callback per request — shed or served, never silently
  // dropped, never double-fired.
  ASSERT_EQ(done.load(), total);
  EXPECT_EQ(ok.load() + overloaded.load() + other.load(), total);
  EXPECT_GT(overloaded.load(), 0) << "a 2-deep queue must shed under a blast";
  EXPECT_GT(ok.load(), 0) << "admitted requests must still be served";
  EXPECT_EQ(other.load(), 0);

  const ShardStats stats = engine.Stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(overloaded.load()));
  // +1: the warm-up Observe was dispatched through the same queue.
  EXPECT_EQ(stats.dispatched + stats.shed, static_cast<uint64_t>(total) + 1);
}

TEST(ShardedEngineTest, ModelFlipUnderTrafficDropsNothing) {
  // Different methods so the flip is observable through model_name().
  auto before = FittedModel("LSTM");
  auto after = FittedModel("FPMC-LR");
  ShardedEngineConfig config;
  config.num_shards = 2;
  config.queue_capacity = 4096;  // Roomy: this test is about the flip...
  config.deadline_ms = 60'000;   // ...not about shedding or timeouts.
  ShardedEngine engine(before, config);
  ASSERT_EQ(engine.model_name(), before->name);

  std::atomic<bool> running{true};
  std::atomic<int> sent{0}, answered{0}, failed{0};
  std::thread traffic([&] {
    int32_t user = 0;
    while (running.load()) {
      serve::TopKRequest request;
      request.user = user++ % 8;
      request.k = 5;
      request.next_timestamp = 2 * kHour;
      sent.fetch_add(1);
      engine.TopKAsync(request, [&](serve::TopKResponse response) {
        if (response.status == serve::RequestStatus::kOk) {
          answered.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Let traffic flow, flip mid-stream, keep flowing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.SwapModel(after);
  EXPECT_EQ(engine.model_name(), after->name);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  running.store(false);
  traffic.join();

  // Drain: every in-flight callback fires before the engine dies.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (answered.load() + failed.load() < sent.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(answered.load() + failed.load(), sent.load());
  // Zero-downtime contract: a flip never drops or fails a request — every
  // request is answered kOk against whichever model owned its moment.
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(answered.load(), 0);

  // After the flip the sharded engine serves the new model's rankings.
  auto direct = after->model->NewSession(3);
  const serve::TopKResponse response = engine.TopK({3, 5, 2 * kHour});
  ASSERT_EQ(response.status, serve::RequestStatus::kOk);
  EXPECT_EQ(response.pois, direct->TopK(5, 2 * kHour));
}

TEST(ShardedEngineTest, PerShardMetricsRegisterUnderShardPrefixes) {
  auto model = FittedModel("FPMC-LR");
  ShardedEngineConfig config;
  config.num_shards = 2;
  {
    ShardedEngine engine(model, config);
    engine.Observe({0, 1, kHour, false});
    engine.TopK({0, 5, 2 * kHour});
    const auto snapshot = obs::MetricRegistry::Global().TakeSnapshot();
    for (const char* name :
         {"serve.shard0.requests", "serve.shard1.requests",
          "net.shard0.dispatched", "net.shard1.dispatched",
          "net.shard0.shed", "net.shard1.shed"}) {
      EXPECT_TRUE(snapshot.counters.count(name)) << "missing " << name;
    }
    EXPECT_TRUE(snapshot.gauges.count("net.shard0.queue_depth"));
    EXPECT_TRUE(snapshot.histograms.count("serve.shard0.latency_us"));
  }
  // Destruction unregisters: no dangling instrument pointers remain.
  const auto snapshot = obs::MetricRegistry::Global().TakeSnapshot();
  EXPECT_FALSE(snapshot.counters.count("serve.shard0.requests"));
  EXPECT_FALSE(snapshot.counters.count("net.shard0.dispatched"));
}

TEST(ShardedEngineTest, SingleShardKeepsUnshardedMetricNames) {
  auto model = FittedModel("FPMC-LR");
  ShardedEngineConfig config;
  config.num_shards = 1;
  ShardedEngine engine(model, config);
  engine.Observe({0, 1, kHour, false});
  engine.TopK({0, 5, 2 * kHour});
  const auto snapshot = obs::MetricRegistry::Global().TakeSnapshot();
  // Scrape compatibility: one shard serves under the classic names, so
  // moving the stdin loop behind the router changed no dashboards.
  EXPECT_TRUE(snapshot.counters.count("serve.requests"));
  EXPECT_TRUE(snapshot.histograms.count("serve.latency_us"));
  EXPECT_FALSE(snapshot.counters.count("serve.shard0.requests"));
}

}  // namespace
}  // namespace pa::net
