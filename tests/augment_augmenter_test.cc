#include "augment/augmenter.h"

#include <gtest/gtest.h>

namespace pa::augment {
namespace {

constexpr int64_t kHour = 3600;

/// Test double: imputes a fixed POI everywhere.
class ConstantAugmenter : public Augmenter {
 public:
  explicit ConstantAugmenter(int32_t poi) : poi_(poi) {}
  std::string name() const override { return "Constant"; }
  std::vector<int32_t> Impute(const MaskedSequence& masked) const override {
    return std::vector<int32_t>(
        static_cast<size_t>(poi::CountMissing(masked.timeline)), poi_);
  }

 private:
  int32_t poi_;
};

poi::CheckinSequence GappySequence() {
  // Gap of 9 hours -> two missing slots at 3-hour spacing.
  return {{0, 1, 0, false}, {0, 2, 9 * kHour, false}};
}

TEST(AugmenterTest, MakeMaskedSequenceBuildsTimeline) {
  MaskedSequence masked = MakeMaskedSequence(GappySequence(), 3 * kHour);
  EXPECT_EQ(masked.timeline.size(), 4u);
  EXPECT_EQ(poi::CountMissing(masked.timeline), 2);
  EXPECT_EQ(masked.observed.size(), 2u);
}

TEST(AugmenterTest, AugmentSequenceInsertsImputedCheckins) {
  ConstantAugmenter augmenter(7);
  poi::CheckinSequence out =
      AugmentSequence(augmenter, GappySequence(), 0, 3 * kHour);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].poi, 1);
  EXPECT_EQ(out[1].poi, 7);
  EXPECT_TRUE(out[1].imputed);
  EXPECT_EQ(out[1].timestamp, 3 * kHour);
  EXPECT_EQ(out[2].poi, 7);
  EXPECT_EQ(out[3].poi, 2);
  EXPECT_FALSE(out[3].imputed);
  EXPECT_TRUE(poi::IsChronological(out));
}

TEST(AugmenterTest, AugmentSequenceNoMissingReturnsInput) {
  ConstantAugmenter augmenter(7);
  poi::CheckinSequence dense = {{0, 1, 0, false}, {0, 2, kHour, false}};
  poi::CheckinSequence out = AugmentSequence(augmenter, dense, 0, 3 * kHour);
  EXPECT_EQ(out.size(), 2u);
}

TEST(AugmenterTest, AugmentSequencesSetsUserIds) {
  ConstantAugmenter augmenter(3);
  std::vector<poi::CheckinSequence> train(2);
  train[0] = GappySequence();
  train[1] = {{1, 0, 0, false}, {1, 0, 6 * kHour, false}};
  auto out = AugmentSequences(augmenter, train, 3 * kHour);
  ASSERT_EQ(out.size(), 2u);
  for (size_t u = 0; u < out.size(); ++u) {
    for (const poi::Checkin& c : out[u]) {
      EXPECT_EQ(c.user, static_cast<int32_t>(u));
    }
  }
  EXPECT_EQ(out[1].size(), 3u);  // One imputed slot in the 6-hour gap.
}

TEST(AugmenterTest, MaxMissingPerGapHonored) {
  ConstantAugmenter augmenter(7);
  poi::CheckinSequence sparse = {{0, 1, 0, false},
                                 {0, 2, 30 * kHour, false}};
  poi::CheckinSequence capped =
      AugmentSequence(augmenter, sparse, 0, 3 * kHour, 2);
  EXPECT_EQ(capped.size(), 4u);  // 2 observed + 2 imputed.
}

}  // namespace
}  // namespace pa::augment
