// Tests for the K-worst slow-trace reservoir: mint/append/end lifecycle,
// floor-based admission, eviction order, stale-span rejection, slot
// exhaustion, the /slowz JSON shape, and concurrent minting (run under TSan
// via tier1.sh).

#include "obs/slow_trace.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace pa::obs {
namespace {

// Every test drives the process-global reservoir (that is what the request
// path uses), so each starts from a cleared state.
class SlowTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetRequestTracingEnabled(true);
    SlowTraceReservoir::Global().Clear();
  }
  void TearDown() override { SlowTraceReservoir::Global().Clear(); }
};

TraceEvent MakeEvent(const char* name, uint64_t start_ns, uint64_t dur_ns,
                     uint64_t id, uint64_t trace_id, uint64_t parent_id) {
  TraceEvent e;
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.id = id;
  e.trace_id = trace_id;
  e.parent_id = parent_id;
  return e;
}

TEST_F(SlowTraceTest, BeginMintsActiveContextsWithDistinctIds) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext a = reservoir.Begin();
  const TraceContext b = reservoir.Begin();
  ASSERT_TRUE(a.active());
  ASSERT_TRUE(b.active());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.parent_span, 0u);  // The root span id.
  EXPECT_NE(a.parent_span, b.parent_span);
  // Trace ids stay above the slot-claim sentinel by construction.
  EXPECT_GE(a.trace_id, SlowTraceReservoir::kSlots);
  reservoir.Abort(a);
  reservoir.Abort(b);
}

TEST_F(SlowTraceTest, DisabledRequestTracingMintsNothing) {
  SetRequestTracingEnabled(false);
  EXPECT_FALSE(SlowTraceReservoir::Global().Begin().active());
  SetRequestTracingEnabled(true);
}

TEST_F(SlowTraceTest, EndCapturesTheTraceWithItsSpansAndRoot) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin("test.root");
  ASSERT_TRUE(ctx.active());
  reservoir.Append(ctx.trace_id, MakeEvent("child", 10, 5, 101, ctx.trace_id,
                                           ctx.parent_span));
  reservoir.End(ctx);

  const auto trace = reservoir.Find(ctx.trace_id);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->trace_id, ctx.trace_id);
  EXPECT_EQ(trace->root_span, ctx.parent_span);
  EXPECT_EQ(trace->spans_dropped, 0u);
  // The appended child plus the synthesized root span (recorded by End
  // through the normal span path, which routes back into the slot).
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_STREQ(trace->spans[0].name, "child");
  EXPECT_STREQ(trace->spans[1].name, "test.root");
  EXPECT_EQ(trace->spans[1].id, trace->root_span);
  EXPECT_EQ(trace->spans[1].parent_id, 0u);
}

TEST_F(SlowTraceTest, StaleAppendsAfterEndAreDiscarded) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin();
  ASSERT_TRUE(ctx.active());
  reservoir.End(ctx);
  // Work that outlived its request: must not land in the slot's next
  // occupant or resurrect the finished trace.
  reservoir.Append(ctx.trace_id,
                   MakeEvent("late", 1, 1, 999, ctx.trace_id, 0));
  const auto trace = reservoir.Find(ctx.trace_id);
  ASSERT_NE(trace, nullptr);
  for (const TraceEvent& e : trace->spans) {
    EXPECT_STRNE(e.name, "late");
  }
  // Double-End is a no-op, not a double-publish.
  reservoir.End(ctx);
  EXPECT_EQ(reservoir.Find(ctx.trace_id), trace);
}

TEST_F(SlowTraceTest, AbortFreesTheSlotWithoutPublishing) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin();
  ASSERT_TRUE(ctx.active());
  reservoir.Abort(ctx);
  EXPECT_EQ(reservoir.Find(ctx.trace_id), nullptr);
  // The slot is reusable: minting kSlots more must succeed.
  std::vector<TraceContext> minted;
  for (uint32_t i = 0; i < SlowTraceReservoir::kSlots; ++i) {
    minted.push_back(reservoir.Begin());
    ASSERT_TRUE(minted.back().active()) << i;
  }
  for (const TraceContext& c : minted) reservoir.Abort(c);
}

TEST_F(SlowTraceTest, ExhaustedSlotsYieldInactiveContexts) {
  auto& reservoir = SlowTraceReservoir::Global();
  std::vector<TraceContext> minted;
  for (uint32_t i = 0; i < SlowTraceReservoir::kSlots; ++i) {
    minted.push_back(reservoir.Begin());
    ASSERT_TRUE(minted.back().active()) << i;
  }
  // All in flight: the next mint degrades to "untraced", never blocks.
  EXPECT_FALSE(reservoir.Begin().active());
  reservoir.Abort(minted.back());
  EXPECT_TRUE(reservoir.Begin().active());
  for (const TraceContext& c : minted) reservoir.Abort(c);
}

TEST_F(SlowTraceTest, PerTraceSpanCapCountsInsteadOfGrowing) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin();
  ASSERT_TRUE(ctx.active());
  const size_t extra = 7;
  for (size_t i = 0; i < SlowTraceReservoir::kMaxSpansPerTrace + extra; ++i) {
    reservoir.Append(ctx.trace_id,
                     MakeEvent("s", i, 1, 100 + i, ctx.trace_id, 0));
  }
  reservoir.End(ctx);
  const auto trace = reservoir.Find(ctx.trace_id);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->spans.size(), SlowTraceReservoir::kMaxSpansPerTrace);
  // The root span arrived after the cap was hit, so it counts as dropped
  // alongside the overflow appends.
  EXPECT_EQ(trace->spans_dropped, extra + 1);
}

TEST_F(SlowTraceTest, ReservoirKeepsTheKWorstByTotalTime) {
  auto& reservoir = SlowTraceReservoir::Global();
  constexpr int kTraces = SlowTraceReservoir::kWorst + 4;
  // End traces with strictly increasing wall times: the first 4 must be
  // evicted, the slowest kWorst retained, floor = the fastest survivor.
  std::vector<uint64_t> ids;
  std::vector<uint64_t> totals;
  for (int i = 0; i < kTraces; ++i) {
    const TraceContext ctx = reservoir.Begin();
    ASSERT_TRUE(ctx.active());
    ids.push_back(ctx.trace_id);
    const uint64_t start = TraceClockNs();
    const uint64_t total = 1'000'000 + static_cast<uint64_t>(i) * 1'000'000;
    totals.push_back(total);
    reservoir.End(ctx, start + total);
  }
  const auto worst = reservoir.WorstTraces();
  ASSERT_EQ(worst.size(), static_cast<size_t>(SlowTraceReservoir::kWorst));
  // Worst first, and exactly the slowest kWorst of the submissions.
  for (size_t i = 1; i < worst.size(); ++i) {
    EXPECT_GE(worst[i - 1]->total_ns, worst[i]->total_ns);
  }
  std::set<uint64_t> retained;
  for (const auto& t : worst) retained.insert(t->trace_id);
  for (int i = 0; i < kTraces; ++i) {
    EXPECT_EQ(retained.count(ids[static_cast<size_t>(i)]),
              i < 4 ? 0u : 1u)
        << "trace " << i;
  }
  // End() measures from the slot's own Begin stamp, which predates our
  // TraceClockNs() read by a hair — so totals are lower bounds, and the
  // floor lands between the fastest survivor and the next rung up.
  EXPECT_GE(reservoir.floor_ns(), totals[4]);
  EXPECT_LT(reservoir.floor_ns(), totals[5]);
  // A completed trace at the floor is rejected without publication.
  const TraceContext fast = reservoir.Begin();
  ASSERT_TRUE(fast.active());
  reservoir.End(fast, TraceClockNs());  // ~0 ns total.
  EXPECT_EQ(reservoir.Find(fast.trace_id), nullptr);
}

TEST_F(SlowTraceTest, JsonCarriesTheWorstTracesWorstFirst) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext slow = reservoir.Begin("test.slow");
  ASSERT_TRUE(slow.active());
  reservoir.Append(slow.trace_id, MakeEvent("stage \"x\"", 5, 2, 55,
                                            slow.trace_id, slow.parent_span));
  const uint64_t start = TraceClockNs();
  reservoir.End(slow, start + 5'000'000);

  const std::string json = reservoir.Json();
  EXPECT_EQ(json.rfind("{\"k\":8,\"floor_us\":", 0), 0u) << json;
  EXPECT_NE(json.find("\"trace\":\"" + TraceIdHex(slow.trace_id) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"root\":" + std::to_string(slow.parent_span)),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);
  // Cleared: an empty reservoir still renders valid JSON.
  reservoir.Clear();
  EXPECT_EQ(reservoir.Json(), "{\"k\":8,\"floor_us\":0.000,\"traces\":[]}");
}

TEST_F(SlowTraceTest, SpansRecordedUnderAContextReachTheTraceBuffer) {
  auto& reservoir = SlowTraceReservoir::Global();
  const TraceContext ctx = reservoir.Begin("test.req");
  ASSERT_TRUE(ctx.active());
  {
    const TraceContextScope scope(ctx);
    PA_TRACE_SPAN("test.slowtrace.work");
  }
  reservoir.End(ctx, TraceClockNs() + 10'000'000);  // Force capture.
  const auto trace = reservoir.Find(ctx.trace_id);
  ASSERT_NE(trace, nullptr);
  bool found = false;
  for (const TraceEvent& e : trace->spans) {
    if (std::string(e.name) == "test.slowtrace.work") {
      found = true;
      EXPECT_EQ(e.parent_id, ctx.parent_span);
      EXPECT_EQ(e.trace_id, ctx.trace_id);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SlowTraceTest, ConcurrentMintAppendEndIsRaceFree) {
  auto& reservoir = SlowTraceReservoir::Global();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> captured{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reservoir, &captured, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const TraceContext ctx = reservoir.Begin();
        if (!ctx.active()) continue;  // Slots momentarily exhausted: fine.
        reservoir.Append(
            ctx.trace_id,
            MakeEvent("w", static_cast<uint64_t>(i), 1,
                      static_cast<uint64_t>(t * kPerThread + i + 1),
                      ctx.trace_id, ctx.parent_span));
        if (i % 3 == 0) {
          reservoir.Abort(ctx);
        } else {
          reservoir.End(ctx);
          ++captured;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(captured.load(), 0);
  // Readers race publication in the loop above; here the reservoir must be
  // internally consistent: every retained trace has a sane id and span set.
  for (const auto& trace : reservoir.WorstTraces()) {
    EXPECT_GE(trace->trace_id, SlowTraceReservoir::kSlots);
    EXPECT_LE(trace->spans.size(), SlowTraceReservoir::kMaxSpansPerTrace);
  }
}

}  // namespace
}  // namespace pa::obs
