// Tests for the training-health watchdog: NaN/Inf guards, the
// EWMA-vs-window-min divergence detector (DEGRADED → FAILED escalation,
// stage resets, recovery), health-registry publication, and the
// fault-injected end-to-end contract — an absurd learning rate must abort
// PA-Seq2Seq training and flip /healthz to FAILED instead of finishing a
// run full of NaN parameters.

#include "augment/train_watchdog.h"

#include <cmath>
#include <limits>

#include "augment/pa_seq2seq.h"
#include "gtest/gtest.h"
#include "obs/health.h"
#include "poi/poi_table.h"

namespace pa::augment {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

obs::HealthStatus ComponentStatus(const std::string& name) {
  for (const auto& c : obs::HealthRegistry::Global().Components()) {
    if (c.name == name) return c.status;
  }
  ADD_FAILURE() << "component not registered: " << name;
  return obs::HealthStatus::kOk;
}

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::HealthRegistry::Global().Clear(); }
  void TearDown() override { obs::HealthRegistry::Global().Clear(); }
};

TEST_F(WatchdogTest, StartsVisibleAsOk) {
  TrainWatchdog watchdog;
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kOk);
  EXPECT_FALSE(watchdog.failed());
}

TEST_F(WatchdogTest, HealthyWatchdogDeregistersOnDestruction) {
  { TrainWatchdog watchdog; }
  EXPECT_TRUE(obs::HealthRegistry::Global().Components().empty());
}

TEST_F(WatchdogTest, NonFiniteLossOrGradNormFailsImmediately) {
  {
    TrainWatchdog watchdog;
    EXPECT_TRUE(watchdog.ObserveStep(1, 0.5f, 2.0f));
    EXPECT_FALSE(watchdog.ObserveStep(1, kNan, 2.0f));
    EXPECT_TRUE(watchdog.failed());
    EXPECT_TRUE(watchdog.aborted());
    EXPECT_NE(watchdog.diagnostic().find("non-finite loss"),
              std::string::npos);
    EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kFailed);
  }
  // A FAILED watchdog stays registered after destruction: the sick run
  // remains visible to /healthz.
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kFailed);

  obs::HealthRegistry::Global().Clear();
  TrainWatchdog watchdog;
  EXPECT_FALSE(watchdog.ObserveStep(2, 0.5f, kInf));
  EXPECT_NE(watchdog.diagnostic().find("gradient norm"), std::string::npos);
}

TEST_F(WatchdogTest, AbortOnFailureFalseKeepsTrainingButFlipsHealth) {
  TrainWatchdogConfig config;
  config.abort_on_failure = false;
  TrainWatchdog watchdog(config);
  EXPECT_TRUE(watchdog.ObserveStep(1, kNan, 1.0f));  // Keep going...
  EXPECT_TRUE(watchdog.failed());                    // ...but observably sick.
  EXPECT_FALSE(watchdog.aborted());
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kFailed);
}

TEST_F(WatchdogTest, DisabledWatchdogIsInert) {
  TrainWatchdogConfig config;
  config.enabled = false;
  TrainWatchdog watchdog(config);
  EXPECT_TRUE(watchdog.ObserveStep(1, kNan, kInf));
  EXPECT_TRUE(watchdog.ObserveEpoch(1, kNan));
  EXPECT_FALSE(watchdog.failed());
  EXPECT_TRUE(obs::HealthRegistry::Global().Components().empty());
}

TEST_F(WatchdogTest, DivergenceEscalatesThroughDegradedToFailed) {
  TrainWatchdogConfig config;
  config.divergence_factor = 2.0;
  config.patience = 3;
  TrainWatchdog watchdog(config);

  // A converging run never trips anything.
  for (int e = 0; e < 6; ++e) {
    EXPECT_TRUE(watchdog.ObserveEpoch(1, 1.0f - 0.1f * e));
  }
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kOk);

  // Diverging epochs: the EWMA climbs past factor × window-min. Strikes
  // 1 and 2 mark DEGRADED, strike 3 (== patience) fails and aborts.
  EXPECT_TRUE(watchdog.ObserveEpoch(1, 50.0f));
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kDegraded);
  EXPECT_TRUE(watchdog.ObserveEpoch(1, 80.0f));
  EXPECT_FALSE(watchdog.ObserveEpoch(1, 120.0f));
  EXPECT_TRUE(watchdog.aborted());
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kFailed);
  EXPECT_NE(watchdog.diagnostic().find("diverging"), std::string::npos);
}

TEST_F(WatchdogTest, OneBadEpochRecoversToOk) {
  TrainWatchdogConfig config;
  config.divergence_factor = 2.0;
  // The EWMA needs a few healthy epochs to decay back under the threshold
  // after one spike; patience must outlast that decay for this to count as
  // recovery rather than failure.
  config.patience = 4;
  TrainWatchdog watchdog(config);
  for (int e = 0; e < 4; ++e) {
    EXPECT_TRUE(watchdog.ObserveEpoch(1, 1.0f));
  }
  EXPECT_TRUE(watchdog.ObserveEpoch(1, 10.0f));  // One spike: DEGRADED.
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kDegraded);
  // EWMA decays back under the threshold → strikes reset, OK again.
  for (int e = 0; e < 6; ++e) {
    EXPECT_TRUE(watchdog.ObserveEpoch(1, 1.0f));
  }
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kOk);
  EXPECT_FALSE(watchdog.failed());
}

TEST_F(WatchdogTest, StageBoundariesResetTheBaseline) {
  TrainWatchdogConfig config;
  config.divergence_factor = 2.0;
  TrainWatchdog watchdog(config);
  // Stage 1 converges to a tiny loss...
  for (int e = 0; e < 5; ++e) {
    EXPECT_TRUE(watchdog.ObserveEpoch(1, 0.01f));
  }
  // ...stage 2 starts at a much larger loss (different objective). With a
  // stage-global baseline this would instantly strike; the reset makes it
  // a fresh seed instead.
  EXPECT_TRUE(watchdog.ObserveEpoch(2, 3.0f));
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kOk);
}

// The slow legitimate loss rise of the stage-3 mask ramp (10% → 50% masked
// tokens across epochs) must not be mistaken for divergence: the windowed
// minimum tracks the ramp.
TEST_F(WatchdogTest, SlowRampIsNotDivergence) {
  TrainWatchdogConfig config;
  config.divergence_factor = 4.0;
  config.window = 8;
  TrainWatchdog watchdog(config);
  float loss = 1.0f;
  for (int e = 0; e < 30; ++e) {
    EXPECT_TRUE(watchdog.ObserveEpoch(3, loss)) << "epoch " << e;
    loss *= 1.10f;  // +10% per epoch: a ramp, not a runaway.
  }
  EXPECT_FALSE(watchdog.failed());
}

// Fault injection end to end: an absurd learning rate explodes the
// parameters after the first Adam steps, losses/gradients go non-finite,
// and Fit must abort early with /healthz FAILED — instead of burning all
// configured epochs training garbage.
TEST_F(WatchdogTest, NanTrainingRunAbortsFitAndFailsHealth) {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 6; ++i) {
    coords.push_back({40.0 + 0.01 * i, -100.0 + 0.005 * i});
  }
  poi::PoiTable pois(std::move(coords));
  std::vector<poi::CheckinSequence> train(2);
  for (int u = 0; u < 2; ++u) {
    for (int i = 0; i < 24; ++i) {
      train[u].push_back({u, i % 3, int64_t{i} * 3 * 3600, false});
    }
  }

  PaSeq2SeqConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.stage1_epochs = 4;
  config.stage2_epochs = 4;
  config.stage3_epochs = 4;
  config.seed = 5;
  config.learning_rate = 1e20f;  // Guaranteed blow-up.
  PaSeq2Seq model(pois, config);
  model.Fit(train);

  const auto& stats = model.train_stats();
  const size_t epochs_run =
      stats.stage1.size() + stats.stage2.size() + stats.stage3.size();
  EXPECT_LT(epochs_run, 12u) << "watchdog did not abort the run";
  EXPECT_EQ(ComponentStatus("train.watchdog"), obs::HealthStatus::kFailed);
}

}  // namespace
}  // namespace pa::augment
