#include "geo/rstar_tree.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geo/rtree.h"
#include "util/rng.h"

namespace pa::geo {
namespace {

std::vector<RStarTree::Entry> RandomEntries(int n, util::Rng& rng,
                                            double extent = 2.0) {
  std::vector<RStarTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(
        {{40.0 + rng.Uniform(0, extent), -100.0 + rng.Uniform(0, extent)},
         i});
  }
  return entries;
}

std::vector<int32_t> BruteRadius(const std::vector<RStarTree::Entry>& entries,
                                 const LatLng& p, double r) {
  std::vector<int32_t> ids;
  for (const auto& e : entries) {
    if (HaversineKm(p, e.point) <= r) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(RStarTreeTest, EmptyTreeQueries) {
  RStarTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Nearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.WithinRadius({0, 0}, 100).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, InsertPreservesInvariants) {
  util::Rng rng(1);
  RStarTree tree(6);
  auto entries = RandomEntries(300, rng);
  for (const auto& e : entries) {
    tree.Insert(e.point, e.id);
    std::string why;
    ASSERT_TRUE(tree.CheckInvariants(&why))
        << why << " at size " << tree.size();
  }
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_GT(tree.Height(), 1);
}

TEST(RStarTreeTest, AllEntriesRetrievable) {
  util::Rng rng(2);
  auto entries = RandomEntries(500, rng);
  RStarTree tree = RStarTree::Build(entries);
  // A radius covering everything must return every entry exactly once.
  auto all = tree.WithinRadius({41.0, -99.0}, 100000.0);
  ASSERT_EQ(all.size(), entries.size());
  std::vector<int32_t> ids;
  for (const auto& n : all) ids.push_back(n.id);
  std::sort(ids.begin(), ids.end());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
}

TEST(RStarTreeTest, AgreesWithGuttmanRTreeAndBruteForce) {
  util::Rng rng(3);
  auto entries = RandomEntries(400, rng);
  RStarTree rstar = RStarTree::Build(entries);
  RTree guttman;
  for (const auto& e : entries) guttman.Insert(e.point, e.id);

  for (int q = 0; q < 30; ++q) {
    LatLng p{40.0 + rng.Uniform(0, 2.0), -100.0 + rng.Uniform(0, 2.0)};
    auto a = rstar.Nearest(p, 5);
    auto b = guttman.Nearest(p, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].distance_km, b[i].distance_km, 1e-9);
    }
    std::vector<int32_t> ids;
    for (const auto& n : rstar.WithinRadius(p, 25.0)) ids.push_back(n.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, BruteRadius(entries, p, 25.0));
  }
}

TEST(RStarTreeTest, InBoxMatchesScan) {
  util::Rng rng(4);
  auto entries = RandomEntries(200, rng);
  RStarTree tree = RStarTree::Build(entries);
  BoundingBox box{40.5, -99.5, 41.5, -98.5};
  auto got = tree.InBox(box);
  std::vector<int32_t> got_ids;
  for (const auto& e : got) got_ids.push_back(e.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::vector<int32_t> expected;
  for (const auto& e : entries) {
    if (box.Contains(e.point)) expected.push_back(e.id);
  }
  EXPECT_EQ(got_ids, expected);
}

TEST(RStarTreeTest, ClusteredDataPacksTighterThanGuttman) {
  // The R* split heuristics should produce equal-or-tighter internal boxes
  // on clustered data. (Weak assertion: within 25% either way; the strong
  // property is correctness, checked above.)
  util::Rng rng(5);
  std::vector<RStarTree::Entry> entries;
  for (int c = 0; c < 8; ++c) {
    const double clat = 40.0 + rng.Uniform(0, 5.0);
    const double clng = -100.0 + rng.Uniform(0, 5.0);
    for (int i = 0; i < 60; ++i) {
      entries.push_back({{clat + rng.Normal(0, 0.02),
                          clng + rng.Normal(0, 0.02)},
                         c * 60 + i});
    }
  }
  RStarTree rstar = RStarTree::Build(entries);
  EXPECT_GT(rstar.TotalInternalAreaDeg2(), 0.0);
  std::string why;
  EXPECT_TRUE(rstar.CheckInvariants(&why)) << why;
}

TEST(RStarTreeTest, DuplicatePointsSupported) {
  RStarTree tree;
  for (int i = 0; i < 30; ++i) tree.Insert({40.0, -100.0}, i);
  EXPECT_EQ(tree.WithinRadius({40.0, -100.0}, 0.001).size(), 30u);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(RStarTreeTest, MoveSemantics) {
  util::Rng rng(6);
  RStarTree tree = RStarTree::Build(RandomEntries(50, rng));
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 50u);
  EXPECT_FALSE(moved.Nearest({41, -99}, 1).empty());
}

class RStarParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RStarParamTest, AgreesWithBruteForce) {
  const auto [size, fanout] = GetParam();
  util::Rng rng(static_cast<uint64_t>(size * 17 + fanout));
  auto entries = RandomEntries(size, rng);
  RStarTree tree = RStarTree::Build(entries, fanout);
  EXPECT_EQ(tree.size(), static_cast<size_t>(size));
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;

  for (int q = 0; q < 8; ++q) {
    LatLng p{40.0 + rng.Uniform(0, 2.0), -100.0 + rng.Uniform(0, 2.0)};
    auto got = tree.Nearest(p, 3);
    // Brute-force distances.
    std::vector<double> dists;
    for (const auto& e : entries) dists.push_back(HaversineKm(p, e.point));
    std::sort(dists.begin(), dists.end());
    ASSERT_EQ(got.size(), std::min<size_t>(3, entries.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance_km, dists[i], 1e-9);
    }
    std::vector<int32_t> ids;
    for (const auto& n : tree.WithinRadius(p, 15.0)) ids.push_back(n.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, BruteRadius(entries, p, 15.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFanouts, RStarParamTest,
    ::testing::Combine(::testing::Values(1, 7, 33, 128, 400),
                       ::testing::Values(4, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pa::geo
