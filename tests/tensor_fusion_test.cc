// Fusion-layer suite: the fused kernels (add3/lerp/axpby/cell_update/
// tanh_mul/gate_act), the Lerp/Axpby ops, the strided slice views, and the
// CompiledStep record-and-replay path added for the recurrent cells.
//
// The contracts under test, from kernels.h and compiled_step.h:
//
//   * Every fused kernel is bit-identical, per table, to the composition of
//     that same table's primitive kernels it replaces (gate_act/tanh_mul
//     call the table's own SigmoidK/TanhK, so this holds even for the
//     expf-based entries).
//   * A compiled-step replay is bit-identical to running the same cell body
//     unfused (ScopedFusionDisable) and to the graph-building path
//     (ScopedInferenceDisable), serial and with PA_THREADS > 1.
//   * The per-thread program cache discriminates on input shape and on
//     StepSite identity, and falls back (never miscompiles) on batch > 1.
//
// The suite must also pass under PA_FUSION=off (tier1.sh reruns it that
// way), so every assertion that fusion actually engaged is gated on
// fusion::Enabled().

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "augment/pa_seq2seq.h"
#include "nn/gru_cell.h"
#include "nn/lstm.h"
#include "nn/rnn_cell.h"
#include "nn/st_clstm.h"
#include "nn/st_rnn_cell.h"
#include "tensor/compiled_step.h"
#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pa {
namespace {

using tensor::Shape;
using tensor::Tensor;
namespace fusion = tensor::fusion;
namespace kernels = tensor::kernels;

// ---------------------------------------------------------------------------
// Fused kernels vs their primitive compositions, per table.

std::vector<const kernels::KernelTable*> AllTables() {
  std::vector<const kernels::KernelTable*> tables = {&kernels::ScalarTable(),
                                                     &kernels::GenericTable()};
  if (const kernels::KernelTable* avx2 = kernels::Avx2Table()) {
    tables.push_back(avx2);
  }
  return tables;
}

// Deterministic spread over sign / magnitude / fractions; finite, since the
// compositions under test only ever see gate pre-activations and states.
std::vector<float> TestInput(int64_t n, uint32_t salt) {
  std::vector<float> v(static_cast<size_t>(n));
  uint32_t state = 0x9e3779b9u + salt;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    const float u = static_cast<float>(state >> 8) /
                    static_cast<float>(1u << 24);  // [0, 1)
    v[static_cast<size_t>(i)] = (u - 0.5f) * 12.0f;
  }
  return v;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Length deliberately not a multiple of any vector width.
constexpr int64_t kN = 259;

TEST(FusedKernelTest, Add3MatchesChainedAdds) {
  const auto a = TestInput(kN, 1), b = TestInput(kN, 2), c = TestInput(kN, 3);
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(kN), ref(kN), tmp(kN);
    kt->add3(a.data(), b.data(), c.data(), fused.data(), kN);
    kt->add(a.data(), b.data(), tmp.data(), kN);
    kt->add(tmp.data(), c.data(), ref.data(), kN);
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
  }
}

TEST(FusedKernelTest, LerpMatchesOneMinusComposition) {
  const auto a = TestInput(kN, 4), b = TestInput(kN, 5);
  auto mask = TestInput(kN, 6);
  for (float& m : mask) m = 1.0f / (1.0f + std::exp(-m));  // masks in (0, 1)
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(kN), ref(kN), om(kN), t(kN);
    kt->lerp(mask.data(), a.data(), b.data(), fused.data(), kN);
    // The unfused form the rewriter matches: (mask * -1 + 1) ⊙ b + mask ⊙ a.
    kt->mulc(mask.data(), -1.0f, om.data(), kN);
    kt->addc(om.data(), 1.0f, om.data(), kN);
    kt->mul(om.data(), b.data(), om.data(), kN);
    kt->mul(mask.data(), a.data(), t.data(), kN);
    kt->add(om.data(), t.data(), ref.data(), kN);
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
  }
}

TEST(FusedKernelTest, AxpbyMatchesScaleAddComposition) {
  const auto a = TestInput(kN, 7), b = TestInput(kN, 8);
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(kN), ref(kN), t(kN);
    kt->axpby(a.data(), 0.3f, b.data(), 0.7f, fused.data(), kN);
    kt->mulc(a.data(), 0.3f, t.data(), kN);
    kt->mulc(b.data(), 0.7f, ref.data(), kN);
    kt->add(t.data(), ref.data(), ref.data(), kN);
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
  }
}

TEST(FusedKernelTest, CellUpdateMatchesMulMulAdd) {
  const auto f = TestInput(kN, 9), c = TestInput(kN, 10);
  const auto i = TestInput(kN, 11), g = TestInput(kN, 12);
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(kN), ref(kN), t(kN);
    kt->cell_update(f.data(), c.data(), i.data(), g.data(), fused.data(), kN);
    kt->mul(f.data(), c.data(), t.data(), kN);
    kt->mul(i.data(), g.data(), ref.data(), kN);
    kt->add(t.data(), ref.data(), ref.data(), kN);
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
  }
}

TEST(FusedKernelTest, TanhMulMatchesSameTableTanhThenMul) {
  const auto o = TestInput(kN, 13), c = TestInput(kN, 14);
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(kN), ref(kN), t(kN);
    kt->tanh_mul(o.data(), c.data(), fused.data(), kN);
    kt->tanh(c.data(), t.data(), kN);
    kt->mul(o.data(), t.data(), ref.data(), kN);
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
  }
}

TEST(FusedKernelTest, GateActMatchesPerSliceActivationsAndAliasesInPlace) {
  constexpr int kH = 37;
  constexpr int kSlices = 4;
  const uint8_t acts[kSlices] = {0, 0, 1, 0};  // [i, f, g, o] LSTM layout.
  const auto gates = TestInput(kH * kSlices, 15);
  for (const kernels::KernelTable* kt : AllTables()) {
    std::vector<float> fused(gates.size()), ref(gates.size());
    kt->gate_act(gates.data(), fused.data(), /*m=*/1, kH, acts, kSlices);
    for (int s = 0; s < kSlices; ++s) {
      const float* in = gates.data() + s * kH;
      float* out = ref.data() + s * kH;
      if (acts[s] == 0) {
        kt->sigmoid(in, out, kH);
      } else {
        kt->tanh(in, out, kH);
      }
    }
    EXPECT_TRUE(BitEqual(fused, ref)) << kt->name;
    // Exact aliasing (out == gates) is the form compiled replay emits.
    std::vector<float> inplace = gates;
    kt->gate_act(inplace.data(), inplace.data(), /*m=*/1, kH, acts, kSlices);
    EXPECT_TRUE(BitEqual(inplace, ref)) << kt->name << " in-place";
  }
}

// ---------------------------------------------------------------------------
// Lerp / Axpby ops: forward composition identity + gradients.

TEST(LerpAxpbyOpTest, ForwardMatchesCompositionBitwise) {
  util::Rng rng(21);
  Tensor mask = tensor::Sigmoid(tensor::UniformInit({1, 33}, 2.0f, rng));
  Tensor a = tensor::UniformInit({1, 33}, 3.0f, rng);
  Tensor b = tensor::UniformInit({1, 33}, 3.0f, rng);
  tensor::InferenceModeScope scope;
  Tensor lerp = tensor::Lerp(mask, a, b);
  Tensor lerp_ref = tensor::Add(
      tensor::Mul(tensor::AddScalar(tensor::Scale(mask, -1.0f), 1.0f), b),
      tensor::Mul(mask, a));
  ASSERT_EQ(lerp.shape(), lerp_ref.shape());
  EXPECT_EQ(std::memcmp(lerp.data(), lerp_ref.data(),
                        sizeof(float) * static_cast<size_t>(lerp.numel())),
            0);

  Tensor axpby = tensor::Axpby(a, 0.25f, b, 0.75f);
  Tensor axpby_ref =
      tensor::Add(tensor::Scale(a, 0.25f), tensor::Scale(b, 0.75f));
  EXPECT_EQ(std::memcmp(axpby.data(), axpby_ref.data(),
                        sizeof(float) * static_cast<size_t>(axpby.numel())),
            0);
}

TEST(LerpAxpbyOpTest, GradientsPassFiniteDifferences) {
  util::Rng rng(22);
  Tensor mask = tensor::UniformInit({2, 5}, 0.4f, rng);
  Tensor a = tensor::UniformInit({2, 5}, 1.0f, rng);
  Tensor b = tensor::UniformInit({2, 5}, 1.0f, rng);
  auto lerp_res = tensor::CheckGradients(
      [=] { return tensor::Sum(tensor::Lerp(mask, a, b)); }, {mask, a, b});
  EXPECT_TRUE(lerp_res.ok) << lerp_res.worst_location;
  auto axpby_res = tensor::CheckGradients(
      [=] { return tensor::Sum(tensor::Axpby(a, 0.6f, b, -1.2f)); }, {a, b});
  EXPECT_TRUE(axpby_res.ok) << axpby_res.worst_location;
}

// ---------------------------------------------------------------------------
// Strided slice views.

TEST(StridedViewTest, ViewsMatchCopyingSlices) {
  util::Rng rng(23);
  Tensor a = tensor::UniformInit({5, 12}, 2.0f, rng);
  tensor::InferenceModeScope scope;

  tensor::StridedView cols = tensor::SliceColsView(a, 3, 4);
  Tensor cols_copy = tensor::SliceCols(a, 3, 4);
  ASSERT_EQ(cols.rows, 5);
  ASSERT_EQ(cols.cols, 4);
  EXPECT_FALSE(cols.contiguous());  // 5 rows with row_stride 12 != 4.
  for (int r = 0; r < cols.rows; ++r) {
    EXPECT_EQ(std::memcmp(cols.row(r), cols_copy.data() + r * 4,
                          4 * sizeof(float)),
              0)
        << "row " << r;
  }

  tensor::StridedView rows = tensor::SliceRowsView(a, 1, 3);
  Tensor rows_copy = tensor::SliceRows(a, 1, 3);
  ASSERT_EQ(rows.rows, 3);
  ASSERT_EQ(rows.cols, 12);
  EXPECT_TRUE(rows.contiguous());
  EXPECT_EQ(std::memcmp(rows.data, rows_copy.data(), 3 * 12 * sizeof(float)),
            0);

  // Single-row column slice is contiguous — the case replay reads in place.
  Tensor one = tensor::UniformInit({1, 8}, 1.0f, rng);
  tensor::StridedView v = tensor::SliceColsView(one, 2, 5);
  EXPECT_TRUE(v.contiguous());
  EXPECT_EQ(v.data, one.data() + 2);
}

// ---------------------------------------------------------------------------
// Cell-level fused vs unfused vs graph parity.

std::vector<float> Flat(const Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

// Runs `step` T times, threading the state through, and returns every
// output element of every step concatenated.
template <typename StepFn>
std::vector<float> Rollout(int steps, const StepFn& step) {
  std::vector<float> all;
  for (int t = 0; t < steps; ++t) {
    std::vector<float> out = step(t);
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

// Deterministic [1, d] input for step t.
Tensor StepInput(int d, int t, uint32_t salt) {
  return Tensor::FromData({1, d},
                          TestInput(d, salt * 131u + static_cast<uint32_t>(t)));
}

// Three-way parity harness: fused (default inference), unfused
// (ScopedFusionDisable), and graph (ScopedInferenceDisable) rollouts of the
// same step function must be bitwise identical, and when fusion is enabled
// the fused run must have gone through compiled replay.
template <typename RolloutFn>
void ExpectThreeWayParity(const RolloutFn& run, const char* what) {
  const fusion::FusionStats before = fusion::ThisThreadStats();
  std::vector<float> fused;
  {
    tensor::InferenceModeScope scope;
    fused = run();
  }
  const fusion::FusionStats after = fusion::ThisThreadStats();
  std::vector<float> unfused;
  {
    tensor::InferenceModeScope scope;
    fusion::ScopedFusionDisable no_fusion;
    unfused = run();
  }
  std::vector<float> graph;
  {
    tensor::internal::ScopedInferenceDisable disable;
    graph = run();
  }
  EXPECT_TRUE(BitEqual(fused, unfused)) << what << ": fused vs unfused";
  EXPECT_TRUE(BitEqual(fused, graph)) << what << ": fused vs graph";
  if (fusion::Enabled()) {
    EXPECT_GT(after.recorded, before.recorded) << what;
    EXPECT_GT(after.replayed, before.replayed) << what;
  }
}

constexpr int kSteps = 8;

TEST(CompiledStepTest, LstmThreeWayParity) {
  util::Rng rng(31);
  nn::LstmCell cell(12, 16, rng);
  ExpectThreeWayParity(
      [&] {
        nn::LstmState state = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          state = cell.Forward(StepInput(12, t, 1), state);
          std::vector<float> out = Flat(state.h);
          const std::vector<float> c = Flat(state.c);
          out.insert(out.end(), c.begin(), c.end());
          return out;
        });
      },
      "lstm");
}

TEST(CompiledStepTest, LstmZoneoutEvalThreeWayParity) {
  util::Rng rng(32);
  nn::LstmCell cell(10, 12, rng);
  nn::ZoneoutConfig zoneout;
  zoneout.hidden_prob = 0.1f;
  zoneout.cell_prob = 0.05f;
  util::Rng step_rng(1);
  ExpectThreeWayParity(
      [&] {
        nn::LstmState state = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          state = cell.ForwardZoneout(StepInput(10, t, 2), state, zoneout,
                                      /*training=*/false, step_rng);
          std::vector<float> out = Flat(state.h);
          const std::vector<float> c = Flat(state.c);
          out.insert(out.end(), c.begin(), c.end());
          return out;
        });
      },
      "lstm_zoneout_eval");
}

TEST(CompiledStepTest, StClstmThreeWayParity) {
  util::Rng rng(33);
  nn::StClstmCell cell(12, 16, rng);
  ExpectThreeWayParity(
      [&] {
        nn::LstmState state = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          // Vary Δt/Δd per step so scalar discrimination has to bind them.
          state = cell.Forward(StepInput(12, t, 3), state,
                               0.25f + 0.01f * static_cast<float>(t % 7),
                               0.5f + 0.02f * static_cast<float>(t % 5));
          std::vector<float> out = Flat(state.h);
          const std::vector<float> c = Flat(state.c);
          out.insert(out.end(), c.begin(), c.end());
          return out;
        });
      },
      "st_clstm");
}

TEST(CompiledStepTest, GruThreeWayParity) {
  util::Rng rng(34);
  nn::GruCell cell(12, 16, rng);
  ExpectThreeWayParity(
      [&] {
        Tensor h = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          h = cell.Forward(StepInput(12, t, 4), h);
          return Flat(h);
        });
      },
      "gru");
}

TEST(CompiledStepTest, RnnThreeWayParity) {
  util::Rng rng(35);
  nn::RnnCell cell(12, 16, rng);
  ExpectThreeWayParity(
      [&] {
        Tensor h = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          h = cell.Forward(StepInput(12, t, 5), h);
          return Flat(h);
        });
      },
      "rnn");
}

TEST(CompiledStepTest, StRnnThreeWayParityAcrossBucketVariants) {
  util::Rng rng(36);
  nn::StRnnCell cell(12, 16, rng, /*time_buckets=*/3, /*distance_buckets=*/3);
  ExpectThreeWayParity(
      [&] {
        Tensor h = cell.InitialState(1);
        // Sweep bucket pairs so several `variant` programs get compiled.
        return Rollout(2 * kSteps, [&](int t) {
          const float dt = 0.5f + 1.2f * static_cast<float>(t % 3);
          const float dd = 0.3f + 1.5f * static_cast<float>(t % 2);
          h = cell.Forward(StepInput(12, t, 6), h, dt, dd);
          return Flat(h);
        });
      },
      "st_rnn");
}

// PA_THREADS > 1 with a hidden size big enough that the replayed matmuls
// cross kMatMulParallelFlops and actually run tiled on the pool.
TEST(CompiledStepTest, LstmThreadedParityAtLargeHidden) {
  util::Rng rng(37);
  nn::LstmCell cell(64, 160, rng);
  util::SetThreadCount(4);
  ExpectThreeWayParity(
      [&] {
        nn::LstmState state = cell.InitialState(1);
        return Rollout(kSteps, [&](int t) {
          state = cell.Forward(StepInput(64, t, 7), state);
          std::vector<float> out = Flat(state.h);
          const std::vector<float> c = Flat(state.c);
          out.insert(out.end(), c.begin(), c.end());
          return out;
        });
      },
      "lstm_threaded");
  util::SetThreadCount(0);
}

// ---------------------------------------------------------------------------
// Cache behavior: shape keying, batch fallback, site independence.

TEST(CompiledStepTest, BatchGreaterThanOneFallsBackAndStaysCorrect) {
  util::Rng rng(41);
  nn::GruCell cell(8, 12, rng);
  const fusion::FusionStats before = fusion::ThisThreadStats();
  std::vector<float> fast, graph;
  {
    tensor::InferenceModeScope scope;
    Tensor h = Tensor::Zeros({3, 12});
    for (int t = 0; t < 4; ++t) {
      h = cell.Forward(Tensor::FromData({3, 8}, TestInput(24, 50 + t)), h);
    }
    fast = Flat(h);
  }
  const fusion::FusionStats after = fusion::ThisThreadStats();
  {
    tensor::internal::ScopedInferenceDisable disable;
    Tensor h = Tensor::Zeros({3, 12});
    for (int t = 0; t < 4; ++t) {
      h = cell.Forward(Tensor::FromData({3, 8}, TestInput(24, 50 + t)), h);
    }
    graph = Flat(h);
  }
  EXPECT_TRUE(BitEqual(fast, graph));
  if (fusion::Enabled()) {
    // Batched steps must not record or replay — rows == 1 is the contract.
    EXPECT_EQ(after.recorded, before.recorded);
    EXPECT_EQ(after.replayed, before.replayed);
    EXPECT_GT(after.fallback, before.fallback);
  }
}

TEST(CompiledStepTest, ShapeChangeCompilesSeparatePrograms) {
  // One site, driven directly, with two different input widths: each shape
  // must get its own cached program and replay correctly.
  fusion::StepSite site;
  util::Rng rng(42);
  Tensor w8 = tensor::UniformInit({8, 8}, 0.5f, rng);
  Tensor w16 = tensor::UniformInit({16, 16}, 0.5f, rng);
  auto step = [&](const Tensor& x) {
    const Tensor& w = x.cols() == 8 ? w8 : w16;
    std::vector<Tensor> out = fusion::RunStep(
        site, /*variant=*/0, {x}, {}, [&]() -> std::vector<Tensor> {
          return {tensor::Tanh(tensor::MatMul(x, w))};
        });
    return std::move(out[0]);
  };
  const fusion::FusionStats before = fusion::ThisThreadStats();
  tensor::InferenceModeScope scope;
  std::vector<std::vector<float>> got;
  for (int round = 0; round < 4; ++round) {
    for (int width : {8, 16}) {
      got.push_back(
          Flat(step(Tensor::FromData({1, width}, TestInput(width, 60)))));
    }
  }
  const fusion::FusionStats after = fusion::ThisThreadStats();
  // Same input every round: rounds 1..3 must reproduce round 0 exactly.
  for (size_t i = 2; i < got.size(); ++i) {
    EXPECT_TRUE(BitEqual(got[i], got[i % 2])) << "round output " << i;
  }
  if (fusion::Enabled()) {
    // Two shapes -> (at least) two recorded traces and replays for both.
    EXPECT_GE(after.recorded - before.recorded, 2u);
    EXPECT_GE(after.replayed - before.replayed, 2u);
  }
}

TEST(CompiledStepTest, DistinctCellInstancesDoNotShareAnything) {
  util::Rng rng_a(43), rng_b(44);
  nn::RnnCell cell_a(6, 10, rng_a);
  nn::RnnCell cell_b(6, 10, rng_b);  // Different weights, same shapes.
  auto roll = [&](const nn::RnnCell& cell, uint32_t salt) {
    Tensor h = cell.InitialState(1);
    return Rollout(kSteps, [&](int t) {
      h = cell.Forward(StepInput(6, t, salt), h);
      return Flat(h);
    });
  };
  std::vector<float> a_fused, b_fused, a_ref, b_ref;
  {
    tensor::InferenceModeScope scope;
    // Interleave the two cells so a shared/stale program would cross wires.
    for (int round = 0; round < 2; ++round) {
      a_fused = roll(cell_a, 70);
      b_fused = roll(cell_b, 71);
    }
  }
  {
    tensor::InferenceModeScope scope;
    fusion::ScopedFusionDisable no_fusion;
    a_ref = roll(cell_a, 70);
    b_ref = roll(cell_b, 71);
  }
  EXPECT_TRUE(BitEqual(a_fused, a_ref));
  EXPECT_TRUE(BitEqual(b_fused, b_ref));
  EXPECT_FALSE(BitEqual(a_fused, b_fused));  // Sanity: weights do differ.
}

TEST(FusionEnabledTest, ScopedDisableTogglesEnabledOnThisThread) {
  const bool env_on = fusion::Enabled();
  {
    fusion::ScopedFusionDisable off;
    EXPECT_FALSE(fusion::Enabled());
    {
      fusion::ScopedFusionDisable nested;
      EXPECT_FALSE(fusion::Enabled());
    }
    EXPECT_FALSE(fusion::Enabled());
  }
  EXPECT_EQ(fusion::Enabled(), env_on);
}

// ---------------------------------------------------------------------------
// PA-Seq2Seq decoder: fused vs unfused decode-only entry points.

constexpr int64_t kHour = 3600;

TEST(CompiledStepTest, PaSeq2SeqDecodeParity) {
  poi::PoiTable pois = [] {
    std::vector<geo::LatLng> coords;
    for (int i = 0; i < 6; ++i) {
      coords.push_back({40.0 + 0.01 * i, -100.0 + 0.005 * i});
    }
    return poi::PoiTable(std::move(coords));
  }();
  augment::PaSeq2SeqConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 2;
  config.candidate_radius_km = 0.0;
  config.seed = 5;
  augment::PaSeq2Seq model(pois, config);
  std::vector<poi::CheckinSequence> train(3);
  for (int u = 0; u < 3; ++u) {
    for (int i = 0; i < 40; ++i) {
      train[u].push_back({u, i % 3, i * 3 * kHour, false});
    }
  }
  model.Fit(train);

  poi::CheckinSequence history;
  for (int i = 0; i < 12; ++i) {
    history.push_back({0, i % 3, i * 3 * kHour, false});
  }
  const int64_t next_ts = 12 * 3 * kHour;

  const fusion::FusionStats before = fusion::ThisThreadStats();
  const auto rank_fused = model.RankNext(history, next_ts, 6);
  const fusion::FusionStats after = fusion::ThisThreadStats();
  std::vector<int32_t> rank_unfused;
  {
    fusion::ScopedFusionDisable no_fusion;
    rank_unfused = model.RankNext(history, next_ts, 6);
  }
  EXPECT_EQ(rank_fused, rank_unfused);
  EXPECT_FALSE(rank_fused.empty());
  if (fusion::Enabled()) {
    EXPECT_GT(after.replayed, before.replayed);
  }
}

}  // namespace
}  // namespace pa
