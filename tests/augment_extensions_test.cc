// Tests for the PA-Seq2Seq extensions: beam-search decoding, checkpointing,
// and the sessionization utility.

#include <gtest/gtest.h>

#include "augment/pa_seq2seq.h"
#include "poi/sessions.h"
#include "util/rng.h"

namespace pa::augment {
namespace {

constexpr int64_t kHour = 3600;

poi::PoiTable CyclePois() {
  std::vector<geo::LatLng> coords;
  for (int i = 0; i < 6; ++i) {
    coords.push_back({40.0 + 0.01 * i, -100.0 + 0.005 * i});
  }
  return poi::PoiTable(std::move(coords));
}

std::vector<poi::CheckinSequence> CycleTrainingData(int users, int length) {
  std::vector<poi::CheckinSequence> train(users);
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < length; ++i) {
      train[u].push_back({u, i % 3, i * 3 * kHour, false});
    }
  }
  return train;
}

PaSeq2SeqConfig FastConfig() {
  PaSeq2SeqConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.stage3_epochs = 8;
  config.candidate_radius_km = 0.0;
  config.seed = 5;
  return config;
}

MaskedSequence DroppedCycle() {
  poi::CheckinSequence observed;
  for (int i = 0; i < 24; ++i) {
    if (i % 3 == 2 && i + 1 < 24) continue;  // Drop every POI-2 visit.
    observed.push_back({0, i % 3, i * 3 * kHour, false});
  }
  return MakeMaskedSequence(observed, 3 * kHour);
}

TEST(ImputeBeamTest, ReturnsOnePoiPerMissingSlot) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  MaskedSequence masked = DroppedCycle();
  auto beam = model.ImputeBeam(masked, 3);
  EXPECT_EQ(static_cast<int>(beam.size()),
            poi::CountMissing(masked.timeline));
  for (int32_t id : beam) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, pois.size());
  }
}

TEST(ImputeBeamTest, WidthOneMatchesMissingCountAndStaysValid) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  PaSeq2Seq model(pois, config);
  model.Fit(CycleTrainingData(3, 50));
  MaskedSequence masked = DroppedCycle();
  auto beam1 = model.ImputeBeam(masked, 1);
  auto beam4 = model.ImputeBeam(masked, 4);
  ASSERT_EQ(beam1.size(), beam4.size());
}

TEST(ImputeBeamTest, TrainedBeamRecoversCycle) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  config.stage3_epochs = 10;
  PaSeq2Seq model(pois, config);
  model.Fit(CycleTrainingData(4, 60));
  MaskedSequence masked = DroppedCycle();
  auto beam = model.ImputeBeam(masked, 3);
  int correct = 0;
  for (int32_t id : beam) {
    if (id == 2) ++correct;  // Every dropped visit was POI 2.
  }
  EXPECT_GT(static_cast<double>(correct) / beam.size(), 0.7);
}

TEST(ImputeBeamTest, NoMissingSlotsReturnsEmpty) {
  poi::PoiTable pois = CyclePois();
  PaSeq2Seq model(pois, FastConfig());
  poi::CheckinSequence dense = {{0, 0, 0, false}, {0, 1, 3 * kHour, false}};
  EXPECT_TRUE(model.ImputeBeam(MakeMaskedSequence(dense, 3 * kHour), 3)
                  .empty());
}

TEST(CheckpointTest, SaveLoadRoundTripPreservesBehaviour) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  config.stage3_epochs = 6;
  PaSeq2Seq trained(pois, config);
  trained.Fit(CycleTrainingData(3, 50));

  const std::string path = ::testing::TempDir() + "/pa_seq2seq.ckpt";
  ASSERT_TRUE(trained.SaveToFile(path));

  PaSeq2Seq restored(pois, config);  // Fresh random weights.
  ASSERT_TRUE(restored.LoadFromFile(path));

  MaskedSequence masked = DroppedCycle();
  // Zoneout evaluation path is deterministic, so both must agree exactly.
  EXPECT_EQ(trained.Impute(masked), restored.Impute(masked));
}

TEST(CheckpointTest, LoadRejectsMismatchedArchitecture) {
  poi::PoiTable pois = CyclePois();
  PaSeq2SeqConfig config = FastConfig();
  PaSeq2Seq small(pois, config);
  const std::string path = ::testing::TempDir() + "/pa_small.ckpt";
  ASSERT_TRUE(small.SaveToFile(path));
  config.hidden_dim = 12;
  PaSeq2Seq bigger(pois, config);
  EXPECT_FALSE(bigger.LoadFromFile(path));
}

}  // namespace
}  // namespace pa::augment

namespace pa::poi {
namespace {

constexpr int64_t kHour = 3600;

TEST(SessionsTest, SplitsOnGaps) {
  CheckinSequence seq = {{0, 1, 0}, {0, 2, kHour}, {0, 3, 2 * kHour},
                        {0, 4, 30 * kHour},  // > gap.
                        {0, 5, 31 * kHour}};
  auto sessions = SplitSessions(seq, 6 * kHour);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 3u);
  EXPECT_EQ(sessions[1].size(), 2u);
  EXPECT_EQ(sessions[1][0].poi, 4);
}

TEST(SessionsTest, SingleSessionWhenDense) {
  CheckinSequence seq = {{0, 1, 0}, {0, 2, kHour}};
  EXPECT_EQ(SplitSessions(seq, 6 * kHour).size(), 1u);
}

TEST(SessionsTest, EmptyInput) {
  EXPECT_TRUE(SplitSessions({}, kHour).empty());
  SessionStats stats = ComputeSessionStats({});
  EXPECT_EQ(stats.num_sessions, 0);
}

TEST(SessionsTest, EveryCheckinItsOwnSessionAtZeroGap) {
  CheckinSequence seq = {{0, 1, 0}, {0, 2, 10}, {0, 3, 20}};
  EXPECT_EQ(SplitSessions(seq, 5).size(), 3u);
}

TEST(SessionsTest, StatsComputation) {
  CheckinSequence seq = {{0, 1, 0}, {0, 2, kHour},
                        {0, 3, 40 * kHour}, {0, 4, 41 * kHour},
                        {0, 5, 42 * kHour}};
  auto sessions = SplitSessions(seq, 6 * kHour);
  SessionStats stats = ComputeSessionStats(sessions);
  EXPECT_EQ(stats.num_sessions, 2);
  EXPECT_DOUBLE_EQ(stats.mean_length, 2.5);
  EXPECT_EQ(stats.max_length, 3);
  EXPECT_DOUBLE_EQ(stats.mean_span_hours, (1.0 + 2.0) / 2.0);
}

TEST(SessionsTest, SessionsPartitionTheSequence) {
  util::Rng rng(3);
  CheckinSequence seq;
  int64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    t += static_cast<int64_t>(kHour * rng.Uniform(0.5, 20.0));
    seq.push_back({0, i % 7, t});
  }
  auto sessions = SplitSessions(seq, 6 * kHour);
  size_t total = 0;
  for (const auto& s : sessions) total += s.size();
  EXPECT_EQ(total, seq.size());
  // Gaps inside sessions all <= threshold; gaps between sessions all >.
  for (const auto& s : sessions) {
    for (size_t i = 1; i < s.size(); ++i) {
      EXPECT_LE(s[i].timestamp - s[i - 1].timestamp, 6 * kHour);
    }
  }
  for (size_t k = 1; k < sessions.size(); ++k) {
    EXPECT_GT(sessions[k].front().timestamp -
                  sessions[k - 1].back().timestamp,
              6 * kHour);
  }
}

}  // namespace
}  // namespace pa::poi
